//! # teamsteal — work-stealing for mixed-mode parallelism by deterministic team-building
//!
//! Facade crate re-exporting the public API of the `teamsteal` workspace, a
//! Rust reproduction of *Wimmer & Träff, "Work-stealing for mixed-mode
//! parallelism by deterministic team-building" (SPAA 2011)*.
//!
//! * [`core`](teamsteal_core) — the scheduler itself ([`Scheduler`],
//!   [`Scope`], [`TaskContext`], team barrier, metrics).
//! * [`topology`](teamsteal_topology) — machine hierarchy and deterministic
//!   partner computation.
//! * [`sort`](teamsteal_sort) — the paper's evaluation workload: sequential,
//!   fork-join and mixed-mode parallel Quicksort.
//! * [`data`](teamsteal_data) — the benchmark input distributions.
//!
//! At the repository root, `README.md` gives an overview of the workspace
//! layout, `DESIGN.md` documents the reproduction decisions and deviations,
//! and `EXPERIMENTS.md` records how to regenerate the paper's tables.
//!
//! ```
//! use teamsteal::{Scheduler, SortConfig};
//!
//! let scheduler = Scheduler::with_threads(4);
//! let mut data: Vec<u32> = (0..100_000u32).rev().collect();
//! teamsteal::mixed_mode_sort(&scheduler, &mut data, &SortConfig::default());
//! assert!(data.windows(2).all(|w| w[0] <= w[1]));
//! ```
//!
//! ## Reading the metrics
//!
//! The scheduler counts every observable event; snapshot
//! [`Scheduler::metrics`] around a region and diff with
//! [`MetricsSnapshot::delta_since`] to attribute events to it (README,
//! "Reading the metrics"):
//!
//! ```
//! use teamsteal::Scheduler;
//!
//! let scheduler = Scheduler::with_threads(4);
//! let before = scheduler.metrics();
//! scheduler.run_team(4, |ctx| {
//!     // ... data-parallel work on all 4 members ...
//!     ctx.barrier();
//! });
//! let delta = scheduler.metrics().delta_since(&before);
//! assert_eq!(delta.teams_formed, 1);        // one team, built once
//! assert!(delta.registrations >= 3);        // one CAS per non-coordinator
//! assert_eq!(delta.team_tasks_executed, 4); // counted per participant
//! ```

#![warn(missing_docs)]

pub use teamsteal_core::{
    enable_stall_debug, stall_report, ConcurrentScope, Job, MetricsSnapshot, ReclamationSnapshot,
    Scheduler, SchedulerBuilder, SchedulerConfig, Scope, StealAmount, StealPolicy, TaskContext,
    TeamBarrier, Topology, WakeLatencyHistogram,
};
pub use teamsteal_data::{is_permutation_of, is_sorted, Distribution, Scale};
pub use teamsteal_sort::{
    best_np, fork_join_sort, mixed_mode_sort, sample_sort, sequential_quicksort, std_sort,
    ParallelPartitioner, SortConfig,
};

/// The multi-tenant task-service front-end (DESIGN.md §16): a persistent
/// scheduler behind long-lived tenant handles with weighted-fair admission,
/// overload shedding and graceful drain, plus the open-loop load generator
/// behind `perf --only service_latency`.
pub mod service {
    pub use teamsteal_service::*;
}

/// Further mixed-mode parallel application kernels built on the scheduler
/// (reductions, scans, merge sort, matrix multiplication, stencils, BFS,
/// histograms) — the paper's "future work" applications.
pub mod apps {
    pub use teamsteal_apps::*;
}

/// Re-export of the individual workspace crates for users that need the
/// lower-level substrates (deque, registration word, utilities).
pub mod crates {
    pub use teamsteal_apps as apps;
    pub use teamsteal_core as core;
    pub use teamsteal_data as data;
    pub use teamsteal_deque as deque;
    pub use teamsteal_registration as registration;
    pub use teamsteal_sort as sort;
    pub use teamsteal_topology as topology;
    pub use teamsteal_util as util;
}
