//! Synchronization shim: `std::sync` in production, `teamsteal-model`
//! under `--cfg teamsteal_model`.
//!
//! The four lock-free protocols (registration word, sharded injector,
//! epoch domain, eventcount) import *all* of their atomics, locks,
//! condvars, time reads, and sleeps from this module instead of `std`.
//! Built normally, everything re-exports the std types at zero cost.
//! Built with `RUSTFLAGS='--cfg teamsteal_model'`, the same names resolve
//! to the deterministic-interleaving model in `teamsteal-model`, so the
//! protocol sources compile unchanged against both worlds — no forked
//! logic, no `#[cfg]` in the protocol bodies themselves.
//!
//! See DESIGN.md §14 for the model's soundness boundary and the mapping
//! from protocol ordering tables to model tests.

/// Tracked (or std) atomic integer/pointer types and fences.
pub mod atomic {
    #[cfg(not(teamsteal_model))]
    pub use std::sync::atomic::{
        fence, AtomicBool, AtomicPtr, AtomicU32, AtomicU64, AtomicUsize, Ordering,
    };

    #[cfg(teamsteal_model)]
    pub use teamsteal_model::sync::atomic::{
        fence, AtomicBool, AtomicPtr, AtomicU32, AtomicU64, AtomicUsize, Ordering,
    };
}

#[cfg(not(teamsteal_model))]
pub use std::sync::{Condvar, Mutex, MutexGuard, WaitTimeoutResult};

#[cfg(teamsteal_model)]
pub use teamsteal_model::sync::{Condvar, Mutex, MutexGuard, WaitTimeoutResult};

/// Time source for modeled paths: virtual time under the model (advanced
/// deterministically by the scheduler, jumped to the earliest deadline on
/// timeout escapes), `std::time::Instant` otherwise.  `Duration` is
/// always the std type.
pub mod time {
    #[cfg(not(teamsteal_model))]
    pub use std::time::Instant;

    #[cfg(teamsteal_model)]
    pub use teamsteal_model::time::Instant;
}

/// Thread yields/sleeps on modeled paths: under the model a sleep only
/// advances the virtual clock and yields, never blocking the OS thread.
pub mod thread {
    #[cfg(not(teamsteal_model))]
    pub use std::thread::{sleep, yield_now};

    #[cfg(teamsteal_model)]
    pub use teamsteal_model::thread::{sleep, yield_now};
}

/// Fault-injection hooks, compiled only under the model cfg (production
/// builds have no fault paths).  See `teamsteal_model::fault`.
#[cfg(teamsteal_model)]
pub mod fault {
    pub use teamsteal_model::fault::{drop_next_notifies, take_dropped_notify};
}
