//! Send-able raw pointer wrappers.
//!
//! The parallel partitioning step of the mixed-mode Quicksort (crate
//! `teamsteal-sort`) hands disjoint blocks of one array to the members of a
//! team.  Each block is touched by exactly one thread at a time, but the
//! borrow checker cannot see that, so the implementation passes raw pointers
//! between threads.  [`SendMutPtr`] is the minimal wrapper that makes such a
//! pointer `Send + Sync + Copy` while keeping every dereference an explicit
//! `unsafe` operation at the use site.

use std::marker::PhantomData;

/// A mutable raw pointer that may be sent to and shared with other threads.
///
/// # Safety contract
///
/// Creating a `SendMutPtr` is safe; *dereferencing* it is not.  The caller of
/// [`SendMutPtr::get`] must guarantee the usual aliasing rules: no two threads
/// may concurrently access overlapping memory through the pointer unless all
/// accesses are reads.
#[derive(Debug)]
pub struct SendMutPtr<T> {
    ptr: *mut T,
    _marker: PhantomData<T>,
}

impl<T> Clone for SendMutPtr<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for SendMutPtr<T> {}

// SAFETY: the wrapper only transports the address; all dereferences happen in
// explicit unsafe blocks whose callers uphold the aliasing contract.
unsafe impl<T: Send> Send for SendMutPtr<T> {}
unsafe impl<T: Send> Sync for SendMutPtr<T> {}

impl<T> SendMutPtr<T> {
    /// Wraps a raw pointer.
    #[inline]
    pub fn new(ptr: *mut T) -> Self {
        SendMutPtr {
            ptr,
            _marker: PhantomData,
        }
    }

    /// Wraps the base pointer of a mutable slice.
    #[inline]
    pub fn from_slice(slice: &mut [T]) -> Self {
        Self::new(slice.as_mut_ptr())
    }

    /// Returns the wrapped raw pointer.
    #[inline]
    pub fn get(self) -> *mut T {
        self.ptr
    }

    /// Returns a pointer offset by `count` elements.
    ///
    /// # Safety
    ///
    /// Same requirements as `pointer::add`: the offset must stay within the
    /// same allocation.
    #[inline]
    pub unsafe fn add(self, count: usize) -> Self {
        // SAFETY: forwarded to the caller.
        Self::new(unsafe { self.ptr.add(count) })
    }

    /// Reconstructs a mutable slice of length `len` starting at the pointer.
    ///
    /// # Safety
    ///
    /// The memory range `[ptr, ptr + len)` must be valid, initialised, and not
    /// concurrently accessed by any other thread for the lifetime `'a`.
    #[inline]
    pub unsafe fn slice_mut<'a>(self, len: usize) -> &'a mut [T] {
        // SAFETY: forwarded to the caller.
        unsafe { std::slice::from_raw_parts_mut(self.ptr, len) }
    }
}

/// A read-only raw pointer that may be sent to and shared with other threads.
///
/// The read-only sibling of [`SendMutPtr`], used by kernels that hand
/// *immutable* input (and separately owned output) to the members of a team:
/// every member may read the whole input concurrently, which is always safe,
/// but the reference still has to cross the `'static` bound of the spawn
/// APIs.  The caller of [`SendConstPtr::slice`] must guarantee that the
/// pointee outlives every use — in practice: the slice is only used inside a
/// scheduler scope that blocks until all spawned tasks are done.
#[derive(Debug)]
pub struct SendConstPtr<T> {
    ptr: *const T,
    _marker: PhantomData<T>,
}

impl<T> Clone for SendConstPtr<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for SendConstPtr<T> {}

// SAFETY: the wrapper only transports the address; shared reads are safe and
// the lifetime obligation is documented on `slice`.
unsafe impl<T: Sync> Send for SendConstPtr<T> {}
unsafe impl<T: Sync> Sync for SendConstPtr<T> {}

impl<T> SendConstPtr<T> {
    /// Wraps a raw pointer.
    #[inline]
    pub fn new(ptr: *const T) -> Self {
        SendConstPtr {
            ptr,
            _marker: PhantomData,
        }
    }

    /// Wraps the base pointer of a shared slice.
    #[inline]
    pub fn from_slice(slice: &[T]) -> Self {
        Self::new(slice.as_ptr())
    }

    /// Returns the wrapped raw pointer.
    #[inline]
    pub fn get(self) -> *const T {
        self.ptr
    }

    /// Returns a pointer offset by `count` elements.
    ///
    /// # Safety
    ///
    /// Same requirements as `pointer::add`: the offset must stay within the
    /// same allocation.
    #[inline]
    pub unsafe fn add(self, count: usize) -> Self {
        // SAFETY: forwarded to the caller.
        Self::new(unsafe { self.ptr.add(count) })
    }

    /// Reconstructs a shared slice of length `len` starting at the pointer.
    ///
    /// # Safety
    ///
    /// The memory range `[ptr, ptr + len)` must be valid, initialised, not
    /// mutated by anyone for the lifetime `'a`, and must outlive `'a`.
    #[inline]
    pub unsafe fn slice<'a>(self, len: usize) -> &'a [T] {
        // SAFETY: forwarded to the caller.
        unsafe { std::slice::from_raw_parts(self.ptr, len) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_through_threads() {
        let mut data: Vec<u64> = (0..128).collect();
        let base = SendMutPtr::from_slice(&mut data);
        let handles: Vec<_> = (0..4)
            .map(|chunk| {
                std::thread::spawn(move || {
                    // Each thread owns a disjoint 32-element block.
                    let slice = unsafe { base.add(chunk * 32).slice_mut(32) };
                    for x in slice.iter_mut() {
                        *x += 1000;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert!(data.iter().enumerate().all(|(i, &x)| x == i as u64 + 1000));
    }

    #[test]
    fn copy_semantics() {
        let mut v = [1u8, 2, 3];
        let p = SendMutPtr::from_slice(&mut v);
        let q = p;
        assert_eq!(p.get(), q.get());
    }

    #[test]
    fn const_ptr_shared_reads_from_threads() {
        let data: Vec<u32> = (0..256).collect();
        let base = SendConstPtr::from_slice(&data);
        let n = data.len();
        let handles: Vec<_> = (0..4)
            .map(|_| {
                std::thread::spawn(move || {
                    // SAFETY: the slice outlives the threads (joined below)
                    // and nobody mutates it.
                    let slice = unsafe { base.slice(n) };
                    slice.iter().map(|&x| x as u64).sum::<u64>()
                })
            })
            .collect();
        let expected: u64 = data.iter().map(|&x| x as u64).sum();
        for h in handles {
            assert_eq!(h.join().unwrap(), expected);
        }
    }

    #[test]
    fn const_ptr_offset_and_copy() {
        let data = [10u8, 20, 30, 40];
        let p = SendConstPtr::from_slice(&data);
        let q = p;
        assert_eq!(p.get(), q.get());
        // SAFETY: offset 2 stays inside the 4-element array.
        let tail = unsafe { p.add(2).slice(2) };
        assert_eq!(tail, &[30, 40]);
    }
}
