//! A recycling slab allocator for fixed-size scheduler objects.
//!
//! The spawn hot path of the scheduler allocates one task node per spawned
//! task.  Going through the global allocator for every spawn costs two cache
//! misses and a lock-free-but-contended malloc on most allocators, and the
//! paper's "a single extra CAS" overhead claim drowns in it.  A [`Slab`]
//! instead hands out slots from worker-owned memory chunks and recycles
//! freed slots through an intrusive lock-free free list, so steady-state
//! spawn/finish cycles never touch the global allocator.
//!
//! # Ownership protocol
//!
//! A slab has one **owner** (the worker whose spawn path allocates from it)
//! and arbitrarily many **releasers** (whichever thread happens to finish a
//! task last frees its node *back to the node's home slab*):
//!
//! * [`Slab::alloc`] — owner only.  Pops a recycled slot from the free list,
//!   or carves a fresh slot from the current chunk (allocating a new chunk
//!   from the global allocator when the current one is full).
//! * [`Slab::free`] — any thread.  Pushes a slot whose contents have already
//!   been dropped onto the free list (one CAS, no allocation).
//!
//! The free list is a Treiber stack with *multiple producers and a single
//! consumer*; because only the owner pops, the classic ABA hazard (a popped
//! node re-appearing as head with a different successor) cannot occur: a
//! node can only leave the stack through the single consumer itself.
//!
//! Memory is only returned to the global allocator when the slab is dropped;
//! the retained footprint is bounded by the high-water mark of simultaneously
//! live objects (rounded up to whole chunks).
//!
//! # Safety
//!
//! The slab hands out raw, uninitialized slots and never runs destructors on
//! them; callers `ptr::write` on alloc and `ptr::drop_in_place` before free.
//! The intrusive link lives *inside* the object (see [`Recycle`]) so that a
//! slot on the free list needs no side allocation.

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicPtr, AtomicU64, Ordering};

use crate::CachePadded;

/// Types that can live in a [`Slab`]: they embed an intrusive free-list link
/// (an `AtomicPtr<Self>` field) the slab may use while the value is dead.
///
/// # Safety
///
/// Implementations must return a pointer to a field *inside* the object (so
/// it stays valid as long as the object's memory does) and must not create a
/// reference to any other part of the possibly-dead object while doing so —
/// use [`std::ptr::addr_of_mut!`] on the raw pointer:
///
/// ```
/// use std::sync::atomic::AtomicPtr;
/// use teamsteal_util::slab::Recycle;
///
/// struct Node {
///     free_next: AtomicPtr<Node>,
/// }
///
/// unsafe impl Recycle for Node {
///     unsafe fn free_link(ptr: *mut Self) -> *mut AtomicPtr<Self> {
///         unsafe { std::ptr::addr_of_mut!((*ptr).free_next) }
///     }
/// }
/// ```
///
/// The link field is owned by the slab whenever the object is on the free
/// list; the object must not touch it while it is dead.
pub unsafe trait Recycle: Sized {
    /// Raw pointer to the intrusive link field of the object at `ptr`.
    ///
    /// # Safety
    ///
    /// `ptr` must point to memory that holds (or held) a `Self` within a
    /// live allocation; the returned pointer is only valid for as long as
    /// that allocation is.
    unsafe fn free_link(ptr: *mut Self) -> *mut AtomicPtr<Self>;
}

/// Number of slots carved per chunk allocation.
const CHUNK_SLOTS: usize = 64;

type Chunk<T> = Box<[UnsafeCell<MaybeUninit<T>>]>;

/// Owner-side bump region: the chunks allocated so far and the fill level of
/// the last one.
struct BumpState<T> {
    chunks: Vec<Chunk<T>>,
    /// Slots already handed out from the last chunk.
    used_in_last: usize,
}

/// A recycling slab allocator.  See the [module docs](self) for the
/// ownership protocol and safety contract.
pub struct Slab<T: Recycle> {
    /// Head of the intrusive Treiber free stack.  Padded to its own cache
    /// line: remote releasers CAS it while the owner's bump state stays
    /// clean.
    free: CachePadded<AtomicPtr<T>>,
    /// Bump-allocation state.  Owner-only (see [`Slab::alloc`]).
    bump: UnsafeCell<BumpState<T>>,
    /// Slots handed out over the slab's lifetime (fresh + recycled).
    allocated: AtomicU64,
    /// Slots handed out from the free list rather than from a chunk.
    recycled: AtomicU64,
}

// SAFETY: `free` is an atomic; `bump` is only touched by the owner thread
// (contract on `alloc`); the counters are atomics.  `T: Send` because slots
// are released from other threads.
unsafe impl<T: Recycle + Send> Send for Slab<T> {}
unsafe impl<T: Recycle + Send> Sync for Slab<T> {}

impl<T: Recycle> Default for Slab<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Recycle> Slab<T> {
    /// Creates an empty slab.  No memory is allocated until the first
    /// [`alloc`](Slab::alloc).
    pub fn new() -> Self {
        Slab {
            free: CachePadded::new(AtomicPtr::new(std::ptr::null_mut())),
            bump: UnsafeCell::new(BumpState {
                chunks: Vec::new(),
                used_in_last: 0,
            }),
            allocated: AtomicU64::new(0),
            recycled: AtomicU64::new(0),
        }
    }

    /// Hands out one uninitialized slot and reports whether it was recycled
    /// from the free list (`true`) or carved fresh from a chunk (`false`).
    /// The caller must `ptr::write` a value before using it.
    ///
    /// # Safety
    ///
    /// Owner only: at most one thread may call `alloc` on a given slab at a
    /// time (it is the single consumer of the free list and the only toucher
    /// of the bump state).
    pub unsafe fn alloc(&self) -> (*mut T, bool) {
        self.allocated.fetch_add(1, Ordering::Relaxed);
        // Single-consumer pop from the Treiber stack.  The Acquire on the
        // head pairs with the Release in `free`, making the link write (and
        // the releaser's drop of the slot contents) visible before reuse.
        let mut head = self.free.load(Ordering::Acquire);
        while !head.is_null() {
            // SAFETY: `head` is on the free list, so its link field was
            // written by `free` and stays valid until we pop it (only we
            // pop).
            let next = unsafe { (*T::free_link(head)).load(Ordering::Relaxed) };
            match self
                .free
                .compare_exchange_weak(head, next, Ordering::Acquire, Ordering::Acquire)
            {
                Ok(_) => {
                    self.recycled.fetch_add(1, Ordering::Relaxed);
                    return (head, true);
                }
                Err(observed) => head = observed,
            }
        }
        // SAFETY: same owner-only contract as `alloc` itself.
        (unsafe { self.bump_alloc() }, false)
    }

    /// Carves a fresh slot, growing by one chunk when needed.  Owner only.
    unsafe fn bump_alloc(&self) -> *mut T {
        // SAFETY: owner-only access per the `alloc` contract.
        let bump = unsafe { &mut *self.bump.get() };
        if bump.chunks.is_empty() || bump.used_in_last == CHUNK_SLOTS {
            bump.chunks.push(
                (0..CHUNK_SLOTS)
                    .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
                    .collect(),
            );
            bump.used_in_last = 0;
        }
        let chunk = bump.chunks.last().expect("chunk just ensured");
        let slot = chunk[bump.used_in_last].get();
        bump.used_in_last += 1;
        slot.cast::<T>()
    }

    /// Returns a dead slot to the free list.  Safe to call from any thread.
    ///
    /// # Safety
    ///
    /// `ptr` must have been handed out by *this* slab's [`alloc`](Slab::alloc)
    /// and its contents must already have been dropped (the slab never runs
    /// destructors).  The slot must not be accessed again until `alloc`
    /// returns it.
    pub unsafe fn free(&self, ptr: *mut T) {
        // SAFETY: `ptr` came from this slab's `alloc` (caller contract), so
        // it points into a live chunk allocation.
        let link = unsafe { T::free_link(ptr) };
        let mut head = self.free.load(Ordering::Relaxed);
        loop {
            // SAFETY: the link field is inside the slot, which we own until
            // the CAS below publishes it.  A plain write (re)initializes the
            // atomic in possibly-uninitialized memory.
            unsafe { link.write(AtomicPtr::new(head)) };
            // Release pairs with the Acquire pop in `alloc`: the link write
            // and the caller's drop of the contents become visible to the
            // owner before the slot can be reused.
            match self
                .free
                .compare_exchange_weak(head, ptr, Ordering::Release, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(observed) => head = observed,
            }
        }
    }

    /// Slots handed out over the slab's lifetime (fresh and recycled).
    pub fn allocated(&self) -> u64 {
        self.allocated.load(Ordering::Relaxed)
    }

    /// Slots that were served from the free list instead of fresh memory.
    /// `recycled() / allocated()` is the steady-state hit rate of the arena.
    pub fn recycled(&self) -> u64 {
        self.recycled.load(Ordering::Relaxed)
    }
}

impl<T: Recycle> Drop for Slab<T> {
    fn drop(&mut self) {
        // Chunks are freed wholesale; per the `free` contract all slot
        // contents are already dead, so there is nothing to drop in place.
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::HashSet;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Arc;

    struct Node {
        free_next: AtomicPtr<Node>,
        value: u64,
    }

    unsafe impl Recycle for Node {
        unsafe fn free_link(ptr: *mut Self) -> *mut AtomicPtr<Self> {
            unsafe { std::ptr::addr_of_mut!((*ptr).free_next) }
        }
    }

    fn write_node(slab: &Slab<Node>, value: u64) -> (*mut Node, bool) {
        // SAFETY: tests are single-owner per slab.
        let (ptr, recycled) = unsafe { slab.alloc() };
        unsafe {
            ptr.write(Node {
                free_next: AtomicPtr::new(std::ptr::null_mut()),
                value,
            })
        };
        (ptr, recycled)
    }

    #[test]
    fn fresh_allocations_are_distinct() {
        let slab: Slab<Node> = Slab::new();
        let mut seen = HashSet::new();
        for i in 0..3 * CHUNK_SLOTS as u64 {
            let (ptr, recycled) = write_node(&slab, i);
            assert!(!recycled, "nothing was freed yet");
            assert!(seen.insert(ptr as usize), "slab handed out a live slot twice");
        }
        assert_eq!(slab.allocated(), 3 * CHUNK_SLOTS as u64);
        assert_eq!(slab.recycled(), 0);
    }

    #[test]
    fn freed_slots_are_recycled_lifo() {
        let slab: Slab<Node> = Slab::new();
        let (a, _) = write_node(&slab, 1);
        let (b, _) = write_node(&slab, 2);
        unsafe {
            std::ptr::drop_in_place(a);
            slab.free(a);
            std::ptr::drop_in_place(b);
            slab.free(b);
        }
        let (r1, rec1) = write_node(&slab, 3);
        let (r2, rec2) = write_node(&slab, 4);
        assert!(rec1 && rec2);
        assert_eq!(r1, b, "free list is LIFO");
        assert_eq!(r2, a);
        assert_eq!(slab.recycled(), 2);
    }

    #[test]
    fn cross_thread_free_reaches_the_owner() {
        let slab: Arc<Slab<Node>> = Arc::new(Slab::new());
        let released = Arc::new(AtomicUsize::new(0));
        const N: usize = 10_000;
        // The owner allocates; helper threads free.  Every freed slot must
        // eventually come back through the owner's alloc as recycled.
        let helpers: Vec<_> = (0..4)
            .map(|_| {
                let slab = Arc::clone(&slab);
                let released = Arc::clone(&released);
                let (htx, hrx) = std::sync::mpsc::channel::<usize>();
                let handle = std::thread::spawn(move || {
                    while let Ok(addr) = hrx.recv() {
                        let ptr = addr as *mut Node;
                        unsafe {
                            std::ptr::drop_in_place(ptr);
                            slab.free(ptr);
                        }
                        released.fetch_add(1, Ordering::Relaxed);
                    }
                });
                (htx, handle)
            })
            .collect();
        for i in 0..N {
            let (ptr, _) = write_node(&slab, i as u64);
            helpers[i % helpers.len()]
                .0
                .send(ptr as usize)
                .expect("helper alive");
        }
        for (htx, handle) in helpers {
            drop(htx);
            handle.join().unwrap();
        }
        assert_eq!(released.load(Ordering::Relaxed), N);
        // Everything is free now; the next N allocations reuse memory only.
        let before = slab.recycled();
        for i in 0..N {
            let (_ptr, _) = write_node(&slab, i as u64);
        }
        assert!(
            slab.recycled() >= before + (N as u64).min(CHUNK_SLOTS as u64),
            "owner must observe remotely freed slots"
        );
    }

    proptest! {
        /// Drives a slab through arbitrary alloc/free sequences and checks
        /// the core invariant of node recycling: a slot handed out by
        /// `alloc` is never handed out again while it is still live.
        #[test]
        fn reuse_never_aliases_a_live_slot(ops in proptest::collection::vec(any::<bool>(), 1..256)) {
            let slab: Slab<Node> = Slab::new();
            let mut live: Vec<*mut Node> = Vec::new();
            let mut live_set: HashSet<usize> = HashSet::new();
            let mut next_value = 0u64;
            for op in ops {
                if op || live.is_empty() {
                    let (ptr, _) = write_node(&slab, next_value);
                    prop_assert!(
                        live_set.insert(ptr as usize),
                        "slab handed out live slot {:p} twice", ptr
                    );
                    // The slot must faithfully hold what was written.
                    prop_assert_eq!(unsafe { (*ptr).value }, next_value);
                    live.push(ptr);
                    next_value += 1;
                } else {
                    let ptr = live.swap_remove(next_value as usize % live.len());
                    live_set.remove(&(ptr as usize));
                    unsafe {
                        std::ptr::drop_in_place(ptr);
                        slab.free(ptr);
                    }
                }
            }
            // Live slots still hold distinct addresses and intact values.
            prop_assert_eq!(live.len(), live_set.len());
        }
    }
}
