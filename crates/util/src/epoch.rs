//! Epoch-based memory reclamation for the scheduler's lock-free queues.
//!
//! The lock-free structures of the scheduler (`teamsteal_deque::Injector`
//! segments, `RawDeque` growth buffers) let racing readers hold pointers to
//! memory that has logically left the structure.  Freeing that memory
//! immediately would be a use-after-free; keeping it forever (the seed's
//! "leaky" idiom) makes a long-lived server scheduler's footprint grow with
//! lifetime traffic.  This module provides the middle ground: **deferred
//! reclamation gated on a global epoch**, sized for the scheduler's fixed
//! worker set plus a small pool of registered external submitters.
//!
//! # Protocol
//!
//! A [`Domain`] owns a global epoch counter and a fixed-capacity array of
//! cache-padded participant slots.  Each thread that may read the protected
//! structures registers a [`Participant`] and, while it accesses them, keeps
//! itself **pinned** to the epoch it observed:
//!
//! * [`Participant::pin`] — (re)announce "I am reading, and the global epoch
//!   I have observed is `E`".  Workers call this once per scheduler-loop
//!   iteration; it is one store plus one fence.
//! * [`Participant::unpin`] — announce "I hold no protected pointers".
//!   Workers unpin before parking so sleepers never stall reclamation.
//! * [`Domain::defer`] — hand over ownership of an *already unlinked* object
//!   for deferred destruction.  The object is tagged with the global epoch
//!   current at the hand-over.
//! * [`Domain::try_collect`] — attempt to advance the global epoch (possible
//!   exactly when every pinned participant has observed the current epoch)
//!   and free every object deferred **two or more epochs ago**.  Workers
//!   call this at quiescent points (idle rounds, every few loop iterations).
//!
//! # Safety argument (DESIGN.md §11 carries the full ordering table)
//!
//! An object deferred at epoch `E` can only be referenced by threads that
//! loaded its pointer before it was unlinked, and every such thread was
//! pinned at epoch `E - 1`, `E`, or `E + 1` at that moment (the global epoch
//! moves at most once ahead of any pinned reader, because advancing requires
//! *every* pinned participant to have observed the current value).  Freeing
//! only once the global epoch has reached `E + 2` therefore means at least
//! one full advance has completed after every possible holder's pin — i.e.
//! each of them has since repinned (a quiescent point, after which it holds
//! no stale pointers) or unpinned.  Unregistered slots never block.
//!
//! Deferral itself takes a (cold-path) mutex: objects are retired once per
//! queue segment or per deque growth, not per task, so a lock there costs
//! nothing measurable while keeping the hot pin/unpin path lock-free.
//!
//! ```
//! use teamsteal_util::epoch::{Deferred, Domain, ReclaimClass};
//!
//! let domain = Domain::new(2);
//! let reader = domain.register().expect("capacity 2");
//!
//! reader.pin();
//! // ... the reader may now safely traverse the protected structure ...
//! let garbage = Box::into_raw(Box::new([0u8; 64]));
//! // SAFETY: `garbage` is unlinked (never published) and owned by us.
//! domain.defer(unsafe { Deferred::from_box(garbage, ReclaimClass::Segment) });
//!
//! // The reader still pins the retire epoch: nothing may be freed yet.
//! assert_eq!(domain.try_collect().freed_segments, 0);
//!
//! // One quiescent point later the epoch can advance past the garbage.
//! reader.pin(); // repin = quiescent point: stale pointers are dead now
//! let freed = domain.try_collect();
//! assert_eq!(freed.freed_segments, 1);
//! ```

use crate::sync::atomic::{fence, AtomicBool, AtomicU64, AtomicUsize, Ordering};
use crate::sync::Mutex;
use std::sync::Arc;

use crate::CachePadded;

/// What kind of object a [`Deferred`] frees.  The classes exist so the
/// scheduler can attribute reclamation to its metrics
/// (`segments_reclaimed` / `buffers_reclaimed`) without the domain knowing
/// about concrete queue types.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReclaimClass {
    /// A consumed injection-queue segment.
    Segment,
    /// A retired work-stealing-deque growth buffer.
    Buffer,
}

/// Ownership of one unlinked object awaiting destruction.
///
/// Type-erased so a single domain can hold garbage from differently typed
/// structures.  Constructed with [`Deferred::from_box`]; the domain runs the
/// stored free function exactly once — either from [`Domain::try_collect`]
/// when the epoch permits, or from the domain's `Drop`.
pub struct Deferred {
    data: *mut (),
    free: unsafe fn(*mut ()),
    class: ReclaimClass,
}

// SAFETY: the deferred object is owned exclusively by the domain from
// `defer` onwards (caller contract on `from_box`: the pointer is unlinked
// and the payload is `Send`), so its destruction may run on any thread.
unsafe impl Send for Deferred {}

impl Deferred {
    /// Takes ownership of `ptr` (a `Box::into_raw` pointer) for deferred
    /// destruction via `Box::from_raw`.
    ///
    /// # Safety
    ///
    /// `ptr` must have come from `Box::<T>::into_raw`, must not be freed or
    /// used again by the caller, and must already be **unlinked**: no new
    /// reader may be able to reach it through the shared structure (readers
    /// that obtained it earlier are exactly what the epoch protocol covers).
    pub unsafe fn from_box<T: Send>(ptr: *mut T, class: ReclaimClass) -> Deferred {
        unsafe fn free_box<T>(data: *mut ()) {
            // SAFETY: `data` was produced by `Box::<T>::into_raw` in
            // `from_box` and this function runs exactly once per `Deferred`.
            drop(unsafe { Box::from_raw(data.cast::<T>()) });
        }
        Deferred {
            data: ptr.cast(),
            free: free_box::<T>,
            class,
        }
    }

    /// Runs the stored destructor.  Consumes the deferred object.
    ///
    /// # Safety
    ///
    /// Only the domain calls this, once per object, after the epoch rule (or
    /// exclusive `&mut` access at drop time) guarantees no reader can still
    /// hold the pointer.
    unsafe fn run(self) {
        // SAFETY: forwarded contract.
        unsafe { (self.free)(self.data) };
    }
}

/// Bit 0 of a slot state: the participant is pinned.
const PINNED: u64 = 1;

/// One participant slot: `(epoch << 1) | pinned`, plus an occupancy flag so
/// the advance scan skips unregistered slots.
struct Slot {
    state: AtomicU64,
    occupied: AtomicBool,
}

/// Outcome of one [`Domain::try_collect`] call.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Collect {
    /// Queue segments freed by this call.
    pub freed_segments: u64,
    /// Deque growth buffers freed by this call.
    pub freed_buffers: u64,
    /// `true` if this call advanced the global epoch.
    pub advanced: bool,
}

impl Collect {
    /// Total objects freed by this call.
    pub fn freed_total(&self) -> u64 {
        self.freed_segments + self.freed_buffers
    }
}

/// Deferred objects not yet free, grouped by retire epoch (ascending).
#[derive(Default)]
struct BagQueue {
    bags: Vec<(u64, Vec<Deferred>)>,
}

/// An epoch-reclamation domain: the global epoch, the participant slots and
/// the deferred-free bags.  See the [module docs](self) for the protocol.
///
/// Capacity is fixed at construction ([`Domain::new`]); the scheduler sizes
/// it as *workers + external-submitter pool*.  All methods take `&self`; the
/// domain is shared as an `Arc` between the structures that defer into it
/// and the threads that collect from it.
pub struct Domain {
    /// The global epoch.  Padded: every pin loads it, every advance CASes it.
    global: CachePadded<AtomicU64>,
    /// One cache line per participant so pin stores never false-share.
    slots: Box<[CachePadded<Slot>]>,
    /// Deferred objects awaiting their epoch.  Cold path (one retirement per
    /// segment / growth, not per task), so a mutex is fine here.
    bags: Mutex<BagQueue>,
    /// Deferred-but-not-yet-freed object count (cheap garbage check).
    pending: AtomicUsize,
    /// Lifetime totals, by class, for diagnostics.
    freed_segments: AtomicU64,
    freed_buffers: AtomicU64,
    /// Lifetime epoch advances.
    advances: AtomicU64,
}

impl std::fmt::Debug for Domain {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Domain")
            .field("global_epoch", &self.global_epoch())
            .field("capacity", &self.capacity())
            .field("registered", &self.registered())
            .field("pending", &self.pending())
            .finish()
    }
}

impl Domain {
    /// Creates a domain with room for `capacity` simultaneous participants.
    ///
    /// ```
    /// use teamsteal_util::epoch::Domain;
    ///
    /// let domain = Domain::new(3);
    /// assert_eq!(domain.capacity(), 3);
    /// assert_eq!(domain.registered(), 0);
    /// ```
    pub fn new(capacity: usize) -> Arc<Domain> {
        Arc::new(Domain {
            global: CachePadded::new(AtomicU64::new(0)),
            slots: (0..capacity.max(1))
                .map(|_| {
                    CachePadded::new(Slot {
                        state: AtomicU64::new(0),
                        occupied: AtomicBool::new(false),
                    })
                })
                .collect(),
            bags: Mutex::new(BagQueue::default()),
            pending: AtomicUsize::new(0),
            freed_segments: AtomicU64::new(0),
            freed_buffers: AtomicU64::new(0),
            advances: AtomicU64::new(0),
        })
    }

    /// Registers a participant, claiming a free slot.  Returns `None` when
    /// every slot is taken; the slot is released when the returned
    /// [`Participant`] is dropped.
    ///
    /// ```
    /// use teamsteal_util::epoch::Domain;
    ///
    /// let domain = Domain::new(1);
    /// let p = domain.register().expect("one slot free");
    /// assert!(domain.register().is_none(), "capacity exhausted");
    /// drop(p);
    /// assert!(domain.register().is_some(), "slot released on drop");
    /// ```
    pub fn register(self: &Arc<Self>) -> Option<Participant> {
        for (index, slot) in self.slots.iter().enumerate() {
            if slot.occupied.load(Ordering::Relaxed) {
                continue;
            }
            if slot
                .occupied
                .compare_exchange(false, true, Ordering::AcqRel, Ordering::Relaxed)
                .is_ok()
            {
                // Reset the state only *after* winning the claim: a losing
                // racer must never touch the slot, or it could wipe the
                // winner's PINNED bit and let the epoch advance past a
                // pinned reader.  No stale-pin hazard from the previous
                // tenant either: `Participant::drop` unpins before its
                // occupied release, which our Acquire CAS observed.
                slot.state.store(0, Ordering::Relaxed);
                return Some(Participant {
                    domain: Arc::clone(self),
                    index,
                    _not_sync: std::marker::PhantomData,
                });
            }
        }
        None
    }

    /// Number of participant slots.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Number of currently registered participants.
    pub fn registered(&self) -> usize {
        self.slots
            .iter()
            .filter(|s| s.occupied.load(Ordering::Relaxed))
            .count()
    }

    /// The current global epoch.
    pub fn global_epoch(&self) -> u64 {
        self.global.load(Ordering::Acquire)
    }

    /// Deferred objects not yet freed.
    pub fn pending(&self) -> usize {
        self.pending.load(Ordering::Relaxed)
    }

    /// Lifetime totals: (segments freed, buffers freed, epoch advances).
    pub fn totals(&self) -> (u64, u64, u64) {
        (
            self.freed_segments.load(Ordering::Relaxed),
            self.freed_buffers.load(Ordering::Relaxed),
            self.advances.load(Ordering::Relaxed),
        )
    }

    /// Hands ownership of an unlinked object to the domain for destruction
    /// once the epoch permits (see the [module docs](self)).  Callable from
    /// any thread; takes the (cold) bag mutex.
    pub fn defer(&self, deferred: Deferred) {
        // SeqCst: the epoch tag must be read *after* the unlink that made
        // the object unreachable (DESIGN.md §11, row D).
        fence(Ordering::SeqCst);
        let epoch = self.global.load(Ordering::SeqCst);
        let mut bags = self.bags.lock().expect("epoch bag mutex poisoned");
        match bags.bags.last_mut() {
            // The epoch can advance between our load above and taking the
            // lock, so the back bag may carry a *newer* tag than we read.
            // Merging into it is safe: a later tag only delays the free
            // (the e+2 rule is a lower bound, never an upper one), and it
            // keeps the bag queue sorted for the ripeness scan.
            Some((e, bag)) if *e >= epoch => bag.push(deferred),
            _ => bags.bags.push((epoch, vec![deferred])),
        }
        // Count while still holding the lock: a collector that drains this
        // bag does its matching `fetch_sub` after taking the same lock, so
        // the gauge can never go transiently negative (wrapping).
        self.pending.fetch_add(1, Ordering::Relaxed);
        drop(bags);
    }

    /// Tries to advance the global epoch: succeeds exactly when every
    /// *pinned* participant has observed the current value.
    fn try_advance(&self) -> bool {
        let global = self.global.load(Ordering::Relaxed);
        // Full fence before the scan: every pin store that happened before
        // this point is visible to the loads below (DESIGN.md §11, row C).
        fence(Ordering::SeqCst);
        for slot in self.slots.iter() {
            if !slot.occupied.load(Ordering::Acquire) {
                continue;
            }
            let state = slot.state.load(Ordering::Relaxed);
            if state & PINNED == PINNED && state >> 1 != global {
                return false;
            }
        }
        if self
            .global
            .compare_exchange(global, global + 1, Ordering::SeqCst, Ordering::Relaxed)
            .is_ok()
        {
            self.advances.fetch_add(1, Ordering::Relaxed);
            true
        } else {
            false
        }
    }

    /// Attempts one epoch advance, then frees every object whose retire
    /// epoch is at least two behind the global epoch.  Cheap when there is
    /// no garbage (one relaxed load).  Destructors run outside the bag lock.
    pub fn try_collect(&self) -> Collect {
        let mut outcome = Collect::default();
        if self.pending.load(Ordering::Relaxed) == 0 {
            return outcome;
        }
        outcome.advanced = self.try_advance();
        let global = self.global.load(Ordering::Acquire);
        let ripe: Vec<(u64, Vec<Deferred>)> = {
            let mut bags = self.bags.lock().expect("epoch bag mutex poisoned");
            let split = bags
                .bags
                .iter()
                .position(|(epoch, _)| epoch + 2 > global)
                .unwrap_or(bags.bags.len());
            bags.bags.drain(..split).collect()
        };
        for (_, bag) in ripe {
            self.pending.fetch_sub(bag.len(), Ordering::Relaxed);
            for deferred in bag {
                match deferred.class {
                    ReclaimClass::Segment => outcome.freed_segments += 1,
                    ReclaimClass::Buffer => outcome.freed_buffers += 1,
                }
                // SAFETY: retire epoch + 2 <= global means every participant
                // that could hold the pointer has repinned or unpinned since
                // (module docs); ownership came to us through `defer`.
                unsafe { deferred.run() };
            }
        }
        self.freed_segments
            .fetch_add(outcome.freed_segments, Ordering::Relaxed);
        self.freed_buffers
            .fetch_add(outcome.freed_buffers, Ordering::Relaxed);
        outcome
    }
}

impl Drop for Domain {
    fn drop(&mut self) {
        // `&mut self`: no participant handles remain (they hold `Arc`s), so
        // nobody can be reading the protected structures anymore.
        let bags = std::mem::take(&mut *self.bags.get_mut().expect("epoch bag mutex poisoned"));
        for (_, bag) in bags.bags {
            for deferred in bag {
                // SAFETY: exclusive access; each object freed exactly once.
                unsafe { deferred.run() };
            }
        }
    }
}

/// A registered participant of a [`Domain`]: the capability to pin the
/// current thread into the epoch protocol.
///
/// One participant must not be used from two threads at once — it is
/// `Send` but deliberately **not** `Sync`, which the compiler enforces:
///
/// ```compile_fail
/// fn assert_sync<T: Sync>() {}
/// assert_sync::<teamsteal_util::epoch::Participant>();
/// ```
///
/// The scheduler gives every worker its own participant and multiplexes
/// external submitters over a claimed-slot pool.  Dropping the participant
/// unpins it and releases its slot.
pub struct Participant {
    domain: Arc<Domain>,
    index: usize,
    /// `Cell<()>` is `Send + !Sync`, so this marker keeps the auto traits
    /// exactly where the protocol needs them: a `Participant` may *move*
    /// between threads (the external-submitter pool hands them around), but
    /// `&Participant` must never be shared — two threads interleaving
    /// pin/unpin stores on one slot would break the pinned-bit bookkeeping
    /// and could let the epoch advance past a reader.
    _not_sync: std::marker::PhantomData<std::cell::Cell<()>>,
}

impl std::fmt::Debug for Participant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Participant")
            .field("index", &self.index)
            .field("pinned", &self.is_pinned())
            .finish()
    }
}

impl Participant {
    #[inline]
    fn slot(&self) -> &Slot {
        &self.domain.slots[self.index]
    }

    /// The domain this participant belongs to.
    pub fn domain(&self) -> &Arc<Domain> {
        &self.domain
    }

    /// Pins (or re-pins) this participant to the current global epoch.
    ///
    /// A pin is a **quiescent point**: any pointer obtained from a protected
    /// structure under an earlier pin must not be used after this call.
    /// Cost: one load, one store, one full fence.
    #[inline]
    pub fn pin(&self) {
        let epoch = self.domain.global.load(Ordering::Relaxed);
        self.slot().state.store((epoch << 1) | PINNED, Ordering::Relaxed);
        // Full fence: the pin announcement must be ordered before every
        // subsequent protected load, and visible to the advance scan's
        // fence-then-load (DESIGN.md §11, rows A and C).
        fence(Ordering::SeqCst);
    }

    /// Unpins this participant.  Call before parking/sleeping so an idle
    /// thread never stalls epoch advancement; every protected pointer must
    /// be dead by then.
    #[inline]
    pub fn unpin(&self) {
        let state = self.slot().state.load(Ordering::Relaxed);
        // Release: protected loads made under the pin stay before it.
        self.slot().state.store(state & !PINNED, Ordering::Release);
    }

    /// `true` while pinned.
    #[inline]
    pub fn is_pinned(&self) -> bool {
        self.slot().state.load(Ordering::Relaxed) & PINNED == PINNED
    }

    /// Convenience forwarding of [`Domain::defer`].
    pub fn defer(&self, deferred: Deferred) {
        self.domain.defer(deferred);
    }
}

impl Drop for Participant {
    fn drop(&mut self) {
        self.unpin();
        // Release pairs with the Acquire claim in `register`, so the next
        // tenant's re-initialization of the state cannot be reordered ahead
        // of our unpin.
        self.slot().occupied.store(false, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::sync::atomic::AtomicUsize as StdAtomicUsize;

    /// A drop-counting token so tests can observe exactly-once destruction.
    struct Token<'a>(&'a StdAtomicUsize);
    impl Drop for Token<'_> {
        fn drop(&mut self) {
            self.0.fetch_add(1, Ordering::SeqCst);
        }
    }

    fn defer_token(domain: &Domain, drops: &'static StdAtomicUsize, class: ReclaimClass) {
        let ptr = Box::into_raw(Box::new(Token(drops)));
        // SAFETY: the box is owned and never published anywhere.
        domain.defer(unsafe { Deferred::from_box(ptr, class) });
    }

    #[test]
    fn participant_is_send() {
        fn assert_send<T: Send>() {}
        assert_send::<Participant>();
        // The matching !Sync guarantee is enforced by the compile_fail
        // doctest on `Participant`.
    }

    #[test]
    fn registration_respects_capacity_and_slot_reuse() {
        let domain = Domain::new(2);
        let a = domain.register().unwrap();
        let b = domain.register().unwrap();
        assert_eq!(domain.registered(), 2);
        assert!(domain.register().is_none());
        drop(a);
        assert_eq!(domain.registered(), 1);
        let c = domain.register().unwrap();
        assert!(domain.register().is_none());
        drop(b);
        drop(c);
        assert_eq!(domain.registered(), 0);
    }

    #[test]
    fn collect_frees_nothing_while_a_participant_pins_the_retire_epoch() {
        static DROPS: StdAtomicUsize = StdAtomicUsize::new(0);
        let domain = Domain::new(2);
        let reader = domain.register().unwrap();
        reader.pin();
        defer_token(&domain, &DROPS, ReclaimClass::Segment);
        // The reader never repins: the epoch cannot advance, nothing ages.
        for _ in 0..4 {
            let c = domain.try_collect();
            assert_eq!(c.freed_total(), 0);
        }
        assert_eq!(DROPS.load(Ordering::SeqCst), 0);
        assert_eq!(domain.pending(), 1);
        // The stalled collects already advanced the epoch once (the reader
        // was observed *at* the then-current epoch); after the reader's next
        // quiescent point the second advance ages the bag out and the token
        // is freed exactly once.
        reader.pin();
        let c = domain.try_collect();
        assert_eq!(c.freed_segments, 1);
        assert_eq!(DROPS.load(Ordering::SeqCst), 1);
        assert_eq!(domain.pending(), 0);
    }

    #[test]
    fn unpinned_participants_never_block_advancement() {
        static DROPS: StdAtomicUsize = StdAtomicUsize::new(0);
        let domain = Domain::new(3);
        let active = domain.register().unwrap();
        let sleeper = domain.register().unwrap();
        sleeper.pin();
        sleeper.unpin(); // parked: must not stall reclamation
        active.pin();
        defer_token(&domain, &DROPS, ReclaimClass::Buffer);
        active.pin();
        domain.try_collect();
        active.pin();
        let c = domain.try_collect();
        assert_eq!(c.freed_buffers, 1);
        assert_eq!(DROPS.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn collect_totals_accumulate_by_class() {
        static DROPS: StdAtomicUsize = StdAtomicUsize::new(0);
        let domain = Domain::new(1);
        let p = domain.register().unwrap();
        p.pin();
        defer_token(&domain, &DROPS, ReclaimClass::Segment);
        defer_token(&domain, &DROPS, ReclaimClass::Segment);
        defer_token(&domain, &DROPS, ReclaimClass::Buffer);
        for _ in 0..3 {
            p.pin();
            domain.try_collect();
        }
        let (segments, buffers, advances) = domain.totals();
        assert_eq!(segments, 2);
        assert_eq!(buffers, 1);
        assert!(advances >= 2);
        assert_eq!(DROPS.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn domain_drop_frees_remaining_garbage_exactly_once() {
        static DROPS: StdAtomicUsize = StdAtomicUsize::new(0);
        {
            let domain = Domain::new(1);
            let p = domain.register().unwrap();
            p.pin();
            for _ in 0..5 {
                defer_token(&domain, &DROPS, ReclaimClass::Segment);
            }
            // No collect: everything is still pending at drop time.
            drop(p);
        }
        assert_eq!(DROPS.load(Ordering::SeqCst), 5);
    }

    #[test]
    fn concurrent_pinned_readers_and_collector() {
        // Producers defer garbage while readers pin/unpin and one thread
        // collects; every token must be freed exactly once by the end.
        static DROPS: StdAtomicUsize = StdAtomicUsize::new(0);
        const READERS: usize = 3;
        const TOKENS: usize = 2_000;
        let domain = Domain::new(READERS + 1);
        let stop = Arc::new(AtomicBool::new(false));
        let readers: Vec<_> = (0..READERS)
            .map(|_| {
                let domain = Arc::clone(&domain);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    let p = domain.register().expect("reader slot");
                    while !stop.load(Ordering::Relaxed) {
                        p.pin();
                        std::hint::spin_loop();
                        p.unpin();
                    }
                })
            })
            .collect();
        let producer = domain.register().expect("producer slot");
        for _ in 0..TOKENS {
            producer.pin();
            defer_token(&domain, &DROPS, ReclaimClass::Segment);
            producer.pin();
            domain.try_collect();
        }
        stop.store(true, Ordering::Relaxed);
        for r in readers {
            r.join().unwrap();
        }
        drop(producer);
        // Whatever is still pending is freed at domain drop.
        let freed_live = domain.totals().0;
        let pending = domain.pending() as u64;
        assert_eq!(freed_live + pending, TOKENS as u64);
        drop(domain);
        assert_eq!(DROPS.load(Ordering::SeqCst), TOKENS);
    }

    proptest! {
        /// Random pin/unpin/defer/collect sequences: every deferred object
        /// is freed exactly once, never while a participant that was pinned
        /// at (or before) its retire epoch has not passed a quiescent point,
        /// and no participant is left pinned after its handle drops.
        #[test]
        fn protocol_invariants_hold(ops in proptest::collection::vec(0u8..6, 1..200)) {
            static DROPS: StdAtomicUsize = StdAtomicUsize::new(0);
            let before = DROPS.load(Ordering::SeqCst);
            let mut deferred_count = 0u64;
            {
                let domain = Domain::new(2);
                let a = domain.register().unwrap();
                let b = domain.register().unwrap();
                for op in ops {
                    match op {
                        0 => a.pin(),
                        1 => b.pin(),
                        2 => a.unpin(),
                        3 => b.unpin(),
                        4 => {
                            defer_token(&domain, &DROPS, ReclaimClass::Segment);
                            deferred_count += 1;
                        }
                        _ => {
                            let c = domain.try_collect();
                            // Free counts can never exceed what was deferred.
                            prop_assert!(c.freed_total() <= deferred_count);
                        }
                    }
                    // The pending gauge always matches deferred - freed.
                    prop_assert_eq!(
                        domain.pending() as u64 + domain.totals().0,
                        deferred_count
                    );
                }
                drop(a);
                drop(b);
                prop_assert_eq!(domain.registered(), 0, "no participant left pinned/registered");
            }
            // Domain drop frees the rest: exactly-once overall.
            prop_assert_eq!(DROPS.load(Ordering::SeqCst) as u64 - before as u64, deferred_count);
        }
    }
}
