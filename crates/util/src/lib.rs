//! Low-level utilities shared by all `teamsteal` crates.
//!
//! This crate contains the small, dependency-free building blocks the
//! scheduler is made of:
//!
//! * [`CachePadded`] — re-exported cache-line padding wrapper used to keep
//!   per-worker hot words on separate cache lines,
//! * [`Backoff`] — the exponential backoff used everywhere the paper calls
//!   `backoff()` (Section 4: "exponential backoff, starting at 1 microsecond,
//!   and going up to 10 milliseconds"),
//! * [`rng`] — small, fast, deterministic PRNGs (SplitMix64 / Xoshiro256++)
//!   used for randomized victim selection (the paper's *Randfork* baseline and
//!   Refinement 4) and for the benchmark input generators,
//! * [`bits`] — the bit manipulation helpers the paper relies on
//!   (most-significant-bit / `bsrl`, power-of-two rounding, partner id
//!   bit-flipping) plus the occupancy-bitmask helpers of the scheduler's
//!   queue scan,
//! * [`slab`] — a recycling slab allocator with an intrusive lock-free free
//!   list, used for the per-worker task-node arenas,
//! * [`epoch`] — epoch-based memory reclamation for the scheduler's
//!   lock-free queues (injection-queue segments, deque growth buffers), so a
//!   long-lived scheduler has bounded memory instead of leak-until-drop,
//! * [`eventcount`] — the futex-style blocking primitive behind the
//!   scheduler's event-driven parking (prepare → recheck → park, targeted
//!   per-worker wakes), replacing timed sleep-polling on every idle and
//!   coordination path,
//! * [`timing`] — monotonic timers and simple statistics used by the
//!   benchmark harness.

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod backoff;
pub mod bits;
pub mod epoch;
pub mod eventcount;
pub mod rng;
pub mod sendptr;
pub mod slab;
pub mod sync;
pub mod timing;

pub use backoff::Backoff;
pub use crossbeam_utils::CachePadded;
pub use sendptr::{SendConstPtr, SendMutPtr};
