//! Bit manipulation helpers used by the scheduler.
//!
//! The paper relies on three bit-level operations:
//!
//! * flipping bit `ℓ` of a thread id to find the deterministic partner at
//!   level `ℓ` (Section 3, `I ⊕ 2^ℓ`),
//! * retrieving the most significant set bit of the team size `t` to compute
//!   team boundaries and local ids (Section 3.1; implemented with `bsrl` in
//!   the authors' prototype),
//! * rounding thread requirements up to the next power of two
//!   (Refinement 2).
//!
//! All helpers are branch-light wrappers over the corresponding hardware
//! instructions exposed by `u64::leading_zeros` / `ilog2`.

/// Returns the index of the most significant set bit of `x` (0-based).
///
/// Equivalent to the `bsrl` instruction the paper's prototype uses, or the
/// BSD `fls(x) - 1`.
///
/// # Panics
///
/// Panics if `x == 0` (there is no set bit).
///
/// ```
/// use teamsteal_util::bits::msb_index;
/// assert_eq!(msb_index(1), 0);
/// assert_eq!(msb_index(2), 1);
/// assert_eq!(msb_index(3), 1);
/// assert_eq!(msb_index(8), 3);
/// ```
#[inline]
pub fn msb_index(x: usize) -> u32 {
    assert!(x != 0, "msb_index of zero is undefined");
    usize::BITS - 1 - x.leading_zeros()
}

/// Returns `true` if `x` is a power of two (and non-zero).
#[inline]
pub fn is_pow2(x: usize) -> bool {
    x != 0 && x & (x - 1) == 0
}

/// Rounds `x` up to the next power of two.  `0` is rounded to `1`.
///
/// ```
/// use teamsteal_util::bits::next_pow2;
/// assert_eq!(next_pow2(0), 1);
/// assert_eq!(next_pow2(1), 1);
/// assert_eq!(next_pow2(3), 4);
/// assert_eq!(next_pow2(4), 4);
/// assert_eq!(next_pow2(5), 8);
/// ```
#[inline]
pub fn next_pow2(x: usize) -> usize {
    x.max(1).next_power_of_two()
}

/// Rounds `x` down to the previous power of two.  `0` stays `0`.
#[inline]
pub fn prev_pow2(x: usize) -> usize {
    if x == 0 {
        0
    } else {
        1 << msb_index(x)
    }
}

/// Number of levels in the steal hierarchy for `p` threads: `⌈log₂ p⌉`.
///
/// A single thread has zero levels (it has no partners to steal from); two
/// threads have one level, and so on.  This is the number of partners each
/// thread visits per steal round (the paper's `log p`).
///
/// ```
/// use teamsteal_util::bits::levels_for;
/// assert_eq!(levels_for(1), 0);
/// assert_eq!(levels_for(2), 1);
/// assert_eq!(levels_for(5), 3);
/// assert_eq!(levels_for(8), 3);
/// assert_eq!(levels_for(9), 4);
/// ```
#[inline]
pub fn levels_for(p: usize) -> usize {
    assert!(p > 0, "at least one thread is required");
    (usize::BITS - (p - 1).leading_zeros()) as usize
}

/// The deterministic partner of thread `id` at level `level` when the number
/// of threads is a power of two: `id ⊕ 2^level`.
#[inline]
pub fn flip_partner(id: usize, level: usize) -> usize {
    id ^ (1usize << level)
}

/// The leftmost (smallest) thread id of the team of size `team_size`
/// (a power of two) that contains thread `id`: clear all bits of `id` below
/// the most significant bit of `team_size` (Section 3.1).
///
/// ```
/// use teamsteal_util::bits::team_base;
/// assert_eq!(team_base(5, 4), 4);   // team {4,5,6,7}
/// assert_eq!(team_base(5, 2), 4);   // team {4,5}
/// assert_eq!(team_base(5, 1), 5);   // singleton team
/// assert_eq!(team_base(13, 8), 8);  // team {8..=15}
/// ```
#[inline]
pub fn team_base(id: usize, team_size: usize) -> usize {
    debug_assert!(is_pow2(team_size), "team sizes are powers of two");
    id & !(team_size - 1)
}

/// The rightmost (largest) thread id of the power-of-two team of size
/// `team_size` containing `id`: set all bits below the msb of `team_size`.
#[inline]
pub fn team_last(id: usize, team_size: usize) -> usize {
    debug_assert!(is_pow2(team_size));
    id | (team_size - 1)
}

/// Local id of `id` within its power-of-two team of size `team_size`
/// (Section 3.1: subtract the leftmost thread id).
#[inline]
pub fn local_id(id: usize, team_size: usize) -> usize {
    id - team_base(id, team_size)
}

/// Returns `true` if threads `a` and `b` belong to the same power-of-two team
/// of size `team_size` — the paper's `overlap()` predicate (Algorithm 9).
///
/// ```
/// use teamsteal_util::bits::overlap;
/// assert!(overlap(4, 7, 4));
/// assert!(!overlap(3, 4, 4));
/// assert!(overlap(0, 0, 1));
/// assert!(!overlap(0, 1, 1));
/// ```
#[inline]
pub fn overlap(a: usize, b: usize, team_size: usize) -> bool {
    team_base(a, team_size) == team_base(b, team_size)
}

/// Index of the lowest set bit of `mask`, if any.
///
/// The scheduler keeps a per-worker *occupancy bitmask* with one bit per
/// queue level; finding the lowest non-empty level is then one
/// `trailing_zeros` instead of a scan over every deque's `top`/`bottom`
/// pair.
///
/// ```
/// use teamsteal_util::bits::lowest_set;
/// assert_eq!(lowest_set(0), None);
/// assert_eq!(lowest_set(0b1000), Some(3));
/// assert_eq!(lowest_set(0b1010), Some(1));
/// ```
#[inline]
pub fn lowest_set(mask: usize) -> Option<usize> {
    if mask == 0 {
        None
    } else {
        Some(mask.trailing_zeros() as usize)
    }
}

/// `mask` with bit `bit` cleared.
///
/// ```
/// use teamsteal_util::bits::clear_bit;
/// assert_eq!(clear_bit(0b1011, 1), 0b1001);
/// assert_eq!(clear_bit(0b1001, 2), 0b1001);
/// ```
#[inline]
pub fn clear_bit(mask: usize, bit: usize) -> usize {
    mask & !(1usize << bit)
}

/// `true` if bit `bit` of `mask` is set.
#[inline]
pub fn bit_is_set(mask: usize, bit: usize) -> bool {
    mask & (1usize << bit) != 0
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn msb_matches_ilog2() {
        for x in 1usize..10_000 {
            assert_eq!(msb_index(x), x.ilog2());
        }
    }

    #[test]
    #[should_panic]
    fn msb_of_zero_panics() {
        let _ = msb_index(0);
    }

    #[test]
    fn pow2_helpers() {
        assert!(is_pow2(1));
        assert!(is_pow2(64));
        assert!(!is_pow2(0));
        assert!(!is_pow2(6));
        assert_eq!(prev_pow2(0), 0);
        assert_eq!(prev_pow2(1), 1);
        assert_eq!(prev_pow2(7), 4);
        assert_eq!(prev_pow2(8), 8);
    }

    #[test]
    fn levels_examples_from_paper() {
        // 8 hardware threads => log p = 3 partners.
        assert_eq!(levels_for(8), 3);
        // 128 hardware threads (Sun T2+) => 7 partners.
        assert_eq!(levels_for(128), 7);
    }

    #[test]
    fn partner_is_involution() {
        for p_log in 0..6usize {
            let p = 1usize << p_log;
            for id in 0..p {
                for level in 0..p_log {
                    let partner = flip_partner(id, level);
                    assert!(partner < p);
                    assert_eq!(flip_partner(partner, level), id);
                    assert_ne!(partner, id);
                }
            }
        }
    }

    #[test]
    fn team_boundaries_paper_shape() {
        // Teams consist of thread ids kr, kr+1, ..., (k+1)r - 1.
        let p = 16usize;
        for r_log in 0..=4usize {
            let r = 1usize << r_log;
            for id in 0..p {
                let base = team_base(id, r);
                let last = team_last(id, r);
                assert_eq!(base % r, 0);
                assert_eq!(last, base + r - 1);
                assert!(base <= id && id <= last);
                assert_eq!(local_id(id, r), id - base);
            }
        }
    }

    #[test]
    fn occupancy_mask_helpers() {
        let mut mask = 0usize;
        assert_eq!(lowest_set(mask), None);
        mask |= 1 << 5;
        mask |= 1 << 2;
        assert!(bit_is_set(mask, 2) && bit_is_set(mask, 5));
        assert!(!bit_is_set(mask, 3));
        assert_eq!(lowest_set(mask), Some(2));
        mask = clear_bit(mask, 2);
        assert_eq!(lowest_set(mask), Some(5));
        mask = clear_bit(mask, 5);
        assert_eq!(lowest_set(mask), None);
    }

    proptest! {
        #[test]
        fn next_pow2_is_minimal(x in 0usize..=(1 << 40)) {
            let n = next_pow2(x);
            prop_assert!(is_pow2(n));
            prop_assert!(n >= x.max(1));
            if n > 1 {
                prop_assert!(n / 2 < x.max(1));
            }
        }

        #[test]
        fn overlap_is_equivalence_within_team(
            a in 0usize..1024, b in 0usize..1024, r_log in 0usize..10
        ) {
            let r = 1usize << r_log;
            // overlap is symmetric and reflexive.
            prop_assert_eq!(overlap(a, b, r), overlap(b, a, r));
            prop_assert!(overlap(a, a, r));
            // Two ids overlap iff they share the same team base.
            prop_assert_eq!(overlap(a, b, r), a / r == b / r);
        }

        #[test]
        fn local_ids_are_a_bijection(r_log in 0usize..8, k in 0usize..64) {
            let r = 1usize << r_log;
            let base = k * r;
            let mut seen = vec![false; r];
            for id in base..base + r {
                let l = local_id(id, r);
                prop_assert!(l < r);
                prop_assert!(!seen[l]);
                seen[l] = true;
            }
            prop_assert!(seen.into_iter().all(|s| s));
        }
    }
}
