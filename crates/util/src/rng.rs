//! Small, fast, deterministic pseudo-random number generators.
//!
//! The scheduler needs randomness in two places:
//!
//! * the *Randfork* baseline (classic work-stealing with uniformly random
//!   victim selection, Section 2 / Section 5), and
//! * Refinement 4, where the partner at level `ℓ` is chosen uniformly from
//!   the `2^ℓ` candidates below that level.
//!
//! The benchmark input generators (crate `teamsteal-data`) also need a
//! reproducible stream of pseudo-random values so that all sorting variants
//! are measured on byte-identical inputs.
//!
//! We implement SplitMix64 (for seeding) and Xoshiro256++ (for the main
//! stream).  Both are tiny, allocation-free and fully deterministic given a
//! seed, which keeps experiments reproducible without pulling a large
//! dependency into the hot scheduling path.

/// SplitMix64 generator.
///
/// Primarily used to expand a single `u64` seed into the larger state of
/// [`Xoshiro256`], and for cheap per-worker seeds derived from the worker id.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a new generator from a seed.
    #[inline]
    pub const fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Returns the next 64-bit value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Xoshiro256++ generator: the workhorse PRNG.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    /// Creates a generator, expanding `seed` with SplitMix64 as recommended
    /// by the xoshiro authors.
    pub fn new(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = sm.next_u64();
        }
        // An all-zero state would be a fixed point; SplitMix64 cannot produce
        // four consecutive zeros, but be defensive anyway.
        if s.iter().all(|&x| x == 0) {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        Xoshiro256 { s }
    }

    /// Returns the next 64-bit value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = (self.s[0].wrapping_add(self.s[3]))
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Returns the next 32-bit value (upper half of the 64-bit output).
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Returns a uniformly distributed value in `[0, bound)` using Lemire's
    /// multiply-shift rejection method.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    #[inline]
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Lemire's nearly-divisionless method.
        let mut x = self.next_u64();
        let mut m = (x as u128) * (bound as u128);
        let mut lo = m as u64;
        if lo < bound {
            let threshold = bound.wrapping_neg() % bound;
            while lo < threshold {
                x = self.next_u64();
                m = (x as u128) * (bound as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Returns a uniformly distributed `usize` in `[0, bound)`.
    #[inline]
    pub fn next_usize_below(&mut self, bound: usize) -> usize {
        self.next_below(bound as u64) as usize
    }

    /// Returns a uniformly distributed `f64` in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        let n = slice.len();
        if n < 2 {
            return;
        }
        for i in (1..n).rev() {
            let j = self.next_usize_below(i + 1);
            slice.swap(i, j);
        }
    }
}

/// A per-worker RNG seeded from the worker id and a global seed, so that runs
/// are reproducible while different workers still draw independent streams.
pub fn worker_rng(global_seed: u64, worker_id: usize) -> Xoshiro256 {
    let mut sm = SplitMix64::new(global_seed ^ 0xD6E8_FEB8_6659_FD93);
    let base = sm.next_u64();
    Xoshiro256::new(base.wrapping_add((worker_id as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn splitmix_is_deterministic_and_non_degenerate() {
        let mut a = SplitMix64::new(1234567);
        let mut b = SplitMix64::new(1234567);
        let va: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        assert_eq!(va, vb);
        // Outputs must not repeat over a short window and must not be all zero.
        let mut sorted = va.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), va.len());
        assert!(va.iter().any(|&x| x != 0));
    }

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = Xoshiro256::new(42);
        let mut b = Xoshiro256::new(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Xoshiro256::new(1);
        let mut b = Xoshiro256::new(2);
        let equal = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(equal < 4, "streams from different seeds should differ");
    }

    #[test]
    fn worker_rngs_are_independent() {
        let mut a = worker_rng(7, 0);
        let mut b = worker_rng(7, 1);
        let equal = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(equal < 4);
    }

    #[test]
    fn next_below_covers_all_residues() {
        let mut rng = Xoshiro256::new(99);
        let mut seen = [false; 7];
        for _ in 0..10_000 {
            seen[rng.next_below(7) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    #[should_panic]
    fn next_below_zero_panics() {
        let mut rng = Xoshiro256::new(0);
        let _ = rng.next_below(0);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = Xoshiro256::new(3);
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Xoshiro256::new(11);
        let mut v: Vec<u32> = (0..257).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..257).collect::<Vec<_>>());
        assert_ne!(v, sorted, "a 257-element shuffle should not be identity");
    }

    proptest! {
        #[test]
        fn next_below_respects_bound(seed in any::<u64>(), bound in 1u64..1_000_000) {
            let mut rng = Xoshiro256::new(seed);
            for _ in 0..32 {
                prop_assert!(rng.next_below(bound) < bound);
            }
        }

        #[test]
        fn rough_uniformity(seed in any::<u64>()) {
            // chi-square-ish sanity check over 16 buckets.
            let mut rng = Xoshiro256::new(seed);
            let mut counts = [0u32; 16];
            let n = 16_000;
            for _ in 0..n {
                counts[rng.next_below(16) as usize] += 1;
            }
            let expected = n as f64 / 16.0;
            for &c in &counts {
                // Each bucket within 25% of expectation (very loose; catches
                // catastrophic bias only).
                prop_assert!((c as f64 - expected).abs() < expected * 0.25);
            }
        }
    }
}
