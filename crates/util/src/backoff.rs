//! Exponential backoff.
//!
//! The paper (Section 4, "Backoff intervals") uses exponential backoff
//! starting at 1 µs and capped at 10 ms whenever a steal attempt, a CAS on a
//! registration structure, or team coordination makes no progress.  This
//! module implements that policy with a cheap spinning phase before the timed
//! sleeping phase so that short contention windows never reach the kernel.

use crate::sync::thread as shim_thread;
use crate::sync::time::Instant;
use std::time::Duration;

/// Initial sleep interval of the timed phase (the paper's 1 µs).
pub const INITIAL_SLEEP: Duration = Duration::from_micros(1);

/// Maximum sleep interval of the timed phase (the paper's 10 ms).
pub const MAX_SLEEP: Duration = Duration::from_millis(10);

/// Number of exponential spin rounds executed before the backoff starts
/// yielding / sleeping.
const SPIN_LIMIT: u32 = 6;

/// Number of yield rounds executed after spinning and before sleeping.
const YIELD_LIMIT: u32 = 10;

/// Exponential backoff helper.
///
/// A `Backoff` value tracks how many unproductive rounds the caller has been
/// through and escalates from busy spinning (`core::hint::spin_loop`), to
/// `std::thread::yield_now`, to timed sleeps that double from
/// [`INITIAL_SLEEP`] up to [`MAX_SLEEP`].
///
/// ```
/// use teamsteal_util::Backoff;
///
/// let mut backoff = Backoff::new();
/// for _ in 0..4 {
///     // ... some CAS failed / nothing to steal ...
///     backoff.wait();
/// }
/// assert!(backoff.rounds() >= 4);
/// backoff.reset();
/// assert_eq!(backoff.rounds(), 0);
/// ```
#[derive(Debug, Clone)]
pub struct Backoff {
    rounds: u32,
    sleep: Duration,
    /// Wall-clock start of the current unproductive streak, recorded on the
    /// first wait round and cleared by [`reset`](Backoff::reset).  Lets
    /// event-driven callers (which accumulate *rounds* only on wakes, not on
    /// a fixed poll cadence) express liveness backstops in elapsed time.
    since: Option<Instant>,
}

impl Default for Backoff {
    fn default() -> Self {
        Self::new()
    }
}

impl Backoff {
    /// Creates a fresh backoff in the spinning phase.
    #[inline]
    pub const fn new() -> Self {
        Backoff {
            rounds: 0,
            sleep: INITIAL_SLEEP,
            since: None,
        }
    }

    /// Number of unproductive rounds recorded since the last [`reset`].
    ///
    /// [`reset`]: Backoff::reset
    #[inline]
    pub fn rounds(&self) -> u32 {
        self.rounds
    }

    /// Returns `true` once the backoff has escalated past the pure-spinning
    /// phase.  Callers that park on OS primitives can use this as the signal
    /// to do so.
    #[inline]
    pub fn is_yielding(&self) -> bool {
        self.rounds > SPIN_LIMIT
    }

    /// Returns `true` once the backoff has reached the timed sleeping phase
    /// with the maximum interval, i.e. the caller has been unproductive for a
    /// long time.
    #[inline]
    pub fn is_saturated(&self) -> bool {
        self.rounds > SPIN_LIMIT + YIELD_LIMIT && self.sleep >= MAX_SLEEP
    }

    /// Returns `true` once `prefix_rounds` unproductive rounds have passed:
    /// the caller has exhausted its spin/yield prefix and should park on an
    /// OS primitive (the scheduler's eventcount) instead of burning more
    /// rounds.
    #[inline]
    pub fn should_park(&self, prefix_rounds: u32) -> bool {
        self.rounds >= prefix_rounds
    }

    /// How long this backoff has been unproductive (wall clock since the
    /// first wait round after the last [`reset`](Backoff::reset)).  Zero
    /// before the first round.
    pub fn unproductive_for(&self) -> Duration {
        self.since.map(|s| s.elapsed()).unwrap_or(Duration::ZERO)
    }

    /// Records an unproductive round without spinning, yielding or sleeping.
    /// Used by callers whose delay comes from elsewhere (an eventcount park)
    /// but who still track escalation and streak time through the backoff.
    #[inline]
    pub fn note_round(&mut self) {
        self.touch();
        self.rounds = self.rounds.saturating_add(1);
    }

    #[inline]
    fn touch(&mut self) {
        if self.since.is_none() {
            self.since = Some(Instant::now());
        }
    }

    /// Resets the backoff to the spinning phase.  Call this whenever the
    /// caller makes progress (a successful steal, a successful CAS, a task
    /// executed).
    #[inline]
    pub fn reset(&mut self) {
        self.rounds = 0;
        self.sleep = INITIAL_SLEEP;
        self.since = None;
    }

    /// Performs one backoff round: spins, yields or sleeps depending on how
    /// many unproductive rounds have already happened.
    pub fn wait(&mut self) {
        self.touch();
        if self.rounds <= SPIN_LIMIT {
            for _ in 0..(1u32 << self.rounds) {
                core::hint::spin_loop();
            }
        } else if self.rounds <= SPIN_LIMIT + YIELD_LIMIT {
            shim_thread::yield_now();
        } else {
            shim_thread::sleep(self.sleep);
            self.sleep = (self.sleep * 2).min(MAX_SLEEP);
        }
        self.rounds = self.rounds.saturating_add(1);
    }

    /// Like [`wait`](Backoff::wait), but the timed sleeping phase is capped at
    /// `cap` instead of [`MAX_SLEEP`].  Used where wake-up latency matters
    /// more than CPU frugality (e.g. the external-submitter pin-slot wait).
    ///
    /// A cap below [`INITIAL_SLEEP`] degrades the sleeping phase to
    /// `yield_now` instead of `thread::sleep`: sleeping for a sub-microsecond
    /// (or zero) duration returns immediately on most platforms, which would
    /// turn the "sleeping" phase into an unbounded busy-spin that never
    /// cedes the CPU.
    pub fn wait_capped(&mut self, cap: Duration) {
        self.touch();
        if self.rounds <= SPIN_LIMIT {
            for _ in 0..(1u32 << self.rounds) {
                core::hint::spin_loop();
            }
        } else if self.rounds <= SPIN_LIMIT + YIELD_LIMIT {
            shim_thread::yield_now();
        } else {
            match self.capped_interval(cap) {
                Some(interval) => {
                    shim_thread::sleep(interval);
                    self.sleep = (self.sleep * 2).min(MAX_SLEEP).min(cap.max(INITIAL_SLEEP));
                }
                None => shim_thread::yield_now(),
            }
        }
        self.rounds = self.rounds.saturating_add(1);
    }

    /// The sleep interval one `wait_capped(cap)` round would use in the
    /// sleeping phase, or `None` when the cap is too small to sleep
    /// meaningfully and the round must yield instead.
    fn capped_interval(&self, cap: Duration) -> Option<Duration> {
        let interval = self.sleep.min(cap);
        (interval >= INITIAL_SLEEP).then_some(interval)
    }

    /// Performs a single *light* backoff round that never sleeps.  Used on
    /// paths where the caller must stay responsive (e.g. a coordinator
    /// waiting for the start countdown `G` of an already published task).
    pub fn spin_light(&mut self) {
        self.touch();
        if self.rounds <= SPIN_LIMIT {
            for _ in 0..(1u32 << self.rounds) {
                core::hint::spin_loop();
            }
        } else {
            shim_thread::yield_now();
        }
        self.rounds = self.rounds.saturating_add(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_in_spin_phase() {
        let b = Backoff::new();
        assert_eq!(b.rounds(), 0);
        assert!(!b.is_yielding());
        assert!(!b.is_saturated());
    }

    #[test]
    fn escalates_to_yield_phase() {
        let mut b = Backoff::new();
        for _ in 0..=SPIN_LIMIT {
            b.wait();
        }
        assert!(b.is_yielding());
    }

    #[test]
    fn reset_returns_to_spin_phase() {
        let mut b = Backoff::new();
        for _ in 0..20 {
            b.spin_light();
        }
        assert!(b.is_yielding());
        b.reset();
        assert!(!b.is_yielding());
        assert_eq!(b.rounds(), 0);
    }

    #[test]
    fn sleep_interval_is_capped() {
        let mut b = Backoff::new();
        // Drive the internal state far past saturation without actually
        // sleeping (we manipulate rounds via spin_light, then check the cap
        // logic by forcing many doublings).
        b.rounds = SPIN_LIMIT + YIELD_LIMIT + 1;
        b.sleep = MAX_SLEEP;
        assert!(b.is_saturated());
        // Doubling past the cap must not exceed MAX_SLEEP.
        let doubled = (b.sleep * 2).min(MAX_SLEEP);
        assert_eq!(doubled, MAX_SLEEP);
    }

    #[test]
    fn rounds_saturate_instead_of_overflowing() {
        let mut b = Backoff::new();
        b.rounds = u32::MAX;
        b.spin_light();
        assert_eq!(b.rounds(), u32::MAX);
    }

    #[test]
    fn sub_microsecond_caps_yield_instead_of_busy_spinning() {
        let mut b = Backoff::new();
        // Drive the backoff into the sleeping phase.
        b.rounds = SPIN_LIMIT + YIELD_LIMIT + 1;
        // A cap below INITIAL_SLEEP (including zero) must not produce a
        // sleep interval: thread::sleep would return immediately and the
        // caller would busy-spin without ever ceding the CPU.
        assert_eq!(b.capped_interval(Duration::ZERO), None);
        assert_eq!(b.capped_interval(Duration::from_nanos(500)), None);
        // At or above INITIAL_SLEEP the sleep interval is used, capped.
        assert_eq!(b.capped_interval(INITIAL_SLEEP), Some(INITIAL_SLEEP));
        b.sleep = Duration::from_micros(64);
        assert_eq!(
            b.capped_interval(Duration::from_micros(8)),
            Some(Duration::from_micros(8))
        );
        // And the degraded rounds still escalate (terminate) behaviourally.
        let rounds_before = b.rounds();
        b.wait_capped(Duration::ZERO);
        b.wait_capped(Duration::from_nanos(1));
        assert_eq!(b.rounds(), rounds_before + 2);
    }

    #[test]
    fn should_park_after_the_configured_prefix() {
        let mut b = Backoff::new();
        assert!(!b.should_park(4));
        for _ in 0..4 {
            b.note_round();
        }
        assert!(b.should_park(4));
        b.reset();
        assert!(!b.should_park(4));
    }

    #[test]
    fn unproductive_streak_tracks_time_and_resets() {
        let mut b = Backoff::new();
        assert_eq!(b.unproductive_for(), Duration::ZERO);
        b.note_round();
        shim_thread::sleep(Duration::from_millis(5));
        assert!(b.unproductive_for() >= Duration::from_millis(4));
        b.reset();
        assert_eq!(b.unproductive_for(), Duration::ZERO);
    }
}
