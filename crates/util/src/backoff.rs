//! Exponential backoff.
//!
//! The paper (Section 4, "Backoff intervals") uses exponential backoff
//! starting at 1 µs and capped at 10 ms whenever a steal attempt, a CAS on a
//! registration structure, or team coordination makes no progress.  This
//! module implements that policy with a cheap spinning phase before the timed
//! sleeping phase so that short contention windows never reach the kernel.

use std::time::Duration;

/// Initial sleep interval of the timed phase (the paper's 1 µs).
pub const INITIAL_SLEEP: Duration = Duration::from_micros(1);

/// Maximum sleep interval of the timed phase (the paper's 10 ms).
pub const MAX_SLEEP: Duration = Duration::from_millis(10);

/// Number of exponential spin rounds executed before the backoff starts
/// yielding / sleeping.
const SPIN_LIMIT: u32 = 6;

/// Number of yield rounds executed after spinning and before sleeping.
const YIELD_LIMIT: u32 = 10;

/// Exponential backoff helper.
///
/// A `Backoff` value tracks how many unproductive rounds the caller has been
/// through and escalates from busy spinning (`core::hint::spin_loop`), to
/// `std::thread::yield_now`, to timed sleeps that double from
/// [`INITIAL_SLEEP`] up to [`MAX_SLEEP`].
///
/// ```
/// use teamsteal_util::Backoff;
///
/// let mut backoff = Backoff::new();
/// for _ in 0..4 {
///     // ... some CAS failed / nothing to steal ...
///     backoff.wait();
/// }
/// assert!(backoff.rounds() >= 4);
/// backoff.reset();
/// assert_eq!(backoff.rounds(), 0);
/// ```
#[derive(Debug, Clone)]
pub struct Backoff {
    rounds: u32,
    sleep: Duration,
}

impl Default for Backoff {
    fn default() -> Self {
        Self::new()
    }
}

impl Backoff {
    /// Creates a fresh backoff in the spinning phase.
    #[inline]
    pub const fn new() -> Self {
        Backoff {
            rounds: 0,
            sleep: INITIAL_SLEEP,
        }
    }

    /// Number of unproductive rounds recorded since the last [`reset`].
    ///
    /// [`reset`]: Backoff::reset
    #[inline]
    pub fn rounds(&self) -> u32 {
        self.rounds
    }

    /// Returns `true` once the backoff has escalated past the pure-spinning
    /// phase.  Callers that park on OS primitives can use this as the signal
    /// to do so.
    #[inline]
    pub fn is_yielding(&self) -> bool {
        self.rounds > SPIN_LIMIT
    }

    /// Returns `true` once the backoff has reached the timed sleeping phase
    /// with the maximum interval, i.e. the caller has been unproductive for a
    /// long time.
    #[inline]
    pub fn is_saturated(&self) -> bool {
        self.rounds > SPIN_LIMIT + YIELD_LIMIT && self.sleep >= MAX_SLEEP
    }

    /// Resets the backoff to the spinning phase.  Call this whenever the
    /// caller makes progress (a successful steal, a successful CAS, a task
    /// executed).
    #[inline]
    pub fn reset(&mut self) {
        self.rounds = 0;
        self.sleep = INITIAL_SLEEP;
    }

    /// Performs one backoff round: spins, yields or sleeps depending on how
    /// many unproductive rounds have already happened.
    pub fn wait(&mut self) {
        if self.rounds <= SPIN_LIMIT {
            for _ in 0..(1u32 << self.rounds) {
                core::hint::spin_loop();
            }
        } else if self.rounds <= SPIN_LIMIT + YIELD_LIMIT {
            std::thread::yield_now();
        } else {
            std::thread::sleep(self.sleep);
            self.sleep = (self.sleep * 2).min(MAX_SLEEP);
        }
        self.rounds = self.rounds.saturating_add(1);
    }

    /// Like [`wait`](Backoff::wait), but the timed sleeping phase is capped at
    /// `cap` instead of [`MAX_SLEEP`].  Used for idle workers and team-member
    /// polling, where wake-up latency matters more than CPU frugality.
    pub fn wait_capped(&mut self, cap: Duration) {
        if self.rounds <= SPIN_LIMIT {
            for _ in 0..(1u32 << self.rounds) {
                core::hint::spin_loop();
            }
        } else if self.rounds <= SPIN_LIMIT + YIELD_LIMIT {
            std::thread::yield_now();
        } else {
            std::thread::sleep(self.sleep.min(cap));
            self.sleep = (self.sleep * 2).min(MAX_SLEEP).min(cap.max(INITIAL_SLEEP));
        }
        self.rounds = self.rounds.saturating_add(1);
    }

    /// Performs a single *light* backoff round that never sleeps.  Used on
    /// paths where the caller must stay responsive (e.g. a coordinator
    /// waiting for the start countdown `G` of an already published task).
    pub fn spin_light(&mut self) {
        if self.rounds <= SPIN_LIMIT {
            for _ in 0..(1u32 << self.rounds) {
                core::hint::spin_loop();
            }
        } else {
            std::thread::yield_now();
        }
        self.rounds = self.rounds.saturating_add(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_in_spin_phase() {
        let b = Backoff::new();
        assert_eq!(b.rounds(), 0);
        assert!(!b.is_yielding());
        assert!(!b.is_saturated());
    }

    #[test]
    fn escalates_to_yield_phase() {
        let mut b = Backoff::new();
        for _ in 0..=SPIN_LIMIT {
            b.wait();
        }
        assert!(b.is_yielding());
    }

    #[test]
    fn reset_returns_to_spin_phase() {
        let mut b = Backoff::new();
        for _ in 0..20 {
            b.spin_light();
        }
        assert!(b.is_yielding());
        b.reset();
        assert!(!b.is_yielding());
        assert_eq!(b.rounds(), 0);
    }

    #[test]
    fn sleep_interval_is_capped() {
        let mut b = Backoff::new();
        // Drive the internal state far past saturation without actually
        // sleeping (we manipulate rounds via spin_light, then check the cap
        // logic by forcing many doublings).
        b.rounds = SPIN_LIMIT + YIELD_LIMIT + 1;
        b.sleep = MAX_SLEEP;
        assert!(b.is_saturated());
        // Doubling past the cap must not exceed MAX_SLEEP.
        let doubled = (b.sleep * 2).min(MAX_SLEEP);
        assert_eq!(doubled, MAX_SLEEP);
    }

    #[test]
    fn rounds_saturate_instead_of_overflowing() {
        let mut b = Backoff::new();
        b.rounds = u32::MAX;
        b.spin_light();
        assert_eq!(b.rounds(), u32::MAX);
    }
}
