//! Timing and summary statistics for the benchmark harness.
//!
//! The paper reports, for every configuration, the *average* and the *best
//! (minimum)* wall-clock time over 10 repetitions, plus the speedup relative
//! to the best sequential implementation.  [`RunStats`] captures exactly that
//! aggregation so the table harness (crate `teamsteal-bench`) and the
//! experiments document can share one implementation.

use std::time::{Duration, Instant};

/// Measures the wall-clock time of a closure.
pub fn time<R>(f: impl FnOnce() -> R) -> (Duration, R) {
    let start = Instant::now();
    let out = f();
    (start.elapsed(), out)
}

/// Summary statistics over repeated timed runs of one configuration.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunStats {
    samples: Vec<Duration>,
}

impl RunStats {
    /// Creates an empty statistics collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample.
    pub fn record(&mut self, sample: Duration) {
        self.samples.push(sample);
    }

    /// Number of recorded samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Returns `true` if no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// All recorded samples, in insertion order.
    pub fn samples(&self) -> &[Duration] {
        &self.samples
    }

    /// Average (arithmetic mean) of the samples.
    ///
    /// Returns [`Duration::ZERO`] when empty.
    pub fn average(&self) -> Duration {
        if self.samples.is_empty() {
            return Duration::ZERO;
        }
        let total: Duration = self.samples.iter().sum();
        total / self.samples.len() as u32
    }

    /// Best (minimum) sample.  Returns [`Duration::ZERO`] when empty.
    pub fn best(&self) -> Duration {
        self.samples.iter().min().copied().unwrap_or(Duration::ZERO)
    }

    /// Worst (maximum) sample.  Returns [`Duration::ZERO`] when empty.
    pub fn worst(&self) -> Duration {
        self.samples.iter().max().copied().unwrap_or(Duration::ZERO)
    }

    /// Median of the samples (the perf harness's headline aggregate: robust
    /// against the occasional scheduling hiccup that skews the mean).
    ///
    /// For an even sample count the midpoint of the two central samples is
    /// returned.  Returns [`Duration::ZERO`] when empty.
    ///
    /// ```
    /// use std::time::Duration;
    /// use teamsteal_util::timing::RunStats;
    ///
    /// let mut s = RunStats::new();
    /// for ms in [30, 10, 20, 1000] {
    ///     s.record(Duration::from_millis(ms));
    /// }
    /// assert_eq!(s.median(), Duration::from_millis(25)); // outlier ignored
    /// ```
    pub fn median(&self) -> Duration {
        if self.samples.is_empty() {
            return Duration::ZERO;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_unstable();
        let n = sorted.len();
        if n % 2 == 1 {
            sorted[n / 2]
        } else {
            (sorted[n / 2 - 1] + sorted[n / 2]) / 2
        }
    }

    /// Nearest-rank percentile of the samples, `p` in `0.0..=100.0`.
    ///
    /// `percentile(0.0)` is the best sample, `percentile(100.0)` the worst.
    /// Returns [`Duration::ZERO`] when empty.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not within `0.0..=100.0`.
    pub fn percentile(&self, p: f64) -> Duration {
        assert!((0.0..=100.0).contains(&p), "percentile {p} out of range");
        if self.samples.is_empty() {
            return Duration::ZERO;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_unstable();
        let n = sorted.len();
        // Nearest-rank: the smallest sample with at least p% of the mass at
        // or below it.
        let rank = ((p / 100.0) * n as f64).ceil() as usize;
        sorted[rank.clamp(1, n) - 1]
    }

    /// The 95th percentile (nearest-rank), the tail-latency aggregate the
    /// perf harness records next to best/average/median.
    pub fn p95(&self) -> Duration {
        self.percentile(95.0)
    }

    /// Sample standard deviation in seconds (0 for fewer than two samples).
    pub fn stddev_secs(&self) -> f64 {
        let n = self.samples.len();
        if n < 2 {
            return 0.0;
        }
        let mean = self.average().as_secs_f64();
        let var = self
            .samples
            .iter()
            .map(|s| {
                let d = s.as_secs_f64() - mean;
                d * d
            })
            .sum::<f64>()
            / (n - 1) as f64;
        var.sqrt()
    }
}

/// Speedup of `parallel` relative to `reference` (how the paper's `SU`
/// columns are computed: sequential reference time divided by parallel time).
///
/// Returns 0 when the parallel time is zero (degenerate measurement).
pub fn speedup(reference: Duration, parallel: Duration) -> f64 {
    let p = parallel.as_secs_f64();
    if p == 0.0 {
        0.0
    } else {
        reference.as_secs_f64() / p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_measures_something() {
        let (d, out) = time(|| {
            std::thread::sleep(Duration::from_millis(2));
            42
        });
        assert_eq!(out, 42);
        assert!(d >= Duration::from_millis(2));
    }

    #[test]
    fn stats_average_and_best() {
        let mut s = RunStats::new();
        s.record(Duration::from_millis(10));
        s.record(Duration::from_millis(20));
        s.record(Duration::from_millis(30));
        assert_eq!(s.len(), 3);
        assert_eq!(s.average(), Duration::from_millis(20));
        assert_eq!(s.best(), Duration::from_millis(10));
        assert_eq!(s.worst(), Duration::from_millis(30));
    }

    #[test]
    fn empty_stats_are_zero() {
        let s = RunStats::new();
        assert!(s.is_empty());
        assert_eq!(s.average(), Duration::ZERO);
        assert_eq!(s.best(), Duration::ZERO);
        assert_eq!(s.median(), Duration::ZERO);
        assert_eq!(s.p95(), Duration::ZERO);
        assert_eq!(s.stddev_secs(), 0.0);
    }

    #[test]
    fn median_is_order_independent_and_handles_even_counts() {
        let mut s = RunStats::new();
        s.record(Duration::from_millis(40));
        s.record(Duration::from_millis(10));
        s.record(Duration::from_millis(30));
        assert_eq!(s.median(), Duration::from_millis(30));
        s.record(Duration::from_millis(20));
        assert_eq!(s.median(), Duration::from_millis(25));
    }

    #[test]
    fn percentiles_follow_nearest_rank() {
        let mut s = RunStats::new();
        for ms in 1..=100u64 {
            s.record(Duration::from_millis(ms));
        }
        assert_eq!(s.percentile(0.0), Duration::from_millis(1));
        assert_eq!(s.percentile(50.0), Duration::from_millis(50));
        assert_eq!(s.p95(), Duration::from_millis(95));
        assert_eq!(s.percentile(100.0), Duration::from_millis(100));
        // A single sample is every percentile.
        let mut one = RunStats::new();
        one.record(Duration::from_millis(7));
        assert_eq!(one.percentile(1.0), Duration::from_millis(7));
        assert_eq!(one.p95(), Duration::from_millis(7));
    }

    #[test]
    #[should_panic]
    fn out_of_range_percentile_panics() {
        let mut s = RunStats::new();
        s.record(Duration::from_millis(1));
        s.percentile(101.0);
    }

    #[test]
    fn stddev_of_constant_samples_is_zero() {
        let mut s = RunStats::new();
        for _ in 0..5 {
            s.record(Duration::from_millis(7));
        }
        assert!(s.stddev_secs() < 1e-12);
    }

    #[test]
    fn speedup_matches_paper_convention() {
        // Table 1, Random 10^7: Seq/STL 0.940 s, MMPar 0.201 s => SU 4.7.
        let su = speedup(Duration::from_millis(940), Duration::from_millis(201));
        assert!((su - 4.676).abs() < 0.01);
        assert_eq!(speedup(Duration::from_secs(1), Duration::ZERO), 0.0);
    }
}
