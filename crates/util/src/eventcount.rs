//! A futex-style eventcount: the blocking primitive behind the scheduler's
//! event-driven parking (DESIGN.md §12).
//!
//! The paper assumes idle workers notice new work "promptly", but until PR 5
//! the reproduction discovered it by *timed polling*: every idle, member-poll
//! and coordinator-wait path ended in a capped [`Backoff`](crate::Backoff)
//! nap, trading wake-up latency against idle CPU burn.  An eventcount removes
//! that trade-off: waiters block on an OS primitive and producers wake them
//! in O(µs), with a protocol that makes a **lost wakeup impossible**:
//!
//! 1. [`prepare_wait`](EventCount::prepare_wait) — read the *ticket* (a
//!    global notification counter) before re-checking the wait condition.
//! 2. **Recheck** — the caller re-evaluates its condition.  Any state change
//!    that happened before the ticket read is seen here (the `SeqCst` fence
//!    in `prepare_wait` pairs with the fence notifiers execute before
//!    deciding whether anyone needs waking).
//! 3. [`park`](EventCount::park) (commit) or nothing (cancel; there is
//!    nothing to undo).  `park` re-reads the ticket after publishing the
//!    parked state: a notification that raced with the recheck bumped the
//!    ticket and aborts the park before it blocks.
//!
//! Waiters occupy **cache-padded per-slot waiter records** (one per worker)
//! over a `Mutex`/`Condvar` pair, so notifications can target a specific
//! worker ([`notify_slot`](EventCount::notify_slot)) and the wake scan never
//! false-shares.  Parks carry a *class* ([`ParkClass`]): anonymous work
//! notifications ([`notify_one_idle`](EventCount::notify_one_idle)) wake
//! only [`ParkClass::Idle`] parkers, so a coordinator blocked in a team
//! handshake can never swallow a "new work arrived" wakeup meant for an idle
//! thief.
//!
//! Every park takes a caller-supplied **backstop timeout**.  The protocol
//! does not rely on it — it exists so that a missed-notification *bug*
//! degrades into bounded extra latency (and a visible
//! [`WakeReason::Backstop`] count) instead of a deadlock.
//!
//! ```
//! use std::sync::atomic::{AtomicBool, Ordering};
//! use std::sync::Arc;
//! use std::time::Duration;
//! use teamsteal_util::eventcount::{EventCount, ParkClass, WakeReason};
//!
//! let ec = Arc::new(EventCount::new(1));
//! let ready = Arc::new(AtomicBool::new(false));
//! let (ec2, ready2) = (Arc::clone(&ec), Arc::clone(&ready));
//! let waiter = std::thread::spawn(move || loop {
//!     let ticket = ec2.prepare_wait();
//!     if ready2.load(Ordering::Acquire) {
//!         break; // recheck saw the flag: no park needed
//!     }
//!     ec2.park(0, ticket, ParkClass::Idle, Duration::from_secs(5));
//! });
//! ready.store(true, Ordering::Release);
//! ec.notify_one_idle();
//! waiter.join().unwrap();
//! ```

use crate::sync::atomic::{fence, AtomicU32, AtomicU64, AtomicUsize, Ordering};
use crate::sync::time::Instant;
use crate::sync::{Condvar, Mutex};
use std::time::Duration;

use crate::CachePadded;

/// Slot is not parked.
const EMPTY: u32 = 0;
/// Slot is parked and may be woken by anonymous work notifications.
const PARKED_IDLE: u32 = 1;
/// Slot is parked waiting for a targeted handshake event; only
/// [`EventCount::notify_slot`] / [`EventCount::notify_all`] wake it.
const PARKED_HANDSHAKE: u32 = 2;
/// Slot has been claimed by a notifier; the waiter consumes this on wake.
const NOTIFIED: u32 = 3;

/// What a parked waiter is willing to be woken for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParkClass {
    /// An idle worker waiting for *any* work to appear.  Woken by
    /// [`EventCount::notify_one_idle`] and by targeted notifications.
    Idle,
    /// A worker waiting for a specific handshake (team registration,
    /// publication, start countdown).  Only targeted notifications
    /// ([`EventCount::notify_slot`], [`EventCount::notify_all`]) wake it, so
    /// anonymous work wakeups are never swallowed by a waiter that cannot
    /// act on them.
    Handshake,
}

impl ParkClass {
    fn state(self) -> u32 {
        match self {
            ParkClass::Idle => PARKED_IDLE,
            ParkClass::Handshake => PARKED_HANDSHAKE,
        }
    }
}

/// Why [`EventCount::park`] returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WakeReason {
    /// A notifier explicitly claimed this waiter.  Carries the
    /// notification-to-wake latency (measured from the notifier's clock
    /// read to the waiter observing the claim).
    Notified(Duration),
    /// The global ticket moved between `prepare_wait` and the park blocking:
    /// *some* notification happened system-wide while this waiter was
    /// committing, so it aborts and re-checks its condition instead of
    /// risking a sleep through the event.
    TicketChanged,
    /// The defensive backstop timeout expired without any notification.
    /// Healthy schedulers show (almost) none of these; a growing count means
    /// a state change forgot its notify call.
    Backstop,
}

impl WakeReason {
    /// `true` for [`WakeReason::Backstop`].
    pub fn is_spurious(&self) -> bool {
        matches!(self, WakeReason::Backstop)
    }
}

/// One waiter record.  Cache-padded by the containing array so a notifier
/// scanning for parked slots never invalidates a neighbour's line.
struct WaiterSlot {
    /// `EMPTY` / `PARKED_IDLE` / `PARKED_HANDSHAKE` / `NOTIFIED`.  Notifiers
    /// claim a parked slot by CASing `PARKED_* → NOTIFIED`; exactly one
    /// notifier wins, so each notification wakes at most one waiter.
    state: AtomicU32,
    /// Notifier's clock (nanoseconds since the eventcount's anchor) at claim
    /// time, for wake-latency measurement.  Written before the claim CAS.
    notified_at_ns: AtomicU64,
    /// The blocking primitive.  The mutex protects nothing but the condvar
    /// wait itself; all state lives in the atomics above.
    lock: Mutex<()>,
    cv: Condvar,
}

/// A fixed-capacity eventcount with per-slot waiter records.  See the
/// [module docs](self) for the protocol.
pub struct EventCount {
    /// The notification ticket.  Every notification bumps it, so a waiter
    /// whose `prepare_wait` ticket is stale knows *something* happened and
    /// refuses to block.
    ticket: CachePadded<AtomicU64>,
    /// Rotating start index for the anonymous wake scan, so repeated
    /// `notify_one_idle` calls spread wakes over the sleepers instead of
    /// hammering slot 0.
    scan_from: CachePadded<AtomicUsize>,
    slots: Box<[CachePadded<WaiterSlot>]>,
    /// Anchor for the `notified_at_ns` timestamps.
    anchor: Instant,
}

impl std::fmt::Debug for EventCount {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventCount")
            .field("slots", &self.slots.len())
            .field("ticket", &self.ticket.load(Ordering::Relaxed))
            .finish()
    }
}

impl EventCount {
    /// Creates an eventcount with `slots` waiter records (one per worker).
    pub fn new(slots: usize) -> EventCount {
        EventCount {
            ticket: CachePadded::new(AtomicU64::new(0)),
            scan_from: CachePadded::new(AtomicUsize::new(0)),
            slots: (0..slots.max(1))
                .map(|_| {
                    CachePadded::new(WaiterSlot {
                        state: AtomicU32::new(EMPTY),
                        notified_at_ns: AtomicU64::new(0),
                        lock: Mutex::new(()),
                        cv: Condvar::new(),
                    })
                })
                .collect(),
            anchor: Instant::now(),
        }
    }

    /// Number of waiter slots.
    pub fn slots(&self) -> usize {
        self.slots.len()
    }

    /// Nanoseconds since this eventcount was created (the timestamp base of
    /// wake-latency measurement).
    #[inline]
    fn now_ns(&self) -> u64 {
        self.anchor.elapsed().as_nanos() as u64
    }

    /// Step 1 of the wait protocol: announce intent and read the ticket.
    ///
    /// The caller **must** re-check its wait condition after this call and
    /// before [`park`](EventCount::park): the `SeqCst` fence here pairs with
    /// the fence notifiers execute before reading waiter counts, so either
    /// the recheck sees the state change, or the notifier sees the waiter
    /// (and bumps the ticket / signals the slot).  There is no cancel
    /// operation — if the recheck fires, simply do not park.
    #[inline]
    pub fn prepare_wait(&self) -> u64 {
        // The caller (e.g. the scheduler's sleep controller) has already
        // announced itself as a sleeper with a SeqCst RMW; this fence closes
        // the Dekker pattern against notifiers for callers that did not.
        fence(Ordering::SeqCst);
        self.ticket.load(Ordering::SeqCst)
    }

    /// Step 3 of the wait protocol: block until notified, until the ticket
    /// moves, or until `backstop` expires.
    ///
    /// `ticket` must come from [`prepare_wait`](EventCount::prepare_wait) on
    /// this eventcount, and the caller's wait condition must have been
    /// re-checked in between.  One slot must never be parked by two threads
    /// at once (the scheduler gives each worker its own slot).
    pub fn park(&self, slot: usize, ticket: u64, class: ParkClass, backstop: Duration) -> WakeReason {
        let s = &*self.slots[slot];
        // Publish the parked state *before* re-reading the ticket: if a
        // notifier's bump is not visible to the re-read below, the bump is
        // later in the SeqCst order, so the notifier's wake scan (which
        // follows its bump) is guaranteed to observe our parked state.
        s.state.store(class.state(), Ordering::SeqCst);
        let deadline = Instant::now() + backstop;
        let mut guard = s.lock.lock().expect("eventcount slot mutex poisoned");
        let reason = loop {
            let state = s.state.load(Ordering::SeqCst);
            if state == NOTIFIED {
                let latency = self
                    .now_ns()
                    .saturating_sub(s.notified_at_ns.load(Ordering::Relaxed));
                break WakeReason::Notified(Duration::from_nanos(latency));
            }
            if self.ticket.load(Ordering::SeqCst) != ticket {
                break WakeReason::TicketChanged;
            }
            let now = Instant::now();
            if now >= deadline {
                break WakeReason::Backstop;
            }
            let (g, _) = s
                .cv
                .wait_timeout(guard, deadline - now)
                .expect("eventcount slot mutex poisoned");
            guard = g;
        };
        // Reclaim the slot.  A notifier may have claimed us concurrently
        // with a ticket/backstop exit; the store consumes that claim — we
        // are awake either way, so the wake is not lost, merely
        // misattributed to the other reason.
        s.state.store(EMPTY, Ordering::SeqCst);
        drop(guard);
        reason
    }

    /// Claims slot `index` if it is parked (either class): timestamp, CAS to
    /// `NOTIFIED`, signal.  Returns `true` if this call claimed it.
    fn claim(&self, index: usize) -> bool {
        let s = &*self.slots[index];
        let state = s.state.load(Ordering::SeqCst);
        if state != PARKED_IDLE && state != PARKED_HANDSHAKE {
            return false;
        }
        // Timestamp before the claim so the waiter (which reads it after
        // observing NOTIFIED) never sees an unwritten value.
        s.notified_at_ns.store(self.now_ns(), Ordering::Relaxed);
        if s.state
            .compare_exchange(state, NOTIFIED, Ordering::SeqCst, Ordering::SeqCst)
            .is_err()
        {
            return false;
        }
        // Lock-then-signal: the waiter holds the mutex from before its state
        // check until inside `wait_timeout`, so acquiring it here means the
        // waiter is either before the check (it will see NOTIFIED) or inside
        // the wait (the signal reaches it).
        drop(s.lock.lock().expect("eventcount slot mutex poisoned"));
        s.cv.notify_one();
        true
    }

    /// Wakes one [`ParkClass::Idle`] waiter, if any is parked.  Bumps the
    /// ticket first, so concurrent `prepare_wait`/`park` callers abort
    /// instead of sleeping through this notification.  Returns `true` if a
    /// parked waiter was claimed.
    pub fn notify_one_idle(&self) -> bool {
        // Fault injection (model builds only): swallow the notification
        // entirely — no ticket bump, no claim — so model tests can check
        // the §12 defensive-backstop claim that a *lost* wake costs
        // bounded latency rather than a deadlock.
        #[cfg(teamsteal_model)]
        if crate::sync::fault::take_dropped_notify() {
            return false;
        }
        self.ticket.fetch_add(1, Ordering::SeqCst);
        self.claim_one_idle_rotating()
    }

    /// Wakes one [`ParkClass::Idle`] waiter, preferring slots inside
    /// `preferred` (scanned in order) before falling back to the global
    /// rotating scan — the locality-aware variant of
    /// [`notify_one_idle`](EventCount::notify_one_idle) the scheduler uses
    /// for domain-affine injection wakes (DESIGN.md §13).  Exactly like the
    /// anonymous wake it claims **only idle parkers**, so a handshake waiter
    /// can never swallow it.  Returns `true` if a parked waiter was claimed.
    pub fn notify_one_idle_in(&self, preferred: std::ops::Range<usize>) -> bool {
        self.ticket.fetch_add(1, Ordering::SeqCst);
        let n = self.slots.len();
        for index in preferred.start..preferred.end.min(n) {
            if self.slots[index].state.load(Ordering::SeqCst) != PARKED_IDLE {
                continue;
            }
            if self.claim(index) {
                return true;
            }
        }
        // Fall back outward: any idle sleeper is better than a lost wake.
        // (Re-visiting the preferred slots is harmless — they are not
        // parked idle, so the scan skips them.)
        self.claim_one_idle_rotating()
    }

    /// The anonymous wake scan: rotating start, claims the first
    /// `PARKED_IDLE` slot.  The caller has already bumped the ticket.
    fn claim_one_idle_rotating(&self) -> bool {
        let n = self.slots.len();
        let start = self.scan_from.fetch_add(1, Ordering::Relaxed);
        for i in 0..n {
            let index = (start + i) % n;
            let s = &*self.slots[index];
            if s.state.load(Ordering::SeqCst) != PARKED_IDLE {
                continue;
            }
            if self.claim(index) {
                return true;
            }
        }
        false
    }

    /// Wakes slot `index` regardless of its park class.  Returns `true` if
    /// it was parked and this call claimed it; in every case the ticket bump
    /// keeps a concurrently committing waiter from sleeping through the
    /// event.
    pub fn notify_slot(&self, index: usize) -> bool {
        self.ticket.fetch_add(1, Ordering::SeqCst);
        self.claim(index)
    }

    /// Wakes every slot in `indices` (one ticket bump for the whole batch).
    /// Returns the number of parked waiters claimed.
    pub fn notify_slots(&self, indices: impl IntoIterator<Item = usize>) -> usize {
        self.ticket.fetch_add(1, Ordering::SeqCst);
        indices.into_iter().filter(|&i| self.claim(i)).count()
    }

    /// Wakes every parked waiter of both classes (shutdown, stall resync).
    /// Returns the number claimed.
    pub fn notify_all(&self) -> usize {
        self.ticket.fetch_add(1, Ordering::SeqCst);
        (0..self.slots.len()).filter(|&i| self.claim(i)).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;
    use std::sync::Arc;

    const LONG: Duration = Duration::from_secs(30);

    #[test]
    fn notify_one_wakes_a_parked_idle_waiter() {
        let ec = Arc::new(EventCount::new(2));
        let flag = Arc::new(AtomicBool::new(false));
        let (ec2, flag2) = (Arc::clone(&ec), Arc::clone(&flag));
        let waiter = std::thread::spawn(move || loop {
            let t = ec2.prepare_wait();
            if flag2.load(Ordering::Acquire) {
                break;
            }
            let reason = ec2.park(0, t, ParkClass::Idle, LONG);
            assert_ne!(reason, WakeReason::Backstop, "no backstop expected");
        });
        // Give the waiter a moment to actually park, then publish + notify.
        std::thread::sleep(Duration::from_millis(20));
        flag.store(true, Ordering::Release);
        ec.notify_one_idle();
        waiter.join().unwrap();
    }

    #[test]
    fn ticket_change_aborts_a_commit_in_flight() {
        let ec = EventCount::new(1);
        let t = ec.prepare_wait();
        // A notification between prepare and park must abort the park even
        // though no slot was parked when it fired.
        assert!(!ec.notify_one_idle(), "nobody parked yet");
        let reason = ec.park(0, t, ParkClass::Idle, LONG);
        assert_eq!(reason, WakeReason::TicketChanged);
    }

    #[test]
    fn backstop_fires_without_notification() {
        let ec = EventCount::new(1);
        let t = ec.prepare_wait();
        let start = Instant::now();
        let reason = ec.park(0, t, ParkClass::Idle, Duration::from_millis(30));
        assert_eq!(reason, WakeReason::Backstop);
        assert!(start.elapsed() >= Duration::from_millis(25));
    }

    #[test]
    fn handshake_parks_ignore_anonymous_notifications() {
        let ec = Arc::new(EventCount::new(2));
        let stop = Arc::new(AtomicBool::new(false));
        let (ec2, stop2) = (Arc::clone(&ec), Arc::clone(&stop));
        let waiter = std::thread::spawn(move || {
            let mut woken_by_notify = false;
            loop {
                let t = ec2.prepare_wait();
                if stop2.load(Ordering::Acquire) {
                    break;
                }
                if let WakeReason::Notified(_) = ec2.park(1, t, ParkClass::Handshake, LONG) {
                    woken_by_notify = true;
                }
            }
            woken_by_notify
        });
        std::thread::sleep(Duration::from_millis(20));
        // Anonymous wake: must not claim the handshake parker (the ticket
        // bump may still abort its next commit, which is fine).
        assert!(!ec.notify_one_idle(), "handshake parker must not be claimed");
        std::thread::sleep(Duration::from_millis(20));
        // Targeted wake reaches it.
        stop.store(true, Ordering::Release);
        assert!(ec.notify_slot(1) || {
            // The waiter may have been between parks (ticket bump covers
            // it); either way it must terminate.
            true
        });
        let _ = waiter.join().unwrap();
    }

    #[test]
    fn targeted_notify_wakes_the_right_slot() {
        let ec = Arc::new(EventCount::new(4));
        let stop = Arc::new(AtomicBool::new(false));
        let waiters: Vec<_> = (0..4)
            .map(|slot| {
                let (ec, stop) = (Arc::clone(&ec), Arc::clone(&stop));
                std::thread::spawn(move || {
                    let mut notified_wakes = 0u32;
                    loop {
                        let t = ec.prepare_wait();
                        if stop.load(Ordering::Acquire) {
                            break;
                        }
                        if let WakeReason::Notified(latency) =
                            ec.park(slot, t, ParkClass::Handshake, LONG)
                        {
                            assert!(latency < LONG);
                            // The shutdown notify_all below also claims
                            // slots; only count wakes from the targeted
                            // poking phase.
                            if !stop.load(Ordering::Acquire) {
                                notified_wakes += 1;
                            }
                        }
                    }
                    notified_wakes
                })
            })
            .collect();
        std::thread::sleep(Duration::from_millis(30));
        // Repeatedly poke slot 2 only.
        let mut claimed = 0;
        for _ in 0..50 {
            if ec.notify_slot(2) {
                claimed += 1;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        assert!(claimed > 0, "slot 2 should have been parked at least once");
        stop.store(true, Ordering::Release);
        ec.notify_all();
        let wakes: Vec<u32> = waiters.into_iter().map(|w| w.join().unwrap()).collect();
        assert_eq!(wakes[0] + wakes[1] + wakes[3], 0, "only slot 2 was targeted");
        assert!(wakes[2] > 0);
    }

    #[test]
    fn notify_one_idle_in_prefers_the_given_range() {
        let ec = Arc::new(EventCount::new(4));
        let stop = Arc::new(AtomicBool::new(false));
        let woken: Arc<Vec<AtomicU64>> = Arc::new((0..4).map(|_| AtomicU64::new(0)).collect());
        let waiters: Vec<_> = (0..4)
            .map(|slot| {
                let (ec, stop, woken) = (Arc::clone(&ec), Arc::clone(&stop), Arc::clone(&woken));
                std::thread::spawn(move || loop {
                    let t = ec.prepare_wait();
                    if stop.load(Ordering::Acquire) {
                        break;
                    }
                    if let WakeReason::Notified(_) = ec.park(slot, t, ParkClass::Idle, LONG) {
                        if !stop.load(Ordering::Acquire) {
                            woken[slot].fetch_add(1, Ordering::SeqCst);
                        }
                    }
                })
            })
            .collect();
        std::thread::sleep(Duration::from_millis(30));
        // Repeatedly wake with a preference for slots 2..4; slots 0 and 1
        // must never be claimed while a preferred sleeper is available.
        let mut claimed = 0;
        for _ in 0..50 {
            if ec.notify_one_idle_in(2..4) {
                claimed += 1;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        assert!(claimed > 0, "preferred-range wakes should land");
        stop.store(true, Ordering::Release);
        ec.notify_all();
        for w in waiters {
            w.join().unwrap();
        }
        let out_of_range: u64 = woken[0].load(Ordering::SeqCst) + woken[1].load(Ordering::SeqCst);
        let in_range: u64 = woken[2].load(Ordering::SeqCst) + woken[3].load(Ordering::SeqCst);
        assert!(in_range > 0, "preferred sleepers were woken");
        assert_eq!(
            out_of_range, 0,
            "a preferred sleeper was always parked, so the fallback never fired"
        );
    }

    #[test]
    fn notify_one_idle_in_falls_back_outside_the_range() {
        let ec = Arc::new(EventCount::new(4));
        let flag = Arc::new(AtomicBool::new(false));
        let (ec2, flag2) = (Arc::clone(&ec), Arc::clone(&flag));
        // Only slot 0 parks; a wake preferring 2..4 must still reach it.
        let waiter = std::thread::spawn(move || loop {
            let t = ec2.prepare_wait();
            if flag2.load(Ordering::Acquire) {
                break;
            }
            ec2.park(0, t, ParkClass::Idle, LONG);
        });
        std::thread::sleep(Duration::from_millis(20));
        flag.store(true, Ordering::Release);
        ec.notify_one_idle_in(2..4);
        waiter.join().unwrap();
    }

    #[test]
    fn producer_consumer_ping_pong_never_loses_a_wakeup() {
        // The lost-wakeup stress: a consumer parks between items, a producer
        // publishes one item at a time and notifies.  Any lost wakeup shows
        // up as a Backstop (long stall) — with a generous backstop this test
        // would time out rather than pass silently.
        const ITEMS: u64 = 2_000;
        let ec = Arc::new(EventCount::new(1));
        let item = Arc::new(AtomicU64::new(0));
        let (ec2, item2) = (Arc::clone(&ec), Arc::clone(&item));
        let consumer = std::thread::spawn(move || {
            let mut seen = 0u64;
            let mut backstops = 0u32;
            while seen < ITEMS {
                let t = ec2.prepare_wait();
                let current = item2.load(Ordering::Acquire);
                if current > seen {
                    seen = current;
                    continue;
                }
                if ec2.park(0, t, ParkClass::Idle, Duration::from_secs(5))
                    == WakeReason::Backstop
                {
                    backstops += 1;
                }
            }
            backstops
        });
        for i in 1..=ITEMS {
            item.store(i, Ordering::Release);
            ec.notify_one_idle();
            // Occasionally let the consumer actually park.
            if i % 64 == 0 {
                std::thread::sleep(Duration::from_micros(200));
            }
        }
        let backstops = consumer.join().unwrap();
        assert_eq!(backstops, 0, "a backstop means a notification was lost");
    }

    #[test]
    fn notify_all_wakes_everyone() {
        let ec = Arc::new(EventCount::new(3));
        let stop = Arc::new(AtomicBool::new(false));
        let waiters: Vec<_> = (0..3)
            .map(|slot| {
                let (ec, stop) = (Arc::clone(&ec), Arc::clone(&stop));
                std::thread::spawn(move || loop {
                    let t = ec.prepare_wait();
                    if stop.load(Ordering::Acquire) {
                        break;
                    }
                    ec.park(slot, t, ParkClass::Handshake, LONG);
                })
            })
            .collect();
        std::thread::sleep(Duration::from_millis(30));
        stop.store(true, Ordering::Release);
        ec.notify_all();
        for w in waiters {
            w.join().unwrap();
        }
    }
}
