//! Model-checked tests for the task service's drain gate (`DESIGN.md` §16).
//!
//! The protocol under test is the real one: `teamsteal_service::gate` is
//! built on the `teamsteal_util::sync` shim, so under
//! `--cfg teamsteal_model` the [`DrainGate`] runs on the explorer's virtual
//! atomics and monitors, and every interleaving of racing submitters
//! against a drainer and a worker is enumerated.  The invariants are the
//! service's drain guarantee:
//!
//! 1. **No admitted task is dropped**: when `await_empty` returns, every
//!    submission that won `try_enter` has been run by the worker.
//! 2. **No post-drain execution**: no task runs after the drainer has
//!    observed the gate empty.
//! 3. **Exactly-once drain**: of racing drainers, exactly one performs the
//!    `Open → Draining` transition.
//!
//! Run with `RUSTFLAGS='--cfg teamsteal_model' cargo test -p teamsteal-model`.
#![cfg(teamsteal_model)]

use std::collections::BTreeSet;
use std::sync::{Arc, Mutex as StdMutex};
use std::time::Duration;

use teamsteal_model::{thread, Builder};
use teamsteal_service::gate::{DrainGate, GateState};
use teamsteal_util::sync::atomic::{AtomicUsize, Ordering};
use teamsteal_util::sync::{Condvar, Mutex};

/// Long enough that it can only fire via the model's
/// nothing-else-runnable timeout escape, never en passant.
const BACKSTOP: Duration = Duration::from_millis(10);

/// The full service pipeline in miniature: two submitters race one drainer
/// while a worker completes admitted tasks.  A submitter that wins
/// `try_enter` queues a task; the worker runs it, records whether the
/// world was already "drained", and only then releases the gate entry —
/// the same shape as the service's completion guard.  On **every**
/// interleaving: drain returns only after all admitted tasks completed,
/// and nothing runs after it returned.
#[test]
fn drain_vs_racing_submitters_loses_nothing() {
    let seen: Arc<StdMutex<BTreeSet<usize>>> = Arc::default();
    let seen_in = Arc::clone(&seen);
    Builder::new().preemption_bound(2).check(move || {
        let gate = Arc::new(DrainGate::new());
        let queue = Arc::new(Mutex::new(Vec::new()));
        let queue_cv = Arc::new(Condvar::new());
        let admitted = Arc::new(AtomicUsize::new(0));
        let completed = Arc::new(AtomicUsize::new(0));
        let drain_returned = Arc::new(AtomicUsize::new(0));
        let post_drain_runs = Arc::new(AtomicUsize::new(0));
        let submitters_done = Arc::new(AtomicUsize::new(0));

        let submitters: Vec<_> = (0..2)
            .map(|task_id: usize| {
                let gate = Arc::clone(&gate);
                let queue = Arc::clone(&queue);
                let queue_cv = Arc::clone(&queue_cv);
                let admitted = Arc::clone(&admitted);
                let submitters_done = Arc::clone(&submitters_done);
                thread::spawn(move || {
                    let won = gate.try_enter();
                    if won {
                        // Admitted: the gate entry is held until the worker
                        // completes the task (the completion-guard pattern).
                        admitted.fetch_add(1, Ordering::SeqCst);
                        let mut q = queue.lock().unwrap();
                        q.push(task_id);
                        queue_cv.notify_all();
                        drop(q);
                    }
                    submitters_done.fetch_add(1, Ordering::SeqCst);
                    won
                })
            })
            .collect();

        let worker = {
            let gate = Arc::clone(&gate);
            let queue = Arc::clone(&queue);
            let queue_cv = Arc::clone(&queue_cv);
            let completed = Arc::clone(&completed);
            let drain_returned = Arc::clone(&drain_returned);
            let post_drain_runs = Arc::clone(&post_drain_runs);
            let submitters_done = Arc::clone(&submitters_done);
            thread::spawn(move || {
                let mut guard = queue.lock().unwrap();
                loop {
                    if guard.pop().is_some() {
                        drop(guard);
                        // "Run" the task: an execution after drain() has
                        // returned would violate the drain guarantee.
                        if drain_returned.load(Ordering::SeqCst) == 1 {
                            post_drain_runs.fetch_add(1, Ordering::SeqCst);
                        }
                        completed.fetch_add(1, Ordering::SeqCst);
                        gate.exit();
                        guard = queue.lock().unwrap();
                        continue;
                    }
                    if submitters_done.load(Ordering::SeqCst) == 2 {
                        return;
                    }
                    let (g, _) = queue_cv.wait_timeout(guard, BACKSTOP).unwrap();
                    guard = g;
                }
            })
        };

        let drainer = {
            let gate = Arc::clone(&gate);
            let admitted = Arc::clone(&admitted);
            let completed = Arc::clone(&completed);
            let drain_returned = Arc::clone(&drain_returned);
            thread::spawn(move || {
                assert!(gate.begin_drain(), "the only drainer wins the CAS");
                gate.await_empty(BACKSTOP);
                // Invariant 1: the drain point sees every admitted task
                // already completed — in_flight covered submit → complete.
                assert_eq!(
                    completed.load(Ordering::SeqCst),
                    admitted.load(Ordering::SeqCst),
                    "drain returned with an admitted task not yet run"
                );
                drain_returned.store(1, Ordering::SeqCst);
            })
        };

        let wins: usize = submitters.into_iter().map(|s| s.join().unwrap() as usize).sum();
        drainer.join().unwrap();
        worker.join().unwrap();

        // Invariant 2: no execution after the drain point, on any schedule.
        assert_eq!(
            post_drain_runs.load(Ordering::SeqCst),
            0,
            "a task ran after drain() returned"
        );
        assert_eq!(completed.load(Ordering::SeqCst), wins);
        assert_eq!(gate.state(), GateState::Drained);
        assert_eq!(gate.in_flight(), 0);
        // The gate stays shut forever after the drain.
        assert!(!gate.try_enter(), "post-drain submission must be rejected");

        seen_in.lock().unwrap().insert(wins);
    });
    // The exploration must reach schedules where the drainer beat both
    // submitters, lost to both, and split them — otherwise the race was
    // never actually explored.
    let seen = seen.lock().unwrap();
    for admitted in [0usize, 1, 2] {
        assert!(
            seen.contains(&admitted),
            "exploration never produced a schedule admitting {admitted} tasks: {seen:?}"
        );
    }
}

/// Exactly-once initiation (invariant 3): two racing drainers — exactly
/// one wins the `Open → Draining` CAS on every interleaving, both may wait
/// the gate out, and the gate ends `Drained` with a live entry released
/// in between.
#[test]
fn racing_drainers_initiate_exactly_once() {
    let seen: Arc<StdMutex<BTreeSet<&'static str>>> = Arc::default();
    let seen_in = Arc::clone(&seen);
    Builder::new().check(move || {
        let gate = Arc::new(DrainGate::new());
        // One live entry so await_empty has something to wait for.
        assert!(gate.try_enter());
        let drainers: Vec<_> = (0..2)
            .map(|_| {
                let gate = Arc::clone(&gate);
                thread::spawn(move || {
                    let initiated = gate.begin_drain();
                    gate.await_empty(BACKSTOP);
                    assert_eq!(gate.in_flight(), 0);
                    initiated
                })
            })
            .collect();
        let completer = {
            let gate = Arc::clone(&gate);
            thread::spawn(move || gate.exit())
        };
        let initiations: usize = drainers.into_iter().map(|d| d.join().unwrap() as usize).sum();
        completer.join().unwrap();
        assert_eq!(initiations, 1, "the Open → Draining transition must be exactly-once");
        assert_eq!(gate.state(), GateState::Drained);
        seen_in.lock().unwrap().insert("done");
    });
    assert!(seen.lock().unwrap().contains("done"));
}
