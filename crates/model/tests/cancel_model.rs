//! Model-checked tests for the cancellation claim-to-run cell
//! (`DESIGN.md` §17).
//!
//! The protocol under test is the real one: [`CancelCell`] is built on the
//! `teamsteal_util::sync` shim, so under `--cfg teamsteal_model` its CASes
//! run on the explorer's virtual atomics and every interleaving of a
//! canceller against the worker that owns the node is enumerated.  The
//! invariants are the run-XOR-drop guarantee the scheduler relies on:
//!
//! 1. **Run XOR drop**: on every schedule the task either executes exactly
//!    once or is retired without running exactly once — never both, never
//!    neither.
//! 2. **Exactly-once retirement**: the scope countdown (`finish_node`'s
//!    `participants` decrement in the real scheduler) fires exactly once
//!    regardless of which side won.
//! 3. **Cancel is a guarantee**: when `cancel()` returns `true` (it
//!    observed the cell un-`Claimed` and won the CAS), the task never runs.
//!
//! Both races from the worker loop are covered: *cancel vs pop* (the
//! canceller against the exclusive owner claiming at `pop`/`run_singleton`
//! time) and *cancel vs steal* (the canceller against two workers racing
//! for node ownership through the deque, the winner of which claim-gates).
//! On top of those, the service-plane compositions: a *batch sweep*
//! (one `CancelToken::cancel` cancelling each batch member's own cell in
//! turn, racing the workers claiming them — each task decides its race
//! independently, so an unswept batch always runs in full) and *expiry vs
//! cancel* (the owning worker's `expire()` against an external
//! `cancel()` — exactly one settles the cell, the task never runs, and
//! the attribution is coherent: `cancel() == true ⇔ is_cancelled()`).
//!
//! Run with `RUSTFLAGS='--cfg teamsteal_model' cargo test -p teamsteal-model`.
#![cfg(teamsteal_model)]

use std::collections::BTreeSet;
use std::sync::{Arc, Mutex as StdMutex};

use teamsteal_core::CancelCell;
use teamsteal_model::{thread, Builder};
use teamsteal_util::sync::atomic::{AtomicUsize, Ordering};

/// The worker-side claim gate, shaped exactly like
/// `worker::claim_for_run` + `finish_node`: claim, then run or drop, then
/// retire the node exactly once either way.  Returns `(ran, dropped)`.
fn claim_and_retire(
    cell: &CancelCell,
    runs: &AtomicUsize,
    drops: &AtomicUsize,
    countdown: &AtomicUsize,
) -> bool {
    let ran = if cell.try_claim() {
        runs.fetch_add(1, Ordering::SeqCst);
        true
    } else {
        // Cancelled first: retire without running.
        drops.fetch_add(1, Ordering::SeqCst);
        false
    };
    // `finish_node`: the scope countdown fires on both paths, once.
    let prev = countdown.fetch_sub(1, Ordering::SeqCst);
    assert_eq!(prev, 1, "scope countdown fired more than once");
    ran
}

/// Cancel vs pop: one worker exclusively owns the node (it popped it from
/// its own deque or the injector) and claim-gates before running, while
/// the submitter's thread races `cancel()`.  On every interleaving the
/// task runs XOR is dropped, the countdown fires exactly once, and a
/// winning `cancel()` means the task never ran.
#[test]
fn cancel_vs_pop_runs_xor_drops() {
    let seen: Arc<StdMutex<BTreeSet<&'static str>>> = Arc::default();
    let seen_in = Arc::clone(&seen);
    Builder::new().preemption_bound(2).check(move || {
        let cell = Arc::new(CancelCell::new());
        let runs = Arc::new(AtomicUsize::new(0));
        let drops = Arc::new(AtomicUsize::new(0));
        let countdown = Arc::new(AtomicUsize::new(1));

        let worker = {
            let cell = Arc::clone(&cell);
            let runs = Arc::clone(&runs);
            let drops = Arc::clone(&drops);
            let countdown = Arc::clone(&countdown);
            thread::spawn(move || claim_and_retire(&cell, &runs, &drops, &countdown))
        };
        let canceller = {
            let cell = Arc::clone(&cell);
            thread::spawn(move || cell.cancel())
        };

        let ran = worker.join().unwrap();
        let cancel_won = canceller.join().unwrap();

        let runs = runs.load(Ordering::SeqCst);
        let drops = drops.load(Ordering::SeqCst);
        // Invariant 1: run XOR drop.
        assert_eq!(runs + drops, 1, "task must run or drop exactly once");
        // Invariant 2: the countdown reached zero (each fire asserts it was
        // the first inside `claim_and_retire`).
        assert_eq!(countdown.load(Ordering::SeqCst), 0);
        // Invariant 3: a winning cancel() is a never-ran guarantee, and the
        // decided race is coherent from both sides.
        assert_eq!(cancel_won, !ran, "exactly one side wins the CAS race");
        if cancel_won {
            assert_eq!(runs, 0, "task ran although cancel() won");
            assert!(cell.is_cancelled());
        } else {
            assert!(cell.is_claimed());
        }
        seen_in
            .lock()
            .unwrap()
            .insert(if ran { "ran" } else { "dropped" });
    });
    // The exploration must have reached both outcomes of the race,
    // otherwise it never actually interleaved the CASes.
    let seen = seen.lock().unwrap();
    for outcome in ["ran", "dropped"] {
        assert!(
            seen.contains(outcome),
            "exploration never produced a schedule where the task {outcome}: {seen:?}"
        );
    }
}

/// Cancel vs steal: two workers race a CAS for ownership of the node (the
/// linearization point of the deque handoff — only one thread ever owns a
/// node), the winner claim-gates exactly like the pop path, and the
/// canceller races both.  On every interleaving exactly one worker touches
/// the cell, the task runs XOR drops, and the countdown fires once.
#[test]
fn cancel_vs_steal_runs_xor_drops() {
    let seen: Arc<StdMutex<BTreeSet<&'static str>>> = Arc::default();
    let seen_in = Arc::clone(&seen);
    Builder::new().preemption_bound(2).check(move || {
        let cell = Arc::new(CancelCell::new());
        let runs = Arc::new(AtomicUsize::new(0));
        let drops = Arc::new(AtomicUsize::new(0));
        let countdown = Arc::new(AtomicUsize::new(1));
        // The node's single ownership slot: 0 = in the deque, 1 = taken.
        // Stealing is a CAS on this slot; the loser never sees the node.
        let owner = Arc::new(AtomicUsize::new(0));

        let workers: Vec<_> = (0..2)
            .map(|_| {
                let cell = Arc::clone(&cell);
                let runs = Arc::clone(&runs);
                let drops = Arc::clone(&drops);
                let countdown = Arc::clone(&countdown);
                let owner = Arc::clone(&owner);
                thread::spawn(move || {
                    if owner
                        .compare_exchange(0, 1, Ordering::AcqRel, Ordering::Acquire)
                        .is_err()
                    {
                        // Lost the steal: never touches the node again.
                        return None;
                    }
                    Some(claim_and_retire(&cell, &runs, &drops, &countdown))
                })
            })
            .collect();
        let canceller = {
            let cell = Arc::clone(&cell);
            thread::spawn(move || cell.cancel())
        };

        let outcomes: Vec<_> = workers.into_iter().map(|w| w.join().unwrap()).collect();
        let cancel_won = canceller.join().unwrap();

        // Exactly one worker won the steal race…
        assert_eq!(outcomes.iter().filter(|o| o.is_some()).count(), 1);
        let ran = outcomes.into_iter().flatten().next().unwrap();
        // …and the owner's claim gate decided run-vs-drop exactly once.
        let runs = runs.load(Ordering::SeqCst);
        let drops = drops.load(Ordering::SeqCst);
        assert_eq!(runs + drops, 1, "task must run or drop exactly once");
        assert_eq!(countdown.load(Ordering::SeqCst), 0);
        assert_eq!(cancel_won, !ran, "exactly one side wins the CAS race");
        if cancel_won {
            assert_eq!(runs, 0, "task ran although cancel() won");
        }
        seen_in
            .lock()
            .unwrap()
            .insert(if ran { "ran" } else { "dropped" });
    });
    let seen = seen.lock().unwrap();
    for outcome in ["ran", "dropped"] {
        assert!(
            seen.contains(outcome),
            "exploration never produced a schedule where the task {outcome}: {seen:?}"
        );
    }
}

/// Batch sweep vs claiming workers: two tasks each carry their **own**
/// cell (the `submit_with` shape — a shared `CancelToken` is a registry
/// over per-task cells, never one cell), a worker per task claim-gates,
/// and the sweeper cancels the cells in registry order like
/// `CancelToken::cancel`.  On every interleaving each task independently
/// runs XOR drops with its countdown firing exactly once, the sweep's
/// "won at least one race" answer matches the per-cell outcomes, and —
/// the regression this models — a task whose race the sweep *lost* still
/// ran even when its batch sibling was dropped.
#[test]
fn batch_sweep_decides_each_task_independently() {
    let seen: Arc<StdMutex<BTreeSet<u32>>> = Arc::default();
    let seen_in = Arc::clone(&seen);
    Builder::new().preemption_bound(2).check(move || {
        let cells: Vec<_> = (0..2).map(|_| Arc::new(CancelCell::new())).collect();
        let runs: Vec<_> = (0..2).map(|_| Arc::new(AtomicUsize::new(0))).collect();
        let drops: Vec<_> = (0..2).map(|_| Arc::new(AtomicUsize::new(0))).collect();
        let countdowns: Vec<_> = (0..2).map(|_| Arc::new(AtomicUsize::new(1))).collect();

        let workers: Vec<_> = (0..2)
            .map(|i| {
                let cell = Arc::clone(&cells[i]);
                let runs = Arc::clone(&runs[i]);
                let drops = Arc::clone(&drops[i]);
                let countdown = Arc::clone(&countdowns[i]);
                thread::spawn(move || claim_and_retire(&cell, &runs, &drops, &countdown))
            })
            .collect();
        let sweeper = {
            let cells = cells.clone();
            thread::spawn(move || {
                // `CancelToken::cancel`: sweep the registry, reporting
                // whether any per-task race was won.
                let mut won = false;
                for cell in &cells {
                    won |= cell.cancel();
                }
                won
            })
        };

        let ran: Vec<bool> = workers.into_iter().map(|w| w.join().unwrap()).collect();
        let sweep_won = sweeper.join().unwrap();

        let mut ran_count = 0u32;
        for i in 0..2 {
            let runs = runs[i].load(Ordering::SeqCst);
            let drops = drops[i].load(Ordering::SeqCst);
            assert_eq!(runs + drops, 1, "task {i} must run or drop exactly once");
            assert_eq!(countdowns[i].load(Ordering::SeqCst), 0);
            // Per-task coherence: ran ⇔ claimed, dropped ⇔ the sweep won.
            assert_eq!(ran[i], cells[i].is_claimed());
            assert_eq!(!ran[i], cells[i].is_cancelled());
            ran_count += u32::from(ran[i]);
        }
        assert_eq!(
            sweep_won,
            ran_count < 2,
            "the sweep won at least one race iff some task did not run"
        );
        seen_in.lock().unwrap().insert(ran_count);
    });
    // The exploration must reach full survival (sweep lost both races —
    // the old shared-cell bug made this impossible), full cancellation,
    // and the mixed outcome.
    let seen = seen.lock().unwrap();
    for ran_count in 0..=2 {
        assert!(
            seen.contains(&ran_count),
            "exploration never produced a schedule where {ran_count} of 2 batch tasks ran: {seen:?}"
        );
    }
}

/// Expiry vs cancel: the node's exclusive owner observed the deadline
/// lapsed and settles the cell with `expire()` (the `retire_if_stale`
/// shape — it first probes `is_cancelled`, then expires and drops), while
/// an external canceller races `cancel()`.  On every interleaving the
/// task never runs, it is retired exactly once, exactly one transition
/// wins the cell, and the attribution both sides report is coherent:
/// `cancel() == true ⇔ is_cancelled()`, else the cell reads expired.
#[test]
fn expiry_vs_cancel_settles_coherently() {
    let seen: Arc<StdMutex<BTreeSet<&'static str>>> = Arc::default();
    let seen_in = Arc::clone(&seen);
    Builder::new().preemption_bound(2).check(move || {
        let cell = Arc::new(CancelCell::new());
        let countdown = Arc::new(AtomicUsize::new(1));

        let owner = {
            let cell = Arc::clone(&cell);
            let countdown = Arc::clone(&countdown);
            thread::spawn(move || {
                // `retire_if_stale` with a lapsed deadline: probe the
                // cancel fast path, then settle to Expired; the task is
                // dropped (never claimed) on both branches.
                let expired = if cell.is_cancelled() {
                    false
                } else {
                    cell.expire()
                };
                let prev = countdown.fetch_sub(1, Ordering::SeqCst);
                assert_eq!(prev, 1, "scope countdown fired more than once");
                expired
            })
        };
        let canceller = {
            let cell = Arc::clone(&cell);
            thread::spawn(move || cell.cancel())
        };

        let expired = owner.join().unwrap();
        let cancel_won = canceller.join().unwrap();

        assert_eq!(countdown.load(Ordering::SeqCst), 0);
        // Exactly one transition settled the cell, and everyone agrees
        // which: a winning cancel() is the only way is_cancelled() turns
        // true; otherwise the owner's expire() won.
        assert!(expired ^ cancel_won, "exactly one side settles the cell");
        assert_eq!(cancel_won, cell.is_cancelled());
        assert_eq!(expired, cell.is_expired());
        assert!(!cell.is_claimed(), "a stale task is never claimed");
        seen_in
            .lock()
            .unwrap()
            .insert(if expired { "expired" } else { "cancelled" });
    });
    let seen = seen.lock().unwrap();
    for outcome in ["expired", "cancelled"] {
        assert!(
            seen.contains(outcome),
            "exploration never produced a schedule where the task {outcome}: {seen:?}"
        );
    }
}
