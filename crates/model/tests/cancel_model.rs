//! Model-checked tests for the cancellation claim-to-run cell
//! (`DESIGN.md` §17).
//!
//! The protocol under test is the real one: [`CancelCell`] is built on the
//! `teamsteal_util::sync` shim, so under `--cfg teamsteal_model` its CASes
//! run on the explorer's virtual atomics and every interleaving of a
//! canceller against the worker that owns the node is enumerated.  The
//! invariants are the run-XOR-drop guarantee the scheduler relies on:
//!
//! 1. **Run XOR drop**: on every schedule the task either executes exactly
//!    once or is retired without running exactly once — never both, never
//!    neither.
//! 2. **Exactly-once retirement**: the scope countdown (`finish_node`'s
//!    `participants` decrement in the real scheduler) fires exactly once
//!    regardless of which side won.
//! 3. **Cancel is a guarantee**: when `cancel()` returns `true` (it
//!    observed the cell un-`Claimed` and won the CAS), the task never runs.
//!
//! Both races from the worker loop are covered: *cancel vs pop* (the
//! canceller against the exclusive owner claiming at `pop`/`run_singleton`
//! time) and *cancel vs steal* (the canceller against two workers racing
//! for node ownership through the deque, the winner of which claim-gates).
//!
//! Run with `RUSTFLAGS='--cfg teamsteal_model' cargo test -p teamsteal-model`.
#![cfg(teamsteal_model)]

use std::collections::BTreeSet;
use std::sync::{Arc, Mutex as StdMutex};

use teamsteal_core::CancelCell;
use teamsteal_model::{thread, Builder};
use teamsteal_util::sync::atomic::{AtomicUsize, Ordering};

/// The worker-side claim gate, shaped exactly like
/// `worker::claim_for_run` + `finish_node`: claim, then run or drop, then
/// retire the node exactly once either way.  Returns `(ran, dropped)`.
fn claim_and_retire(
    cell: &CancelCell,
    runs: &AtomicUsize,
    drops: &AtomicUsize,
    countdown: &AtomicUsize,
) -> bool {
    let ran = if cell.try_claim() {
        runs.fetch_add(1, Ordering::SeqCst);
        true
    } else {
        // Cancelled first: retire without running.
        drops.fetch_add(1, Ordering::SeqCst);
        false
    };
    // `finish_node`: the scope countdown fires on both paths, once.
    let prev = countdown.fetch_sub(1, Ordering::SeqCst);
    assert_eq!(prev, 1, "scope countdown fired more than once");
    ran
}

/// Cancel vs pop: one worker exclusively owns the node (it popped it from
/// its own deque or the injector) and claim-gates before running, while
/// the submitter's thread races `cancel()`.  On every interleaving the
/// task runs XOR is dropped, the countdown fires exactly once, and a
/// winning `cancel()` means the task never ran.
#[test]
fn cancel_vs_pop_runs_xor_drops() {
    let seen: Arc<StdMutex<BTreeSet<&'static str>>> = Arc::default();
    let seen_in = Arc::clone(&seen);
    Builder::new().preemption_bound(2).check(move || {
        let cell = Arc::new(CancelCell::new());
        let runs = Arc::new(AtomicUsize::new(0));
        let drops = Arc::new(AtomicUsize::new(0));
        let countdown = Arc::new(AtomicUsize::new(1));

        let worker = {
            let cell = Arc::clone(&cell);
            let runs = Arc::clone(&runs);
            let drops = Arc::clone(&drops);
            let countdown = Arc::clone(&countdown);
            thread::spawn(move || claim_and_retire(&cell, &runs, &drops, &countdown))
        };
        let canceller = {
            let cell = Arc::clone(&cell);
            thread::spawn(move || cell.cancel())
        };

        let ran = worker.join().unwrap();
        let cancel_won = canceller.join().unwrap();

        let runs = runs.load(Ordering::SeqCst);
        let drops = drops.load(Ordering::SeqCst);
        // Invariant 1: run XOR drop.
        assert_eq!(runs + drops, 1, "task must run or drop exactly once");
        // Invariant 2: the countdown reached zero (each fire asserts it was
        // the first inside `claim_and_retire`).
        assert_eq!(countdown.load(Ordering::SeqCst), 0);
        // Invariant 3: a winning cancel() is a never-ran guarantee, and the
        // decided race is coherent from both sides.
        assert_eq!(cancel_won, !ran, "exactly one side wins the CAS race");
        if cancel_won {
            assert_eq!(runs, 0, "task ran although cancel() won");
            assert!(cell.is_cancelled());
        } else {
            assert!(cell.is_claimed());
        }
        seen_in
            .lock()
            .unwrap()
            .insert(if ran { "ran" } else { "dropped" });
    });
    // The exploration must have reached both outcomes of the race,
    // otherwise it never actually interleaved the CASes.
    let seen = seen.lock().unwrap();
    for outcome in ["ran", "dropped"] {
        assert!(
            seen.contains(outcome),
            "exploration never produced a schedule where the task {outcome}: {seen:?}"
        );
    }
}

/// Cancel vs steal: two workers race a CAS for ownership of the node (the
/// linearization point of the deque handoff — only one thread ever owns a
/// node), the winner claim-gates exactly like the pop path, and the
/// canceller races both.  On every interleaving exactly one worker touches
/// the cell, the task runs XOR drops, and the countdown fires once.
#[test]
fn cancel_vs_steal_runs_xor_drops() {
    let seen: Arc<StdMutex<BTreeSet<&'static str>>> = Arc::default();
    let seen_in = Arc::clone(&seen);
    Builder::new().preemption_bound(2).check(move || {
        let cell = Arc::new(CancelCell::new());
        let runs = Arc::new(AtomicUsize::new(0));
        let drops = Arc::new(AtomicUsize::new(0));
        let countdown = Arc::new(AtomicUsize::new(1));
        // The node's single ownership slot: 0 = in the deque, 1 = taken.
        // Stealing is a CAS on this slot; the loser never sees the node.
        let owner = Arc::new(AtomicUsize::new(0));

        let workers: Vec<_> = (0..2)
            .map(|_| {
                let cell = Arc::clone(&cell);
                let runs = Arc::clone(&runs);
                let drops = Arc::clone(&drops);
                let countdown = Arc::clone(&countdown);
                let owner = Arc::clone(&owner);
                thread::spawn(move || {
                    if owner
                        .compare_exchange(0, 1, Ordering::AcqRel, Ordering::Acquire)
                        .is_err()
                    {
                        // Lost the steal: never touches the node again.
                        return None;
                    }
                    Some(claim_and_retire(&cell, &runs, &drops, &countdown))
                })
            })
            .collect();
        let canceller = {
            let cell = Arc::clone(&cell);
            thread::spawn(move || cell.cancel())
        };

        let outcomes: Vec<_> = workers.into_iter().map(|w| w.join().unwrap()).collect();
        let cancel_won = canceller.join().unwrap();

        // Exactly one worker won the steal race…
        assert_eq!(outcomes.iter().filter(|o| o.is_some()).count(), 1);
        let ran = outcomes.into_iter().flatten().next().unwrap();
        // …and the owner's claim gate decided run-vs-drop exactly once.
        let runs = runs.load(Ordering::SeqCst);
        let drops = drops.load(Ordering::SeqCst);
        assert_eq!(runs + drops, 1, "task must run or drop exactly once");
        assert_eq!(countdown.load(Ordering::SeqCst), 0);
        assert_eq!(cancel_won, !ran, "exactly one side wins the CAS race");
        if cancel_won {
            assert_eq!(runs, 0, "task ran although cancel() won");
        }
        seen_in
            .lock()
            .unwrap()
            .insert(if ran { "ran" } else { "dropped" });
    });
    let seen = seen.lock().unwrap();
    for outcome in ["ran", "dropped"] {
        assert!(
            seen.contains(outcome),
            "exploration never produced a schedule where the task {outcome}: {seen:?}"
        );
    }
}
