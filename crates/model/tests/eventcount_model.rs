//! Model-checked tests for the eventcount parking protocol (`DESIGN.md`
//! §10 and §12).
//!
//! The central invariant is *no lost wakeup*: whatever the interleaving of
//! a producer's publish→notify against a waiter's prepare→recheck→park,
//! the waiter never sleeps through the notification — it either sees the
//! published state on its recheck, aborts the park on the ticket bump, or
//! is explicitly claimed.  The defensive backstop (§12) is tested with a
//! deliberately *dropped* notification: the fault hook swallows the whole
//! notify, and only the backstop timeout saves the schedule from a hang.
//!
//! Run with `RUSTFLAGS='--cfg teamsteal_model' cargo test -p teamsteal-model`.
#![cfg(teamsteal_model)]

use std::collections::BTreeSet;
use std::sync::atomic::{AtomicUsize as StdAtomicUsize, Ordering as StdOrdering};
use std::sync::{Arc, Mutex as StdMutex};
use std::time::Duration;

use teamsteal_model::{thread, Builder};
use teamsteal_util::eventcount::{EventCount, ParkClass, WakeReason};
use teamsteal_util::sync::atomic::{AtomicUsize, Ordering};

/// The backstop used by every test: long enough that it can only fire via
/// the model's nothing-else-runnable timeout escape, never en passant.
const BACKSTOP: Duration = Duration::from_millis(10);

/// Exhaustive no-lost-wakeup: one producer publishes a flag and notifies;
/// one waiter runs prepare→recheck→park.  On no interleaving may the park
/// end in `Backstop` — that would mean the waiter slept through the only
/// notification.
#[test]
fn publish_then_notify_is_never_lost() {
    let seen: Arc<StdMutex<BTreeSet<&'static str>>> = Arc::default();
    let seen_in = Arc::clone(&seen);
    Builder::new().check(move || {
        let ec = Arc::new(EventCount::new(1));
        let work = Arc::new(AtomicUsize::new(0));
        let waiter = {
            let ec = Arc::clone(&ec);
            let work = Arc::clone(&work);
            thread::spawn(move || {
                let mut wakes = Vec::new();
                // One notification exists, so at most one TicketChanged and
                // one Notified can occur before the recheck must succeed.
                for _ in 0..4 {
                    let ticket = ec.prepare_wait();
                    if work.load(Ordering::SeqCst) == 1 {
                        return wakes;
                    }
                    match ec.park(0, ticket, ParkClass::Idle, BACKSTOP) {
                        WakeReason::Backstop => {
                            panic!("lost wakeup: backstop fired despite a notification")
                        }
                        WakeReason::Notified(_) => wakes.push("notified"),
                        WakeReason::TicketChanged => wakes.push("ticket"),
                    }
                }
                panic!("waiter still parked after the only notification: {wakes:?}")
            })
        };
        let producer = {
            let ec = Arc::clone(&ec);
            let work = Arc::clone(&work);
            thread::spawn(move || {
                work.store(1, Ordering::SeqCst);
                ec.notify_one_idle();
            })
        };
        let wakes = waiter.join().unwrap();
        producer.join().unwrap();
        let mut seen = seen_in.lock().unwrap();
        if wakes.is_empty() {
            seen.insert("recheck");
        }
        for w in wakes {
            seen.insert(w);
        }
    });
    // The exploration must reach all three ways the protocol avoids the
    // lost wakeup; missing one means the model lost interleavings.
    let seen = seen.lock().unwrap();
    for way in ["recheck", "ticket", "notified"] {
        assert!(seen.contains(way), "exploration never hit the {way} path: {seen:?}");
    }
}

/// The scheduler-shaped composition (§10): the producer pushes into an
/// injection queue and notifies only because the push observed the queue
/// empty; the waiter parks only after its recheck (`try_pop`) misses.
/// The waiter must obtain the value on every interleaving.
#[test]
fn push_observed_empty_wakes_the_parked_popper() {
    use teamsteal_deque::{Injector, Steal};
    Builder::new().preemption_bound(2).check(|| {
        let ec = Arc::new(EventCount::new(1));
        let inj = Arc::new(Injector::new());
        let waiter = {
            let ec = Arc::clone(&ec);
            let inj = Arc::clone(&inj);
            thread::spawn(move || {
                for _ in 0..6 {
                    let ticket = ec.prepare_wait();
                    match inj.try_pop() {
                        Steal::Stolen(v) => return v,
                        Steal::Empty | Steal::Retry => {}
                    }
                    if let WakeReason::Backstop = ec.park(0, ticket, ParkClass::Idle, BACKSTOP) {
                        panic!("lost wakeup: popper slept through push-observed-empty notify");
                    }
                }
                panic!("popper never obtained the pushed value")
            })
        };
        let producer = {
            let ec = Arc::clone(&ec);
            let inj = Arc::clone(&inj);
            thread::spawn(move || {
                let observed_empty = inj.push(7usize);
                assert!(observed_empty, "the only push must observe the queue empty");
                ec.notify_one_idle();
            })
        };
        assert_eq!(waiter.join().unwrap(), 7);
        producer.join().unwrap();
    });
}

/// §12 defensive backstop under fault injection: the producer's only
/// notification is swallowed by [`fault::drop_next_notifies`], so no
/// ticket bump and no claim ever reach the waiter.  A parked waiter can
/// then only be saved by the backstop timeout — the test hanging (model
/// deadlock) instead would mean the backstop is gone.
#[test]
fn dropped_notify_is_rescued_by_the_backstop() {
    use teamsteal_util::sync::fault;
    let rescued = Arc::new(StdAtomicUsize::new(0));
    let rescued_in = Arc::clone(&rescued);
    Builder::new().check(move || {
        let ec = Arc::new(EventCount::new(1));
        let work = Arc::new(AtomicUsize::new(0));
        let waiter = {
            let ec = Arc::clone(&ec);
            let work = Arc::clone(&work);
            thread::spawn(move || {
                let mut backstops = 0usize;
                for _ in 0..4 {
                    let ticket = ec.prepare_wait();
                    if work.load(Ordering::SeqCst) == 1 {
                        return backstops;
                    }
                    match ec.park(0, ticket, ParkClass::Idle, BACKSTOP) {
                        WakeReason::Backstop => backstops += 1,
                        other => panic!(
                            "the notification was dropped, yet the waiter woke via {other:?}"
                        ),
                    }
                }
                panic!("waiter kept missing the published flag after backstop wakes")
            })
        };
        let producer = {
            let ec = Arc::clone(&ec);
            let work = Arc::clone(&work);
            thread::spawn(move || {
                work.store(1, Ordering::SeqCst);
                fault::drop_next_notifies(1);
                assert!(!ec.notify_one_idle(), "a dropped notify must claim nobody");
            })
        };
        let backstops = waiter.join().unwrap();
        producer.join().unwrap();
        rescued_in.fetch_add(backstops, StdOrdering::SeqCst);
    });
    assert!(
        rescued.load(StdOrdering::SeqCst) > 0,
        "no schedule ever parked into the dropped notification — the fault was not exercised"
    );
}
