//! Property test: seeded random-walk exploration is perfectly replayable.
//!
//! For any seed, the schedule string a random walk reports must drive
//! `replay` through the identical interleaving — byte-identical traces on
//! every re-execution.  This is the property the failure workflow rests
//! on: a schedule printed by a failing CI run must reproduce locally.
//!
//! Unlike the protocol tests this file is not gated on
//! `--cfg teamsteal_model`: it exercises the explorer itself, which always
//! builds.

use proptest::prelude::*;
use std::sync::Arc;

use teamsteal_model::sync::atomic::{AtomicUsize, Ordering};
use teamsteal_model::{random_walk, replay, thread};

/// A small racy program with schedule-dependent behavior: two writers race
/// a read-modify-write-free increment while the root reads.  Every atomic
/// op is a yield point, so distinct schedules produce distinct traces.
fn racy_program() {
    let counter = Arc::new(AtomicUsize::new(0));
    let writers: Vec<_> = (0..2)
        .map(|_| {
            let counter = Arc::clone(&counter);
            thread::spawn(move || {
                let seen = counter.load(Ordering::SeqCst);
                counter.store(seen + 1, Ordering::SeqCst);
            })
        })
        .collect();
    let _ = counter.load(Ordering::Relaxed);
    for w in writers {
        w.join().unwrap();
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn random_walks_replay_byte_identically(seed in any::<u64>()) {
        let (schedule, walk_trace) = random_walk(seed, racy_program);
        let replay_once = replay(&schedule, racy_program);
        let replay_twice = replay(&schedule, racy_program);
        prop_assert_eq!(
            &walk_trace, &replay_once,
            "replay of schedule {} diverged from the walk that produced it", schedule
        );
        prop_assert_eq!(
            &replay_once, &replay_twice,
            "two replays of schedule {} diverged from each other", schedule
        );
    }

    #[test]
    fn distinct_seeds_are_reproducible_independently(seed in any::<u64>()) {
        // A second walk from a derived seed must also replay — determinism
        // is per-schedule, not an artifact of one lucky seed.
        let derived = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1);
        let (schedule, trace) = random_walk(derived, racy_program);
        prop_assert_eq!(
            &trace, &replay(&schedule, racy_program),
            "derived-seed schedule {} failed to replay", schedule
        );
    }
}
