//! Model-checked tests for the injection queue (`DESIGN.md` §11).
//!
//! Under `--cfg teamsteal_model` the injector's `SEGMENT_SLOTS` shrinks to
//! 2, so these tiny explorations cross segment boundaries and exercise the
//! reserve/publish/retire protocol, not just the fast path.  The invariants
//! are *exactly-once* (every pushed value is popped or drained exactly
//! once, never duplicated, never lost) and *FIFO per producer* (a single
//! producer's values come out in push order, regardless of interleaving).
//!
//! Run with `RUSTFLAGS='--cfg teamsteal_model' cargo test -p teamsteal-model`.
#![cfg(teamsteal_model)]

use std::sync::Arc;

use teamsteal_deque::injector::Injector;
use teamsteal_deque::Steal;
use teamsteal_model::{thread, Builder};

/// Two producers race their pushes (crossing the 2-slot segment boundary);
/// a quiescent drain afterwards must see every value exactly once and each
/// producer's values in push order.
#[test]
fn concurrent_pushes_are_exactly_once_and_fifo_per_producer() {
    Builder::new().preemption_bound(3).check(|| {
        let inj = Arc::new(Injector::new());
        let producers: Vec<_> = (0..2)
            .map(|p| {
                let inj = Arc::clone(&inj);
                thread::spawn(move || {
                    // Values 10p+0, 10p+1: enough to make the two pushes
                    // straddle a segment boundary in some interleavings.
                    inj.push(10 * p);
                    inj.push(10 * p + 1);
                })
            })
            .collect();
        for h in producers {
            h.join().unwrap();
        }

        let mut drained = Vec::new();
        while let Some(v) = inj.pop() {
            drained.push(v);
        }
        let mut sorted = drained.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 10, 11], "exactly-once violated: {drained:?}");
        for p in 0..2usize {
            let mine: Vec<usize> = drained.iter().copied().filter(|v| v / 10 == p).collect();
            assert_eq!(mine, vec![10 * p, 10 * p + 1], "FIFO per producer violated: {drained:?}");
        }
        assert!(inj.is_empty());
    });
}

/// Two consumers race `try_pop` over a pre-filled queue: each value must be
/// stolen by exactly one consumer, and the values each consumer sees must
/// respect the queue order (consumers interleave, but neither observes a
/// reordering of the single producer's sequence).
#[test]
fn concurrent_pops_take_each_value_once() {
    Builder::new().check(|| {
        let inj = Arc::new(Injector::new());
        // Pre-filled from the root thread: 3 values spanning two segments.
        for v in 0..3usize {
            inj.push(v);
        }
        let consumers: Vec<_> = (0..2)
            .map(|_| {
                let inj = Arc::clone(&inj);
                thread::spawn(move || {
                    let mut got = Vec::new();
                    // Bounded attempts: `Retry` means we lost a race (a
                    // competitor's pop or a segment-retire CAS); anything
                    // this consumer misses is drained by the root below.
                    for _ in 0..8 {
                        match inj.try_pop() {
                            Steal::Stolen(v) => got.push(v),
                            Steal::Empty => break,
                            Steal::Retry => continue,
                        }
                    }
                    got
                })
            })
            .collect();
        let taken: Vec<Vec<usize>> = consumers.into_iter().map(|h| h.join().unwrap()).collect();

        let mut all: Vec<usize> = taken.iter().flatten().copied().collect();
        while let Some(v) = inj.pop() {
            all.push(v);
        }
        let mut sorted = all.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2], "exactly-once violated: {taken:?}");
        for got in &taken {
            assert!(got.windows(2).all(|w| w[0] < w[1]),
                "a consumer observed out-of-order values: {taken:?}");
        }
    });
}

/// A consumer races the producer across a segment boundary: the consumer
/// retires the first segment (taking its last slot) while the producer is
/// still appending.  Exactly-once must survive the retire, and the live
/// chain must shrink back to one segment once drained.
#[test]
fn segment_retire_race_keeps_values_exactly_once() {
    // Stale-`Relaxed` branching is off here: the retire protocol itself is
    // CAS/Acquire-based (SC in the model either way), while the
    // `live_segments` gauge the final assert reads is a deliberately
    // `Relaxed` statistic — branching it over stale values fails the
    // assert without any protocol misbehavior.
    Builder::new().without_stale_reads().preemption_bound(3).check(|| {
        let inj = Arc::new(Injector::new());
        let producer = {
            let inj = Arc::clone(&inj);
            // 3 values with SEGMENT_SLOTS = 2: the third push links a new
            // segment while the consumer may be retiring the first.
            thread::spawn(move || {
                for v in 0..3usize {
                    inj.push(v);
                }
            })
        };
        let consumer = {
            let inj = Arc::clone(&inj);
            thread::spawn(move || {
                let mut got = Vec::new();
                for _ in 0..8 {
                    match inj.try_pop() {
                        Steal::Stolen(v) => got.push(v),
                        Steal::Empty | Steal::Retry => continue,
                    }
                }
                got
            })
        };
        producer.join().unwrap();
        let mut all = consumer.join().unwrap();
        assert!(all.windows(2).all(|w| w[0] < w[1]), "FIFO violated: {all:?}");
        while let Some(v) = inj.pop() {
            all.push(v);
        }
        let mut sorted = all.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2], "exactly-once violated across retire: {all:?}");
        assert_eq!(inj.live_segments(), 1, "drained injector must keep exactly one live segment");
    });
}

/// The sharded facade keeps the per-shard invariants when two producers
/// target different shards: a sweep drains both shards exactly once and
/// FIFO holds within each shard.
#[test]
fn sharded_sweep_drains_each_shard_exactly_once() {
    use teamsteal_deque::sharded::ShardedInjector;
    Builder::new().preemption_bound(2).check(|| {
        let sharded = Arc::new(ShardedInjector::new(2));
        let producers: Vec<_> = (0..2)
            .map(|p| {
                let sharded = Arc::clone(&sharded);
                thread::spawn(move || {
                    sharded.push_to(p, 10 * p);
                    sharded.push_to(p, 10 * p + 1);
                })
            })
            .collect();
        for h in producers {
            h.join().unwrap();
        }
        let mut per_shard: Vec<Vec<usize>> = vec![Vec::new(), Vec::new()];
        while let Some((v, shard)) = sharded.pop_sweep(&[0, 1]) {
            per_shard[shard].push(v);
        }
        assert_eq!(per_shard[0], vec![0, 1]);
        assert_eq!(per_shard[1], vec![10, 11]);
        assert!(sharded.is_empty());
    });
}
