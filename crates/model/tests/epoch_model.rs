//! Model-checked tests for the epoch reclamation domain (`DESIGN.md` §13).
//!
//! Two invariants, each explored exhaustively with 2–3 virtual threads:
//!
//! * **safety** — an object unlinked and deferred into the domain is never
//!   freed while a pinned participant that loaded it is still pinned;
//! * **exactly-once** — every deferred object's destructor runs exactly
//!   once, whether it is freed by a racing `try_collect`, by a later one,
//!   or by the domain's drop.
//!
//! Destructor runs are counted through `std` atomics (invisible to the
//! explorer) so the assertions don't add interleavings of their own.
//!
//! Both tests run with stale-`Relaxed` branching disabled
//! ([`Builder::without_stale_reads`]): the epoch protocol is *fence*-based
//! (`Relaxed` accesses ordered by `SeqCst` fences), and the model treats
//! fences as pure scheduling points — branching `Relaxed` loads over stale
//! values would fabricate executions the real fence pairs forbid (see
//! `DESIGN.md` §14 on this soundness boundary).  Plain SC exploration
//! still covers every *interleaving*-level ordering of the protocol.
//!
//! Run with `RUSTFLAGS='--cfg teamsteal_model' cargo test -p teamsteal-model`.
#![cfg(teamsteal_model)]

use std::ptr;
use std::sync::atomic::{AtomicUsize as StdAtomicUsize, Ordering as StdOrdering};
use std::sync::Arc;

use teamsteal_model::{thread, Builder};
use teamsteal_util::epoch::{Deferred, Domain, ReclaimClass};
use teamsteal_util::sync::atomic::{AtomicPtr, Ordering};

/// Increments a shared counter when dropped; the model tests use it to
/// observe *when* (and how many times) the domain runs a deferred free.
struct Tracked(Arc<StdAtomicUsize>);

impl Drop for Tracked {
    fn drop(&mut self) {
        self.0.fetch_add(1, StdOrdering::SeqCst);
    }
}

/// A pinned reader loads a shared pointer while a writer concurrently
/// unlinks it, defers it, and collects.  On no interleaving may the free
/// run while the reader still holds the pointer under its pin; after the
/// domain is gone the free must have run exactly once.
#[test]
fn pinned_reader_never_overlaps_the_free() {
    Builder::new().without_stale_reads().preemption_bound(2).check(|| {
        let drops = Arc::new(StdAtomicUsize::new(0));
        let domain = Domain::new(2);
        let shared: Arc<AtomicPtr<Tracked>> = Arc::new(AtomicPtr::new(Box::into_raw(
            Box::new(Tracked(Arc::clone(&drops))),
        )));

        let reader = {
            let domain = Arc::clone(&domain);
            let shared = Arc::clone(&shared);
            let drops = Arc::clone(&drops);
            thread::spawn(move || {
                let participant = domain.register().expect("domain has a free slot");
                participant.pin();
                let raw = shared.load(Ordering::SeqCst);
                if !raw.is_null() {
                    // A tracked read between the load and the check gives
                    // the explorer a scheduling point at which the writer's
                    // whole defer+collect sequence can run.
                    let _ = domain.global_epoch();
                    assert_eq!(
                        drops.load(StdOrdering::SeqCst),
                        0,
                        "object freed while a pinned reader still held it"
                    );
                }
                participant.unpin();
            })
        };
        let writer = {
            let domain = Arc::clone(&domain);
            let shared = Arc::clone(&shared);
            thread::spawn(move || {
                let raw = shared.swap(ptr::null_mut(), Ordering::SeqCst);
                assert!(!raw.is_null(), "writer is the only unlinker");
                // SAFETY: `raw` came from `Box::into_raw` above and the swap
                // unlinked it — no new reader can reach it.
                domain.defer(unsafe { Deferred::from_box(raw, ReclaimClass::Segment) });
                for _ in 0..2 {
                    domain.try_collect();
                }
            })
        };
        reader.join().unwrap();
        writer.join().unwrap();

        // Quiescent: nothing is pinned, so the domain (via collect or its
        // drop) must free the object — exactly once.
        domain.try_collect();
        drop(domain);
        assert_eq!(drops.load(StdOrdering::SeqCst), 1, "deferred free must run exactly once");
    });
}

/// Two collectors race `try_collect` over a domain holding two deferred
/// objects.  However the bag-handoff races resolve, each destructor runs
/// exactly once (and never twice — the double-free a lost race would
/// cause).
#[test]
fn racing_collectors_free_each_object_exactly_once() {
    Builder::new().without_stale_reads().preemption_bound(2).check(|| {
        let domain = Domain::new(2);
        let counters: Vec<Arc<StdAtomicUsize>> =
            (0..2).map(|_| Arc::new(StdAtomicUsize::new(0))).collect();
        for counter in &counters {
            let boxed = Box::into_raw(Box::new(Tracked(Arc::clone(counter))));
            // SAFETY: freshly leaked, never shared — trivially unlinked.
            domain.defer(unsafe { Deferred::from_box(boxed, ReclaimClass::Buffer) });
        }

        let collectors: Vec<_> = (0..2)
            .map(|_| {
                let domain = Arc::clone(&domain);
                thread::spawn(move || {
                    domain.try_collect();
                })
            })
            .collect();
        for h in collectors {
            h.join().unwrap();
        }
        drop(domain);
        for (i, counter) in counters.iter().enumerate() {
            assert_eq!(
                counter.load(StdOrdering::SeqCst),
                1,
                "object {i} must be freed exactly once"
            );
        }
    });
}
