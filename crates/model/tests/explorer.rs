//! Self-tests for the mini-loom explorer: it must actually find races,
//! detect deadlocks, respect its pruning knobs, and replay
//! deterministically.  These run in every configuration (they do not
//! need `--cfg teamsteal_model`; that cfg only switches the *protocol
//! crates* onto the model types).

use std::collections::BTreeSet;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Mutex as StdMutex};
use teamsteal_model::sync::atomic::{AtomicUsize, Ordering};
use teamsteal_model::sync::{Condvar, Mutex};
use teamsteal_model::{model, random_walk, replay, thread, Builder};

/// The classic lost-update race: two threads doing load-then-store must
/// exhibit both final values 1 (lost update) and 2 under exhaustive
/// exploration.  This is the canary that the DFS really interleaves.
#[test]
fn finds_lost_update() {
    let outcomes: Arc<StdMutex<BTreeSet<usize>>> = Arc::new(StdMutex::new(BTreeSet::new()));
    let sink = Arc::clone(&outcomes);
    let report = model(move || {
        let x = Arc::new(AtomicUsize::new(0));
        let x2 = Arc::clone(&x);
        let t = thread::spawn(move || {
            let v = x2.load(Ordering::SeqCst);
            x2.store(v + 1, Ordering::SeqCst);
        });
        let v = x.load(Ordering::SeqCst);
        x.store(v + 1, Ordering::SeqCst);
        t.join().unwrap();
        sink.lock().unwrap().insert(x.load(Ordering::SeqCst));
    });
    assert!(!report.truncated);
    assert!(report.schedules >= 2, "only {} schedules explored", report.schedules);
    let outcomes = outcomes.lock().unwrap();
    assert_eq!(*outcomes, BTreeSet::from([1, 2]), "missed an interleaving: {outcomes:?}");
}

/// Atomic RMWs never lose updates; the model must agree.
#[test]
fn rmw_is_atomic() {
    model(|| {
        let x = Arc::new(AtomicUsize::new(0));
        let x2 = Arc::clone(&x);
        let t = thread::spawn(move || {
            x2.fetch_add(1, Ordering::SeqCst);
        });
        x.fetch_add(1, Ordering::SeqCst);
        t.join().unwrap();
        assert_eq!(x.load(Ordering::SeqCst), 2);
    });
}

/// Sleep-set pruning must not lose outcomes: the pruned exploration sees
/// the same set of final values as the unpruned one, with no more
/// schedules.
#[test]
fn sleep_sets_preserve_outcomes() {
    fn explore(b: Builder) -> (BTreeSet<(usize, usize)>, usize) {
        let outcomes: Arc<StdMutex<BTreeSet<(usize, usize)>>> =
            Arc::new(StdMutex::new(BTreeSet::new()));
        let sink = Arc::clone(&outcomes);
        let report = b.check(move || {
            let x = Arc::new(AtomicUsize::new(0));
            let y = Arc::new(AtomicUsize::new(0));
            let (x2, y2) = (Arc::clone(&x), Arc::clone(&y));
            let t = thread::spawn(move || {
                x2.store(1, Ordering::SeqCst);
                let seen_y = y2.load(Ordering::SeqCst);
                x2.store(seen_y + 10, Ordering::SeqCst);
            });
            y.store(1, Ordering::SeqCst);
            let seen_x = x.load(Ordering::SeqCst);
            t.join().unwrap();
            sink.lock().unwrap().insert((seen_x, x.load(Ordering::SeqCst)));
        });
        let got = outcomes.lock().unwrap().clone();
        (got, report.schedules)
    }
    let (with_sleep, n_with) = explore(Builder::new());
    let (without_sleep, n_without) = explore(Builder::new().without_sleep_sets());
    assert_eq!(with_sleep, without_sleep);
    assert!(
        n_with <= n_without,
        "sleep sets explored more ({n_with}) than brute force ({n_without})"
    );
}

/// The preemption bound must actually cap the schedule count, and a
/// tighter bound must explore no more than a looser one.
#[test]
fn preemption_bound_caps_schedules() {
    fn count(b: Builder) -> usize {
        b.check(|| {
            let x = Arc::new(AtomicUsize::new(0));
            let x2 = Arc::clone(&x);
            let t = thread::spawn(move || {
                for _ in 0..3 {
                    x2.fetch_add(1, Ordering::SeqCst);
                }
            });
            for _ in 0..3 {
                x.fetch_add(1, Ordering::SeqCst);
            }
            t.join().unwrap();
        })
        .schedules
    }
    // Disable sleep sets so the counts reflect the preemption bound alone.
    let unbounded = count(Builder::new().without_sleep_sets());
    let bound_1 = count(Builder::new().without_sleep_sets().preemption_bound(1));
    let bound_0 = count(Builder::new().without_sleep_sets().preemption_bound(0));
    assert!(
        bound_0 < bound_1 && bound_1 < unbounded,
        "bounds failed to prune: p0={bound_0} p1={bound_1} unbounded={unbounded}"
    );
    // With no preemptions allowed, only forced switches (blocking/finish)
    // remain: there is exactly one schedule per spawn-order arrangement.
    assert!(bound_0 <= 4, "preemption bound 0 still explored {bound_0} schedules");
}

/// ABBA lock ordering must be reported as a deadlock, not a hang.
#[test]
fn detects_deadlock() {
    let err = catch_unwind(AssertUnwindSafe(|| {
        model(|| {
            let a = Arc::new(Mutex::new(()));
            let b = Arc::new(Mutex::new(()));
            let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
            let t = thread::spawn(move || {
                let _ga = a2.lock().unwrap();
                let _gb = b2.lock().unwrap();
            });
            let _gb = b.lock().unwrap();
            let _ga = a.lock().unwrap();
            drop((_gb, _ga));
            t.join().unwrap();
        });
    }))
    .expect_err("ABBA deadlock went undetected");
    let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
    assert!(msg.contains("deadlock"), "unexpected failure message: {msg}");
}

/// A panic inside a virtual thread surfaces as a model failure that
/// names the schedule.
#[test]
fn reports_assertion_failures_with_schedule() {
    let err = catch_unwind(AssertUnwindSafe(|| {
        model(|| {
            let x = Arc::new(AtomicUsize::new(0));
            let x2 = Arc::clone(&x);
            let t = thread::spawn(move || {
                let v = x2.load(Ordering::SeqCst);
                x2.store(v + 1, Ordering::SeqCst);
            });
            let v = x.load(Ordering::SeqCst);
            x.store(v + 1, Ordering::SeqCst);
            t.join().unwrap();
            // Fails on the lost-update interleaving.
            assert_eq!(x.load(Ordering::SeqCst), 2, "lost update");
        });
    }))
    .expect_err("racy assertion never failed");
    let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
    assert!(msg.contains("schedule:"), "failure report lacks schedule: {msg}");
    assert!(msg.contains("lost update"), "failure report lacks panic message: {msg}");
}

/// A `Relaxed` load may observe one stale value; a `SeqCst` load of the
/// same history may not.  This is the branching that makes weakening a
/// protocol-critical ordering observable (DESIGN.md §14).
#[test]
fn relaxed_loads_branch_over_stale_values() {
    fn observed(relaxed: bool) -> BTreeSet<usize> {
        let outcomes: Arc<StdMutex<BTreeSet<usize>>> = Arc::new(StdMutex::new(BTreeSet::new()));
        let sink = Arc::clone(&outcomes);
        model(move || {
            let x = Arc::new(AtomicUsize::new(0));
            let x2 = Arc::clone(&x);
            let t = thread::spawn(move || {
                x2.store(1, Ordering::SeqCst);
            });
            // Force the store to happen first, then read.
            t.join().unwrap();
            let order = if relaxed { Ordering::Relaxed } else { Ordering::SeqCst };
            sink.lock().unwrap().insert(x.load(order));
        });
        Arc::try_unwrap(outcomes).unwrap().into_inner().unwrap()
    }
    assert_eq!(observed(false), BTreeSet::from([1]), "SeqCst load saw a stale value");
    assert_eq!(
        observed(true),
        BTreeSet::from([0, 1]),
        "Relaxed load never branched to the stale value"
    );
}

/// Virtual-time semantics: a timed condvar wait with nothing else
/// runnable escapes via its deadline instead of deadlocking, and the
/// virtual clock advances to the deadline.
#[test]
fn timed_wait_escapes_idle_system() {
    model(|| {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let start = teamsteal_model::time::Instant::now();
        let (lock, cv) = &*pair;
        let guard = lock.lock().unwrap();
        let (guard, res) = cv
            .wait_timeout(guard, std::time::Duration::from_millis(5))
            .unwrap();
        assert!(res.timed_out());
        assert!(!*guard);
        assert!(
            start.elapsed() >= std::time::Duration::from_millis(5),
            "clock did not jump to the deadline"
        );
    });
}

/// Notify wakes a parked waiter and the handshake completes without the
/// timeout path.
#[test]
fn notify_wakes_waiter() {
    model(|| {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let t = thread::spawn(move || {
            let (lock, cv) = &*pair2;
            let mut ready = lock.lock().unwrap();
            *ready = true;
            drop(ready);
            cv.notify_one();
        });
        let (lock, cv) = &*pair;
        let mut guard = lock.lock().unwrap();
        let mut timed_out = false;
        while !*guard {
            let (g, res) = cv
                .wait_timeout(guard, std::time::Duration::from_secs(1))
                .unwrap();
            guard = g;
            timed_out = res.timed_out();
        }
        drop(guard);
        t.join().unwrap();
        // The producer can only set the flag while holding the mutex, so
        // any waiter that parked is woken by the notify — the timeout
        // backstop is never needed in this protocol.
        assert!(!timed_out, "waiter woke via timeout despite a delivered notify");
    });
}

/// Same schedule string ⇒ identical trace, twice over.
#[test]
fn replay_is_deterministic() {
    fn scenario() -> impl Fn() + Send + Sync + 'static {
        || {
            let x = Arc::new(AtomicUsize::new(0));
            let y = Arc::new(AtomicUsize::new(0));
            let (x2, y2) = (Arc::clone(&x), Arc::clone(&y));
            let t = thread::spawn(move || {
                x2.fetch_add(1, Ordering::SeqCst);
                y2.store(x2.load(Ordering::Relaxed), Ordering::SeqCst);
            });
            y.fetch_add(10, Ordering::SeqCst);
            x.store(y.load(Ordering::Relaxed) + 5, Ordering::SeqCst);
            t.join().unwrap();
        }
    }
    for seed in [1u64, 7, 42, 1234, 99999] {
        let (schedule, trace) = random_walk(seed, scenario());
        let replayed_a = replay(&schedule, scenario());
        let replayed_b = replay(&schedule, scenario());
        assert_eq!(replayed_a, replayed_b, "replay diverged from itself (seed {seed})");
        assert_eq!(trace, replayed_a, "replay diverged from original walk (seed {seed})");
    }
}

/// Random-walk mode is seeded: same seed ⇒ same schedule; different
/// seeds explore different schedules (statistically).
#[test]
fn random_walks_are_seeded() {
    fn scenario() -> impl Fn() + Send + Sync + 'static {
        || {
            let x = Arc::new(AtomicUsize::new(0));
            let x2 = Arc::clone(&x);
            let t = thread::spawn(move || {
                for _ in 0..4 {
                    x2.fetch_add(1, Ordering::SeqCst);
                }
            });
            for _ in 0..4 {
                x.fetch_add(1, Ordering::SeqCst);
            }
            t.join().unwrap();
        }
    }
    let (s1, _) = random_walk(7, scenario());
    let (s1b, _) = random_walk(7, scenario());
    assert_eq!(s1, s1b);
    let distinct: BTreeSet<String> =
        (0..16).map(|seed| random_walk(seed, scenario()).0).collect();
    assert!(distinct.len() > 1, "all seeds produced the same walk");
}

/// The schedule budget is enforced (and reported as truncation when
/// allowed) — this is what keeps the CI model job bounded.
#[test]
fn schedule_budget_truncates() {
    let report = Builder::new()
        .max_schedules(5)
        .allow_truncation()
        .check(|| {
            let x = Arc::new(AtomicUsize::new(0));
            let x2 = Arc::clone(&x);
            let t = thread::spawn(move || {
                for _ in 0..6 {
                    x2.fetch_add(1, Ordering::SeqCst);
                }
            });
            for _ in 0..6 {
                x.fetch_add(1, Ordering::SeqCst);
            }
            t.join().unwrap();
        });
    assert!(report.truncated);
    assert_eq!(report.schedules, 5);
}
