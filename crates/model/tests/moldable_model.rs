//! Model-checked tests for the moldable-team warm-reuse and elastic-shrink
//! protocols (`DESIGN.md` §15).
//!
//! Three properties, each explored over every interleaving:
//!
//! * **No torn reuse** — [`AtomicRegistration::try_reuse`] racing a
//!   `disband` either claims the *intact* pre-disband team (all four
//!   counters from before the renewal) or reports `Incompatible` against
//!   the renewed singleton.  A half-disbanded team is unobservable because
//!   the word is a single 64-bit load.
//! * **Exactly-once member release, no lost wakeup** — a pooled member
//!   parked handshake-style on the eventcount must observe an elastic
//!   disband on every schedule: it wakes via recheck, ticket bump, or the
//!   slot notification, releases itself exactly once, and never sleeps
//!   into the backstop.
//! * **Warm publication reaches the pooled member** — the reuse fast path
//!   (one `try_reuse` claim, one publication bump, one slot notify)
//!   delivers the next task to a parked member on every interleaving,
//!   with the registration word still encoding the formed team at claim
//!   time.
//!
//! Run with `RUSTFLAGS='--cfg teamsteal_model' cargo test -p teamsteal-model`.
#![cfg(teamsteal_model)]

use std::collections::BTreeSet;
use std::sync::{Arc, Mutex as StdMutex};
use std::time::Duration;

use teamsteal_model::{thread, Builder};
use teamsteal_registration::{AtomicRegistration, ReuseOutcome};
use teamsteal_util::eventcount::{EventCount, ParkClass, WakeReason};
use teamsteal_util::sync::atomic::{AtomicUsize, Ordering};

/// Backstop long enough that it can only fire through the model's
/// nothing-else-runnable timeout escape, never en passant.
const BACKSTOP: Duration = Duration::from_millis(10);

/// Builds a formed two-thread team (`t = a = r = 2`) the way the scheduler
/// does: announce, register, form.  Returns the word and the counter the
/// team was formed under.
fn formed_pair() -> (Arc<AtomicRegistration>, u16) {
    let word = Arc::new(AtomicRegistration::new());
    word.push_requirement(2);
    match word.try_acquire(2) {
        teamsteal_registration::AcquireOutcome::Registered(_) => {}
        other => panic!("uncontended acquire failed: {other:?}"),
    }
    let teamed = word.try_form_team().expect("complete word must form a team");
    (word, teamed.counter)
}

/// The warm-reuse claim races a disband (shutdown or elastic shrink
/// deciding against the pool).  `Reused` must hand back the *intact*
/// pre-disband team — same size, same renewal counter — and
/// `Incompatible` must show the renewed singleton.  Nothing in between is
/// observable, and both orders must be reached by the exploration.
#[test]
fn reuse_claim_vs_disband_is_atomic() {
    let saw: Arc<StdMutex<BTreeSet<&'static str>>> = Arc::default();
    let saw_in = Arc::clone(&saw);
    let report = Builder::new().check(move || {
        let (word, counter) = formed_pair();

        let reuser = {
            let word = Arc::clone(&word);
            thread::spawn(move || word.try_reuse(2))
        };
        let disbander = {
            let word = Arc::clone(&word);
            thread::spawn(move || word.disband())
        };
        let claim = reuser.join().unwrap();
        let after = disbander.join().unwrap();
        assert!(after.is_well_formed(), "torn post-disband word: {after:?}");
        assert_eq!((after.teamed, after.required, after.counter), (1, 1, counter + 1));

        let how = match claim {
            ReuseOutcome::Reused(snap) => {
                // The claim won: it must have seen the whole team exactly
                // as formed, counter included — never a partial renewal.
                assert!(snap.is_well_formed(), "torn reuse snapshot: {snap:?}");
                assert_eq!(
                    (snap.teamed, snap.acquired, snap.required, snap.counter),
                    (2, 2, 2, counter),
                    "reuse claimed a torn team: {snap:?}"
                );
                "reused"
            }
            ReuseOutcome::Incompatible(snap) => {
                assert!(snap.is_well_formed(), "torn refusal snapshot: {snap:?}");
                assert_eq!(
                    (snap.teamed, snap.counter),
                    (1, counter + 1),
                    "refusal must have seen the completed disband: {snap:?}"
                );
                "cold"
            }
        };
        saw_in.lock().unwrap().insert(how);
    });
    let saw = saw.lock().unwrap();
    assert!(
        saw.contains("reused") && saw.contains("cold"),
        "exploration missed a claim/disband order: {saw:?} over {} schedules",
        report.schedules
    );
}

/// Elastic-shrink barrier handoff: the coordinator disbands at the
/// barrier and pings the pooled member's eventcount slot; the member is
/// parked handshake-style exactly as `member_step` leaves it.  On every
/// interleaving the member must observe the renewal (recheck, ticket
/// bump, or slot notify — never the backstop) and release itself exactly
/// once.
#[test]
fn elastic_disband_releases_the_pooled_member_exactly_once() {
    let seen: Arc<StdMutex<BTreeSet<&'static str>>> = Arc::default();
    let seen_in = Arc::clone(&seen);
    Builder::new().check(move || {
        let (word, counter) = formed_pair();
        let ec = Arc::new(EventCount::new(2));

        let member = {
            let word = Arc::clone(&word);
            let ec = Arc::clone(&ec);
            thread::spawn(move || {
                let mut releases = 0usize;
                let mut wakes = Vec::new();
                // One renewal exists, so at most one ticket bump and one
                // slot notification can precede a successful recheck.
                for _ in 0..4 {
                    let ticket = ec.prepare_wait();
                    let cur = word.load();
                    assert!(cur.is_well_formed(), "member saw a torn word: {cur:?}");
                    if cur.counter != counter || !cur.has_team() {
                        // Released: back to thieving.  Must happen once.
                        releases += 1;
                        assert_eq!((cur.teamed, cur.counter), (1, counter + 1));
                        return (releases, wakes);
                    }
                    match ec.park(1, ticket, ParkClass::Handshake, BACKSTOP) {
                        WakeReason::Backstop => {
                            panic!("lost wakeup: pooled member slept through the disband")
                        }
                        WakeReason::Notified(_) => wakes.push("notified"),
                        WakeReason::TicketChanged => wakes.push("ticket"),
                    }
                }
                panic!("pooled member never observed the disband: {wakes:?}")
            })
        };
        let coordinator = {
            let word = Arc::clone(&word);
            let ec = Arc::clone(&ec);
            thread::spawn(move || {
                // The §10 disband order: renew the word first, then wake
                // the member slots (worker.rs `notify_team_range`).
                word.disband();
                ec.notify_slot(1);
            })
        };
        let (releases, wakes) = member.join().unwrap();
        coordinator.join().unwrap();
        assert_eq!(releases, 1, "member must release exactly once");
        let mut seen = seen_in.lock().unwrap();
        if wakes.is_empty() {
            seen.insert("recheck");
        }
        for w in wakes {
            seen.insert(w);
        }
    });
    // All three rescue paths must be reachable, as in the §12 tests.
    let seen = seen.lock().unwrap();
    for way in ["recheck", "ticket", "notified"] {
        assert!(seen.contains(way), "exploration never hit the {way} path: {seen:?}");
    }
}

/// The warm fast path end to end: the coordinator claims the team with
/// `try_reuse`, publishes the next task (one sequence bump standing in
/// for the §9 seqlock write), and pings the member slot.  The pooled
/// member must obtain the task on every interleaving — the whole point of
/// the pool is that this one-write handoff is as lost-wakeup-free as the
/// full protocol it replaces.
#[test]
fn warm_publication_reaches_the_pooled_member() {
    Builder::new().preemption_bound(2).check(|| {
        let (word, counter) = formed_pair();
        let ec = Arc::new(EventCount::new(2));
        let publication = Arc::new(AtomicUsize::new(0));

        let member = {
            let word = Arc::clone(&word);
            let ec = Arc::clone(&ec);
            let publication = Arc::clone(&publication);
            thread::spawn(move || {
                for _ in 0..6 {
                    let ticket = ec.prepare_wait();
                    if publication.load(Ordering::SeqCst) == 1 {
                        // Got the task; the team must still be intact.
                        let cur = word.load();
                        assert_eq!((cur.teamed, cur.counter), (2, counter));
                        return true;
                    }
                    if let WakeReason::Backstop = ec.park(1, ticket, ParkClass::Handshake, BACKSTOP)
                    {
                        panic!("lost wakeup: pooled member slept through the warm publication");
                    }
                }
                panic!("pooled member never received the warm publication")
            })
        };
        let coordinator = {
            let word = Arc::clone(&word);
            let ec = Arc::clone(&ec);
            let publication = Arc::clone(&publication);
            thread::spawn(move || {
                // The one-load claim that replaces partner visits and
                // registration on this path.
                match word.try_reuse(2) {
                    ReuseOutcome::Reused(snap) => {
                        assert_eq!((snap.teamed, snap.counter), (2, counter))
                    }
                    other => panic!("idle warm team must be reusable: {other:?}"),
                }
                publication.store(1, Ordering::SeqCst);
                ec.notify_slot(1);
            })
        };
        assert!(member.join().unwrap());
        coordinator.join().unwrap();
    });
}
