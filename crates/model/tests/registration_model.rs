//! Model-checked tests for the registration protocol (`DESIGN.md` §9).
//!
//! These exhaustively explore the single-word CAS protocol of
//! [`teamsteal_registration::AtomicRegistration`] under 2–3 virtual
//! threads: every interleaving of the thief-side `try_acquire` /
//! `try_release` CAS loops against the coordinator-side
//! `try_form_team` / `push_requirement` transitions.  The invariant in
//! every test is the paper's *no torn team*: because all four counters
//! live in one 64-bit word, no observer ever sees a half-updated team
//! (`is_well_formed` holds for every loaded snapshot) and a team forms
//! with exactly the threads whose registrations were still valid.
//!
//! Run with `RUSTFLAGS='--cfg teamsteal_model' cargo test -p teamsteal-model`.
#![cfg(teamsteal_model)]

use std::collections::BTreeSet;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex as StdMutex};

use teamsteal_model::{thread, Builder};
use teamsteal_registration::{AcquireOutcome, AtomicRegistration, ReleaseOutcome};

/// Two thieves race `try_acquire` for the single open slot of a
/// requirement-2 word.  Exactly one registration must win, the loser must
/// observe `NotNeeded` (never a torn word), and the team the coordinator
/// then forms must be exactly `t = a = r = 2`.
#[test]
fn acquire_race_admits_exactly_one_thief() {
    let outcomes: Arc<StdMutex<BTreeSet<(bool, bool)>>> = Arc::default();
    let outcomes_in = Arc::clone(&outcomes);
    let report = Builder::new().check(move || {
        let word = Arc::new(AtomicRegistration::new());
        // Coordinator announces a requirement of 2 before the thieves run
        // (the racy part is acquisition, not publication).
        word.push_requirement(2);

        let thieves: Vec<_> = (0..2)
            .map(|_| {
                let word = Arc::clone(&word);
                thread::spawn(move || {
                    // Bounded CAS retry loop: `Contended` means the word
                    // moved under us; with one competitor and an idle
                    // coordinator at most one retry can be needed before
                    // the outcome is decided.
                    for _ in 0..4 {
                        match word.try_acquire(2) {
                            AcquireOutcome::Contended => continue,
                            AcquireOutcome::Registered(snap) => {
                                assert!(snap.is_well_formed(), "torn snapshot: {snap:?}");
                                return true;
                            }
                            AcquireOutcome::NotNeeded(snap) => {
                                assert!(snap.is_well_formed(), "torn snapshot: {snap:?}");
                                return false;
                            }
                        }
                    }
                    panic!("try_acquire still contended after competitors settled");
                })
            })
            .collect();
        let wins: Vec<bool> = thieves.into_iter().map(|h| h.join().unwrap()).collect();
        assert_eq!(
            wins.iter().filter(|&&w| w).count(),
            1,
            "exactly one thief must claim the single open slot, got {wins:?}"
        );

        // Thieves are done; the word is complete, so team formation is a
        // single uncontended CAS now.
        let teamed = word.try_form_team().expect("complete word must form a team");
        assert!(teamed.is_well_formed());
        assert_eq!((teamed.teamed, teamed.acquired, teamed.required), (2, 2, 2));
        outcomes_in.lock().unwrap().insert((wins[0], wins[1]));
    });
    // Both orders of the race must have been explored.
    let outcomes = outcomes.lock().unwrap();
    assert!(outcomes.contains(&(true, false)) && outcomes.contains(&(false, true)),
        "exploration missed a winner ordering: {outcomes:?} over {} schedules", report.schedules);
}

/// A thief's `try_release` races the coordinator's shrinking
/// `push_requirement` (which bumps the renewal counter).  The stale
/// registration must be *revoked*, never double-decremented: `acquired`
/// ends at exactly 1 on every interleaving and never reaches 0.
#[test]
fn release_vs_renewal_never_double_decrements() {
    let saw: Arc<StdMutex<BTreeSet<&'static str>>> = Arc::default();
    let saw_in = Arc::clone(&saw);
    Builder::new().check(move || {
        let word = Arc::new(AtomicRegistration::new());
        word.push_requirement(3);
        let counter = match word.try_acquire(3) {
            AcquireOutcome::Registered(snap) => snap.counter,
            other => panic!("uncontended acquire failed: {other:?}"),
        };

        let releaser = {
            let word = Arc::clone(&word);
            // `try_release` retries its CAS internally while the counter
            // still matches, so one call always settles.
            thread::spawn(move || match word.try_release(counter) {
                ReleaseOutcome::Released => "released",
                ReleaseOutcome::Revoked => "revoked",
                ReleaseOutcome::Teamed => "teamed",
            })
        };
        let renewer = {
            let word = Arc::clone(&word);
            // Shrinking the requirement resets `acquired` to the teamed
            // size and bumps the counter, voiding outstanding registrations.
            thread::spawn(move || word.push_requirement(1))
        };
        let how = releaser.join().unwrap();
        renewer.join().unwrap();

        let fin = word.load();
        assert!(fin.is_well_formed(), "torn final word: {fin:?}");
        assert_eq!(
            fin.acquired, 1,
            "release-after-renewal must not decrement again ({how}): {fin:?}"
        );
        assert_eq!(fin.counter, counter + 1);
        saw_in.lock().unwrap().insert(how);
    });
    let saw = saw.lock().unwrap();
    assert!(
        saw.contains("released") && saw.contains("revoked"),
        "exploration should reach both release-first and renew-first orders: {saw:?}"
    );
}

/// `try_form_team` races a registered thief's `try_release`: either the
/// team forms *with* the thief (whose release then reports `Teamed`), or
/// the thief gets out first and the team cannot form.  A formed team with
/// a missing member — torn between `teamed` and `acquired` — must be
/// impossible.
#[test]
fn form_vs_release_is_atomic() {
    let saw: Arc<StdMutex<BTreeSet<(bool, &'static str)>>> = Arc::default();
    let saw_in = Arc::clone(&saw);
    Builder::new().check(move || {
        let word = Arc::new(AtomicRegistration::new());
        word.push_requirement(2);
        let counter = match word.try_acquire(2) {
            AcquireOutcome::Registered(snap) => snap.counter,
            other => panic!("uncontended acquire failed: {other:?}"),
        };

        let thief = {
            let word = Arc::clone(&word);
            thread::spawn(move || match word.try_release(counter) {
                ReleaseOutcome::Released => "released",
                ReleaseOutcome::Teamed => "teamed",
                ReleaseOutcome::Revoked => "revoked",
            })
        };
        let coordinator = {
            let word = Arc::clone(&word);
            thread::spawn(move || word.try_form_team().is_some())
        };
        let how = thief.join().unwrap();
        let formed = coordinator.join().unwrap();

        let fin = word.load();
        assert!(fin.is_well_formed(), "torn final word: {fin:?}");
        if formed {
            // The team closed over the thief before it could leave; the
            // single-word CAS makes the membership atomic.
            assert_eq!(how, "teamed");
            assert_eq!((fin.teamed, fin.acquired, fin.required), (2, 2, 2));
        } else {
            assert_eq!(how, "released");
            assert_eq!(fin.acquired, 1, "escaped thief must be fully deregistered");
            assert_eq!(fin.teamed, 1);
        }
        saw_in.lock().unwrap().insert((formed, how));
    });
    let saw = saw.lock().unwrap();
    assert!(
        saw.contains(&(true, "teamed")) && saw.contains(&(false, "released")),
        "exploration should reach both atomic outcomes: {saw:?}"
    );
}

/// Smoke check that the instrumented word really goes through the model
/// runtime: a two-thief acquire race explored with stale-`Relaxed`
/// branching disabled must still see both winners (the protocol is all
/// `SeqCst` CAS, so SC exploration covers it).
#[test]
fn acquire_race_explored_under_plain_sc() {
    let winners = Arc::new(AtomicUsize::new(0));
    let winners_in = Arc::clone(&winners);
    let report = Builder::new().without_stale_reads().check(move || {
        let word = Arc::new(AtomicRegistration::new());
        word.push_requirement(2);
        let t = {
            let word = Arc::clone(&word);
            thread::spawn(move || matches!(word.try_acquire(2), AcquireOutcome::Registered(_)))
        };
        let main_won = matches!(word.try_acquire(2), AcquireOutcome::Registered(_));
        let thief_won = t.join().unwrap();
        assert!(main_won ^ thief_won, "exactly one of two racers must register");
        winners_in.fetch_add(usize::from(main_won), Ordering::Relaxed);
    });
    assert!(report.schedules >= 2, "race must have multiple interleavings");
    let w = winners.load(Ordering::Relaxed);
    assert!(w > 0 && w < report.schedules, "both racers must win somewhere");
}
