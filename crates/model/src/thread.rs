//! Virtual threads: `spawn`/`join`/`yield_now`/`sleep` analogues that the
//! explorer schedules deterministically.
//!
//! Outside a model run, `spawn` panics (virtual threads only make sense
//! under a controller), while `yield_now` and `sleep` fall back to their
//! std counterparts so shim code paths stay usable from ordinary tests.

use crate::execution;
use std::sync::{Arc, Mutex as StdMutex};

/// Handle to a spawned virtual thread.
pub struct JoinHandle<T> {
    tid: usize,
    result: Arc<StdMutex<Option<T>>>,
}

impl<T> JoinHandle<T> {
    /// Wait (a model yield point) until the thread finishes, returning
    /// its result.
    ///
    /// A panicking virtual thread fails the whole model run before any
    /// `join` can observe it, so unlike std this never returns `Err` —
    /// the `Result` is kept for source compatibility.
    pub fn join(self) -> Result<T, Box<dyn std::any::Any + Send>> {
        let ctx = execution::current()
            .expect("teamsteal-model JoinHandle::join outside a model run");
        ctx.exec.join(ctx.tid, self.tid);
        let v = self.result.lock().unwrap().take().expect("joined thread left no result");
        Ok(v)
    }

    /// The virtual thread id (0 is the root closure).
    pub fn tid(&self) -> usize {
        self.tid
    }
}

/// Spawn a virtual thread running `f`.  The spawn itself is a yield
/// point; the new thread starts only when the explorer schedules it.
pub fn spawn<T, F>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    let ctx = execution::current()
        .expect("teamsteal-model thread::spawn outside a model run");
    let result = Arc::new(StdMutex::new(None));
    let slot = Arc::clone(&result);
    let tid = ctx.exec.spawn(
        ctx.tid,
        Box::new(move || {
            let v = f();
            *slot.lock().unwrap() = Some(v);
        }),
    );
    JoinHandle { tid, result }
}

/// Scheduling hint; inside a run this is a yield point with no effect.
pub fn yield_now() {
    match execution::current() {
        Some(ctx) => ctx.exec.yield_now(ctx.tid),
        None => std::thread::yield_now(),
    }
}

/// Sleep: inside a run this advances the *virtual* clock by `dur` and
/// yields — the model never blocks on wall time.
pub fn sleep(dur: std::time::Duration) {
    match execution::current() {
        Some(ctx) => {
            let ns = u64::try_from(dur.as_nanos()).unwrap_or(u64::MAX);
            ctx.exec.sleep(ctx.tid, ns);
        }
        None => std::thread::sleep(dur),
    }
}
