//! A vendored, minimal deterministic-interleaving explorer ("mini-loom")
//! for the teamsteal lock-free protocols.
//!
//! crates.io is offline for this repository, so instead of depending on
//! `loom` we vendor the ~15% of it the four core protocols need:
//!
//! * **virtual threads** ([`thread::spawn`]) — real OS threads driven by a
//!   token-passing controller so that exactly one runs at a time and every
//!   context switch happens at an explicit *yield point*;
//! * **tracked atomics** ([`sync::atomic`]) — wrappers over the std types
//!   that record modification order and reads-from per object, give the
//!   scheduler a yield point at every access, and (for `Relaxed` loads)
//!   branch over a bounded window of stale values;
//! * **a Mutex/Condvar model** ([`sync::Mutex`], [`sync::Condvar`]) for the
//!   eventcount slots and the epoch bag queue, with virtual-time timeouts
//!   so a parked thread's backstop can fire without wall-clock sleeps;
//! * **a DFS schedule enumerator** ([`Builder`]) with DPOR-style sleep-set
//!   pruning, a bounded-preemption knob, a seeded random-walk mode for the
//!   bigger state spaces, and exact replay from a schedule string.
//!
//! The model's soundness boundary (what it explores faithfully, what it
//! over-approximates as sequential consistency) is documented in
//! DESIGN.md §14.  The protocol ports live behind `cfg(teamsteal_model)`
//! in `teamsteal-util`/`teamsteal-deque`/`teamsteal-registration` via the
//! `teamsteal_util::sync` shim; this crate's own tests exercise both the
//! explorer itself (always) and the protocols (under the cfg).
//!
//! # Example
//!
//! ```
//! use teamsteal_model::{model, sync::atomic::{AtomicUsize, Ordering}};
//! use std::sync::Arc;
//!
//! model(|| {
//!     let x = Arc::new(AtomicUsize::new(0));
//!     let x2 = Arc::clone(&x);
//!     let t = teamsteal_model::thread::spawn(move || {
//!         x2.fetch_add(1, Ordering::SeqCst);
//!     });
//!     x.fetch_add(1, Ordering::SeqCst);
//!     t.join().unwrap();
//!     assert_eq!(x.load(Ordering::SeqCst), 2);
//! });
//! ```

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

mod execution;
mod explorer;
pub mod sync;
pub mod thread;
pub mod time;

pub use explorer::{model, random_walk, replay, Builder, Report};

/// Fault injection for model runs.
///
/// The `teamsteal_util::sync` shim consults these hooks on modeled paths
/// so tests can exercise *defensive* protocol properties — e.g. the
/// eventcount's §12 backstop claim ("a missed notify costs bounded
/// latency, never a deadlock") is model-checked by dropping a
/// notification here and asserting the parked thread still makes
/// progress via its timeout.
pub mod fault {
    use std::sync::atomic::Ordering;

    /// Arrange for the next `n` shim-level notifications to be dropped
    /// (decrements as they are consumed).  No-op outside a model run;
    /// the counter is per-execution, so each explored schedule starts
    /// from whatever the closure sets.
    pub fn drop_next_notifies(n: u64) {
        if let Some(ctx) = crate::execution::current() {
            ctx.exec.drop_notifies.store(n, Ordering::Relaxed);
        }
    }

    /// Consume one pending dropped-notify token.  Returns true if the
    /// caller (the shim's notify path) should swallow this notification.
    pub fn take_dropped_notify() -> bool {
        let Some(ctx) = crate::execution::current() else {
            return false;
        };
        ctx.exec
            .drop_notifies
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| v.checked_sub(1))
            .is_ok()
    }
}

/// One scheduling decision: which virtual thread runs next, and (for
/// operations with several legal outcomes, e.g. a `Relaxed` load choosing
/// among a window of stale values) which outcome variant it takes.
///
/// A schedule is a sequence of choices; its [`core::fmt::Display`] form
/// (`"0 1 2.1 0"`, thread id with an optional `.variant` suffix) is stable
/// and accepted back by [`replay`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Choice {
    /// Virtual thread id granted this step (0 is the root closure).
    pub tid: usize,
    /// Outcome variant index; 0 is the "latest value" / default outcome.
    pub variant: u8,
}

impl core::fmt::Display for Choice {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        if self.variant == 0 {
            write!(f, "{}", self.tid)
        } else {
            write!(f, "{}.{}", self.tid, self.variant)
        }
    }
}

impl core::str::FromStr for Choice {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (t, v) = match s.split_once('.') {
            Some((t, v)) => (t, v.parse::<u8>().map_err(|e| e.to_string())?),
            None => (s, 0),
        };
        Ok(Choice {
            tid: t.parse::<usize>().map_err(|e| e.to_string())?,
            variant: v,
        })
    }
}

/// Render a schedule as its canonical space-separated string form.
pub fn schedule_to_string(schedule: &[Choice]) -> String {
    let mut out = String::new();
    for (i, c) in schedule.iter().enumerate() {
        if i > 0 {
            out.push(' ');
        }
        out.push_str(&c.to_string());
    }
    out
}

/// Parse a schedule string produced by [`schedule_to_string`] (or printed
/// in a model failure report) back into choices.
pub fn parse_schedule(s: &str) -> Result<Vec<Choice>, String> {
    s.split_whitespace().map(str::parse).collect()
}
