//! The execution engine: virtual threads, tracked objects, and the
//! token-passing handshake between them and the schedule explorer.
//!
//! Exactly one virtual thread runs at any moment.  A virtual thread is a
//! real OS thread that, at every *yield point* (atomic access, mutex or
//! condvar operation, spawn/join/yield/sleep), announces the operation it
//! is about to perform and parks until the controller (the explorer loop
//! driving [`Execution`]) grants it the token.  Operation *effects* are
//! applied under the control lock at grant time, so the interleaving of
//! effects is exactly the sequence of grants — which is what the explorer
//! enumerates, replays, and records.

use std::cell::RefCell;
use std::collections::BTreeSet;
use std::sync::{Arc, Condvar as StdCondvar, Mutex as StdMutex};

/// Virtual nanoseconds added to the clock per scheduling step, so that
/// `Instant::elapsed` grows even in runs that never call `sleep`.
const CLOCK_STEP_NS: u64 = 1_000;

thread_local! {
    static CURRENT: RefCell<Option<Ctx>> = const { RefCell::new(None) };
}

/// Per-OS-thread context naming the execution it belongs to.
#[derive(Clone)]
pub(crate) struct Ctx {
    pub(crate) exec: Arc<Execution>,
    pub(crate) tid: usize,
}

/// Returns the current virtual-thread context, or `None` when the caller
/// is not running inside a model execution (the model atomics then fall
/// back to plain std behaviour).
pub(crate) fn current() -> Option<Ctx> {
    CURRENT.with(|c| c.borrow().clone())
}

fn set_current(ctx: Option<Ctx>) {
    CURRENT.with(|c| *c.borrow_mut() = ctx);
}

/// What kind of shared object an id refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ObjKind {
    Atomic,
    Mutex,
    Condvar,
}

#[derive(Debug)]
struct ObjState {
    /// Only read by debug assertions (compiled out in release).
    #[allow(dead_code)]
    kind: ObjKind,
    /// Modification order (atomics): every value the object has held.
    hist: Vec<u64>,
    /// Per-thread coherence floor: index into `hist` of the newest value
    /// this thread has observed (reads may never go older).
    last_seen: Vec<usize>,
    /// Mutexes: holder tid.
    held_by: Option<usize>,
    /// Condvars: parked waiter tids.
    waiters: Vec<usize>,
}

impl ObjState {
    fn new(kind: ObjKind, initial: u64) -> Self {
        ObjState {
            kind,
            hist: if kind == ObjKind::Atomic { vec![initial] } else { Vec::new() },
            last_seen: Vec::new(),
            held_by: None,
            waiters: Vec::new(),
        }
    }

    fn last_seen_mut(&mut self, tid: usize) -> &mut usize {
        if self.last_seen.len() <= tid {
            self.last_seen.resize(tid + 1, 0);
        }
        &mut self.last_seen[tid]
    }

    /// Indices into `hist` a `Relaxed` load by `tid` may legally return,
    /// newest first, deduplicated by value, bounded by `window` stale
    /// entries below the latest.
    fn relaxed_candidates(&mut self, tid: usize, window: usize) -> Vec<usize> {
        let n = self.hist.len();
        let floor = (*self.last_seen_mut(tid)).max(n.saturating_sub(1 + window));
        let mut seen_vals = BTreeSet::new();
        let mut out = Vec::new();
        for idx in (floor..n).rev() {
            if seen_vals.insert(self.hist[idx]) {
                out.push(idx);
            }
        }
        out
    }
}

/// The operation a virtual thread has announced at a yield point.  Only
/// the information the explorer needs for scheduling decisions (enabled-
/// ness, dependence, outcome-variant counts) is carried here; the actual
/// effect runs as a closure at grant time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum OpKind {
    /// Thread exists but has not yet executed its first instruction.
    Start,
    /// Atomic load; `relaxed` loads may branch over stale values.
    Load { relaxed: bool },
    /// Atomic store / rmw / cas (all classified as writes).
    Write,
    /// `fence(ordering)`: no state effect under SC, but dependent with
    /// every atomic op for pruning purposes.
    Fence,
    /// Mutex acquire (enabled only while the mutex is free).
    MutexLock,
    /// Mutex release (always enabled).
    MutexUnlock,
    /// Atomically release `mutex` and park on the condvar; the announced
    /// step is the release, after which the thread blocks.
    CondWait { mutex: usize, timeout_ns: Option<u64> },
    /// notify_one / notify_all on a condvar.
    Notify,
    /// Scheduling hint; no effect.
    Yield,
    /// Advance the virtual clock by `ns` (the model never wall-sleeps).
    Sleep { ns: u64 },
    /// Create a new virtual thread (the entry is created at grant time,
    /// so thread ids are deterministic under a fixed schedule).
    Spawn,
    /// Join on `target`; enabled once the target has finished.
    Join { target: usize },
}

#[derive(Debug, Clone, Copy)]
pub(crate) struct Op {
    pub(crate) kind: OpKind,
    /// Primary object acted on (`usize::MAX` when none).
    pub(crate) obj: usize,
}

pub(crate) const NO_OBJ: usize = usize::MAX;

/// Why a thread is not currently announcing an op.
#[derive(Debug, Clone, Copy)]
enum Block {
    /// Parked on a condvar (the `CondWait` release step already ran).
    Cond { cv: usize, mutex: usize, deadline: Option<u64> },
    /// Woken (by notify or timeout) and waiting to re-acquire the mutex.
    Reacquire { mutex: usize, timed_out: bool },
}

#[derive(Default)]
struct ThreadCtl {
    /// Announced-but-not-yet-granted operation.
    pending: Option<Op>,
    blocked: Option<Block>,
    finished: bool,
    panic_msg: Option<String>,
    /// Outcome variant selected by the controller for the next grant.
    variant: u8,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Turn {
    Controller,
    Thread(usize),
    /// Execution failed; virtual threads park forever (the failing test
    /// is about to panic, so the parked OS threads are deliberately
    /// leaked rather than unwound through protocol code).
    Poisoned,
}

/// One recorded step of a run; the trace is the replay-determinism
/// witness (same schedule string ⇒ identical trace).
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct Step {
    pub(crate) tid: usize,
    pub(crate) variant: u8,
    pub(crate) desc: &'static str,
    pub(crate) obj: usize,
    pub(crate) value: u64,
}

impl Step {
    pub(crate) fn render(&self) -> String {
        let obj = if self.obj == NO_OBJ { String::new() } else { format!("#{}", self.obj) };
        let var = if self.variant == 0 { String::new() } else { format!(".{}", self.variant) };
        format!("t{}{} {}{} = {:#x}", self.tid, var, self.desc, obj, self.value)
    }
}

struct Ctl {
    turn: Turn,
    threads: Vec<ThreadCtl>,
    objects: Vec<ObjState>,
    clock_ns: u64,
    steps: usize,
    trace: Vec<Step>,
    failure: Option<String>,
}

/// A candidate scheduling choice the explorer may take at a decision
/// point, with everything sleep sets and preemption bounding need.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct Candidate {
    pub(crate) tid: usize,
    /// Number of legal outcome variants (>1 only for relaxed loads with
    /// observable stale values).
    pub(crate) variants: u8,
    /// Objects the op touches (for the dependence relation).
    pub(crate) objs: [usize; 2],
    /// Writes (incl. rmw/cas/lock/unlock/notify) are dependent with any
    /// access to the same object; reads commute with reads.
    pub(crate) is_write: bool,
    /// Fences are conservatively dependent with everything.
    pub(crate) is_fence: bool,
}

impl Candidate {
    /// Conservative dependence relation used by the sleep-set pruner.
    pub(crate) fn dependent_with(&self, other: &Candidate) -> bool {
        if self.is_fence || other.is_fence {
            return true;
        }
        for &a in &self.objs {
            if a == NO_OBJ {
                continue;
            }
            for &b in &other.objs {
                if a == b && (self.is_write || other.is_write) {
                    return true;
                }
            }
        }
        false
    }
}

/// What the explorer should do next.
pub(crate) enum Decision {
    /// All virtual threads finished; the run is complete.
    Done,
    /// Pick one of these candidates and call [`Execution::grant`].
    Choose(Vec<Candidate>),
    /// The run failed (deadlock, assertion panic inside a virtual thread,
    /// or step-budget blowout).  The message includes the failure detail;
    /// the explorer wraps it with schedule + trace.
    Failed(String),
}

/// Shared state of one model run.  The explorer holds one `Arc` and each
/// virtual OS thread holds another (via its thread-local [`Ctx`]).
pub(crate) struct Execution {
    ctl: StdMutex<Ctl>,
    cv: StdCondvar,
    /// Stale-value window for `Relaxed` loads (0 disables stale reads).
    stale_window: usize,
    /// Fail the run if it exceeds this many steps (livelock guard).
    max_steps: usize,
    /// Fault-injection hook: number of upcoming eventcount notifications
    /// the shim should silently drop (see [`crate::fault`]).
    pub(crate) drop_notifies: std::sync::atomic::AtomicU64,
}

impl Execution {
    pub(crate) fn new(stale_window: usize, max_steps: usize) -> Arc<Self> {
        Arc::new(Execution {
            ctl: StdMutex::new(Ctl {
                turn: Turn::Controller,
                threads: Vec::new(),
                objects: Vec::new(),
                clock_ns: 0,
                steps: 0,
                trace: Vec::new(),
                failure: None,
            }),
            cv: StdCondvar::new(),
            stale_window,
            max_steps,
            drop_notifies: std::sync::atomic::AtomicU64::new(0),
        })
    }

    // ------------------------------------------------------------------
    // Controller (explorer) side
    // ------------------------------------------------------------------

    /// Launch the root closure as virtual thread 0.
    pub(crate) fn start_root(self: &Arc<Self>, f: Arc<dyn Fn() + Send + Sync>) {
        {
            let mut ctl = self.ctl.lock().unwrap();
            assert!(ctl.threads.is_empty());
            ctl.threads.push(ThreadCtl {
                pending: Some(Op { kind: OpKind::Start, obj: NO_OBJ }),
                ..ThreadCtl::default()
            });
        }
        let exec = Arc::clone(self);
        std::thread::spawn(move || {
            run_vthread(exec, 0, move || f());
        });
    }

    /// Wait until it is the controller's turn, then classify the state.
    /// Deterministic timeout escapes (a parked timed waiter waking because
    /// nothing else can run) are applied internally, so `Choose` always
    /// returns a non-empty candidate list.
    pub(crate) fn decision(&self) -> Decision {
        let mut ctl = self.ctl.lock().unwrap();
        while ctl.turn != Turn::Controller {
            if ctl.turn == Turn::Poisoned {
                return Decision::Failed(ctl.failure.clone().unwrap_or_default());
            }
            ctl = self.cv.wait(ctl).unwrap();
        }
        if let Some(tid) = ctl.threads.iter().position(|t| t.panic_msg.is_some()) {
            let msg = ctl.threads[tid].panic_msg.clone().unwrap();
            let msg = format!("virtual thread {tid} panicked: {msg}");
            self.poison(&mut ctl, msg.clone());
            return Decision::Failed(msg);
        }
        if ctl.steps > self.max_steps {
            let msg = format!(
                "run exceeded {} steps — livelock, or raise Builder::max_steps",
                self.max_steps
            );
            self.poison(&mut ctl, msg.clone());
            return Decision::Failed(msg);
        }
        loop {
            if ctl.threads.iter().all(|t| t.finished) {
                return Decision::Done;
            }
            let cands = self.candidates(&mut ctl);
            if !cands.is_empty() {
                return Decision::Choose(cands);
            }
            // Nothing runnable: let the earliest timed condvar waiter
            // time out (virtual clock jumps to its deadline).  This is
            // the model's deadlock-escape semantics for backstops: a
            // timeout fires only when the system would otherwise block
            // (DESIGN.md §14 discusses why this under-approximation is
            // acceptable for the parking protocol).
            let mut best: Option<(usize, u64)> = None;
            for (tid, t) in ctl.threads.iter().enumerate() {
                if let Some(Block::Cond { deadline: Some(d), .. }) = t.blocked {
                    if best.map(|(_, bd)| d < bd).unwrap_or(true) {
                        best = Some((tid, d));
                    }
                }
            }
            match best {
                Some((tid, deadline)) => {
                    ctl.clock_ns = ctl.clock_ns.max(deadline);
                    let (cv, mutex) = match ctl.threads[tid].blocked {
                        Some(Block::Cond { cv, mutex, .. }) => (cv, mutex),
                        _ => unreachable!(),
                    };
                    ctl.objects[cv].waiters.retain(|&w| w != tid);
                    ctl.threads[tid].blocked =
                        Some(Block::Reacquire { mutex, timed_out: true });
                }
                None => {
                    let held = describe_blocked(&ctl);
                    let msg = format!("deadlock: no runnable virtual thread ({held})");
                    self.poison(&mut ctl, msg.clone());
                    return Decision::Failed(msg);
                }
            }
        }
    }

    /// Grant the token to `tid`, taking outcome variant `variant`.
    pub(crate) fn grant(&self, tid: usize, variant: u8) {
        let mut ctl = self.ctl.lock().unwrap();
        debug_assert_eq!(ctl.turn, Turn::Controller);
        ctl.threads[tid].variant = variant;
        ctl.clock_ns += CLOCK_STEP_NS;
        ctl.steps += 1;
        ctl.turn = Turn::Thread(tid);
        self.cv.notify_all();
    }

    pub(crate) fn trace(&self) -> Vec<Step> {
        self.ctl.lock().unwrap().trace.clone()
    }

    fn poison(&self, ctl: &mut Ctl, msg: String) {
        ctl.failure = Some(msg);
        ctl.turn = Turn::Poisoned;
        self.cv.notify_all();
    }

    /// Runnable candidates, lowest tid first (deterministic order).
    fn candidates(&self, ctl: &mut Ctl) -> Vec<Candidate> {
        let mut out = Vec::new();
        for tid in 0..ctl.threads.len() {
            let (pending, blocked, finished) = {
                let t = &ctl.threads[tid];
                (t.pending, t.blocked, t.finished)
            };
            if finished {
                continue;
            }
            if let Some(Block::Reacquire { mutex, .. }) = blocked {
                if ctl.objects[mutex].held_by.is_none() {
                    out.push(Candidate {
                        tid,
                        variants: 1,
                        objs: [mutex, NO_OBJ],
                        is_write: true,
                        is_fence: false,
                    });
                }
                continue;
            }
            if blocked.is_some() {
                continue; // parked on a condvar
            }
            let Some(op) = pending else { continue }; // running (shouldn't happen)
            let cand = match op.kind {
                OpKind::MutexLock if ctl.objects[op.obj].held_by.is_some() => continue,
                OpKind::Join { target } if !ctl.threads[target].finished => continue,
                OpKind::Load { relaxed } => {
                    let variants = if relaxed && self.stale_window > 0 {
                        ctl.objects[op.obj]
                            .relaxed_candidates(tid, self.stale_window)
                            .len()
                            .max(1) as u8
                    } else {
                        1
                    };
                    Candidate { tid, variants, objs: [op.obj, NO_OBJ], is_write: false, is_fence: false }
                }
                OpKind::Write | OpKind::MutexLock | OpKind::MutexUnlock | OpKind::Notify => {
                    Candidate { tid, variants: 1, objs: [op.obj, NO_OBJ], is_write: true, is_fence: false }
                }
                OpKind::CondWait { mutex, .. } => {
                    Candidate { tid, variants: 1, objs: [op.obj, mutex], is_write: true, is_fence: false }
                }
                OpKind::Fence => {
                    Candidate { tid, variants: 1, objs: [NO_OBJ, NO_OBJ], is_write: true, is_fence: true }
                }
                OpKind::Start
                | OpKind::Yield
                | OpKind::Sleep { .. }
                | OpKind::Spawn
                | OpKind::Join { .. } => {
                    Candidate { tid, variants: 1, objs: [NO_OBJ, NO_OBJ], is_write: false, is_fence: false }
                }
            };
            out.push(cand);
        }
        out
    }

    // ------------------------------------------------------------------
    // Virtual-thread side (called from the sync/thread/time wrappers via
    // the thread-local Ctx)
    // ------------------------------------------------------------------

    /// Register a shared object, returning its id.  Not a yield point:
    /// object creation is thread-local until the object is shared, and id
    /// assignment is deterministic under a fixed schedule because only
    /// one virtual thread runs at a time.
    pub(crate) fn register_object(&self, kind: ObjKind, initial: u64) -> usize {
        let mut ctl = self.ctl.lock().unwrap();
        ctl.objects.push(ObjState::new(kind, initial));
        ctl.objects.len() - 1
    }

    /// Non-yielding peek at the virtual clock (powers `Instant::now`).
    pub(crate) fn peek_clock_ns(&self) -> u64 {
        self.ctl.lock().unwrap().clock_ns
    }

    /// Core yield-point protocol: announce `op`, park until granted, then
    /// apply `effect` under the control lock and resume user code.
    fn yield_point<R>(
        &self,
        tid: usize,
        op: Op,
        effect: impl FnOnce(&mut Ctl, u8) -> R,
    ) -> R {
        let mut ctl = self.ctl.lock().unwrap();
        debug_assert!(ctl.threads[tid].pending.is_none());
        ctl.threads[tid].pending = Some(op);
        ctl.turn = Turn::Controller;
        self.cv.notify_all();
        loop {
            match ctl.turn {
                Turn::Thread(t) if t == tid => break,
                Turn::Poisoned => park_forever(&self.cv, ctl),
                _ => ctl = self.cv.wait(ctl).unwrap(),
            }
        }
        let variant = ctl.threads[tid].variant;
        ctl.threads[tid].pending = None;
        effect(&mut ctl, variant)
    }

    pub(crate) fn atomic_load(&self, tid: usize, obj: usize, relaxed: bool) -> u64 {
        let window = self.stale_window;
        self.yield_point(
            tid,
            Op { kind: OpKind::Load { relaxed }, obj },
            |ctl, variant| {
                let o = &mut ctl.objects[obj];
                let idx = if relaxed && window > 0 {
                    let cands = o.relaxed_candidates(tid, window);
                    cands[(variant as usize).min(cands.len() - 1)]
                } else {
                    o.hist.len() - 1
                };
                let val = o.hist[idx];
                let floor = o.last_seen_mut(tid);
                *floor = (*floor).max(idx);
                ctl.record(tid, variant, "load", obj, val);
                val
            },
        )
    }

    pub(crate) fn atomic_store(&self, tid: usize, obj: usize, val: u64) {
        self.yield_point(tid, Op { kind: OpKind::Write, obj }, |ctl, variant| {
            let o = &mut ctl.objects[obj];
            o.hist.push(val);
            let idx = o.hist.len() - 1;
            *o.last_seen_mut(tid) = idx;
            ctl.record(tid, variant, "store", obj, val);
        })
    }

    /// Read-modify-write: reads the latest value (RMWs are never stale),
    /// appends `f(old)`, returns `old`.
    pub(crate) fn atomic_rmw(&self, tid: usize, obj: usize, f: impl FnOnce(u64) -> u64) -> u64 {
        self.yield_point(tid, Op { kind: OpKind::Write, obj }, |ctl, variant| {
            let o = &mut ctl.objects[obj];
            let old = *o.hist.last().unwrap();
            o.hist.push(f(old));
            let idx = o.hist.len() - 1;
            *o.last_seen_mut(tid) = idx;
            ctl.record(tid, variant, "rmw", obj, old);
            old
        })
    }

    pub(crate) fn atomic_cas(
        &self,
        tid: usize,
        obj: usize,
        current: u64,
        new: u64,
    ) -> Result<u64, u64> {
        self.yield_point(tid, Op { kind: OpKind::Write, obj }, |ctl, variant| {
            let o = &mut ctl.objects[obj];
            let latest = *o.hist.last().unwrap();
            let res = if latest == current {
                o.hist.push(new);
                Ok(current)
            } else {
                Err(latest)
            };
            let idx = o.hist.len() - 1;
            *o.last_seen_mut(tid) = idx;
            ctl.record(tid, variant, if res.is_ok() { "cas+" } else { "cas-" }, obj, latest);
            res
        })
    }

    pub(crate) fn fence(&self, tid: usize) {
        self.yield_point(tid, Op { kind: OpKind::Fence, obj: NO_OBJ }, |ctl, variant| {
            ctl.record(tid, variant, "fence", NO_OBJ, 0);
        })
    }

    pub(crate) fn mutex_lock(&self, tid: usize, obj: usize) {
        self.yield_point(tid, Op { kind: OpKind::MutexLock, obj }, |ctl, variant| {
            debug_assert_eq!(ctl.objects[obj].kind, ObjKind::Mutex);
            debug_assert!(ctl.objects[obj].held_by.is_none());
            ctl.objects[obj].held_by = Some(tid);
            ctl.record(tid, variant, "lock", obj, 0);
        })
    }

    pub(crate) fn mutex_unlock(&self, tid: usize, obj: usize) {
        self.yield_point(tid, Op { kind: OpKind::MutexUnlock, obj }, |ctl, variant| {
            debug_assert_eq!(ctl.objects[obj].held_by, Some(tid));
            ctl.objects[obj].held_by = None;
            ctl.record(tid, variant, "unlock", obj, 0);
        })
    }

    /// Release `mutex`, park on condvar `cv`, and (on wake or timeout)
    /// re-acquire the mutex.  Returns whether the wait timed out.
    pub(crate) fn cond_wait(
        &self,
        tid: usize,
        cv_obj: usize,
        mutex: usize,
        timeout_ns: Option<u64>,
    ) -> bool {
        // Phase 1: the announced step atomically releases the mutex and
        // parks the thread.
        let mut ctl = self.ctl.lock().unwrap();
        debug_assert!(ctl.threads[tid].pending.is_none());
        ctl.threads[tid].pending =
            Some(Op { kind: OpKind::CondWait { mutex, timeout_ns }, obj: cv_obj });
        ctl.turn = Turn::Controller;
        self.cv.notify_all();
        loop {
            match ctl.turn {
                Turn::Thread(t) if t == tid => break,
                Turn::Poisoned => park_forever(&self.cv, ctl),
                _ => ctl = self.cv.wait(ctl).unwrap(),
            }
        }
        let variant = ctl.threads[tid].variant;
        ctl.threads[tid].pending = None;
        debug_assert_eq!(ctl.objects[mutex].held_by, Some(tid));
        ctl.objects[mutex].held_by = None;
        let deadline = timeout_ns.map(|ns| ctl.clock_ns.saturating_add(ns));
        ctl.objects[cv_obj].waiters.push(tid);
        ctl.threads[tid].blocked = Some(Block::Cond { cv: cv_obj, mutex, deadline });
        ctl.record(tid, variant, "wait", cv_obj, 0);
        // The release step is complete: hand the token back and park
        // until the controller grants us again (via notify or timeout
        // escape, both of which move us to Reacquire).
        ctl.turn = Turn::Controller;
        self.cv.notify_all();
        loop {
            match ctl.turn {
                Turn::Thread(t) if t == tid => break,
                Turn::Poisoned => park_forever(&self.cv, ctl),
                _ => ctl = self.cv.wait(ctl).unwrap(),
            }
        }
        // Phase 2: woken with the mutex free — re-acquire and resume.
        let variant = ctl.threads[tid].variant;
        let timed_out = match ctl.threads[tid].blocked.take() {
            Some(Block::Reacquire { mutex: m, timed_out }) => {
                debug_assert_eq!(m, mutex);
                timed_out
            }
            other => unreachable!("woken from cond_wait in state {other:?}"),
        };
        debug_assert!(ctl.objects[mutex].held_by.is_none());
        ctl.objects[mutex].held_by = Some(tid);
        ctl.record(tid, variant, if timed_out { "wake-timeout" } else { "wake" }, cv_obj, 0);
        timed_out
    }

    pub(crate) fn notify(&self, tid: usize, cv_obj: usize, all: bool) {
        self.yield_point(tid, Op { kind: OpKind::Notify, obj: cv_obj }, |ctl, variant| {
            let mut woken = 0u64;
            // Lowest-tid waiter first: deterministic, and matches the
            // single-waiter-per-slot usage in the eventcount.
            while let Some(pos) = ctl.objects[cv_obj]
                .waiters
                .iter()
                .enumerate()
                .min_by_key(|(_, &w)| w)
                .map(|(i, _)| i)
            {
                let w = ctl.objects[cv_obj].waiters.remove(pos);
                let mutex = match ctl.threads[w].blocked {
                    Some(Block::Cond { mutex, .. }) => mutex,
                    other => unreachable!("condvar waiter {w} in state {other:?}"),
                };
                ctl.threads[w].blocked = Some(Block::Reacquire { mutex, timed_out: false });
                woken += 1;
                if !all {
                    break;
                }
            }
            ctl.record(tid, variant, if all { "notify-all" } else { "notify-one" }, cv_obj, woken);
        })
    }

    pub(crate) fn yield_now(&self, tid: usize) {
        self.yield_point(tid, Op { kind: OpKind::Yield, obj: NO_OBJ }, |ctl, variant| {
            ctl.record(tid, variant, "yield", NO_OBJ, 0);
        })
    }

    pub(crate) fn sleep(&self, tid: usize, ns: u64) {
        self.yield_point(tid, Op { kind: OpKind::Sleep { ns }, obj: NO_OBJ }, |ctl, variant| {
            ctl.clock_ns = ctl.clock_ns.saturating_add(ns);
            ctl.record(tid, variant, "sleep", NO_OBJ, ns);
        })
    }

    /// Spawn a virtual thread running `f`; returns its tid.
    pub(crate) fn spawn(self: &Arc<Self>, tid: usize, f: Box<dyn FnOnce() + Send>) -> usize {
        let new_tid = self.yield_point(tid, Op { kind: OpKind::Spawn, obj: NO_OBJ }, |ctl, variant| {
            ctl.threads.push(ThreadCtl {
                pending: Some(Op { kind: OpKind::Start, obj: NO_OBJ }),
                ..ThreadCtl::default()
            });
            let new_tid = ctl.threads.len() - 1;
            ctl.record(tid, variant, "spawn", NO_OBJ, new_tid as u64);
            new_tid
        });
        let exec = Arc::clone(self);
        std::thread::spawn(move || run_vthread(exec, new_tid, f));
        new_tid
    }

    pub(crate) fn join(&self, tid: usize, target: usize) {
        self.yield_point(tid, Op { kind: OpKind::Join { target }, obj: NO_OBJ }, |ctl, variant| {
            debug_assert!(ctl.threads[target].finished);
            ctl.record(tid, variant, "join", NO_OBJ, target as u64);
        })
    }
}

impl Ctl {
    fn record(&mut self, tid: usize, variant: u8, desc: &'static str, obj: usize, value: u64) {
        self.trace.push(Step { tid, variant, desc, obj, value });
    }
}

fn describe_blocked(ctl: &Ctl) -> String {
    let mut parts = Vec::new();
    for (tid, t) in ctl.threads.iter().enumerate() {
        if t.finished {
            continue;
        }
        let what = match (&t.blocked, &t.pending) {
            (Some(Block::Cond { cv, .. }), _) => format!("t{tid} parked on condvar #{cv}"),
            (Some(Block::Reacquire { mutex, .. }), _) => {
                format!("t{tid} reacquiring mutex #{mutex}")
            }
            (None, Some(op)) => format!("t{tid} pending {:?} on #{}", op.kind, op.obj),
            (None, None) => format!("t{tid} running"),
        };
        parts.push(what);
    }
    parts.join("; ")
}

/// Never returns: used when the execution is poisoned so that virtual
/// threads neither unwind through protocol code nor touch shared state.
fn park_forever(cv: &StdCondvar, mut guard: std::sync::MutexGuard<'_, Ctl>) -> ! {
    loop {
        guard = cv.wait(guard).unwrap();
    }
}

/// Body of every virtual OS thread: install the context, wait for the
/// first grant (the `Start` op), run the closure, report completion (or
/// panic) back to the controller.
fn run_vthread(exec: Arc<Execution>, tid: usize, f: impl FnOnce() + Send + 'static) {
    set_current(Some(Ctx { exec: Arc::clone(&exec), tid }));
    {
        let mut ctl = exec.ctl.lock().unwrap();
        loop {
            match ctl.turn {
                Turn::Thread(t) if t == tid => break,
                Turn::Poisoned => park_forever(&exec.cv, ctl),
                _ => ctl = exec.cv.wait(ctl).unwrap(),
            }
        }
        ctl.threads[tid].pending = None;
        ctl.record(tid, 0, "start", NO_OBJ, 0);
    }
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(f));
    let mut ctl = exec.ctl.lock().unwrap();
    if let Err(payload) = result {
        let msg = if let Some(s) = payload.downcast_ref::<&str>() {
            (*s).to_string()
        } else if let Some(s) = payload.downcast_ref::<String>() {
            s.clone()
        } else {
            "<non-string panic payload>".to_string()
        };
        ctl.threads[tid].panic_msg = Some(msg);
    }
    ctl.threads[tid].finished = true;
    ctl.turn = Turn::Controller;
    exec.cv.notify_all();
    drop(ctl);
    set_current(None);
}
