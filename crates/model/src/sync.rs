//! Model replacements for `std::sync`: tracked atomics, a modeled
//! `Mutex`/`Condvar` pair, and an SC `fence`.
//!
//! Inside a model run every operation is a yield point enumerated by the
//! explorer.  Outside a run the atomics transparently fall back to their
//! std counterparts (so protocol constructors and `Drop` impls that run
//! on ordinary threads keep working); `Mutex`/`Condvar`, by contrast,
//! require a run — the protocols only reach them from modeled paths.
//!
//! All atomics store their value twice: in a real std atomic (the
//! fallback, and the source for `get_mut`) and, once first touched inside
//! a run, in the execution's per-object modification-order history.  The
//! std cell is kept in sync at every modeled write so mixed access (e.g.
//! a `Debug` impl after the run) sees the final value.

use crate::execution::{self, Ctx, ObjKind};
use std::cell::UnsafeCell;
use std::sync::atomic::AtomicUsize as StdAtomicUsize;

pub use self::atomic::fence;

/// Lazily-registered per-execution object id.
///
/// `usize::MAX` means "not yet registered with the current execution".
/// Objects are created and dropped within a single run (the model closure
/// re-runs from scratch per schedule), so one slot suffices.
#[derive(Debug)]
struct ObjId(StdAtomicUsize);

impl Default for ObjId {
    fn default() -> Self {
        ObjId::new()
    }
}

impl ObjId {
    const fn new() -> Self {
        ObjId(StdAtomicUsize::new(usize::MAX))
    }

    fn get(&self, ctx: &Ctx, kind: ObjKind, initial: u64) -> usize {
        use std::sync::atomic::Ordering::Relaxed;
        let id = self.0.load(Relaxed);
        if id != usize::MAX {
            return id;
        }
        let id = ctx.exec.register_object(kind, initial);
        self.0.store(id, Relaxed);
        id
    }
}

macro_rules! int_atomic {
    ($name:ident, $std:ty, $prim:ty, $doc:literal) => {
        #[doc = $doc]
        #[doc = ""]
        #[doc = "Mirrors the std API surface the teamsteal protocols use;"]
        #[doc = "every operation is a model yield point inside a run."]
        #[derive(Debug, Default)]
        pub struct $name {
            value: $std,
            id: ObjId,
        }

        // The macro instantiates `v as u64` / `old as $prim` even when
        // `$prim` is itself u64.
        #[allow(clippy::unnecessary_cast)]
        impl $name {
            /// Create a new atomic with the given initial value.
            pub const fn new(v: $prim) -> Self {
                Self { value: <$std>::new(v), id: ObjId::new() }
            }

            fn obj(&self, ctx: &Ctx) -> usize {
                use std::sync::atomic::Ordering::Relaxed;
                self.id.get(ctx, ObjKind::Atomic, self.value.load(Relaxed) as u64)
            }

            /// Atomic load.  Under the model, `Relaxed` loads may observe
            /// one stale value (bounded staleness window, DESIGN.md §14).
            pub fn load(&self, order: Ordering) -> $prim {
                match execution::current() {
                    Some(ctx) => {
                        let obj = self.obj(&ctx);
                        let relaxed = matches!(order, Ordering::Relaxed);
                        ctx.exec.atomic_load(ctx.tid, obj, relaxed) as $prim
                    }
                    None => self.value.load(order),
                }
            }

            /// Atomic store (immediately visible to all threads: the
            /// model is SC for writes).
            pub fn store(&self, val: $prim, order: Ordering) {
                match execution::current() {
                    Some(ctx) => {
                        let obj = self.obj(&ctx);
                        ctx.exec.atomic_store(ctx.tid, obj, val as u64);
                        self.value.store(val, sync_store(order));
                    }
                    None => self.value.store(val, order),
                }
            }

            /// Atomic fetch-add; RMWs always read the latest value.
            pub fn fetch_add(&self, val: $prim, order: Ordering) -> $prim {
                match execution::current() {
                    Some(ctx) => {
                        let obj = self.obj(&ctx);
                        let old = ctx.exec.atomic_rmw(ctx.tid, obj, |v| {
                            ((v as $prim).wrapping_add(val)) as u64
                        }) as $prim;
                        self.value.store(old.wrapping_add(val), std::sync::atomic::Ordering::SeqCst);
                        old
                    }
                    None => self.value.fetch_add(val, order),
                }
            }

            /// Atomic fetch-sub; RMWs always read the latest value.
            pub fn fetch_sub(&self, val: $prim, order: Ordering) -> $prim {
                match execution::current() {
                    Some(ctx) => {
                        let obj = self.obj(&ctx);
                        let old = ctx.exec.atomic_rmw(ctx.tid, obj, |v| {
                            ((v as $prim).wrapping_sub(val)) as u64
                        }) as $prim;
                        self.value.store(old.wrapping_sub(val), std::sync::atomic::Ordering::SeqCst);
                        old
                    }
                    None => self.value.fetch_sub(val, order),
                }
            }

            /// Strong compare-exchange.
            pub fn compare_exchange(
                &self,
                current: $prim,
                new: $prim,
                success: Ordering,
                failure: Ordering,
            ) -> Result<$prim, $prim> {
                match execution::current() {
                    Some(ctx) => {
                        let obj = self.obj(&ctx);
                        let res = ctx
                            .exec
                            .atomic_cas(ctx.tid, obj, current as u64, new as u64)
                            .map(|v| v as $prim)
                            .map_err(|v| v as $prim);
                        if res.is_ok() {
                            self.value.store(new, std::sync::atomic::Ordering::SeqCst);
                        }
                        res
                    }
                    None => self.value.compare_exchange(current, new, success, failure),
                }
            }

            /// Weak compare-exchange; the model never fails spuriously
            /// (a sound strengthening — all protocol CAS loops retry).
            pub fn compare_exchange_weak(
                &self,
                current: $prim,
                new: $prim,
                success: Ordering,
                failure: Ordering,
            ) -> Result<$prim, $prim> {
                self.compare_exchange(current, new, success, failure)
            }

            /// Mutable access; no yield point (exclusivity is proven by
            /// the `&mut`).
            pub fn get_mut(&mut self) -> &mut $prim {
                self.value.get_mut()
            }

            /// Consume the atomic, returning its value.
            pub fn into_inner(self) -> $prim {
                self.value.into_inner()
            }
        }

        impl From<$prim> for $name {
            fn from(v: $prim) -> Self {
                Self::new(v)
            }
        }
    };
}

/// When mirroring a modeled store into the std fallback cell, `Relaxed`
/// would be fine (the model serializes everything), but `SeqCst` keeps
/// miri-style tooling quiet about the double bookkeeping.
fn sync_store(_order: atomic::Ordering) -> atomic::Ordering {
    atomic::Ordering::SeqCst
}

/// Tracked atomics and fences; `Ordering` is re-exported from std.
pub mod atomic {
    use super::*;

    pub use std::sync::atomic::Ordering;

    int_atomic!(
        AtomicUsize,
        std::sync::atomic::AtomicUsize,
        usize,
        "Tracked `AtomicUsize`."
    );
    int_atomic!(
        AtomicU64,
        std::sync::atomic::AtomicU64,
        u64,
        "Tracked `AtomicU64`."
    );
    int_atomic!(
        AtomicU32,
        std::sync::atomic::AtomicU32,
        u32,
        "Tracked `AtomicU32`."
    );

    /// Tracked `AtomicBool` (stored as 0/1 in the modification order).
    #[derive(Debug, Default)]
    pub struct AtomicBool {
        value: std::sync::atomic::AtomicBool,
        id: super::ObjId,
    }

    impl AtomicBool {
        /// Create a new atomic with the given initial value.
        pub const fn new(v: bool) -> Self {
            Self { value: std::sync::atomic::AtomicBool::new(v), id: super::ObjId::new() }
        }

        fn obj(&self, ctx: &Ctx) -> usize {
            self.id.get(ctx, ObjKind::Atomic, self.value.load(Ordering::Relaxed) as u64)
        }

        /// Atomic load (see [`AtomicUsize::load`] for `Relaxed` semantics).
        pub fn load(&self, order: Ordering) -> bool {
            match execution::current() {
                Some(ctx) => {
                    let obj = self.obj(&ctx);
                    let relaxed = matches!(order, Ordering::Relaxed);
                    ctx.exec.atomic_load(ctx.tid, obj, relaxed) != 0
                }
                None => self.value.load(order),
            }
        }

        /// Atomic store.
        pub fn store(&self, val: bool, order: Ordering) {
            match execution::current() {
                Some(ctx) => {
                    let obj = self.obj(&ctx);
                    ctx.exec.atomic_store(ctx.tid, obj, val as u64);
                    self.value.store(val, Ordering::SeqCst);
                }
                None => self.value.store(val, order),
            }
        }

        /// Strong compare-exchange.
        pub fn compare_exchange(
            &self,
            current: bool,
            new: bool,
            success: Ordering,
            failure: Ordering,
        ) -> Result<bool, bool> {
            match execution::current() {
                Some(ctx) => {
                    let obj = self.obj(&ctx);
                    let res = ctx
                        .exec
                        .atomic_cas(ctx.tid, obj, current as u64, new as u64)
                        .map(|v| v != 0)
                        .map_err(|v| v != 0);
                    if res.is_ok() {
                        self.value.store(new, Ordering::SeqCst);
                    }
                    res
                }
                None => self.value.compare_exchange(current, new, success, failure),
            }
        }

        /// Atomic swap.
        pub fn swap(&self, val: bool, order: Ordering) -> bool {
            match execution::current() {
                Some(ctx) => {
                    let obj = self.obj(&ctx);
                    let old = ctx.exec.atomic_rmw(ctx.tid, obj, |_| val as u64) != 0;
                    self.value.store(val, Ordering::SeqCst);
                    old
                }
                None => self.value.swap(val, order),
            }
        }

        /// Mutable access; no yield point.
        pub fn get_mut(&mut self) -> &mut bool {
            self.value.get_mut()
        }
    }

    /// Tracked `AtomicPtr<T>` (pointers enter the modification order as
    /// their address bits).
    pub struct AtomicPtr<T> {
        value: std::sync::atomic::AtomicPtr<T>,
        id: super::ObjId,
    }

    impl<T> std::fmt::Debug for AtomicPtr<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.debug_tuple("AtomicPtr").field(&self.value).finish()
        }
    }

    impl<T> AtomicPtr<T> {
        /// Create a new atomic pointer.
        pub const fn new(p: *mut T) -> Self {
            Self { value: std::sync::atomic::AtomicPtr::new(p), id: super::ObjId::new() }
        }

        fn obj(&self, ctx: &Ctx) -> usize {
            self.id
                .get(ctx, ObjKind::Atomic, self.value.load(Ordering::Relaxed) as usize as u64)
        }

        /// Atomic load (see [`AtomicUsize::load`] for `Relaxed` semantics).
        pub fn load(&self, order: Ordering) -> *mut T {
            match execution::current() {
                Some(ctx) => {
                    let obj = self.obj(&ctx);
                    let relaxed = matches!(order, Ordering::Relaxed);
                    ctx.exec.atomic_load(ctx.tid, obj, relaxed) as usize as *mut T
                }
                None => self.value.load(order),
            }
        }

        /// Atomic store.
        pub fn store(&self, p: *mut T, order: Ordering) {
            match execution::current() {
                Some(ctx) => {
                    let obj = self.obj(&ctx);
                    ctx.exec.atomic_store(ctx.tid, obj, p as usize as u64);
                    self.value.store(p, Ordering::SeqCst);
                }
                None => self.value.store(p, order),
            }
        }

        /// Atomic swap; RMWs always read the latest value.
        pub fn swap(&self, p: *mut T, order: Ordering) -> *mut T {
            match execution::current() {
                Some(ctx) => {
                    let obj = self.obj(&ctx);
                    let old = ctx.exec.atomic_rmw(ctx.tid, obj, |_| p as usize as u64);
                    self.value.store(p, Ordering::SeqCst);
                    old as usize as *mut T
                }
                None => self.value.swap(p, order),
            }
        }

        /// Strong compare-exchange.
        pub fn compare_exchange(
            &self,
            current: *mut T,
            new: *mut T,
            success: Ordering,
            failure: Ordering,
        ) -> Result<*mut T, *mut T> {
            match execution::current() {
                Some(ctx) => {
                    let obj = self.obj(&ctx);
                    let res = ctx
                        .exec
                        .atomic_cas(ctx.tid, obj, current as usize as u64, new as usize as u64)
                        .map(|v| v as usize as *mut T)
                        .map_err(|v| v as usize as *mut T);
                    if res.is_ok() {
                        self.value.store(new, Ordering::SeqCst);
                    }
                    res
                }
                None => self.value.compare_exchange(current, new, success, failure),
            }
        }

        /// Weak compare-exchange (never spurious in the model).
        pub fn compare_exchange_weak(
            &self,
            current: *mut T,
            new: *mut T,
            success: Ordering,
            failure: Ordering,
        ) -> Result<*mut T, *mut T> {
            self.compare_exchange(current, new, success, failure)
        }

        /// Mutable access; no yield point.
        pub fn get_mut(&mut self) -> &mut *mut T {
            self.value.get_mut()
        }
    }

    impl<T> Default for AtomicPtr<T> {
        fn default() -> Self {
            Self::new(std::ptr::null_mut())
        }
    }

    /// Memory fence.  The model is sequentially consistent, so the fence
    /// has no state effect, but it is still a yield point and is treated
    /// as dependent with every atomic op by the sleep-set pruner.
    pub fn fence(order: Ordering) {
        match execution::current() {
            Some(ctx) => ctx.exec.fence(ctx.tid),
            None => std::sync::atomic::fence(order),
        }
    }
}

// ---------------------------------------------------------------------
// Mutex / Condvar
// ---------------------------------------------------------------------

/// Result of a timed condvar wait (mirrors `std::sync::WaitTimeoutResult`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// True if the wait ended because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// Infallible `LockResult` stand-in: the model never poisons (a panicked
/// virtual thread fails the whole run before anyone re-locks).
pub type LockResult<G> = Result<G, std::convert::Infallible>;

/// A modeled mutex.  Must only be locked from inside a model run; the
/// protocols reach it exclusively from modeled paths.
#[derive(Debug, Default)]
pub struct Mutex<T> {
    data: UnsafeCell<T>,
    id: ObjId,
}

// Safety: access to `data` is serialized by the model scheduler — the
// lock/unlock yield points enforce mutual exclusion, and at most one
// virtual thread runs at a time.
unsafe impl<T: Send> Send for Mutex<T> {}
unsafe impl<T: Send> Sync for Mutex<T> {}

impl<T> Mutex<T> {
    /// Create a new mutex guarding `value`.
    pub const fn new(value: T) -> Self {
        Mutex { data: UnsafeCell::new(value), id: ObjId::new() }
    }

    fn ctx_and_obj(&self) -> (Ctx, usize) {
        let ctx = execution::current()
            .expect("teamsteal-model Mutex used outside a model run");
        let obj = self.id.get(&ctx, ObjKind::Mutex, 0);
        (ctx, obj)
    }

    /// Acquire the mutex (a yield point; blocks the virtual thread while
    /// another holds it).
    pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
        let (ctx, obj) = self.ctx_and_obj();
        ctx.exec.mutex_lock(ctx.tid, obj);
        Ok(MutexGuard { mutex: self, armed: true })
    }

    /// Mutable access without locking; no yield point.
    pub fn get_mut(&mut self) -> LockResult<&mut T> {
        Ok(self.data.get_mut())
    }

    /// Consume the mutex, returning the guarded value.
    pub fn into_inner(self) -> LockResult<T> {
        Ok(self.data.into_inner())
    }
}

/// RAII guard for [`Mutex`]; releasing is itself a yield point.
#[derive(Debug)]
pub struct MutexGuard<'a, T> {
    mutex: &'a Mutex<T>,
    /// False once consumed by `Condvar::wait_timeout` (the wait releases
    /// the mutex itself, so the guard's drop must not).
    armed: bool,
}

impl<T> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        // Safety: the model holds the mutex for this virtual thread.
        unsafe { &*self.mutex.data.get() }
    }
}

impl<T> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        // Safety: as above, and `&mut self` prevents aliasing.
        unsafe { &mut *self.mutex.data.get() }
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        if self.armed {
            let (ctx, obj) = self.mutex.ctx_and_obj();
            ctx.exec.mutex_unlock(ctx.tid, obj);
        }
    }
}

/// A modeled condition variable with virtual-time timeouts.
///
/// Timed waits use *deadlock-escape* semantics: a timeout fires only when
/// no virtual thread can otherwise run, at which point the virtual clock
/// jumps to the deadline.  There are no spurious wakeups.  See
/// DESIGN.md §14 for why this is the right approximation for the
/// eventcount backstop.
#[derive(Debug, Default)]
pub struct Condvar {
    id: ObjId,
}

impl Condvar {
    /// Create a new condvar.
    pub const fn new() -> Self {
        Condvar { id: ObjId::new() }
    }

    fn obj(&self, ctx: &Ctx) -> usize {
        self.id.get(ctx, ObjKind::Condvar, 0)
    }

    /// Park until notified, releasing (and re-acquiring) the mutex.
    pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> LockResult<MutexGuard<'a, T>> {
        Ok(self.wait_inner(guard, None).0)
    }

    /// Park until notified or the (virtual) timeout elapses.
    pub fn wait_timeout<'a, T>(
        &self,
        guard: MutexGuard<'a, T>,
        dur: std::time::Duration,
    ) -> LockResult<(MutexGuard<'a, T>, WaitTimeoutResult)> {
        let ns = u64::try_from(dur.as_nanos()).unwrap_or(u64::MAX);
        Ok(self.wait_inner(guard, Some(ns)))
    }

    fn wait_inner<'a, T>(
        &self,
        mut guard: MutexGuard<'a, T>,
        timeout_ns: Option<u64>,
    ) -> (MutexGuard<'a, T>, WaitTimeoutResult) {
        let (ctx, mutex_obj) = guard.mutex.ctx_and_obj();
        let cv_obj = self.obj(&ctx);
        guard.armed = false; // the wait releases the mutex itself
        let mutex = guard.mutex;
        drop(guard);
        let timed_out = ctx.exec.cond_wait(ctx.tid, cv_obj, mutex_obj, timeout_ns);
        (MutexGuard { mutex, armed: true }, WaitTimeoutResult(timed_out))
    }

    /// Wake one parked waiter (lowest virtual-thread id first).
    pub fn notify_one(&self) {
        let ctx = execution::current()
            .expect("teamsteal-model Condvar used outside a model run");
        let obj = self.obj(&ctx);
        ctx.exec.notify(ctx.tid, obj, false);
    }

    /// Wake all parked waiters.
    pub fn notify_all(&self) {
        let ctx = execution::current()
            .expect("teamsteal-model Condvar used outside a model run");
        let obj = self.obj(&ctx);
        ctx.exec.notify(ctx.tid, obj, true);
    }
}
