//! The schedule enumerator: exhaustive DFS with DPOR-style sleep sets
//! and a bounded-preemption knob, a seeded random-walk mode for state
//! spaces too big to exhaust, and exact replay from a schedule string.
//!
//! The DFS is *stateless* (loom-style): each schedule re-runs the closure
//! from scratch, forcing the recorded choice at every decision point on
//! the current path prefix and default-policy choices beyond it.  After a
//! run, the deepest node with an unexplored, non-sleeping,
//! preemption-feasible alternative becomes the next prefix.

use crate::execution::{Candidate, Decision, Execution, Step};
use crate::{schedule_to_string, Choice};
use std::collections::{BTreeSet, HashSet};
use std::sync::Arc;

/// Outcome summary of an exploration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Report {
    /// Number of complete schedules executed.
    pub schedules: usize,
    /// True if exploration stopped at the schedule budget rather than
    /// exhausting the state space (only with [`Builder::allow_truncation`]
    /// or in random-walk mode).
    pub truncated: bool,
}

/// Configures and runs an exploration.
#[derive(Debug, Clone)]
pub struct Builder {
    preemption_bound: Option<u32>,
    max_schedules: usize,
    allow_truncation: bool,
    max_steps: usize,
    sleep_sets: bool,
    stale_window: usize,
    random: Option<(u64, usize)>,
}

impl Default for Builder {
    fn default() -> Self {
        Builder {
            preemption_bound: None,
            max_schedules: 200_000,
            allow_truncation: false,
            max_steps: 20_000,
            sleep_sets: true,
            stale_window: 1,
            random: None,
        }
    }
}

impl Builder {
    /// A builder with the default exhaustive configuration.
    pub fn new() -> Self {
        Builder::default()
    }

    /// Cap the number of context switches away from a still-runnable
    /// thread.  Bounded search is an under-approximation, but most
    /// concurrency bugs manifest within 2–3 preemptions.
    pub fn preemption_bound(mut self, bound: u32) -> Self {
        self.preemption_bound = Some(bound);
        self
    }

    /// Fail (or, with [`Builder::allow_truncation`], stop) after this
    /// many schedules.  This is the CI budget knob.
    pub fn max_schedules(mut self, n: usize) -> Self {
        self.max_schedules = n;
        self
    }

    /// Return a truncated [`Report`] instead of panicking when the
    /// schedule budget is hit.
    pub fn allow_truncation(mut self) -> Self {
        self.allow_truncation = true;
        self
    }

    /// Fail any single run longer than this many steps (livelock guard).
    pub fn max_steps(mut self, n: usize) -> Self {
        self.max_steps = n;
        self
    }

    /// Disable sleep-set pruning (used by the explorer's own tests to
    /// cross-check that pruning does not lose outcomes).
    pub fn without_sleep_sets(mut self) -> Self {
        self.sleep_sets = false;
        self
    }

    /// Disable stale-value branching for `Relaxed` loads (every load
    /// then reads the latest value, i.e. plain SC).
    pub fn without_stale_reads(mut self) -> Self {
        self.stale_window = 0;
        self
    }

    /// Explore `iters` seeded random walks instead of DFS.  For state
    /// spaces too big to exhaust; the report is always `truncated`.
    pub fn random(mut self, seed: u64, iters: usize) -> Self {
        self.random = Some((seed, iters));
        self
    }

    /// Run the exploration, panicking with a schedule string and trace on
    /// the first failing interleaving (deadlock, panicked virtual thread,
    /// or step-budget blowout).
    pub fn check<F>(self, f: F) -> Report
    where
        F: Fn() + Send + Sync + 'static,
    {
        let f: Arc<dyn Fn() + Send + Sync> = Arc::new(f);
        match self.random {
            Some((seed, iters)) => self.check_random(&f, seed, iters),
            None => self.check_dfs(&f),
        }
    }

    fn check_random(&self, f: &Arc<dyn Fn() + Send + Sync>, seed: u64, iters: usize) -> Report {
        let mut schedules = 0;
        for i in 0..iters {
            let mut rng = Rng::new(seed.wrapping_add(i as u64).wrapping_mul(0x9E3779B97F4A7C15) | 1);
            let res = run_once(self, f, |_, cands, _| {
                let c = &cands[rng.next_below(cands.len())];
                let variant = if c.variants > 1 { (rng.next_below(c.variants as usize)) as u8 } else { 0 };
                Choice { tid: c.tid, variant }
            });
            schedules += 1;
            if let RunOutcome::Failed(msg) = res.outcome {
                fail(schedules, &msg, &res.schedule, &res.trace);
            }
        }
        Report { schedules, truncated: true }
    }

    fn check_dfs(&self, f: &Arc<dyn Fn() + Send + Sync>) -> Report {
        let mut path: Vec<Node> = Vec::new();
        let mut schedules = 0usize;
        loop {
            if schedules >= self.max_schedules {
                if self.allow_truncation {
                    return Report { schedules, truncated: true };
                }
                panic!(
                    "model exploration exceeded max_schedules = {} — \
                     bound the test (preemption_bound / fewer ops) or raise the budget",
                    self.max_schedules
                );
            }
            let sleep_sets = self.sleep_sets;
            let bound = self.preemption_bound;
            let res = run_once(self, f, |i, cands, prev| {
                dfs_pick(&mut path, i, cands, prev, sleep_sets, bound)
            });
            schedules += 1;
            if let RunOutcome::Failed(msg) = res.outcome {
                fail(schedules, &msg, &res.schedule, &res.trace);
            }
            // Backtrack: find the deepest node with an unexplored,
            // non-sleeping, preemption-feasible alternative.
            loop {
                let Some(top) = path.last_mut() else {
                    return Report { schedules, truncated: false };
                };
                top.done.insert(top.chosen);
                if let Some(next) = pick_unexplored(top, self.preemption_bound) {
                    top.chosen = next;
                    break;
                }
                path.pop();
            }
        }
    }
}

/// One decision point on the current DFS path.
struct Node {
    cands: Vec<Candidate>,
    chosen: Choice,
    /// Choices whose subtrees are fully explored.
    done: HashSet<Choice>,
    /// Sleep set on arrival: tids whose scheduling here is provably
    /// redundant with an already-explored sibling branch.
    sleep: BTreeSet<usize>,
    /// tid granted at the parent step (preemption accounting).
    prev_tid: Option<usize>,
    preemptions_before: u32,
}

impl Node {
    fn cand(&self, tid: usize) -> Option<&Candidate> {
        self.cands.iter().find(|c| c.tid == tid)
    }

    fn done_tids(&self) -> BTreeSet<usize> {
        // A tid is fully done only once every variant of its op here has
        // been explored.
        let mut out = BTreeSet::new();
        for c in &self.cands {
            if (0..c.variants).all(|v| self.done.contains(&Choice { tid: c.tid, variant: v })) {
                out.insert(c.tid);
            }
        }
        out
    }
}

fn is_preemption(node_prev: Option<usize>, cands: &[Candidate], tid: usize) -> bool {
    match node_prev {
        Some(prev) => prev != tid && cands.iter().any(|c| c.tid == prev),
        None => false,
    }
}

fn pick_unexplored(node: &Node, bound: Option<u32>) -> Option<Choice> {
    for c in &node.cands {
        if node.sleep.contains(&c.tid) {
            continue;
        }
        if let Some(b) = bound {
            let cost = node.preemptions_before
                + u32::from(is_preemption(node.prev_tid, &node.cands, c.tid));
            if cost > b {
                continue;
            }
        }
        for v in 0..c.variants {
            let ch = Choice { tid: c.tid, variant: v };
            if !node.done.contains(&ch) {
                return Some(ch);
            }
        }
    }
    None
}

/// Choose at step `i` of a DFS run: forced along the recorded prefix,
/// default policy (stay on the previous thread when possible) beyond it.
fn dfs_pick(
    path: &mut Vec<Node>,
    i: usize,
    cands: &[Candidate],
    prev: Option<usize>,
    sleep_sets: bool,
    bound: Option<u32>,
) -> Choice {
    if i < path.len() {
        let node = &path[i];
        assert!(
            node.cands == cands,
            "nondeterministic model closure: decision point {i} changed between runs \
             (was {:?}, now {:?}) — model closures must not use wall time, OS randomness, \
             or untracked shared state",
            node.cands,
            cands
        );
        return node.chosen;
    }
    debug_assert_eq!(i, path.len());
    // Arrival sleep set: parent's sleep ∪ parent's fully-explored tids,
    // minus threads whose pending op is dependent with the op the parent
    // edge executed, minus threads no longer runnable.
    let (sleep, preemptions_before) = match path.last() {
        Some(parent) if sleep_sets => {
            let exec_cand = parent
                .cand(parent.chosen.tid)
                .expect("chosen tid missing from its own node")
                .clone();
            let mut inherited = parent.sleep.clone();
            inherited.extend(parent.done_tids());
            inherited.remove(&parent.chosen.tid);
            let sleep: BTreeSet<usize> = inherited
                .into_iter()
                .filter(|&q| {
                    cands
                        .iter()
                        .find(|c| c.tid == q)
                        .is_some_and(|qc| !qc.dependent_with(&exec_cand))
                })
                .collect();
            let pre = parent.preemptions_before
                + u32::from(is_preemption(parent.prev_tid, &parent.cands, parent.chosen.tid));
            (sleep, pre)
        }
        Some(parent) => {
            let pre = parent.preemptions_before
                + u32::from(is_preemption(parent.prev_tid, &parent.cands, parent.chosen.tid));
            (BTreeSet::new(), pre)
        }
        None => (BTreeSet::new(), 0),
    };
    // Default policy: keep running the previous thread when legal (costs
    // no preemption), otherwise the lowest-tid non-sleeping candidate.
    let pick_tid = prev
        .filter(|p| cands.iter().any(|c| c.tid == *p) && !sleep.contains(p))
        .or_else(|| {
            cands
                .iter()
                .map(|c| c.tid)
                .find(|t| {
                    !sleep.contains(t)
                        && bound
                            .map(|b| {
                                preemptions_before + u32::from(is_preemption(prev, cands, *t)) <= b
                            })
                            .unwrap_or(true)
                })
        })
        // Everything is sleeping or over-bound: the branch is redundant,
        // but the run must still terminate — take the first candidate.
        .unwrap_or(cands[0].tid);
    let chosen = Choice { tid: pick_tid, variant: 0 };
    path.push(Node {
        cands: cands.to_vec(),
        chosen,
        done: HashSet::new(),
        sleep,
        prev_tid: prev,
        preemptions_before,
    });
    chosen
}

enum RunOutcome {
    Complete,
    Failed(String),
}

struct RunResult {
    outcome: RunOutcome,
    schedule: Vec<Choice>,
    trace: Vec<Step>,
}

/// Execute one schedule: drive the controller loop, delegating each
/// decision to `pick(step_index, candidates, prev_tid)`.
fn run_once(
    b: &Builder,
    f: &Arc<dyn Fn() + Send + Sync>,
    mut pick: impl FnMut(usize, &[Candidate], Option<usize>) -> Choice,
) -> RunResult {
    let exec = Execution::new(b.stale_window, b.max_steps);
    exec.start_root(Arc::clone(f));
    let mut schedule: Vec<Choice> = Vec::new();
    loop {
        match exec.decision() {
            Decision::Done => {
                return RunResult {
                    outcome: RunOutcome::Complete,
                    schedule,
                    trace: exec.trace(),
                }
            }
            Decision::Failed(msg) => {
                return RunResult {
                    outcome: RunOutcome::Failed(msg),
                    schedule,
                    trace: exec.trace(),
                }
            }
            Decision::Choose(cands) => {
                let prev = schedule.last().map(|c| c.tid);
                let choice = pick(schedule.len(), &cands, prev);
                debug_assert!(cands.iter().any(|c| c.tid == choice.tid));
                schedule.push(choice);
                exec.grant(choice.tid, choice.variant);
            }
        }
    }
}

fn fail(schedules: usize, msg: &str, schedule: &[Choice], trace: &[Step]) -> ! {
    let tail: Vec<String> = trace
        .iter()
        .rev()
        .take(60)
        .map(|s| s.render())
        .collect::<Vec<_>>()
        .into_iter()
        .rev()
        .collect();
    panic!(
        "model check failed on schedule {} (after {} schedule(s)): {}\n\
         schedule: {}\n\
         replay with teamsteal_model::replay(\"{}\", ...)\n\
         trace (last {} steps):\n  {}",
        schedules,
        schedules,
        msg,
        schedule_to_string(schedule),
        schedule_to_string(schedule),
        tail.len(),
        tail.join("\n  "),
    )
}

/// Exhaustively explore `f` with the default configuration, panicking on
/// the first failing interleaving.
pub fn model<F>(f: F) -> Report
where
    F: Fn() + Send + Sync + 'static,
{
    Builder::new().check(f)
}

/// Re-execute `f` under an exact schedule (as printed in a failure
/// report), returning the rendered trace.  Replaying the same schedule
/// twice yields identical traces — the explorer's determinism contract.
pub fn replay<F>(schedule: &str, f: F) -> String
where
    F: Fn() + Send + Sync + 'static,
{
    let choices = crate::parse_schedule(schedule).expect("malformed schedule string");
    let f: Arc<dyn Fn() + Send + Sync> = Arc::new(f);
    let b = Builder::new();
    let mut idx = 0usize;
    let res = run_once(&b, &f, |_, cands, prev| {
        let c = choices.get(idx).copied().unwrap_or_else(|| {
            // Past the recorded schedule (e.g. a hand-trimmed string):
            // fall back to the default stay-on-thread policy.
            let tid = prev
                .filter(|p| cands.iter().any(|c| c.tid == *p))
                .unwrap_or(cands[0].tid);
            Choice { tid, variant: 0 }
        });
        idx += 1;
        assert!(
            cands.iter().any(|k| k.tid == c.tid),
            "schedule step {idx} wants t{} but runnable set is {:?}",
            c.tid,
            cands.iter().map(|k| k.tid).collect::<Vec<_>>()
        );
        c
    });
    if let RunOutcome::Failed(msg) = res.outcome {
        let rendered: Vec<String> = res.trace.iter().map(|s| s.render()).collect();
        return format!("FAILED: {}\n{}", msg, rendered.join("\n"));
    }
    let rendered: Vec<String> = res.trace.iter().map(|s| s.render()).collect();
    rendered.join("\n")
}

/// One seeded random walk, returning `(schedule string, trace string)` —
/// the generator side of the replay-determinism property tests.
pub fn random_walk<F>(seed: u64, f: F) -> (String, String)
where
    F: Fn() + Send + Sync + 'static,
{
    let f: Arc<dyn Fn() + Send + Sync> = Arc::new(f);
    let b = Builder::new();
    let mut rng = Rng::new(seed | 1);
    let res = run_once(&b, &f, |_, cands, _| {
        let c = &cands[rng.next_below(cands.len())];
        let variant = if c.variants > 1 { (rng.next_below(c.variants as usize)) as u8 } else { 0 };
        Choice { tid: c.tid, variant }
    });
    let trace = match res.outcome {
        RunOutcome::Complete => {
            res.trace.iter().map(|s| s.render()).collect::<Vec<_>>().join("\n")
        }
        RunOutcome::Failed(msg) => format!("FAILED: {msg}"),
    };
    (schedule_to_string(&res.schedule), trace)
}

/// xorshift64* — deterministic, seedable, no external deps.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(if seed == 0 { 0x9E3779B97F4A7C15 } else { seed })
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }

    fn next_below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}
