//! Virtual time.  Inside a model run, [`Instant::now`] reads the
//! execution's virtual clock, which advances deterministically: a fixed
//! quantum per scheduling step, plus explicit `sleep` durations, plus
//! jumps to the earliest deadline when a timed condvar wait escapes an
//! otherwise-blocked state.  Outside a run it falls back to a process-
//! global monotone counter so shim code stays usable anywhere.

use crate::execution;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Fallback clock for calls outside a model run: strictly monotone,
/// nanosecond-ish, not tied to wall time.
static FALLBACK_NS: AtomicU64 = AtomicU64::new(0);

/// A measurement of the virtual clock (model analogue of
/// `std::time::Instant`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Instant {
    ns: u64,
}

impl Instant {
    /// The current virtual time.  Not a yield point: reading the clock
    /// does not interact with other threads.
    pub fn now() -> Instant {
        match execution::current() {
            Some(ctx) => Instant { ns: ctx.exec.peek_clock_ns() },
            None => Instant { ns: FALLBACK_NS.fetch_add(1, Ordering::Relaxed) },
        }
    }

    /// Virtual time elapsed since this instant (saturating at zero).
    pub fn elapsed(&self) -> Duration {
        Instant::now().saturating_duration_since(*self)
    }

    /// `self - earlier`, saturating at zero.
    pub fn saturating_duration_since(&self, earlier: Instant) -> Duration {
        Duration::from_nanos(self.ns.saturating_sub(earlier.ns))
    }

    /// `self - earlier`; panics if `earlier` is later (as std does).
    pub fn duration_since(&self, earlier: Instant) -> Duration {
        assert!(self.ns >= earlier.ns, "supplied instant is later than self");
        Duration::from_nanos(self.ns - earlier.ns)
    }

    /// Checked addition of a duration.
    pub fn checked_add(&self, dur: Duration) -> Option<Instant> {
        let ns = u64::try_from(dur.as_nanos()).ok()?;
        self.ns.checked_add(ns).map(|ns| Instant { ns })
    }
}

impl std::ops::Add<Duration> for Instant {
    type Output = Instant;
    fn add(self, dur: Duration) -> Instant {
        self.checked_add(dur).expect("overflow when adding duration to instant")
    }
}

impl std::ops::Sub<Instant> for Instant {
    type Output = Duration;
    fn sub(self, earlier: Instant) -> Duration {
        self.duration_since(earlier)
    }
}

impl std::ops::Sub<Duration> for Instant {
    type Output = Instant;
    fn sub(self, dur: Duration) -> Instant {
        let ns = u64::try_from(dur.as_nanos()).expect("duration overflows u64 ns");
        Instant { ns: self.ns.saturating_sub(ns) }
    }
}

impl std::ops::AddAssign<Duration> for Instant {
    fn add_assign(&mut self, dur: Duration) {
        *self = *self + dur;
    }
}
