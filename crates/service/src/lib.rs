//! # teamsteal-service — a multi-tenant task-service front-end
//!
//! The scheduler crate is a *library*: one process opens a scope, spawns,
//! and blocks until the scope drains.  This crate is the *service plane*
//! on top (DESIGN.md §16): one persistent [`Scheduler`] wrapped behind
//! long-lived [`Tenant`] handles that any number of threads submit through
//! concurrently, with three layers between a submission and the injector:
//!
//! 1. **Drain gate** ([`gate::DrainGate`]) — [`TaskService::drain`] rejects
//!    new work, runs every admitted task to completion exactly once, and
//!    releases the workers back to their parked idle loop.  The racing
//!    submitter-vs-drainer protocol is model-checked
//!    (`crates/model/tests/service_model.rs`).
//! 2. **Overload shedding** — submissions are shed with
//!    [`SubmitError::Overloaded`] while the injector backlog (the PR 6
//!    per-shard gauges, summed) sits above the configured high-water mark,
//!    bounding queue memory and queueing delay under overload.
//! 3. **Weighted-fair admission** ([`admission::TokenBucket`]) — each
//!    tenant's token budget refills at `refill_rate × weight` tasks per
//!    second, so a hot tenant saturates its own budget instead of starving
//!    the rest; the excess gets [`SubmitError::Backpressure`] or bounded
//!    blocking, per the tenant's [`AdmissionPolicy`].
//!
//! ```
//! use teamsteal_service::{ServiceBuilder, TenantConfig};
//!
//! let service = ServiceBuilder::new()
//!     .threads(2)
//!     .refill_rate(1_000_000)
//!     .tenant(TenantConfig::new("interactive").weight(3))
//!     .tenant(TenantConfig::new("batch").weight(1))
//!     .build();
//! let interactive = service.tenant("interactive").unwrap();
//! let hits = std::sync::Arc::new(std::sync::atomic::AtomicUsize::new(0));
//! for _ in 0..32 {
//!     let hits = std::sync::Arc::clone(&hits);
//!     interactive
//!         .submit(move |_| {
//!             hits.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
//!         })
//!         .unwrap();
//! }
//! let report = service.drain();
//! assert!(report.initiated);
//! assert_eq!(hits.load(std::sync::atomic::Ordering::Relaxed), 32);
//! assert!(interactive.submit(|_| {}).is_err()); // submit-after-drain fails
//! ```

#![warn(missing_docs)]

pub mod admission;
pub mod gate;
pub mod loadgen;
pub mod retry;

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use teamsteal_core::{CancelCell, ConcurrentScope, MetricsSnapshot, Scheduler, TaskContext};

use admission::TokenBucket;
use gate::{DrainGate, GateState};
pub use retry::RetryPolicy;

/// What a tenant's excess submissions (beyond its refilled token budget)
/// experience.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionPolicy {
    /// Fail fast with [`SubmitError::Backpressure`] — the open-loop choice:
    /// the caller owns the retry/drop decision.
    Reject,
    /// Block the submitting thread until the budget refills, up to the
    /// given bound, then fail with [`SubmitError::Backpressure`] — the
    /// closed-loop choice: the submitter is paced to its fair rate.
    Block(Duration),
}

/// Why a submission was not admitted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// The tenant's token budget is exhausted (and any blocking bound
    /// expired).  Retry after backing off, or drop the work.
    Backpressure,
    /// The global injector backlog is above the high-water mark; the
    /// submission was shed to bound queueing delay.  Retry after backing
    /// off.
    Overloaded,
    /// [`TaskService::drain`] has begun (or finished); the service accepts
    /// no further work, ever.
    Draining,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::Backpressure => write!(f, "tenant token budget exhausted"),
            SubmitError::Overloaded => write!(f, "injector backlog above high-water mark"),
            SubmitError::Draining => write!(f, "service is draining"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// Declarative description of one tenant, consumed by
/// [`ServiceBuilder::tenant`].
#[derive(Debug, Clone)]
pub struct TenantConfig {
    name: String,
    weight: u64,
    burst: u64,
    policy: AdmissionPolicy,
    max_concurrency: usize,
    default_deadline: Option<Duration>,
}

impl TenantConfig {
    /// A tenant with weight 1, a 32-task burst allowance, the fail-fast
    /// [`AdmissionPolicy::Reject`], an expected submission concurrency
    /// of 4 threads and no default deadline.
    pub fn new(name: impl Into<String>) -> Self {
        TenantConfig {
            name: name.into(),
            weight: 1,
            burst: 32,
            policy: AdmissionPolicy::Reject,
            max_concurrency: 4,
            default_deadline: None,
        }
    }

    /// Default per-task deadline, applied to every [`Tenant::submit_with`]
    /// submission that does not set its own `SubmitOptions::deadline`.
    /// Tasks still queued when their deadline passes are dropped without
    /// running (counted as `tasks_expired`); plain [`Tenant::submit`]
    /// ignores the default — an SLO is something a tenant opts into.
    pub fn default_deadline(mut self, deadline: Duration) -> Self {
        self.default_deadline = Some(deadline);
        self
    }

    /// Relative share of the service's admission budget: the tenant's
    /// bucket refills at `refill_rate × weight` tasks per second.
    pub fn weight(mut self, weight: u64) -> Self {
        self.weight = weight;
        self
    }

    /// Bucket capacity in tasks: how large a burst is admitted ahead of
    /// the refill rate from a full (idle) bucket.
    pub fn burst(mut self, burst: u64) -> Self {
        self.burst = burst;
        self
    }

    /// What excess submissions experience (default
    /// [`AdmissionPolicy::Reject`]).
    pub fn policy(mut self, policy: AdmissionPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Expected number of threads submitting through this tenant
    /// concurrently.  The service sizes the scheduler's external epoch-pin
    /// pool from the sum over all tenants, so submissions stay convoy-free
    /// at the declared concurrency (`external_pin_waits` stays 0).
    pub fn max_concurrency(mut self, threads: usize) -> Self {
        self.max_concurrency = threads;
        self
    }
}

/// Builder for a [`TaskService`].  Tenants are registered up front so the
/// service can size the scheduler (external pin pool) before it starts.
#[derive(Debug, Clone)]
pub struct ServiceBuilder {
    threads: Option<usize>,
    refill_rate: u64,
    high_water: usize,
    external_participants: Option<usize>,
    drain_backstop: Duration,
    tenants: Vec<TenantConfig>,
}

impl Default for ServiceBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl ServiceBuilder {
    /// A service with scheduler-default worker threads, a refill rate of
    /// 100 000 tasks/s per weight unit, a 65 536-task high-water mark and
    /// no tenants (register at least one before [`build`](Self::build)).
    pub fn new() -> Self {
        ServiceBuilder {
            threads: None,
            refill_rate: 100_000,
            high_water: 1 << 16,
            external_participants: None,
            drain_backstop: Duration::from_millis(10),
            tenants: Vec::new(),
        }
    }

    /// Number of scheduler worker threads (default: available parallelism).
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads);
        self
    }

    /// Admission budget refill rate in tasks per second *per weight unit*:
    /// a tenant with weight `w` is admitted at up to `refill_rate × w`
    /// sustained tasks per second.
    pub fn refill_rate(mut self, tasks_per_sec: u64) -> Self {
        self.refill_rate = tasks_per_sec;
        self
    }

    /// Injector-backlog high-water mark: submissions are shed with
    /// [`SubmitError::Overloaded`] while the total backlog (summed over the
    /// per-domain shards) exceeds this many queued tasks.
    pub fn high_water(mut self, tasks: usize) -> Self {
        self.high_water = tasks;
        self
    }

    /// Overrides the automatically sized external epoch-pin pool (default:
    /// the sum of the tenants' declared `max_concurrency`, floored at the
    /// scheduler's own default of 32).
    pub fn external_participants(mut self, slots: usize) -> Self {
        self.external_participants = Some(slots);
        self
    }

    /// Defensive re-check period while [`TaskService::drain`] waits for
    /// in-flight work (the drain protocol does not rely on it).
    pub fn drain_backstop(mut self, backstop: Duration) -> Self {
        self.drain_backstop = backstop;
        self
    }

    /// Registers a tenant.  Names must be unique.
    pub fn tenant(mut self, config: TenantConfig) -> Self {
        self.tenants.push(config);
        self
    }

    /// Builds the service and starts the scheduler's workers.
    ///
    /// # Panics
    ///
    /// Panics if no tenant was registered or two tenants share a name.
    pub fn build(self) -> TaskService {
        assert!(
            !self.tenants.is_empty(),
            "a TaskService needs at least one tenant"
        );
        for (i, t) in self.tenants.iter().enumerate() {
            assert!(
                self.tenants[..i].iter().all(|u| u.name != t.name),
                "duplicate tenant name `{}`",
                t.name
            );
        }
        let external = self.external_participants.unwrap_or_else(|| {
            self.tenants
                .iter()
                .map(|t| t.max_concurrency)
                .sum::<usize>()
                .max(32)
        });
        let mut builder = Scheduler::builder().external_participants(external);
        if let Some(threads) = self.threads {
            builder = builder.threads(threads);
        }
        let scheduler = builder.build();
        let tenants: Vec<Arc<TenantState>> = self
            .tenants
            .into_iter()
            .map(|t| {
                Arc::new(TenantState {
                    name: t.name,
                    bucket: TokenBucket::new(self.refill_rate, t.weight, t.burst),
                    weight: t.weight,
                    policy: t.policy,
                    default_deadline: t.default_deadline,
                    offered: AtomicU64::new(0),
                    admitted: AtomicU64::new(0),
                    rejected: AtomicU64::new(0),
                    shed: AtomicU64::new(0),
                    drain_rejected: AtomicU64::new(0),
                    completed: AtomicU64::new(0),
                    retry_attempts: AtomicU64::new(0),
                })
            })
            .collect();
        TaskService {
            core: Arc::new(ServiceCore {
                scheduler,
                scope: ConcurrentScope::new(),
                gate: DrainGate::new(),
                high_water: self.high_water,
                drain_backstop: self.drain_backstop,
                start: Instant::now(),
                tenants,
            }),
        }
    }
}

/// Per-tenant admission/completion counters, snapshot via
/// [`Tenant::stats`].  Conservation invariant (the admission proptests pin
/// down the bucket half): `offered == admitted + rejected + shed +
/// drain_rejected`, and after a drain `completed == admitted`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TenantStats {
    /// Submissions attempted through [`Tenant::submit`].
    pub offered: u64,
    /// Submissions admitted to the scheduler.
    pub admitted: u64,
    /// Submissions rejected by the tenant's token budget
    /// ([`SubmitError::Backpressure`]).
    pub rejected: u64,
    /// Submissions shed by the global high-water gate
    /// ([`SubmitError::Overloaded`]).
    pub shed: u64,
    /// Submissions rejected because a drain had begun
    /// ([`SubmitError::Draining`]).
    pub drain_rejected: u64,
    /// Admitted tasks that have finished executing (panicking tasks
    /// count: their completion guard runs during unwind).  Tasks dropped
    /// without running — cancelled or expired — also count: retirement
    /// runs their completion guard.
    pub completed: u64,
    /// Submission attempts beyond each call's first, performed by
    /// [`Tenant::submit_with`] retry schedules.  Every retry is also a
    /// fresh `offered` submission, so the conservation invariant is
    /// untouched.
    pub retry_attempts: u64,
}

struct TenantState {
    name: String,
    bucket: TokenBucket,
    weight: u64,
    policy: AdmissionPolicy,
    default_deadline: Option<Duration>,
    offered: AtomicU64,
    admitted: AtomicU64,
    rejected: AtomicU64,
    shed: AtomicU64,
    drain_rejected: AtomicU64,
    completed: AtomicU64,
    retry_attempts: AtomicU64,
}

impl TenantState {
    fn stats(&self) -> TenantStats {
        TenantStats {
            offered: self.offered.load(Ordering::Relaxed),
            admitted: self.admitted.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            drain_rejected: self.drain_rejected.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            retry_attempts: self.retry_attempts.load(Ordering::Relaxed),
        }
    }
}

struct ServiceCore {
    scheduler: Scheduler,
    scope: ConcurrentScope,
    gate: DrainGate,
    high_water: usize,
    drain_backstop: Duration,
    start: Instant,
    tenants: Vec<Arc<TenantState>>,
}

impl ServiceCore {
    fn now_us(&self) -> u64 {
        self.start.elapsed().as_micros() as u64
    }

    fn backlog(&self) -> usize {
        self.scheduler.injector_len()
    }

    /// Graceful drain, idempotent across racing callers: flip the gate,
    /// wait for every gate entry (submitters mid-pipeline + admitted tasks)
    /// to retire, then wait for transitively spawned children.  Afterwards
    /// the workers are back in their parked idle loop — "released" in the
    /// event-driven sense of §12: asleep on the eventcount, not burning
    /// CPU — and are joined when the service drops.
    fn drain(&self) -> bool {
        let initiated = self.gate.begin_drain();
        self.gate.await_empty(self.drain_backstop);
        // Gate entries cover admitted root tasks; children spawned *by*
        // tasks (ctx.spawn) are accounted to the concurrent scope.
        self.scope.wait_idle();
        initiated
    }
}

/// Releases an admitted task's gate entry and bumps its tenant's completion
/// counter when the task finishes — **including by panic**: the guard is
/// dropped during unwind, so a panicking tenant task cannot wedge a drain.
struct CompletionGuard {
    core: Arc<ServiceCore>,
    state: Arc<TenantState>,
    /// `TaskHandle::is_finished` flag for `submit_with` submissions.
    /// Flipped on drop, so it covers every way a task retires: ran,
    /// panicked, cancelled, or expired.
    finished: Option<Arc<AtomicBool>>,
}

impl Drop for CompletionGuard {
    fn drop(&mut self) {
        if let Some(finished) = &self.finished {
            finished.store(true, Ordering::Release);
        }
        self.state.completed.fetch_add(1, Ordering::Relaxed);
        self.core.gate.exit();
    }
}

/// A cloneable cancellation token covering any number of
/// [`Tenant::submit_with`] submissions.  Obtained from a [`TaskHandle`]
/// or created up front with [`CancelToken::new`] and passed in via
/// [`SubmitOptions::cancel_token`] — e.g. one shared token fanned out
/// over a batch so a single [`cancel`](Self::cancel) sweeps the whole
/// batch.
///
/// Each submission still gets its **own** per-task claim cell (the
/// run-vs-cancel race is decided per task, so sharing a token never
/// prevents the other batch members from running); the token is a
/// registry of those cells plus a sticky cancelled flag.  Cancelling the
/// token sweeps every attached cell and poisons the token: submissions
/// attached *after* the sweep are cancelled on attach and dropped at
/// claim time like the rest.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    inner: Arc<TokenInner>,
}

#[derive(Debug, Default)]
struct TokenInner {
    /// Sticky "cancel() was called" flag.  Written and read only under
    /// the `children` lock, but atomic so `is_cancelled` can stay
    /// lock-free.
    cancelled: AtomicBool,
    children: Mutex<TokenChildren>,
}

#[derive(Debug, Default)]
struct TokenChildren {
    /// Claim cells of the attached, not-yet-swept submissions.
    cells: Vec<Arc<CancelCell>>,
    /// Amortized-pruning threshold: settled cells (claimed, cancelled or
    /// expired — all terminal) are retained only until the vec outgrows
    /// this, keeping a long-lived reused token from accumulating dead
    /// cells without an O(n) scan per attach.
    prune_at: usize,
}

impl CancelToken {
    /// A fresh, uncancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers one submission's claim cell with the token.  If the
    /// token was already cancelled the cell is cancelled immediately (the
    /// task will be dropped at claim time) and not retained.
    fn attach(&self, cell: Arc<CancelCell>) {
        let mut children = self.inner.children.lock().unwrap();
        if self.inner.cancelled.load(Ordering::Relaxed) {
            cell.cancel();
            return;
        }
        if children.cells.len() >= children.prune_at.max(8) {
            children.cells.retain(|c| c.is_pending());
            children.prune_at = children.cells.len() * 2;
        }
        children.cells.push(cell);
    }

    /// Cancels every submission attached to this token (or any clone of
    /// it) and poisons the token, so later submissions attached to it are
    /// dropped too.  Returns `true` if at least one attached task's
    /// run-vs-cancel race was won — that task (and every other winner of
    /// the sweep) is then guaranteed never to execute; each is dropped at
    /// pop/claim time and counted as `tasks_cancelled`.  Returns `false`
    /// when every attached task was already claimed for execution,
    /// expired, or cancelled — or when nothing was attached yet (the
    /// token is still poisoned).
    pub fn cancel(&self) -> bool {
        let mut children = self.inner.children.lock().unwrap();
        self.inner.cancelled.store(true, Ordering::Relaxed);
        // Drain the registry: every cell is settled after the sweep, so
        // retaining them would only delay their nodes' memory reuse.
        let mut won = false;
        for cell in children.cells.drain(..) {
            won |= cell.cancel();
        }
        children.prune_at = 0;
        won
    }

    /// `true` once [`cancel`](Self::cancel) has been called on this token
    /// or any clone of it.  Attached tasks not yet claimed at that point
    /// will never run; tasks a worker claimed first still run to
    /// completion.  For the per-task answer, ask the task's
    /// [`TaskHandle`].
    pub fn is_cancelled(&self) -> bool {
        self.inner.cancelled.load(Ordering::Relaxed)
    }
}

/// Per-submission options for [`Tenant::submit_with`].  The `Default`
/// value is equivalent to plain [`Tenant::submit`] except that the tenant's
/// [`TenantConfig::default_deadline`] applies.
#[derive(Debug, Clone, Default)]
pub struct SubmitOptions {
    /// Relative deadline: a task still queued this long after submission
    /// is dropped without running (`tasks_expired`).  `None` falls back to
    /// the tenant's default deadline (and to "no deadline" if the tenant
    /// has none).
    pub deadline: Option<Duration>,
    /// An externally created token, e.g. one shared across a batch.
    /// `None` gives the task its own fresh token, reachable through the
    /// returned [`TaskHandle`].
    pub cancel_token: Option<CancelToken>,
    /// Retry schedule for admission failures ([`SubmitError::Backpressure`]
    /// / [`SubmitError::Overloaded`]).  `None` fails fast on the first
    /// error, like plain [`Tenant::submit`].
    pub retry: Option<RetryPolicy>,
}

impl SubmitOptions {
    /// Options with no deadline override, no shared token and no retry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the relative deadline.
    pub fn deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Supplies a shared cancellation token.
    pub fn cancel_token(mut self, token: CancelToken) -> Self {
        self.cancel_token = Some(token);
        self
    }

    /// Sets the retry schedule.
    pub fn retry(mut self, policy: RetryPolicy) -> Self {
        self.retry = Some(policy);
        self
    }
}

/// Handle to one [`Tenant::submit_with`] submission.
pub struct TaskHandle {
    token: CancelToken,
    /// This submission's own claim cell — the same one the worker's
    /// claim gate CASes on, so the handle's answers are per-task even
    /// when the token is shared across a batch.
    cell: Arc<CancelCell>,
    finished: Arc<AtomicBool>,
}

impl TaskHandle {
    /// Requests cancellation of **this** task only.  Returns `true` if
    /// the call won the run-vs-cancel race: the task is then guaranteed
    /// never to execute (dropped at pop/claim time, counted as
    /// `tasks_cancelled`).  Returns `false` when the task was already
    /// claimed for execution, expired, or cancelled.  To sweep a whole
    /// batch sharing one token, cancel via [`token`](Self::token).
    pub fn cancel(&self) -> bool {
        self.cell.cancel()
    }

    /// `true` once the task has retired: ran to completion, panicked, was
    /// cancelled, or expired.  Distinguish via
    /// [`is_cancelled`](Self::is_cancelled) /
    /// [`is_expired`](Self::is_expired): a finished task with neither set
    /// executed.
    pub fn is_finished(&self) -> bool {
        self.finished.load(Ordering::Acquire)
    }

    /// `true` once a `cancel()` call — through this handle, or a token
    /// sweep covering it — won this task's run-vs-cancel race.  Deadline
    /// expiry reports separately via [`is_expired`](Self::is_expired).
    pub fn is_cancelled(&self) -> bool {
        self.cell.is_cancelled()
    }

    /// `true` once the task's deadline passed while it was still queued:
    /// it was (or will be, at the next claim attempt) dropped without
    /// running and counted as `tasks_expired`.
    pub fn is_expired(&self) -> bool {
        self.cell.is_expired()
    }

    /// The submission's cancellation token (cheap to clone and share).
    /// Cancelling it sweeps every task attached to it — just this one,
    /// unless the submission passed a shared token in via
    /// [`SubmitOptions::cancel_token`].
    pub fn token(&self) -> CancelToken {
        self.token.clone()
    }
}

/// Point-in-time health snapshot from [`TaskService::report`]: the SLO
/// counters plus the two "should stay zero" robustness gauges.  Unlike
/// [`DrainReport`] this can be taken at any time, not just at shutdown.
#[derive(Debug, Clone)]
pub struct ServiceReport {
    /// Current drain-gate lifecycle state.
    pub state: GateState,
    /// Submissions mid-pipeline plus admitted tasks not yet retired.
    pub in_flight: usize,
    /// Times the drainer's defensive backstop timeout fired with work
    /// still in flight (see [`gate::DrainGate::backstops`]).  Fires are
    /// normal when a drain overlaps tasks outlasting the backstop; growth
    /// with no long task running would signal a lost drain notification.
    pub gate_backstops: u64,
    /// Total task panics observed, including the ones whose payloads were
    /// dropped because an earlier panic's payload was still held (only the
    /// *first* payload is kept for [`TaskService::take_panic`]).
    pub panics_observed: u64,
    /// Tasks dropped without running because their deadline passed.
    pub tasks_expired: u64,
    /// Tasks dropped without running because their token was cancelled.
    pub tasks_cancelled: u64,
    /// Retry attempts performed by [`Tenant::submit_with`] schedules,
    /// summed over tenants.
    pub retry_attempts: u64,
    /// Per-tenant counters, in registration order.
    pub tenants: Vec<(String, TenantStats)>,
}

/// Outcome of [`TaskService::drain`].
#[derive(Debug, Clone)]
pub struct DrainReport {
    /// `true` for the single caller that initiated the drain; racing and
    /// repeated calls observe `false` but still wait for completion.
    pub initiated: bool,
    /// Final per-tenant counters, in registration order.
    pub tenants: Vec<(String, TenantStats)>,
}

impl DrainReport {
    /// Total admitted tasks over all tenants.
    pub fn admitted(&self) -> u64 {
        self.tenants.iter().map(|(_, s)| s.admitted).sum()
    }

    /// Total completed tasks over all tenants.  Equals
    /// [`admitted`](Self::admitted) after any drain — the exactly-once
    /// guarantee.
    pub fn completed(&self) -> u64 {
        self.tenants.iter().map(|(_, s)| s.completed).sum()
    }
}

/// A long-lived, multi-tenant task service wrapping one persistent
/// [`Scheduler`].  See the crate docs for the submission pipeline.
pub struct TaskService {
    core: Arc<ServiceCore>,
}

impl TaskService {
    /// Returns a [`ServiceBuilder`].
    pub fn builder() -> ServiceBuilder {
        ServiceBuilder::new()
    }

    /// Looks up a tenant handle by name.  Handles are cheap to clone and
    /// safe to share across submitter threads.
    pub fn tenant(&self, name: &str) -> Option<Tenant> {
        self.core.tenants.iter().find(|t| t.name == name).map(|t| Tenant {
            core: Arc::clone(&self.core),
            state: Arc::clone(t),
        })
    }

    /// The wrapped scheduler, for metrics and backlog gauges.
    pub fn scheduler(&self) -> &Scheduler {
        &self.core.scheduler
    }

    /// Current lifecycle state of the service's drain gate.
    pub fn state(&self) -> GateState {
        self.core.gate.state()
    }

    /// Per-tenant counter snapshot, in registration order.
    pub fn tenant_stats(&self) -> Vec<(String, TenantStats)> {
        self.core
            .tenants
            .iter()
            .map(|t| (t.name.clone(), t.stats()))
            .collect()
    }

    /// Gracefully drains the service: rejects new submissions, runs every
    /// admitted task (and its transitively spawned children) to completion
    /// exactly once, and leaves the workers parked.  Blocks until the drain
    /// is complete; racing and repeated calls all block and return, but
    /// only the first reports `initiated == true`.  The service accepts no
    /// work afterwards.
    pub fn drain(&self) -> DrainReport {
        let initiated = self.core.drain();
        DrainReport {
            initiated,
            tenants: self.tenant_stats(),
        }
    }

    /// Takes the first panic payload raised by a submitted task, if any.
    /// Task panics never unwind submitters or workers; poll this at drain
    /// points.
    pub fn take_panic(&self) -> Option<Box<dyn std::any::Any + Send>> {
        self.core.scope.take_panic()
    }

    /// Aggregated scheduler metrics with the service-plane
    /// `retry_attempts` counter filled in (the scheduler's own snapshot
    /// always carries it as zero — retries happen above the injector).
    pub fn metrics(&self) -> MetricsSnapshot {
        let mut metrics = self.core.scheduler.metrics();
        metrics.retry_attempts = self
            .core
            .tenants
            .iter()
            .map(|t| t.retry_attempts.load(Ordering::Relaxed))
            .sum();
        metrics
    }

    /// Point-in-time health snapshot; see [`ServiceReport`].
    pub fn report(&self) -> ServiceReport {
        let metrics = self.metrics();
        ServiceReport {
            state: self.core.gate.state(),
            in_flight: self.core.gate.in_flight(),
            gate_backstops: self.core.gate.backstops(),
            panics_observed: self.core.scope.panics_observed(),
            tasks_expired: metrics.tasks_expired,
            tasks_cancelled: metrics.tasks_cancelled,
            retry_attempts: metrics.retry_attempts,
            tenants: self.tenant_stats(),
        }
    }
}

impl Drop for TaskService {
    /// Drains before the scheduler can shut down.  Running tasks hold
    /// `Arc`s to the service core (their completion guards), so without
    /// the drain the last task to finish would drop the core — and join
    /// the worker pool — from *inside* a worker thread.
    fn drop(&mut self) {
        self.core.drain();
    }
}

/// A cloneable per-tenant submission handle.  All clones share the
/// tenant's budget and counters.
#[derive(Clone)]
pub struct Tenant {
    core: Arc<ServiceCore>,
    state: Arc<TenantState>,
}

impl Tenant {
    /// The tenant's registered name.
    pub fn name(&self) -> &str {
        &self.state.name
    }

    /// The tenant's fair-share weight.
    pub fn weight(&self) -> u64 {
        self.state.weight
    }

    /// Counter snapshot for this tenant.
    pub fn stats(&self) -> TenantStats {
        self.state.stats()
    }

    /// Submits a sequential task through the admission pipeline (drain
    /// gate → overload shed → token budget).  On success the task runs on
    /// the scheduler exactly once; completion is observable via
    /// [`stats`](Self::stats) or a drain.
    pub fn submit<F>(&self, f: F) -> Result<(), SubmitError>
    where
        F: FnOnce(&TaskContext<'_>) + Send + 'static,
    {
        let guard = self.admit()?;
        self.core
            .scope
            .submit(&self.core.scheduler, move |ctx| {
                let _guard = guard;
                f(ctx);
            });
        Ok(())
    }

    /// Submits a data-parallel team task requiring `threads` workers
    /// through the same admission pipeline.  Admission charges one token
    /// regardless of `threads`: the budget paces *submissions*; team width
    /// is capacity the scheduler itself arbitrates.
    pub fn submit_team<F>(&self, threads: usize, f: F) -> Result<(), SubmitError>
    where
        F: Fn(&TaskContext<'_>) + Send + Sync + 'static,
    {
        let guard = self.admit()?;
        self.core
            .scope
            .submit_team(&self.core.scheduler, threads, move |ctx| {
                // Every team member runs the closure; only the one guard
                // exists, so completion is still counted once (when the
                // job — and the guard it owns — is dropped after the last
                // member finishes).
                let _guard = &guard;
                f(ctx);
            });
        Ok(())
    }

    /// Submits a sequential task with per-submission SLO options: a
    /// deadline (explicit or the tenant default), an optional shared
    /// cancellation token, and an optional admission retry schedule.
    /// Returns a [`TaskHandle`] for cancelling and observing the task.
    ///
    /// The deadline clock starts at *submission* (before any retry
    /// sleeps): an SLO measures the caller's wait, not the queue's.  A
    /// task whose deadline passes while it is still queued is dropped
    /// without running and counted as `tasks_expired`; its completion
    /// guard still runs, so drains and accounting never wedge on expired
    /// work.
    pub fn submit_with<F>(&self, opts: SubmitOptions, f: F) -> Result<TaskHandle, SubmitError>
    where
        F: FnOnce(&TaskContext<'_>) + Send + 'static,
    {
        // `checked_add`: a huge relative deadline (say `Duration::MAX` as
        // an "effectively none" sentinel) saturates to no deadline instead
        // of panicking the submitting thread.
        let deadline = opts
            .deadline
            .or(self.state.default_deadline)
            .and_then(|d| Instant::now().checked_add(d));
        let token = opts.cancel_token.unwrap_or_default();
        let cell = Arc::new(CancelCell::new());
        let finished = Arc::new(AtomicBool::new(false));
        let mut f = Some(f);
        let mut attempt = || -> Result<(), (SubmitError, Option<Duration>)> {
            let guard = self.admit_with(Some(Arc::clone(&finished)))?;
            // Register the task's own claim cell with the (possibly
            // batch-shared) token only once it is actually admitted, so a
            // token sweep's "won at least one race" answer never counts a
            // submission that was rejected.
            token.attach(Arc::clone(&cell));
            let job = f.take().expect("one success consumes the closure");
            self.core.scope.submit_cancellable(
                &self.core.scheduler,
                Some(Arc::clone(&cell)),
                deadline,
                move |ctx| {
                    let _guard = guard;
                    job(ctx);
                },
            );
            Ok(())
        };
        let result = match &opts.retry {
            None => attempt().map_err(|(err, _)| err),
            Some(policy) => {
                let (result, retries) =
                    retry::run_with_retry(policy, std::thread::sleep, attempt);
                self.state
                    .retry_attempts
                    .fetch_add(retries, Ordering::Relaxed);
                result
            }
        };
        result.map(|()| TaskHandle {
            token,
            cell,
            finished,
        })
    }

    /// Runs the admission pipeline and, on success, returns the completion
    /// guard carrying the gate entry.
    fn admit(&self) -> Result<CompletionGuard, SubmitError> {
        self.admit_with(None).map_err(|(err, _)| err)
    }

    /// [`admit`](Self::admit) with the `is_finished` flag threaded into
    /// the guard and, on failure, the admission layer's wait hint (how
    /// long until the refill law could cover the shortfall) threaded out
    /// for retry schedules.
    fn admit_with(
        &self,
        finished: Option<Arc<AtomicBool>>,
    ) -> Result<CompletionGuard, (SubmitError, Option<Duration>)> {
        self.state.offered.fetch_add(1, Ordering::Relaxed);
        if !self.core.gate.try_enter() {
            self.state.drain_rejected.fetch_add(1, Ordering::Relaxed);
            return Err((SubmitError::Draining, None));
        }
        // Shed before spending tokens: under overload the tenant keeps its
        // budget for when the backlog recedes.
        if self.core.backlog() > self.core.high_water {
            self.core.gate.exit();
            self.state.shed.fetch_add(1, Ordering::Relaxed);
            return Err((SubmitError::Overloaded, None));
        }
        if let Err((err, hint)) = self.acquire_token() {
            self.core.gate.exit();
            self.state
                .counter_for(err)
                .fetch_add(1, Ordering::Relaxed);
            return Err((err, hint));
        }
        self.state.admitted.fetch_add(1, Ordering::Relaxed);
        Ok(CompletionGuard {
            core: Arc::clone(&self.core),
            state: Arc::clone(&self.state),
            finished,
        })
    }

    fn acquire_token(&self) -> Result<(), (SubmitError, Option<Duration>)> {
        let hint = |shortfall| {
            Some(Duration::from_micros(
                self.state.bucket.wait_hint_us(shortfall).max(1),
            ))
        };
        match self.state.bucket.try_acquire_at(self.core.now_us()) {
            Ok(()) => Ok(()),
            Err(first) => match self.state.policy {
                AdmissionPolicy::Reject => Err((SubmitError::Backpressure, hint(first))),
                AdmissionPolicy::Block(max_wait) => {
                    // `checked_add`: an absurdly large bound (a "block
                    // forever" sentinel) means no deadline rather than a
                    // panic; the drain check below still bounds the wait.
                    let deadline = Instant::now().checked_add(max_wait);
                    let mut shortfall = first;
                    loop {
                        // A drain must not wait out blocked submitters:
                        // abort the block as soon as the gate flips.
                        if self.core.gate.state() != GateState::Open {
                            return Err((SubmitError::Draining, None));
                        }
                        let now = Instant::now();
                        if deadline.is_some_and(|d| now >= d) {
                            return Err((SubmitError::Backpressure, hint(shortfall)));
                        }
                        let mut nap = Duration::from_micros(
                            self.state.bucket.wait_hint_us(shortfall).max(1),
                        )
                        // Cap each nap so the drain/deadline checks stay
                        // responsive even with huge shortfalls.
                        .min(Duration::from_millis(1));
                        if let Some(d) = deadline {
                            nap = nap.min(d - now);
                        }
                        std::thread::sleep(nap);
                        match self.state.bucket.try_acquire_at(self.core.now_us()) {
                            Ok(()) => return Ok(()),
                            Err(s) => shortfall = s,
                        }
                    }
                }
            },
        }
    }
}

impl TenantState {
    fn counter_for(&self, err: SubmitError) -> &AtomicU64 {
        match err {
            SubmitError::Backpressure => &self.rejected,
            SubmitError::Overloaded => &self.shed,
            SubmitError::Draining => &self.drain_rejected,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    fn small_service() -> TaskService {
        ServiceBuilder::new()
            .threads(2)
            .refill_rate(1_000_000)
            // Cover the largest burst a test submits back-to-back: in
            // release builds the submit loop outruns even a 1M/s refill.
            .tenant(TenantConfig::new("t").burst(64))
            .build()
    }

    #[test]
    fn submit_runs_and_drain_accounts_exactly_once() {
        let service = small_service();
        let tenant = service.tenant("t").unwrap();
        let hits = Arc::new(AtomicUsize::new(0));
        for _ in 0..64 {
            let hits = Arc::clone(&hits);
            tenant
                .submit(move |_| {
                    hits.fetch_add(1, Ordering::Relaxed);
                })
                .unwrap();
        }
        let report = service.drain();
        assert!(report.initiated);
        assert_eq!(hits.load(Ordering::Relaxed), 64);
        assert_eq!(report.admitted(), 64);
        assert_eq!(report.completed(), 64);
        assert_eq!(service.state(), GateState::Drained);
        assert_eq!(tenant.submit(|_| {}), Err(SubmitError::Draining));
        // A second drain is a no-op wait, not a second initiation.
        assert!(!service.drain().initiated);
    }

    #[test]
    fn unknown_tenant_is_none_and_lookup_works() {
        let service = small_service();
        assert!(service.tenant("t").is_some());
        assert!(service.tenant("nope").is_none());
    }

    #[test]
    fn backpressure_respects_reject_policy() {
        let service = ServiceBuilder::new()
            .threads(1)
            .refill_rate(1) // 1 task/s: only the burst is admissible
            .tenant(TenantConfig::new("t").burst(4))
            .build();
        let tenant = service.tenant("t").unwrap();
        let mut admitted = 0;
        let mut rejected = 0;
        for _ in 0..32 {
            match tenant.submit(|_| {}) {
                Ok(()) => admitted += 1,
                Err(SubmitError::Backpressure) => rejected += 1,
                Err(other) => panic!("unexpected error {other:?}"),
            }
        }
        assert_eq!(admitted, 4, "exactly the burst is admitted");
        assert_eq!(rejected, 28);
        let stats = tenant.stats();
        assert_eq!(stats.offered, 32);
        assert_eq!(
            stats.admitted + stats.rejected + stats.shed + stats.drain_rejected,
            stats.offered,
            "conservation"
        );
    }

    #[test]
    fn block_policy_paces_instead_of_rejecting() {
        let service = ServiceBuilder::new()
            .threads(1)
            .refill_rate(2_000) // refills fast enough to cover the block bound
            .tenant(
                TenantConfig::new("t")
                    .burst(1)
                    .policy(AdmissionPolicy::Block(Duration::from_secs(2))),
            )
            .build();
        let tenant = service.tenant("t").unwrap();
        for _ in 0..8 {
            tenant.submit(|_| {}).unwrap();
        }
        assert_eq!(tenant.stats().rejected, 0);
        assert_eq!(tenant.stats().admitted, 8);
    }

    #[test]
    fn panicking_task_completes_for_accounting_and_surfaces() {
        let service = small_service();
        let tenant = service.tenant("t").unwrap();
        tenant.submit(|_| panic!("tenant bug")).unwrap();
        let report = service.drain();
        assert_eq!(report.admitted(), 1);
        assert_eq!(report.completed(), 1, "panic still retires the task");
        let payload = service.take_panic().expect("panic payload captured");
        assert_eq!(*payload.downcast_ref::<&str>().unwrap(), "tenant bug");
    }

    #[test]
    fn auto_sized_external_pins_cover_declared_concurrency() {
        let service = ServiceBuilder::new()
            .threads(1)
            .tenant(TenantConfig::new("a").max_concurrency(40))
            .tenant(TenantConfig::new("b").max_concurrency(24))
            .build();
        assert_eq!(service.scheduler().external_pin_slots(), 64);
        // Few declared submitters still get the scheduler default of 32.
        let small = ServiceBuilder::new()
            .threads(1)
            .tenant(TenantConfig::new("a"))
            .build();
        assert_eq!(small.scheduler().external_pin_slots(), 32);
    }

    #[test]
    #[should_panic]
    fn duplicate_tenant_names_are_rejected() {
        let _ = ServiceBuilder::new()
            .tenant(TenantConfig::new("t"))
            .tenant(TenantConfig::new("t"))
            .build();
    }
}
