//! Bounded, jittered exponential backoff for admission retries
//! (DESIGN.md §17).
//!
//! PR 9 left every closed-loop caller hand-rolling the same loop: submit,
//! observe [`SubmitError::Backpressure`], sleep "a bit", try again.  A
//! [`RetryPolicy`] packages that loop with three properties the hand-rolled
//! versions kept getting subtly wrong (the proptests in this module pin
//! each one down):
//!
//! 1. **Bounded**: at most `max_attempts` submission attempts ever run —
//!    the schedule cannot spin forever against a saturated bucket.
//! 2. **Backoff with a floor**: the pre-jitter delay doubles per attempt
//!    within `[base, cap]`, and each sleep honors the admission layer's
//!    wait hint (the token bucket knows *exactly* when the refill law can
//!    cover the shortfall; sleeping less than that is guaranteed-futile
//!    spinning).
//! 3. **Drain-aborting**: [`SubmitError::Draining`] is terminal — the
//!    service will never admit again, so retrying is lying to the caller.
//!    The loop returns immediately without sleeping.
//!
//! Jitter is deterministic (a splitmix64 hash of `seed ^ attempt`), so a
//! given policy value produces a reproducible schedule — the same
//! no-hidden-clock discipline as the admission bucket's explicit
//! microsecond timestamps.

use std::time::Duration;

use crate::SubmitError;

/// A bounded, jittered exponential-backoff schedule for submission
/// retries.  See the module docs.  Passed to `Tenant::submit_with` via
/// `SubmitOptions::retry`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetryPolicy {
    max_attempts: u32,
    base: Duration,
    cap: Duration,
    jitter: bool,
    seed: u64,
}

impl RetryPolicy {
    /// A policy allowing up to `max_attempts` total submission attempts
    /// (clamped to ≥ 1; the first attempt counts), with a 50 µs base
    /// delay doubling up to a 5 ms cap, jitter on.
    pub fn new(max_attempts: u32) -> Self {
        RetryPolicy {
            max_attempts: max_attempts.max(1),
            base: Duration::from_micros(50),
            cap: Duration::from_millis(5),
            jitter: true,
            seed: 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Sets the first retry's pre-jitter delay.
    pub fn base(mut self, base: Duration) -> Self {
        self.base = base;
        self
    }

    /// Sets the pre-jitter delay ceiling.  A cap below `base` is treated
    /// as `base` (the schedule is always within `[base, max(base, cap)]`).
    pub fn cap(mut self, cap: Duration) -> Self {
        self.cap = cap;
        self
    }

    /// Enables or disables jitter (default: on).  With jitter off, sleeps
    /// equal [`delay_pre_jitter`](Self::delay_pre_jitter) exactly.
    pub fn jitter(mut self, on: bool) -> Self {
        self.jitter = on;
        self
    }

    /// Seeds the deterministic jitter hash.  Submitters sharing a policy
    /// value can pick distinct seeds to avoid retrying in lockstep.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Maximum total submission attempts (≥ 1).
    pub fn max_attempts(&self) -> u32 {
        self.max_attempts
    }

    /// The deterministic (pre-jitter) delay slept after failed attempt
    /// `attempt` (1-based): `base × 2^(attempt−1)`, clamped into
    /// `[base, max(base, cap)]`.  Monotone nondecreasing in `attempt`.
    pub fn delay_pre_jitter(&self, attempt: u32) -> Duration {
        let cap = self.cap.max(self.base);
        let exp = attempt.saturating_sub(1).min(63);
        let nanos = (self.base.as_nanos().min(u128::from(u64::MAX)) as u64)
            .saturating_mul(1u64 << exp.min(62));
        Duration::from_nanos(nanos).clamp(self.base, cap)
    }

    /// The actual delay slept after failed attempt `attempt`: the
    /// pre-jitter delay scaled by a deterministic factor in `[½, 1]`
    /// (full delay when jitter is off).  Retry loops additionally floor
    /// this with the admission layer's wait hint.
    pub fn delay(&self, attempt: u32) -> Duration {
        let pre = self.delay_pre_jitter(attempt);
        if !self.jitter {
            return pre;
        }
        let r = splitmix64(self.seed ^ u64::from(attempt));
        // 53 uniform mantissa bits → fraction in [0, 1); scale into [½, 1].
        let unit = (r >> 11) as f64 / (1u64 << 53) as f64;
        pre.mul_f64(0.5 + unit / 2.0)
    }
}

/// One splitmix64 output for input `x` — the standard finalizer, used here
/// as a stateless hash so jitter needs no mutable RNG state.
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Drives `attempt_fn` under `policy`: at most `policy.max_attempts()`
/// calls, sleeping the jittered backoff (floored by the attempt's wait
/// hint, when one was returned) between failures, aborting immediately —
/// no sleep, no further attempts — on [`SubmitError::Draining`].
///
/// Returns the first success (or the last error) plus the number of
/// *retries* performed (attempts beyond the first; this is what the
/// `retry_attempts` metric accumulates).  `sleep` is injected so tests
/// can observe the schedule without real time passing.
pub fn run_with_retry<T>(
    policy: &RetryPolicy,
    mut sleep: impl FnMut(Duration),
    mut attempt_fn: impl FnMut() -> Result<T, (SubmitError, Option<Duration>)>,
) -> (Result<T, SubmitError>, u64) {
    let mut retries = 0u64;
    for attempt in 1..=policy.max_attempts {
        match attempt_fn() {
            Ok(value) => return (Ok(value), retries),
            Err((SubmitError::Draining, _)) => return (Err(SubmitError::Draining), retries),
            Err((err, hint)) => {
                if attempt == policy.max_attempts {
                    return (Err(err), retries);
                }
                retries += 1;
                let mut delay = policy.delay(attempt);
                if let Some(hint) = hint {
                    delay = delay.max(hint);
                }
                sleep(delay);
            }
        }
    }
    // max_attempts ≥ 1, so the loop always returns from within.
    unreachable!("retry loop exhausted without returning")
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn first_success_needs_no_sleep() {
        let policy = RetryPolicy::new(5);
        let mut sleeps = Vec::new();
        let (result, retries) = run_with_retry(
            &policy,
            |d| sleeps.push(d),
            || Ok::<_, (SubmitError, Option<Duration>)>(42),
        );
        assert_eq!(result, Ok(42));
        assert_eq!(retries, 0);
        assert!(sleeps.is_empty());
    }

    #[test]
    fn hint_floors_the_backoff_delay() {
        let policy = RetryPolicy::new(2).base(Duration::from_micros(1)).jitter(false);
        let hint = Duration::from_millis(50);
        let mut sleeps = Vec::new();
        let mut calls = 0;
        let (result, _) = run_with_retry(&policy, |d| sleeps.push(d), || {
            calls += 1;
            Err::<(), _>((SubmitError::Backpressure, Some(hint)))
        });
        assert_eq!(result, Err(SubmitError::Backpressure));
        assert_eq!(calls, 2);
        assert_eq!(sleeps, vec![hint], "the honest bucket hint wins over tiny backoff");
    }

    proptest! {
        /// Boundedness: against a permanently failing target the schedule
        /// makes exactly `max_attempts` calls and `max_attempts − 1`
        /// sleeps, then gives up with the last error.
        #[test]
        fn schedule_is_bounded_by_max_attempts(
            max_attempts in 1u32..20,
            seed in 0u64..u64::MAX,
        ) {
            let policy = RetryPolicy::new(max_attempts).seed(seed);
            let mut calls = 0u32;
            let mut sleeps = 0u32;
            let (result, retries) = run_with_retry(&policy, |_| sleeps += 1, || {
                calls += 1;
                Err::<(), _>((SubmitError::Backpressure, None))
            });
            prop_assert_eq!(result, Err(SubmitError::Backpressure));
            prop_assert_eq!(calls, policy.max_attempts());
            prop_assert_eq!(sleeps, policy.max_attempts() - 1);
            prop_assert_eq!(retries, u64::from(policy.max_attempts() - 1));
        }

        /// Pre-jitter delays are monotone nondecreasing in the attempt
        /// index and stay within `[base, max(base, cap)]`; the jittered
        /// delay never exceeds its pre-jitter value and keeps at least
        /// half of it.
        #[test]
        fn delays_are_monotone_and_bounded(
            base_us in 1u64..10_000,
            cap_us in 1u64..100_000,
            seed in 0u64..u64::MAX,
            attempts in 2u32..40,
        ) {
            let base = Duration::from_micros(base_us);
            let cap = Duration::from_micros(cap_us);
            let policy = RetryPolicy::new(attempts).base(base).cap(cap).seed(seed);
            let hi = cap.max(base);
            let mut prev = Duration::ZERO;
            for attempt in 1..=attempts {
                let pre = policy.delay_pre_jitter(attempt);
                prop_assert!(pre >= base, "attempt {attempt}: {pre:?} < base {base:?}");
                prop_assert!(pre <= hi, "attempt {attempt}: {pre:?} > cap {hi:?}");
                prop_assert!(pre >= prev, "attempt {attempt}: schedule decreased");
                prev = pre;
                let jittered = policy.delay(attempt);
                prop_assert!(jittered <= pre);
                // Integer-nanosecond truncation can shave < 1 ns off the
                // exact half, never more.
                prop_assert!(jittered + Duration::from_nanos(1) >= pre / 2);
            }
        }

        /// `Draining` is terminal: however many attempts remain, the loop
        /// stops at the attempt that observed it, without sleeping again.
        #[test]
        fn draining_stops_retries_immediately(
            max_attempts in 1u32..20,
            drain_at in 1u32..20,
        ) {
            let drain_at = drain_at.min(max_attempts);
            let policy = RetryPolicy::new(max_attempts);
            let mut calls = 0u32;
            let mut sleeps = 0u32;
            let (result, retries) = run_with_retry(&policy, |_| sleeps += 1, || {
                calls += 1;
                if calls == drain_at {
                    Err::<(), _>((SubmitError::Draining, None))
                } else {
                    Err((SubmitError::Backpressure, None))
                }
            });
            prop_assert_eq!(result, Err(SubmitError::Draining));
            prop_assert_eq!(calls, drain_at);
            prop_assert_eq!(sleeps, drain_at - 1, "no sleep after the drain signal");
            prop_assert_eq!(retries, u64::from(drain_at - 1));
        }
    }
}
