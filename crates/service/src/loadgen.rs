//! Open-loop load generation against a persistent [`TaskService`]
//! (EXPERIMENTS.md, `service_latency`).
//!
//! Closed-loop benchmarks (submit, wait, repeat) can never observe queueing
//! collapse: the submitter slows down with the system.  The generator here
//! is **open-loop**: every submitter thread follows an *absolute* arrival
//! schedule `t_k = start + k·interval` — if the service lags, the submitter
//! does not slow its clock to match (there is no catch-up sleep), so
//! backlog, shedding and backpressure appear exactly as they would under
//! real independent traffic.  Sampled submissions carry a timestamp into
//! the task closure, which records **submit-to-complete** latency at
//! completion; p50/p95/p99 come from those samples.
//!
//! A second, closed-loop-at-full-throttle phase ([`saturation`]) measures
//! the service ceiling: submitters push back-to-back under the blocking
//! policy, and throughput is completed tasks over elapsed time.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use teamsteal_core::MetricsSnapshot;

use crate::{
    AdmissionPolicy, ServiceBuilder, SubmitError, SubmitOptions, TaskService, TenantConfig,
    TenantStats,
};

/// Parameters of one load-generation run.
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Scheduler worker threads.
    pub threads: usize,
    /// Submitter threads (external, outside the worker pool).
    pub submitters: usize,
    /// Total offered arrival rate over all submitters, in tasks per second.
    pub arrival_rate_hz: u64,
    /// Wall-clock length of the paced phase.
    pub duration: Duration,
    /// One tenant per entry, with the given fair-share weight; submitter
    /// `i` submits through tenant `i % len`.
    pub tenant_weights: Vec<u64>,
    /// Admission refill rate in tasks/s per weight unit.
    pub refill_rate: u64,
    /// Per-tenant burst allowance in tasks.
    pub burst: u64,
    /// Injector-backlog high-water mark (shed threshold).
    pub high_water: usize,
    /// Record one submit-to-complete latency sample every this many
    /// submissions per submitter (1 = every task).
    pub sample_every: usize,
    /// Busy work per task in nanoseconds (0 = empty task).
    pub task_spin_ns: u64,
    /// Per-task deadline for the paced phase.  When set, every submission
    /// goes through the SLO path (`Tenant::submit_with`): tasks still
    /// queued past the deadline are dropped without running
    /// (`tasks_expired`), and the outcome gains *goodput* — completions
    /// within their deadline per second — and a deadline-miss rate.
    pub deadline: Option<Duration>,
}

/// Outcome of [`service_latency`]: aggregate counters plus the sampled
/// latency population.
#[derive(Debug, Clone)]
pub struct LoadgenOutcome {
    /// Wall time of the paced phase including the final drain.
    pub elapsed: Duration,
    /// Sampled submit-to-complete latencies (unordered).
    pub latencies: Vec<Duration>,
    /// Final per-tenant counters, in tenant order.
    pub per_tenant: Vec<(String, TenantStats)>,
    /// Scheduler-counter totals over the whole run (taken after the drain),
    /// with the service-plane `retry_attempts` counter filled in.
    pub metrics: MetricsSnapshot,
    /// The per-task deadline the run was configured with, if any.
    pub deadline: Option<Duration>,
    /// Tasks that *executed and completed within their deadline* — the
    /// goodput numerator.  Zero (and meaningless) in runs without a
    /// deadline.
    pub in_deadline: u64,
}

impl LoadgenOutcome {
    /// Sums one counter over all tenants.
    fn total(&self, pick: impl Fn(&TenantStats) -> u64) -> u64 {
        self.per_tenant.iter().map(|(_, s)| pick(s)).sum()
    }

    /// Total submissions offered.
    pub fn offered(&self) -> u64 {
        self.total(|s| s.offered)
    }

    /// Total submissions admitted (== completed after the drain).
    pub fn admitted(&self) -> u64 {
        self.total(|s| s.admitted)
    }

    /// Total submissions rejected by token budgets.
    pub fn backpressure(&self) -> u64 {
        self.total(|s| s.rejected)
    }

    /// Total submissions shed by the high-water gate.
    pub fn shed(&self) -> u64 {
        self.total(|s| s.shed)
    }

    /// Goodput: tasks that completed within their deadline, per second of
    /// wall time.  The graceful-degradation figure of merit — under
    /// overload, raw completion throughput can stay flat while every
    /// completion is a stale, past-deadline answer; goodput only counts
    /// answers that were still worth computing.  `None` without a deadline.
    pub fn goodput_per_sec(&self) -> Option<f64> {
        self.deadline?;
        let secs = self.elapsed.as_secs_f64();
        (secs > 0.0).then(|| self.in_deadline as f64 / secs)
    }

    /// Fraction of *admitted* tasks that missed their deadline: expired in
    /// the queue (dropped without running) or completed late.  `None`
    /// without a deadline or with nothing admitted.
    pub fn deadline_miss_rate(&self) -> Option<f64> {
        self.deadline?;
        let admitted = self.admitted();
        (admitted > 0).then(|| (admitted - self.in_deadline.min(admitted)) as f64 / admitted as f64)
    }

    /// Per-tenant fairness ratio: admitted share divided by fair
    /// (weight-proportional) share — 1.0 is perfectly weighted-fair.
    /// Tenant order matches `per_tenant`; empty if nothing was admitted.
    pub fn fairness_ratios(&self, weights: &[u64]) -> Vec<f64> {
        let admitted_total = self.admitted();
        let weight_total: u64 = weights.iter().sum();
        if admitted_total == 0 || weight_total == 0 {
            return Vec::new();
        }
        self.per_tenant
            .iter()
            .zip(weights)
            .map(|((_, s), &w)| {
                let share = s.admitted as f64 / admitted_total as f64;
                let fair = w as f64 / weight_total as f64;
                share / fair
            })
            .collect()
    }
}

/// Outcome of [`saturation`].
#[derive(Debug, Clone)]
pub struct SaturationOutcome {
    /// Tasks completed during the throttle phase.
    pub completed: u64,
    /// Wall time including the drain.
    pub elapsed: Duration,
    /// Scheduler-counter totals over the whole run (taken after the drain).
    pub metrics: MetricsSnapshot,
}

impl SaturationOutcome {
    /// Sustained completion throughput in tasks per second.
    pub fn tasks_per_sec(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs > 0.0 {
            self.completed as f64 / secs
        } else {
            0.0
        }
    }
}

fn tenant_name(index: usize) -> String {
    format!("tenant-{index}")
}

fn build_service(cfg: &LoadgenConfig, policy: AdmissionPolicy, refill_rate: u64) -> TaskService {
    let mut builder = ServiceBuilder::new()
        .threads(cfg.threads)
        .refill_rate(refill_rate)
        .high_water(cfg.high_water)
        // Every submitter uses one pin around every injection; cover them
        // all so `external_pin_waits` stays 0 (the PR 9 satellite).
        .external_participants(cfg.submitters.max(32));
    for (i, &weight) in cfg.tenant_weights.iter().enumerate() {
        builder = builder.tenant(
            TenantConfig::new(tenant_name(i))
                .weight(weight)
                .burst(cfg.burst)
                .policy(policy)
                .max_concurrency(cfg.submitters.div_ceil(cfg.tenant_weights.len())),
        );
    }
    builder.build()
}

fn spin(ns: u64) {
    if ns == 0 {
        return;
    }
    let start = Instant::now();
    while (start.elapsed().as_nanos() as u64) < ns {
        std::hint::spin_loop();
    }
}

/// Runs the paced open-loop phase: `cfg.submitters` threads at a combined
/// `cfg.arrival_rate_hz` for `cfg.duration`, then drains and reports.
///
/// # Panics
///
/// Panics on a zero submitter count, arrival rate or tenant list.
pub fn service_latency(cfg: &LoadgenConfig) -> LoadgenOutcome {
    assert!(cfg.submitters > 0, "need at least one submitter");
    assert!(cfg.arrival_rate_hz > 0, "need a positive arrival rate");
    assert!(!cfg.tenant_weights.is_empty(), "need at least one tenant");
    let service = build_service(cfg, AdmissionPolicy::Reject, cfg.refill_rate);
    let run_start = Instant::now();
    let interval =
        Duration::from_secs_f64(cfg.submitters as f64 / cfg.arrival_rate_hz as f64);
    let per_submitter = ((cfg.duration.as_secs_f64() / interval.as_secs_f64()).ceil() as usize).max(1);
    let sample_every = cfg.sample_every.max(1);
    let spin_ns = cfg.task_spin_ns;
    let deadline = cfg.deadline;
    let in_deadline_total = Arc::new(AtomicU64::new(0));
    let mut cells: Vec<Vec<Arc<AtomicU64>>> = Vec::with_capacity(cfg.submitters);
    std::thread::scope(|threads| {
        for submitter in 0..cfg.submitters {
            let tenant = service
                .tenant(&tenant_name(submitter % cfg.tenant_weights.len()))
                .expect("tenant registered above");
            let samples = per_submitter.div_ceil(sample_every);
            let slots: Vec<Arc<AtomicU64>> = (0..samples)
                .map(|_| Arc::new(AtomicU64::new(u64::MAX)))
                .collect();
            cells.push(slots.clone());
            let in_deadline_total = Arc::clone(&in_deadline_total);
            threads.spawn(move || {
                // Stagger submitters across one interval so arrivals are
                // spread, not phase-locked into bursts.
                let start =
                    run_start + interval.mul_f64(submitter as f64 / cfg.submitters as f64);
                for k in 0..per_submitter {
                    // Absolute schedule: no catch-up sleep when behind —
                    // that is what makes the loop *open*.
                    let target = start + interval.mul_f64(k as f64);
                    let now = Instant::now();
                    if now < target {
                        std::thread::sleep(target - now);
                    }
                    let submitted = Instant::now();
                    let sample_cell =
                        (k % sample_every == 0).then(|| Arc::clone(&slots[k / sample_every]));
                    let result = match deadline {
                        // SLO path: queue-expired tasks are dropped by the
                        // workers; tasks that do run self-classify their
                        // completion against the deadline for goodput.
                        Some(deadline) => {
                            let counter = Arc::clone(&in_deadline_total);
                            tenant
                                .submit_with(
                                    SubmitOptions::new().deadline(deadline),
                                    move |_| {
                                        spin(spin_ns);
                                        let elapsed = submitted.elapsed();
                                        if elapsed <= deadline {
                                            counter.fetch_add(1, Ordering::Relaxed);
                                        }
                                        if let Some(cell) = sample_cell {
                                            cell.store(
                                                elapsed.as_nanos() as u64,
                                                Ordering::Relaxed,
                                            );
                                        }
                                    },
                                )
                                .map(|_handle| ())
                        }
                        None => match sample_cell {
                            Some(cell) => tenant.submit(move |_| {
                                spin(spin_ns);
                                cell.store(
                                    submitted.elapsed().as_nanos() as u64,
                                    Ordering::Relaxed,
                                );
                            }),
                            None => tenant.submit(move |_| spin(spin_ns)),
                        },
                    };
                    // Open loop: rejected/shed arrivals are dropped, the
                    // schedule marches on.
                    let _ = result;
                }
            });
        }
    });
    let report = service.drain();
    let elapsed = run_start.elapsed();
    let metrics = service.metrics();
    let latencies = cells
        .into_iter()
        .flatten()
        .filter_map(|cell| {
            let nanos = cell.load(Ordering::Relaxed);
            (nanos != u64::MAX).then(|| Duration::from_nanos(nanos))
        })
        .collect();
    LoadgenOutcome {
        elapsed,
        latencies,
        per_tenant: report.tenants,
        metrics,
        deadline,
        in_deadline: in_deadline_total.load(Ordering::Relaxed),
    }
}

/// Measures the service ceiling: submitters push back-to-back (blocking
/// briefly on backpressure or shed) for `cfg.duration`, then the service
/// drains; throughput is completed tasks over total elapsed time.
pub fn saturation(cfg: &LoadgenConfig) -> SaturationOutcome {
    assert!(cfg.submitters > 0, "need at least one submitter");
    assert!(!cfg.tenant_weights.is_empty(), "need at least one tenant");
    // An effectively unthrottled budget: the ceiling under test is the
    // scheduler + injection path, not the admission layer.
    let service = build_service(
        cfg,
        AdmissionPolicy::Block(Duration::from_millis(50)),
        u64::MAX / (1 << 24),
    );
    let start = Instant::now();
    std::thread::scope(|threads| {
        for submitter in 0..cfg.submitters {
            let tenant = service
                .tenant(&tenant_name(submitter % cfg.tenant_weights.len()))
                .expect("tenant registered above");
            let duration = cfg.duration;
            let spin_ns = cfg.task_spin_ns;
            threads.spawn(move || {
                while start.elapsed() < duration {
                    match tenant.submit(move |_| spin(spin_ns)) {
                        Ok(()) | Err(SubmitError::Backpressure) => {}
                        // Shed: the backlog is at the high-water mark, so
                        // completion (not submission) is the bottleneck;
                        // yield and retry.
                        Err(SubmitError::Overloaded) => std::thread::yield_now(),
                        Err(SubmitError::Draining) => return,
                    }
                }
            });
        }
    });
    let report = service.drain();
    let elapsed = start.elapsed();
    SaturationOutcome {
        completed: report.completed(),
        elapsed,
        metrics: service.metrics(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> LoadgenConfig {
        LoadgenConfig {
            threads: 2,
            submitters: 2,
            arrival_rate_hz: 2_000,
            duration: Duration::from_millis(100),
            tenant_weights: vec![1, 1],
            refill_rate: 100_000,
            burst: 64,
            high_water: 1 << 16,
            sample_every: 4,
            task_spin_ns: 0,
            deadline: None,
        }
    }

    #[test]
    fn paced_run_completes_everything_it_admits() {
        let outcome = service_latency(&tiny_config());
        assert!(outcome.offered() > 0);
        assert_eq!(
            outcome.admitted(),
            outcome.total(|s| s.completed),
            "drain means admitted == completed"
        );
        assert!(!outcome.latencies.is_empty(), "sampling produced latencies");
        let ratios = outcome.fairness_ratios(&[1, 1]);
        assert_eq!(ratios.len(), 2);
    }

    #[test]
    fn deadline_run_measures_goodput() {
        let mut cfg = tiny_config();
        // Generous deadline at trivial load: everything lands in time.
        cfg.deadline = Some(Duration::from_secs(10));
        let outcome = service_latency(&cfg);
        assert!(outcome.admitted() > 0);
        assert_eq!(outcome.in_deadline, outcome.admitted());
        assert_eq!(outcome.deadline_miss_rate(), Some(0.0));
        assert!(outcome.goodput_per_sec().unwrap() > 0.0);
        // No deadline → the goodput accessors stay honest about it.
        let plain = service_latency(&tiny_config());
        assert_eq!(plain.goodput_per_sec(), None);
        assert_eq!(plain.deadline_miss_rate(), None);
    }

    #[test]
    fn saturation_reports_positive_throughput() {
        let mut cfg = tiny_config();
        cfg.duration = Duration::from_millis(50);
        let outcome = saturation(&cfg);
        assert!(outcome.completed > 0);
        assert!(outcome.tasks_per_sec() > 0.0);
    }
}
