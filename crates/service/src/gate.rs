//! The drain gate: the service's exactly-once graceful-shutdown protocol
//! (DESIGN.md §16).
//!
//! Every submission enters the gate before it touches the scheduler and
//! exits it when its task **completes** (not when `submit` returns), so the
//! gate's `in_flight` counter covers both submitters mid-pipeline and
//! admitted tasks still running.  `drain()` flips the gate shut and waits
//! for `in_flight` to hit zero; the inc-then-check entry protocol makes the
//! classic drain race (a submitter slipping a task in after the drainer
//! decided the service is empty) impossible.
//!
//! The protocol runs on `teamsteal_util::sync` types, so the model suite
//! (`crates/model/tests/service_model.rs`) explores every interleaving of
//! racing submitters against a drainer through the `cfg(teamsteal_model)`
//! shim — the ordering argument below is machine-checked, not prose-only.
//!
//! ## Why inc-then-check is safe (DESIGN.md §16 table, rows A–C)
//!
//! All gate accesses are `SeqCst`, so they embed into one total order `S`.
//! A submitter increments `in_flight` (A) and *then* loads `state` (B); the
//! drainer CASes `state` from `Open` to `Draining` (C) and then repeatedly
//! loads `in_flight` until it reads zero (D).
//!
//! * If A follows C in `S`, then B does too, and since `state` never
//!   returns to `Open`, B observes `Draining` and the submitter rejects
//!   (decrementing what it incremented).  No task enters after C unseen.
//! * If A precedes C, the increment is visible to every D, so the drainer
//!   cannot observe zero until the submission's matching exit — which for
//!   an *admitted* task happens at task completion.  Hence "drain returns ⇒
//!   every admitted task has completed".
//! * Exactly-once: only one caller wins the `Open → Draining` CAS; every
//!   later `drain()` observes the transition and merely waits.
//!
//! The exit path's wakeup cannot be lost: the final decrement takes the
//! monitor lock before notifying, and the drainer re-checks `in_flight`
//! under that same lock before parking, with a defensive backstop timeout
//! on top (the same belt-and-suspenders shape as the eventcount, §12).

use std::time::Duration;

use teamsteal_util::sync::atomic::{AtomicU32, AtomicU64, AtomicUsize, Ordering};
use teamsteal_util::sync::{Condvar, Mutex};

/// Lifecycle of a [`DrainGate`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GateState {
    /// Accepting submissions.
    Open,
    /// `drain()` has begun: new submissions are rejected, existing work is
    /// still running.
    Draining,
    /// All in-flight work has completed; the gate is permanently shut.
    Drained,
}

const OPEN: u32 = 0;
const DRAINING: u32 = 1;
const DRAINED: u32 = 2;

/// The admission/drain gate described in the module docs.
pub struct DrainGate {
    state: AtomicU32,
    /// Submissions mid-pipeline plus admitted tasks not yet completed.
    in_flight: AtomicUsize,
    /// Times the drainer's backstop timeout fired with work still in
    /// flight (i.e. the defensive `wait_timeout` did real waiting instead
    /// of being woken by the final exit).  Mirrors the §12 eventcount
    /// backstop counter.  Fires are *expected* when a drain overlaps tasks
    /// that outlast the backstop duration; what would indicate a
    /// lost-notification bug is the counter growing while `in_flight`
    /// holds steady at a small value with no long task running.
    backstops: AtomicU64,
    lock: Mutex<()>,
    cv: Condvar,
}

impl Default for DrainGate {
    fn default() -> Self {
        Self::new()
    }
}

impl DrainGate {
    /// Creates an open gate with nothing in flight.
    pub fn new() -> Self {
        DrainGate {
            state: AtomicU32::new(OPEN),
            in_flight: AtomicUsize::new(0),
            backstops: AtomicU64::new(0),
            lock: Mutex::new(()),
            cv: Condvar::new(),
        }
    }

    /// Attempts to enter the gate.  On `true` the caller holds one
    /// `in_flight` reference and **must** balance it exactly once with
    /// [`exit`](Self::exit) — typically from the task's completion guard.
    /// On `false` the gate is draining (or drained) and the reference has
    /// already been released.
    pub fn try_enter(&self) -> bool {
        // Inc *before* the state check: a concurrent drainer either sees
        // this increment (and waits for our exit) or already flipped the
        // state (and the load below observes it).  See module docs.
        self.in_flight.fetch_add(1, Ordering::SeqCst);
        if self.state.load(Ordering::SeqCst) != OPEN {
            self.exit();
            return false;
        }
        true
    }

    /// Releases one `in_flight` reference taken by a successful
    /// [`try_enter`](Self::try_enter).  The final exit during a drain
    /// notifies the waiting drainer through the monitor.
    pub fn exit(&self) {
        if self.in_flight.fetch_sub(1, Ordering::SeqCst) == 1
            && self.state.load(Ordering::SeqCst) != OPEN
        {
            // Taking the lock before notifying closes the window where the
            // drainer has checked `in_flight` but not yet parked.
            let _guard = self.lock.lock().expect("drain gate lock poisoned");
            self.cv.notify_all();
        }
    }

    /// Flips the gate from `Open` to `Draining`.  Returns `true` for the
    /// single caller that performed the transition; `false` if a drain was
    /// already in progress (or finished).
    pub fn begin_drain(&self) -> bool {
        self.state
            .compare_exchange(OPEN, DRAINING, Ordering::SeqCst, Ordering::SeqCst)
            .is_ok()
    }

    /// Blocks until `in_flight` reaches zero, then marks the gate
    /// `Drained`.  Call only after [`begin_drain`](Self::begin_drain) has
    /// happened (by this caller or a racing one); idempotent across racing
    /// drainers.  `backstop` bounds one park against a (hypothetical) lost
    /// notification; the protocol itself does not rely on it.
    pub fn await_empty(&self, backstop: Duration) {
        let mut guard = self.lock.lock().expect("drain gate lock poisoned");
        while self.in_flight.load(Ordering::SeqCst) != 0 {
            let (g, timeout) = self
                .cv
                .wait_timeout(guard, backstop)
                .expect("drain gate lock poisoned");
            guard = g;
            // Count backstop fires that did real work: the timeout elapsed
            // and in-flight work remained, so this iteration re-parks
            // instead of exiting.  Spurious timed-out wakes racing the
            // final exit (in_flight already 0) are not backstops.
            if timeout.timed_out() && self.in_flight.load(Ordering::SeqCst) != 0 {
                self.backstops.fetch_add(1, Ordering::Relaxed);
            }
        }
        drop(guard);
        self.state.store(DRAINED, Ordering::SeqCst);
    }

    /// Current lifecycle state (point-in-time; may be stale immediately).
    pub fn state(&self) -> GateState {
        match self.state.load(Ordering::SeqCst) {
            OPEN => GateState::Open,
            DRAINING => GateState::Draining,
            _ => GateState::Drained,
        }
    }

    /// Current `in_flight` count (point-in-time; may be stale immediately).
    pub fn in_flight(&self) -> usize {
        self.in_flight.load(Ordering::SeqCst)
    }

    /// Number of drainer backstop-timeout fires that found work still in
    /// flight (see the field docs for how to read it).  Surfaced through
    /// `TaskService::report`.
    pub fn backstops(&self) -> u64 {
        self.backstops.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enter_exit_balances() {
        let gate = DrainGate::new();
        assert_eq!(gate.state(), GateState::Open);
        assert!(gate.try_enter());
        assert!(gate.try_enter());
        assert_eq!(gate.in_flight(), 2);
        gate.exit();
        gate.exit();
        assert_eq!(gate.in_flight(), 0);
    }

    #[test]
    fn drain_rejects_new_entries_and_is_exactly_once() {
        let gate = DrainGate::new();
        assert!(gate.begin_drain(), "first drainer wins the transition");
        assert!(!gate.begin_drain(), "second drainer must not win again");
        assert!(!gate.try_enter(), "entries after begin_drain are rejected");
        assert_eq!(gate.in_flight(), 0, "rejected entry released itself");
        gate.await_empty(Duration::from_millis(10));
        assert_eq!(gate.state(), GateState::Drained);
        assert!(!gate.try_enter(), "entries after the drain stay rejected");
    }

    #[test]
    fn await_empty_blocks_until_last_exit() {
        let gate = std::sync::Arc::new(DrainGate::new());
        assert!(gate.try_enter());
        assert!(gate.begin_drain());
        let worker = {
            let gate = std::sync::Arc::clone(&gate);
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(20));
                gate.exit();
            })
        };
        gate.await_empty(Duration::from_millis(5));
        assert_eq!(gate.in_flight(), 0);
        assert_eq!(gate.state(), GateState::Drained);
        worker.join().unwrap();
        // The 5 ms backstop fired at least once during the 20 ms wait with
        // the entry still in flight, and the counter saw it.
        assert!(gate.backstops() >= 1, "backstop fires are counted");
    }

    #[test]
    fn uncontended_drain_counts_no_backstops() {
        let gate = DrainGate::new();
        assert!(gate.try_enter());
        gate.exit();
        assert!(gate.begin_drain());
        gate.await_empty(Duration::from_millis(10));
        assert_eq!(gate.state(), GateState::Drained);
        assert_eq!(gate.backstops(), 0, "nothing in flight, nothing to back stop");
    }
}
