//! Weighted-fair admission: one lock-free token bucket per tenant
//! (DESIGN.md §16).
//!
//! The bucket is the *cumulative-credit* formulation of the classic token
//! bucket, which needs no refill thread and no lock: `credited(t)` — the
//! total microtokens ever poured into the bucket by time `t` — is a pure
//! function of elapsed time, and the only mutable state is one atomic
//! cumulative `consumed` counter.  A submission admits itself with a single
//! CAS; overflow (the "bucket is full, extra tokens spill" rule) is the
//! `max(consumed, credited − burst)` floor applied inside the same CAS
//! loop.
//!
//! Weighted fairness falls out of the refill law: tenant `i` accrues
//! `rate × weightᵢ` tokens per second, so when every tenant saturates its
//! bucket, admitted throughput converges to the weight ratio regardless of
//! offered-load skew (the proptests in this module drive randomized
//! weight/arrival sequences at that invariant).
//!
//! Time is passed in explicitly (microseconds since bucket creation), which
//! keeps the arithmetic deterministic for the accounting proptests; the
//! service layer supplies real elapsed time from its `Instant` clock.

use std::sync::atomic::{AtomicU64, Ordering};

/// Microtokens per task: one admission costs `MICRO` µtokens, so weighted
/// refill rates stay integral (`rate × weight` µtokens per µs is exactly
/// `rate × weight` tasks per second).
pub const MICRO: u64 = 1_000_000;

/// A lock-free weighted token bucket.  See the module docs.
pub struct TokenBucket {
    /// Refill rate in µtokens per µs (== admitted tasks per second at
    /// saturation).
    rate_ut_per_us: u64,
    /// Bucket capacity in µtokens: how large a burst can be admitted from a
    /// full bucket ahead of the refill rate.  The bucket starts full.
    burst_ut: u64,
    /// Cumulative µtokens consumed over the bucket's lifetime.  Includes
    /// spilled tokens (the floor jump below), so this is *not* a task
    /// count — see `admitted`.
    consumed: AtomicU64,
    /// Cumulative successful admissions, in tasks.  Kept separately from
    /// `consumed` because the spill floor advances `consumed` by more than
    /// [`MICRO`] per admission after an idle gap.
    admitted: AtomicU64,
}

/// A failed admission: the bucket is short `shortfall_ut` µtokens.
/// [`TokenBucket::wait_hint_us`] converts the shortfall into the earliest time
/// the refill law could cover it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Shortfall {
    /// Missing µtokens at the probed instant.
    pub shortfall_ut: u64,
}

impl TokenBucket {
    /// Creates a bucket refilling at `rate_tasks_per_sec × weight` tasks
    /// per second with capacity `burst_tasks` (clamped to ≥ 1 task so a
    /// fresh bucket can always admit something).  A zero rate or weight is
    /// clamped to the minimum 1 µtoken/µs product — admission control
    /// throttles tenants, it never blackholes them.
    pub fn new(rate_tasks_per_sec: u64, weight: u64, burst_tasks: u64) -> Self {
        TokenBucket {
            rate_ut_per_us: rate_tasks_per_sec.saturating_mul(weight).max(1),
            burst_ut: burst_tasks.max(1).saturating_mul(MICRO),
            consumed: AtomicU64::new(0),
            admitted: AtomicU64::new(0),
        }
    }

    /// Total µtokens poured into the bucket by `now_us` µs after creation:
    /// the initial full bucket plus the refill law.  Monotone in `now_us`
    /// by construction (the refill proptest pins this down).
    pub fn credited_ut(&self, now_us: u64) -> u64 {
        self.burst_ut
            .saturating_add(now_us.saturating_mul(self.rate_ut_per_us))
    }

    /// Attempts to admit one task at `now_us` µs after creation.  Lock-free:
    /// one CAS on success, and concurrent callers cannot over-admit because
    /// each one moves the shared cumulative counter by exactly [`MICRO`].
    pub fn try_acquire_at(&self, now_us: u64) -> Result<(), Shortfall> {
        let credited = self.credited_ut(now_us);
        let floor = credited - self.burst_ut; // never underflows: credited ≥ burst
        loop {
            let consumed = self.consumed.load(Ordering::Relaxed);
            // Tokens beyond the bucket capacity spilled: consumption can
            // never lag more than `burst` behind the credit line.
            let base = consumed.max(floor);
            let next = base.saturating_add(MICRO);
            if next > credited {
                return Err(Shortfall {
                    shortfall_ut: next - credited,
                });
            }
            if self
                .consumed
                .compare_exchange_weak(consumed, next, Ordering::Relaxed, Ordering::Relaxed)
                .is_ok()
            {
                self.admitted.fetch_add(1, Ordering::Relaxed);
                return Ok(());
            }
        }
    }

    /// Microseconds until the refill law covers `shortfall` (rounded up).
    /// A *hint*: racing tenant threads may consume the refilled tokens
    /// first, so blocking callers re-probe in a loop.
    pub fn wait_hint_us(&self, shortfall: Shortfall) -> u64 {
        shortfall.shortfall_ut.div_ceil(self.rate_ut_per_us)
    }

    /// Cumulative admitted tasks.
    pub fn admitted(&self) -> u64 {
        self.admitted.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn fresh_bucket_admits_burst_then_rejects() {
        let bucket = TokenBucket::new(1_000, 1, 4);
        for _ in 0..4 {
            assert!(bucket.try_acquire_at(0).is_ok());
        }
        let shortfall = bucket.try_acquire_at(0).unwrap_err();
        assert_eq!(shortfall.shortfall_ut, MICRO);
        // 1000 tasks/s == one task per 1000 µs.
        assert_eq!(bucket.wait_hint_us(shortfall), 1_000);
        assert!(bucket.try_acquire_at(1_000).is_ok());
    }

    #[test]
    fn idle_bucket_never_accrues_past_burst() {
        let bucket = TokenBucket::new(1_000_000, 1, 2);
        // A long idle period spills everything beyond the 2-task capacity.
        let now = 60_000_000;
        assert!(bucket.try_acquire_at(now).is_ok());
        assert!(bucket.try_acquire_at(now).is_ok());
        assert!(bucket.try_acquire_at(now).is_err());
    }

    #[test]
    fn zero_rate_and_weight_are_clamped_alive() {
        let bucket = TokenBucket::new(0, 0, 1);
        assert!(bucket.try_acquire_at(0).is_ok());
        // 1 µtoken/µs == one task per second.
        assert!(bucket.try_acquire_at(999_999).is_err());
        assert!(bucket.try_acquire_at(1_000_000).is_ok());
    }

    proptest! {
        /// Token conservation: over any arrival sequence, every offered
        /// submission is either admitted or rejected (never both, never
        /// neither), and admitted work never exceeds the credit line.
        #[test]
        fn conservation_admitted_plus_rejected_is_offered(
            rate in 1u64..2_000,
            weight in 1u64..16,
            burst in 1u64..32,
            steps in proptest::collection::vec(0u64..5_000, 1..200),
        ) {
            let bucket = TokenBucket::new(rate, weight, burst);
            let mut now = 0u64;
            let mut offered = 0u64;
            let mut admitted = 0u64;
            let mut rejected = 0u64;
            for step in steps {
                now += step;
                offered += 1;
                match bucket.try_acquire_at(now) {
                    Ok(()) => admitted += 1,
                    Err(s) => {
                        prop_assert!(s.shortfall_ut > 0);
                        rejected += 1;
                    }
                }
                prop_assert_eq!(admitted + rejected, offered);
                prop_assert_eq!(bucket.admitted(), admitted);
                // Admission never outruns the credit line.
                prop_assert!(admitted.saturating_mul(MICRO) <= bucket.credited_ut(now));
            }
        }

        /// Refill monotonicity: the credit line never decreases as time
        /// advances, and a rejection's wait hint is honest — re-probing at
        /// `now + hint` (with no competing consumer) succeeds.
        #[test]
        fn refill_is_monotone_and_wait_hints_are_honest(
            rate in 1u64..2_000,
            weight in 1u64..16,
            burst in 1u64..32,
            times in proptest::collection::vec(0u64..10_000_000, 2..100),
        ) {
            let bucket = TokenBucket::new(rate, weight, burst);
            let mut sorted = times.clone();
            sorted.sort_unstable();
            for pair in sorted.windows(2) {
                prop_assert!(bucket.credited_ut(pair[0]) <= bucket.credited_ut(pair[1]));
            }
            // Drain the initial burst, then check the hint at a probe point.
            let probe = sorted[0];
            while bucket.try_acquire_at(probe).is_ok() {}
            let shortfall = bucket.try_acquire_at(probe).unwrap_err();
            let hint = bucket.wait_hint_us(shortfall);
            prop_assert!(bucket.try_acquire_at(probe + hint).is_ok());
        }

        /// Weighted-fair convergence: two saturating tenants with weights
        /// (w1, w2) see admitted ratios converge to w1/w2 — independent of
        /// how skewed the *offered* interleaving is — once both run long
        /// enough that the burst transient is amortized.
        #[test]
        fn saturated_share_converges_to_weights(
            rate in 10u64..200,
            w1 in 1u64..8,
            w2 in 1u64..8,
            skew in 1usize..50,
        ) {
            let burst = 1;
            let a = TokenBucket::new(rate, w1, burst);
            let b = TokenBucket::new(rate, w2, burst);
            // Offered load: tenant A probes `skew` times per µs-step,
            // tenant B once — a skew:1 offered-load imbalance.  Both
            // saturate (offered ≫ refill), so admission follows refill.
            let horizon_us = 2_000_000 / rate; // ≈ 2·(w1+w2) tasks of budget
            let step = (horizon_us / 1_000).max(1);
            let mut now = 0;
            while now < horizon_us {
                now += step;
                for _ in 0..skew {
                    let _ = a.try_acquire_at(now);
                }
                let _ = b.try_acquire_at(now);
            }
            let fair = |w: u64| (rate * w * now) / MICRO;
            // Within the burst transient (±1 task) of the ideal share.
            let near = |admitted: u64, ideal: u64| {
                admitted + 1 >= ideal && admitted <= ideal + burst + 1
            };
            prop_assert!(
                near(a.admitted(), fair(w1)),
                "tenant A admitted {} vs fair share {}", a.admitted(), fair(w1)
            );
            prop_assert!(
                near(b.admitted(), fair(w2)),
                "tenant B admitted {} vs fair share {}", b.admitted(), fair(w2)
            );
        }
    }
}
