//! A lock-free, unbounded MPMC injection queue.
//!
//! `Scheduler::scope` submits root tasks from *outside* the worker pool, and
//! every idle worker polls for them.  The original implementation used a
//! `Mutex<VecDeque>`, which serialized all submitters and all idle workers on
//! one lock — and put a lock acquisition on the stall-reporting diagnostic
//! path.  [`Injector`] replaces it with a segment-chained
//! Michael–Scott-style FIFO:
//!
//! * **push** (any thread): one `fetch_add` reserves a global slot index, the
//!   producer writes the value into its segment and flips the slot's state to
//!   *written* with a release store.  Producers never block each other; a new
//!   segment is allocated (and linked in with a CAS) once per
//!   [`SEGMENT_SLOTS`] pushes.
//! * **pop** (any thread): read the head index, check that the slot's
//!   producer has finished writing, then claim the index with one CAS.  A
//!   consumer never waits on a slow producer — it returns [`Steal::Retry`]
//!   instead of spinning, so an idle worker just goes back to stealing.
//!
//! # Memory reclamation
//!
//! Consumed segments are **reclaimed through an epoch domain**
//! ([`teamsteal_util::epoch`]): the consumer that takes the last slot of a
//! segment claims the exhausted prefix of the chain by advancing the head
//! hint with one CAS (the winner is unique, so each segment is retired
//! exactly once) and hands the unlinked segments to
//! [`Domain::defer`](teamsteal_util::epoch::Domain::defer).  They are freed
//! once every registered participant has passed a quiescent point — so a
//! racing reader holding a stale segment pointer can never touch freed
//! memory, while the retained footprint stays bounded by the *live* queue
//! plus the (small) not-yet-collected deferral window instead of growing
//! with lifetime-total traffic.  The safety argument is written up in
//! DESIGN.md §11; [`Injector::live_segments`] exposes the retained count.
//!
//! An [`Injector::new`] without an explicit domain creates a private one
//! that nobody collects, which degrades to the old leak-until-drop behavior
//! and keeps unpinned standalone use sound; the scheduler constructs its
//! injector with [`Injector::in_domain`] and upholds the pinning contract
//! documented there.

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::Arc;
use teamsteal_util::sync::atomic::{AtomicPtr, AtomicUsize, Ordering};

use teamsteal_util::epoch::{Deferred, Domain, ReclaimClass};

use crate::Steal;

/// Slots per segment.  Power of two so index→offset is a mask.
///
/// Under `cfg(teamsteal_model)` the segment shrinks to 2 slots so that
/// exhaustive model tests can cross a segment boundary (and exercise the
/// retire-exactly-once protocol) in a handful of operations instead of 64.
#[cfg(not(teamsteal_model))]
pub const SEGMENT_SLOTS: usize = 64;
/// Slots per segment (model build: tiny segments, see above).
#[cfg(teamsteal_model)]
pub const SEGMENT_SLOTS: usize = 2;

/// Slot is empty (reserved, producer still writing).
const EMPTY: usize = 0;
/// Slot holds a value.
const WRITTEN: usize = 1;

struct Slot<T> {
    state: AtomicUsize,
    value: UnsafeCell<MaybeUninit<T>>,
}

struct Segment<T> {
    /// Global index of the first slot of this segment.
    start: usize,
    slots: Box<[Slot<T>]>,
    next: AtomicPtr<Segment<T>>,
}

impl<T> Segment<T> {
    fn new(start: usize) -> *mut Segment<T> {
        Box::into_raw(Box::new(Segment {
            start,
            slots: (0..SEGMENT_SLOTS)
                .map(|_| Slot {
                    state: AtomicUsize::new(EMPTY),
                    value: UnsafeCell::new(MaybeUninit::uninit()),
                })
                .collect(),
            next: AtomicPtr::new(std::ptr::null_mut()),
        }))
    }

    #[inline]
    fn slot(&self, index: usize) -> &Slot<T> {
        debug_assert!(index >= self.start && index < self.start + SEGMENT_SLOTS);
        &self.slots[index & (SEGMENT_SLOTS - 1)]
    }
}

/// An unbounded lock-free multi-producer multi-consumer FIFO queue.
///
/// See the [module docs](self) for the design; the scheduler uses it as the
/// external root-task injection queue.
pub struct Injector<T> {
    /// Next index to consume.  `head <= tail` always.
    head: AtomicUsize,
    /// Next index to produce (indices below `tail` are reserved).
    tail: AtomicUsize,
    /// A segment at or before the one containing `head`, **and** the
    /// reclamation frontier: every segment before it has been retired
    /// (deferred into the epoch domain), so the live chain starts here.
    head_seg: AtomicPtr<Segment<T>>,
    /// Hint: a segment at or before the one containing `tail` (never behind
    /// `head_seg`; the retire path fixes it up before deferring).
    tail_seg: AtomicPtr<Segment<T>>,
    /// Epoch domain consumed segments are deferred into.
    domain: Arc<Domain>,
    /// Segments linked into the chain over the injector's lifetime.
    segs_linked: AtomicUsize,
    /// Segments retired (unlinked and deferred) over the lifetime.
    segs_retired: AtomicUsize,
}

// SAFETY: all shared state is accessed through atomics; values are moved in
// and out under the slot-state / index-claim protocol below.
unsafe impl<T: Send> Send for Injector<T> {}
unsafe impl<T: Send> Sync for Injector<T> {}

impl<T: Send> Default for Injector<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Send> Injector<T> {
    /// Creates an empty injector with a **private** epoch domain.
    ///
    /// Nothing ever collects a private domain, so consumed segments are
    /// retained until drop (the pre-reclamation behavior) and callers need
    /// not pin — appropriate for tests and standalone use.  Scheduler-grade
    /// bounded memory comes from [`Injector::in_domain`].
    pub fn new() -> Self {
        // SAFETY: the private domain is never exposed, so no collector
        // exists and unpinned access can never observe freed memory.
        unsafe { Self::in_domain(Domain::new(1)) }
    }

    /// Creates an empty injector whose consumed segments are deferred into
    /// `domain` (allocates the first segment).
    ///
    /// # Safety
    ///
    /// For as long as `domain` can be collected
    /// ([`Domain::try_collect`]), every thread calling [`push`](Self::push),
    /// [`try_pop`](Self::try_pop) or [`pop`](Self::pop) must do so while
    /// pinned to a registered participant of that same domain
    /// ([`teamsteal_util::epoch::Participant::pin`]), and must treat any
    /// segment pointer as dead across a repin.  `len`/`is_empty` and
    /// `live_segments` read only top-level atomics and are exempt.
    pub unsafe fn in_domain(domain: Arc<Domain>) -> Self {
        let first = Segment::new(0);
        Injector {
            head: AtomicUsize::new(0),
            tail: AtomicUsize::new(0),
            head_seg: AtomicPtr::new(first),
            tail_seg: AtomicPtr::new(first),
            domain,
            segs_linked: AtomicUsize::new(1),
            segs_retired: AtomicUsize::new(0),
        }
    }

    /// Number of segments currently linked (live chain; already-deferred
    /// ones are excluded): the injector's *chain* footprint in units of
    /// `SEGMENT_SLOTS` slots.  Bounded by the live queue length plus a
    /// small constant in every configuration — consumed segments leave the
    /// chain at retire time.  In the private-domain (`new()`) configuration
    /// the memory still accumulates, but in the domain's deferral bags:
    /// watch [`Domain::pending`] for that, not this gauge.
    pub fn live_segments(&self) -> usize {
        self.segs_linked
            .load(Ordering::Relaxed)
            .saturating_sub(self.segs_retired.load(Ordering::Relaxed))
    }

    /// Snapshot of the number of queued elements.  Like the deque's `len`,
    /// the value may be stale by the time the caller acts on it.  Lock-free:
    /// safe to call from diagnostic paths (stall reports).
    pub fn len(&self) -> usize {
        let tail = self.tail.load(Ordering::Acquire);
        let head = self.head.load(Ordering::Acquire);
        tail.saturating_sub(head)
    }

    /// `true` if the queue was observed empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Finds the segment containing `index`, walking (and extending) the
    /// chain from `from`.  `index` must be a reserved slot index and `from`
    /// must start at or before it.
    fn segment_for(&self, mut from: *mut Segment<T>, index: usize, extend: bool) -> Option<*mut Segment<T>> {
        loop {
            // SAFETY: `from` was reachable from a hint while we are pinned
            // (the `in_domain` contract), so even if it has since been
            // retired it cannot be freed before our next quiescent point.
            let seg = unsafe { &*from };
            debug_assert!(seg.start <= index);
            if index < seg.start + SEGMENT_SLOTS {
                return Some(from);
            }
            let next = seg.next.load(Ordering::Acquire);
            if !next.is_null() {
                from = next;
                continue;
            }
            if !extend {
                // The producer that reserved `index` has not linked the
                // segment yet; the caller treats this as transient.
                return None;
            }
            let candidate = Segment::new(seg.start + SEGMENT_SLOTS);
            match seg.next.compare_exchange(
                std::ptr::null_mut(),
                candidate,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => {
                    self.segs_linked.fetch_add(1, Ordering::Relaxed);
                    from = candidate;
                }
                Err(winner) => {
                    // SAFETY: the candidate was never published.
                    drop(unsafe { Box::from_raw(candidate) });
                    from = winner;
                }
            }
        }
    }

    /// Advances a segment hint pointer to `to` if it still lags behind.
    fn advance_hint(hint: &AtomicPtr<Segment<T>>, current: *mut Segment<T>, to: *mut Segment<T>) {
        // Best effort: a failed CAS means someone else advanced it further.
        let _ = hint.compare_exchange(current, to, Ordering::AcqRel, Ordering::Relaxed);
    }

    /// Enqueues a value.  Safe to call from any thread; never blocks on
    /// other producers or consumers (segment allocation aside, the push is a
    /// `fetch_add` plus a release store).
    ///
    /// Returns `true` when the queue was **observed empty** at this push:
    /// the consumer index had caught up with (or passed) every slot reserved
    /// before ours, i.e. there was an instant during the push at which no
    /// earlier element remained queued.  This is the wake hint the
    /// scheduler's sleep controller needs — a push into an observed-empty
    /// queue means no consumer is guaranteed to be draining, so a sleeper
    /// should be woken.  The hint is one-sided: `false` reliably means the
    /// queue held at least one other in-flight element at the observation
    /// instant, while a `true` may be missed (the load races with concurrent
    /// pops) — callers must treat it as "wake needed", never as "skip
    /// bookkeeping".
    pub fn push(&self, value: T) -> bool {
        let index = self.tail.fetch_add(1, Ordering::AcqRel);
        // Observed-empty hint: `head >= index` means every slot reserved
        // before ours is already claimed by a consumer, so at the moment of
        // this load the queue contained no other element.  Loaded right
        // after the reservation so the hint describes *this* push's instant.
        let observed_empty = self.head.load(Ordering::Acquire) >= index;
        let mut hint = self.tail_seg.load(Ordering::Acquire);
        // SAFETY: a hint pointer loaded while pinned (the `in_domain`
        // contract) stays dereferenceable until our next quiescent point,
        // even if the segment is concurrently retired.  Faster producers may
        // have advanced the tail hint *past* our slot; fall back to the head
        // hint, which cannot pass an unwritten slot (consumers stop at it),
        // so it starts at or before `index`.
        if unsafe { &*hint }.start > index {
            hint = self.head_seg.load(Ordering::Acquire);
        }
        let seg_ptr = self
            .segment_for(hint, index, true)
            .expect("extend=true always finds the segment");
        if seg_ptr != hint {
            Self::advance_hint(&self.tail_seg, hint, seg_ptr);
        }
        // SAFETY: see the hint-load comment above; our slot's segment cannot
        // be retired before the slot is consumed, which requires the WRITTEN
        // store below.
        let seg = unsafe { &*seg_ptr };
        let slot = seg.slot(index);
        debug_assert_eq!(slot.state.load(Ordering::Relaxed), EMPTY);
        // SAFETY: the fetch_add above gave us exclusive ownership of this
        // slot until we flip its state.
        unsafe { (*slot.value.get()).write(value) };
        // Release: consumers that acquire-observe WRITTEN see the value.
        slot.state.store(WRITTEN, Ordering::Release);
        observed_empty
    }

    /// Attempts to dequeue the oldest element.  Safe to call from any
    /// thread.
    ///
    /// [`Steal::Retry`] means the queue is non-empty but the head element's
    /// producer has not finished writing (or another consumer got in the
    /// way); the caller may retry immediately or come back later.
    pub fn try_pop(&self) -> Steal<T> {
        loop {
            let head = self.head.load(Ordering::Acquire);
            let tail = self.tail.load(Ordering::Acquire);
            if head >= tail {
                return Steal::Empty;
            }
            let hint = self.head_seg.load(Ordering::Acquire);
            // SAFETY: loaded while pinned (`in_domain` contract), so the
            // segment outlives this call even if retired concurrently.  If
            // the hint has already moved past our (stale) `head`, other
            // consumers advanced the queue under us — re-read everything.
            if unsafe { &*hint }.start > head {
                continue;
            }
            // `head < tail` means slot `head` was reserved — though its
            // segment may not be linked in yet.
            let Some(seg_ptr) = self.segment_for(hint, head, false) else {
                return Steal::Retry;
            };
            if seg_ptr != hint {
                // The hint lags behind the segment containing `head`: every
                // segment strictly before `seg_ptr` holds only indices below
                // `head` and is therefore fully consumed.  Advance the hint
                // and retire the range (the CAS winner does it exactly
                // once).  This also covers the boundary case where a
                // segment's last slot was consumed before its successor was
                // linked: the next pop retires it here.
                self.advance_head_and_retire(hint, seg_ptr);
            }
            let seg = unsafe { &*seg_ptr };
            let slot = seg.slot(head);
            if slot.state.load(Ordering::Acquire) != WRITTEN {
                // Reserved but not yet written: do not wait on the producer.
                return Steal::Retry;
            }
            if self
                .head
                .compare_exchange(head, head + 1, Ordering::AcqRel, Ordering::Relaxed)
                .is_err()
            {
                // Another consumer claimed this index; try the next one.
                continue;
            }
            // We own index `head` exclusively now, and we observed WRITTEN
            // with Acquire before claiming it.
            // SAFETY: exactly one consumer claims each index.
            let value = unsafe { (*slot.value.get()).assume_init_read() };
            if head + 1 == seg.start + SEGMENT_SLOTS {
                // We consumed the last slot of this segment: if its
                // successor is already linked, advance the head hint past it
                // and retire it eagerly (otherwise the lag-detection above
                // retires it on the next pop).
                let next = seg.next.load(Ordering::Acquire);
                if !next.is_null() {
                    self.advance_head_and_retire(seg_ptr, next);
                }
            }
            return Steal::Stolen(value);
        }
    }

    /// Advances `head_seg` from `from` to `to` and, on winning that CAS,
    /// retires every segment in `[from, to)` into the epoch domain.
    ///
    /// Exactly-once: successful CASes on `head_seg` form a chain of strictly
    /// forward, contiguous hops (the next winner's `from` is this winner's
    /// `to`), so the half-open ranges they claim are disjoint and cover each
    /// segment once.  Every slot of the range is below `head` and therefore
    /// consumed; racing readers still walking those segments are pinned and
    /// protected by the deferred free (DESIGN.md §11).
    fn advance_head_and_retire(&self, from: *mut Segment<T>, to: *mut Segment<T>) {
        if self
            .head_seg
            .compare_exchange(from, to, Ordering::AcqRel, Ordering::Relaxed)
            .is_err()
        {
            // Another consumer advanced past `from`; that winner owns the
            // retirement of the range.
            return;
        }
        // SAFETY: `to` is reachable from the chain we are pinned against.
        let to_start = unsafe { &*to }.start;
        // Unlink the range from the *tail* hint too before deferring: a new
        // producer must never be handed a pointer into memory that may be
        // freed after its pin.  `tail >= head > every index of [from, to)`,
        // so `to` is a valid (at-or-before-tail) hint value.
        loop {
            let t = self.tail_seg.load(Ordering::Acquire);
            // SAFETY: `t` was reachable via a hint while pinned.
            if unsafe { &*t }.start >= to_start {
                break;
            }
            if self
                .tail_seg
                .compare_exchange(t, to, Ordering::AcqRel, Ordering::Relaxed)
                .is_ok()
            {
                break;
            }
        }
        let mut cur = from;
        while cur != to {
            // SAFETY: `cur` is in our exclusively claimed range; the link
            // was written before the segment was linked in.
            let next = unsafe { &*cur }.next.load(Ordering::Acquire);
            self.segs_retired.fetch_add(1, Ordering::Relaxed);
            // SAFETY: the range is unlinked from both hints (no new reader
            // can reach it) and claimed exactly once; the segment came from
            // `Segment::new`'s `Box::into_raw` and all its slots are
            // consumed, so dropping the box frees no live value.
            self.domain
                .defer(unsafe { Deferred::from_box(cur, ReclaimClass::Segment) });
            cur = next;
        }
    }

    /// Dequeues the oldest element, retrying through transient
    /// [`Steal::Retry`] results a bounded number of times.
    pub fn pop(&self) -> Option<T> {
        let mut retries = 0;
        loop {
            match self.try_pop() {
                Steal::Stolen(v) => return Some(v),
                Steal::Empty => return None,
                Steal::Retry => {
                    retries += 1;
                    if retries > 32 {
                        return None;
                    }
                    std::hint::spin_loop();
                }
            }
        }
    }
}

impl<T> Drop for Injector<T> {
    fn drop(&mut self) {
        // `&mut self`: no concurrent producers or consumers.  Drop the
        // values still in [head, tail), then free the live segment chain —
        // it starts at `head_seg`, because everything before it was already
        // retired into the epoch domain (which frees it on its own drop).
        let head = *self.head.get_mut();
        let tail = *self.tail.get_mut();
        let mut seg_ptr = *self.head_seg.get_mut();
        while !seg_ptr.is_null() {
            // SAFETY: the chain is only freed here, exactly once.
            let seg = unsafe { Box::from_raw(seg_ptr) };
            for index in seg.start..seg.start + SEGMENT_SLOTS {
                if index >= head && index < tail && seg.slot(index).state.load(Ordering::Relaxed) == WRITTEN
                {
                    // SAFETY: unclaimed, fully written slot; dropped once.
                    unsafe { (*seg.slot(index).value.get()).assume_init_drop() };
                }
            }
            seg_ptr = seg.next.load(Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize as StdAtomicUsize;
    use std::sync::Arc;

    #[test]
    fn fifo_single_threaded() {
        let q: Injector<u32> = Injector::new();
        assert!(q.is_empty());
        assert!(matches!(q.try_pop(), Steal::Empty));
        for i in 0..200 {
            q.push(i);
        }
        assert_eq!(q.len(), 200);
        for i in 0..200 {
            assert_eq!(q.pop(), Some(i), "strict FIFO order");
        }
        assert!(q.pop().is_none());
        assert!(q.is_empty());
    }

    #[test]
    fn crosses_many_segment_boundaries() {
        let q: Injector<usize> = Injector::new();
        let n = 10 * SEGMENT_SLOTS + 7;
        for i in 0..n {
            q.push(i);
        }
        for i in 0..n {
            assert_eq!(q.pop(), Some(i));
        }
        assert!(q.is_empty());
    }

    #[test]
    fn drop_releases_queued_elements() {
        static DROPS: StdAtomicUsize = StdAtomicUsize::new(0);
        struct Token;
        impl Drop for Token {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::SeqCst);
            }
        }
        {
            let q: Injector<Token> = Injector::new();
            for _ in 0..(SEGMENT_SLOTS + 9) {
                q.push(Token);
            }
            for _ in 0..5 {
                let _ = q.pop();
            }
        }
        assert_eq!(DROPS.load(Ordering::SeqCst), SEGMENT_SLOTS + 9);
    }

    #[test]
    fn mpmc_delivers_every_element_exactly_once() {
        const PRODUCERS: usize = 4;
        const CONSUMERS: usize = 4;
        const PER_PRODUCER: usize = 20_000;
        let q: Arc<Injector<usize>> = Arc::new(Injector::new());
        let seen = Arc::new(
            (0..PRODUCERS * PER_PRODUCER)
                .map(|_| StdAtomicUsize::new(0))
                .collect::<Vec<_>>(),
        );

        let producers: Vec<_> = (0..PRODUCERS)
            .map(|p| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    for i in 0..PER_PRODUCER {
                        q.push(p * PER_PRODUCER + i);
                    }
                })
            })
            .collect();
        let consumers: Vec<_> = (0..CONSUMERS)
            .map(|_| {
                let q = Arc::clone(&q);
                let seen = Arc::clone(&seen);
                std::thread::spawn(move || {
                    let mut taken = 0usize;
                    let mut idle = 0u32;
                    loop {
                        match q.try_pop() {
                            Steal::Stolen(v) => {
                                seen[v].fetch_add(1, Ordering::SeqCst);
                                taken += 1;
                                idle = 0;
                            }
                            Steal::Retry => {}
                            Steal::Empty => {
                                idle += 1;
                                if idle > 20_000 {
                                    break;
                                }
                                std::thread::yield_now();
                            }
                        }
                    }
                    taken
                })
            })
            .collect();
        for producer in producers {
            producer.join().unwrap();
        }
        let taken: usize = consumers.into_iter().map(|c| c.join().unwrap()).sum();
        assert_eq!(taken, PRODUCERS * PER_PRODUCER, "every element delivered");
        for (i, s) in seen.iter().enumerate() {
            assert_eq!(s.load(Ordering::SeqCst), 1, "element {i} delivered exactly once");
        }
        assert!(q.is_empty());
    }

    #[test]
    fn push_empty_hint_single_threaded() {
        let q: Injector<u32> = Injector::new();
        assert!(q.push(1), "first push into a fresh queue observes empty");
        assert!(!q.push(2), "second push sees element 1 still queued");
        assert!(!q.push(3));
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), Some(3));
        assert!(q.push(4), "push after a full drain observes empty again");
        assert_eq!(q.pop(), Some(4));
    }

    #[test]
    fn push_empty_hint_is_one_sided_under_mpmc() {
        // One-sided accuracy: a `false` hint guarantees the queue held
        // another in-flight element at the push.  With *no* consumer
        // running, only the very first reserved slot (index 0) can ever
        // observe `head >= index`, so across any number of concurrent
        // producers at most one push per drained-empty phase may hint true.
        const PRODUCERS: usize = 4;
        const PER_PRODUCER: usize = 5_000;
        let q: Arc<Injector<usize>> = Arc::new(Injector::new());
        for phase in 0..3 {
            let true_hints: usize = (0..PRODUCERS)
                .map(|p| {
                    let q = Arc::clone(&q);
                    std::thread::spawn(move || {
                        let mut trues = 0usize;
                        for i in 0..PER_PRODUCER {
                            if q.push(p * PER_PRODUCER + i) {
                                trues += 1;
                            }
                        }
                        trues
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|t| t.join().unwrap())
                .sum();
            assert!(
                true_hints <= 1,
                "phase {phase}: {true_hints} pushes claimed an empty queue \
                 while no consumer ran — the hint lied about emptiness"
            );
            // Drain for the next phase; the first push afterwards must be
            // able to observe emptiness again.
            let mut drained = 0;
            while q.pop().is_some() {
                drained += 1;
            }
            assert_eq!(drained, PRODUCERS * PER_PRODUCER);
            assert!(q.push(0), "post-drain push observes empty");
            assert_eq!(q.pop(), Some(0));
        }
    }

    #[test]
    fn private_domain_retains_consumed_segments_until_drop() {
        // `Injector::new()` has no collector: exhausted segments are
        // deferred but never freed, so unpinned access stays sound.
        let q: Injector<usize> = Injector::new();
        let n = 5 * SEGMENT_SLOTS;
        for i in 0..n {
            q.push(i);
        }
        for i in 0..n {
            assert_eq!(q.pop(), Some(i));
        }
        // All but the current segment were retired off the live chain.
        assert!(q.live_segments() <= 2, "live: {}", q.live_segments());
    }

    #[test]
    fn shared_domain_reclaims_consumed_segments() {
        use teamsteal_util::epoch::Domain;

        let domain = Domain::new(1);
        let me = domain.register().expect("slot");
        // SAFETY: the only accessor (this thread) pins around every call.
        let q: Injector<usize> = unsafe { Injector::in_domain(Arc::clone(&domain)) };
        let n = 20 * SEGMENT_SLOTS;
        me.pin();
        for i in 0..n {
            q.push(i);
        }
        for i in 0..n {
            assert_eq!(q.pop(), Some(i));
            if i % SEGMENT_SLOTS == 0 {
                me.pin(); // quiescent point between segments
                domain.try_collect();
            }
        }
        me.pin();
        domain.try_collect();
        me.pin();
        let final_collect = domain.try_collect();
        let (freed_segments, _, _) = domain.totals();
        assert!(
            freed_segments > 0,
            "epoch collection must actually free consumed segments \
             (freed {freed_segments}, last collect {final_collect:?})"
        );
        assert!(q.live_segments() <= 2, "live: {}", q.live_segments());
        assert!(
            domain.pending() <= 2 * SEGMENT_SLOTS,
            "deferral window stays small, got {}",
            domain.pending()
        );
    }

    #[test]
    fn pinned_mpmc_with_concurrent_collection_delivers_exactly_once() {
        use teamsteal_util::epoch::Domain;

        // The full protocol under contention: pinned producers and
        // consumers, with consumers collecting as they go.  Every element
        // delivered exactly once and no crash means no segment was freed
        // under a racing reader.
        const PRODUCERS: usize = 2;
        const CONSUMERS: usize = 2;
        const PER_PRODUCER: usize = 30_000;
        let domain = Domain::new(PRODUCERS + CONSUMERS);
        // SAFETY: every accessing thread below registers and pins.
        let q: Arc<Injector<usize>> =
            Arc::new(unsafe { Injector::in_domain(Arc::clone(&domain)) });
        let seen = Arc::new(
            (0..PRODUCERS * PER_PRODUCER)
                .map(|_| StdAtomicUsize::new(0))
                .collect::<Vec<_>>(),
        );

        let producers: Vec<_> = (0..PRODUCERS)
            .map(|p| {
                let q = Arc::clone(&q);
                let domain = Arc::clone(&domain);
                std::thread::spawn(move || {
                    let me = domain.register().expect("producer slot");
                    for i in 0..PER_PRODUCER {
                        me.pin();
                        q.push(p * PER_PRODUCER + i);
                    }
                    me.unpin();
                })
            })
            .collect();
        let consumers: Vec<_> = (0..CONSUMERS)
            .map(|_| {
                let q = Arc::clone(&q);
                let domain = Arc::clone(&domain);
                let seen = Arc::clone(&seen);
                std::thread::spawn(move || {
                    let me = domain.register().expect("consumer slot");
                    let mut taken = 0usize;
                    let mut idle = 0u32;
                    loop {
                        me.pin();
                        match q.try_pop() {
                            Steal::Stolen(v) => {
                                seen[v].fetch_add(1, Ordering::SeqCst);
                                taken += 1;
                                idle = 0;
                                if taken % 64 == 0 {
                                    me.pin(); // quiescent point
                                    domain.try_collect();
                                }
                            }
                            Steal::Retry => {}
                            Steal::Empty => {
                                idle += 1;
                                if idle > 20_000 {
                                    break;
                                }
                                me.unpin();
                                std::thread::yield_now();
                            }
                        }
                    }
                    me.unpin();
                    taken
                })
            })
            .collect();
        for producer in producers {
            producer.join().unwrap();
        }
        let taken: usize = consumers.into_iter().map(|c| c.join().unwrap()).sum();
        assert_eq!(taken, PRODUCERS * PER_PRODUCER, "every element delivered");
        for (i, s) in seen.iter().enumerate() {
            assert_eq!(s.load(Ordering::SeqCst), 1, "element {i} delivered exactly once");
        }
        let (freed_segments, _, _) = domain.totals();
        assert!(freed_segments > 0, "concurrent run must reclaim segments");
        assert!(
            q.live_segments() < PRODUCERS * PER_PRODUCER / SEGMENT_SLOTS,
            "retained segments must not scale with lifetime traffic"
        );
    }

    #[test]
    fn per_producer_order_is_preserved() {
        // FIFO per producer: a consumer never sees producer p's element k
        // after its element k+1.
        const PER_PRODUCER: usize = 30_000;
        let q: Arc<Injector<(usize, usize)>> = Arc::new(Injector::new());
        let producers: Vec<_> = (0..2)
            .map(|p| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    for i in 0..PER_PRODUCER {
                        q.push((p, i));
                    }
                })
            })
            .collect();
        let consumer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                let mut last = [None::<usize>; 2];
                let mut taken = 0;
                while taken < 2 * PER_PRODUCER {
                    if let Steal::Stolen((p, i)) = q.try_pop() {
                        if let Some(prev) = last[p] {
                            assert!(i > prev, "producer {p} reordered: {i} after {prev}");
                        }
                        last[p] = Some(i);
                        taken += 1;
                    } else {
                        std::hint::spin_loop();
                    }
                }
            })
        };
        for producer in producers {
            producer.join().unwrap();
        }
        consumer.join().unwrap();
    }
}
