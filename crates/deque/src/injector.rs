//! A lock-free, unbounded MPMC injection queue.
//!
//! `Scheduler::scope` submits root tasks from *outside* the worker pool, and
//! every idle worker polls for them.  The original implementation used a
//! `Mutex<VecDeque>`, which serialized all submitters and all idle workers on
//! one lock — and put a lock acquisition on the stall-reporting diagnostic
//! path.  [`Injector`] replaces it with a segment-chained
//! Michael–Scott-style FIFO:
//!
//! * **push** (any thread): one `fetch_add` reserves a global slot index, the
//!   producer writes the value into its segment and flips the slot's state to
//!   *written* with a release store.  Producers never block each other; a new
//!   segment is allocated (and linked in with a CAS) once per
//!   [`SEGMENT_SLOTS`] pushes.
//! * **pop** (any thread): read the head index, check that the slot's
//!   producer has finished writing, then claim the index with one CAS.  A
//!   consumer never waits on a slow producer — it returns [`Steal::Retry`]
//!   instead of spinning, so an idle worker just goes back to stealing.
//!
//! # Memory reclamation
//!
//! Like [`RawDeque`](crate::RawDeque)'s leaky-buffer growth, consumed
//! segments are kept (linked) until the injector is dropped, so a racing
//! reader holding a stale segment pointer can never touch freed memory.  The
//! cost is [`std::mem::size_of`]`::<T>() + 16` bytes per *pushed element*
//! lifetime-total, which for the scheduler (one pointer-sized entry per
//! **root** task, not per spawned task) is negligible; a future epoch scheme
//! can reclaim segments without changing the interface.

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicPtr, AtomicUsize, Ordering};

use crate::Steal;

/// Slots per segment.  Power of two so index→offset is a mask.
pub const SEGMENT_SLOTS: usize = 64;

/// Slot is empty (reserved, producer still writing).
const EMPTY: usize = 0;
/// Slot holds a value.
const WRITTEN: usize = 1;

struct Slot<T> {
    state: AtomicUsize,
    value: UnsafeCell<MaybeUninit<T>>,
}

struct Segment<T> {
    /// Global index of the first slot of this segment.
    start: usize,
    slots: Box<[Slot<T>]>,
    next: AtomicPtr<Segment<T>>,
}

impl<T> Segment<T> {
    fn new(start: usize) -> *mut Segment<T> {
        Box::into_raw(Box::new(Segment {
            start,
            slots: (0..SEGMENT_SLOTS)
                .map(|_| Slot {
                    state: AtomicUsize::new(EMPTY),
                    value: UnsafeCell::new(MaybeUninit::uninit()),
                })
                .collect(),
            next: AtomicPtr::new(std::ptr::null_mut()),
        }))
    }

    #[inline]
    fn slot(&self, index: usize) -> &Slot<T> {
        debug_assert!(index >= self.start && index < self.start + SEGMENT_SLOTS);
        &self.slots[index & (SEGMENT_SLOTS - 1)]
    }
}

/// An unbounded lock-free multi-producer multi-consumer FIFO queue.
///
/// See the [module docs](self) for the design; the scheduler uses it as the
/// external root-task injection queue.
pub struct Injector<T> {
    /// Next index to consume.  `head <= tail` always.
    head: AtomicUsize,
    /// Next index to produce (indices below `tail` are reserved).
    tail: AtomicUsize,
    /// Hint: a segment at or before the one containing `head`.
    head_seg: AtomicPtr<Segment<T>>,
    /// Hint: a segment at or before the one containing `tail`.
    tail_seg: AtomicPtr<Segment<T>>,
    /// The first segment ever allocated; segments are never unlinked, so the
    /// whole chain is reachable (and freed) from here at drop time.
    first_seg: *mut Segment<T>,
}

// SAFETY: all shared state is accessed through atomics; values are moved in
// and out under the slot-state / index-claim protocol below.
unsafe impl<T: Send> Send for Injector<T> {}
unsafe impl<T: Send> Sync for Injector<T> {}

impl<T: Send> Default for Injector<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Send> Injector<T> {
    /// Creates an empty injector (allocates the first segment).
    pub fn new() -> Self {
        let first = Segment::new(0);
        Injector {
            head: AtomicUsize::new(0),
            tail: AtomicUsize::new(0),
            head_seg: AtomicPtr::new(first),
            tail_seg: AtomicPtr::new(first),
            first_seg: first,
        }
    }

    /// Snapshot of the number of queued elements.  Like the deque's `len`,
    /// the value may be stale by the time the caller acts on it.  Lock-free:
    /// safe to call from diagnostic paths (stall reports).
    pub fn len(&self) -> usize {
        let tail = self.tail.load(Ordering::Acquire);
        let head = self.head.load(Ordering::Acquire);
        tail.saturating_sub(head)
    }

    /// `true` if the queue was observed empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Finds the segment containing `index`, walking (and extending) the
    /// chain from `from`.  `index` must be a reserved slot index and `from`
    /// must start at or before it.
    fn segment_for(&self, mut from: *mut Segment<T>, index: usize, extend: bool) -> Option<*mut Segment<T>> {
        loop {
            // SAFETY: segments are never freed while the injector is alive.
            let seg = unsafe { &*from };
            debug_assert!(seg.start <= index);
            if index < seg.start + SEGMENT_SLOTS {
                return Some(from);
            }
            let next = seg.next.load(Ordering::Acquire);
            if !next.is_null() {
                from = next;
                continue;
            }
            if !extend {
                // The producer that reserved `index` has not linked the
                // segment yet; the caller treats this as transient.
                return None;
            }
            let candidate = Segment::new(seg.start + SEGMENT_SLOTS);
            match seg.next.compare_exchange(
                std::ptr::null_mut(),
                candidate,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => from = candidate,
                Err(winner) => {
                    // SAFETY: the candidate was never published.
                    drop(unsafe { Box::from_raw(candidate) });
                    from = winner;
                }
            }
        }
    }

    /// Advances a segment hint pointer to `to` if it still lags behind.
    fn advance_hint(hint: &AtomicPtr<Segment<T>>, current: *mut Segment<T>, to: *mut Segment<T>) {
        // Best effort: a failed CAS means someone else advanced it further.
        let _ = hint.compare_exchange(current, to, Ordering::AcqRel, Ordering::Relaxed);
    }

    /// Enqueues a value.  Safe to call from any thread; never blocks on
    /// other producers or consumers (segment allocation aside, the push is a
    /// `fetch_add` plus a release store).
    pub fn push(&self, value: T) {
        let index = self.tail.fetch_add(1, Ordering::AcqRel);
        let mut hint = self.tail_seg.load(Ordering::Acquire);
        // SAFETY: hints only ever point at live (never-freed) segments.
        // Faster producers may have advanced the tail hint *past* our slot;
        // fall back to the head hint, which cannot pass an unwritten slot
        // (consumers stop at it), so it starts at or before `index`.
        if unsafe { &*hint }.start > index {
            hint = self.head_seg.load(Ordering::Acquire);
        }
        let seg_ptr = self
            .segment_for(hint, index, true)
            .expect("extend=true always finds the segment");
        if seg_ptr != hint {
            Self::advance_hint(&self.tail_seg, hint, seg_ptr);
        }
        // SAFETY: segments are never freed while the injector is alive.
        let seg = unsafe { &*seg_ptr };
        let slot = seg.slot(index);
        debug_assert_eq!(slot.state.load(Ordering::Relaxed), EMPTY);
        // SAFETY: the fetch_add above gave us exclusive ownership of this
        // slot until we flip its state.
        unsafe { (*slot.value.get()).write(value) };
        // Release: consumers that acquire-observe WRITTEN see the value.
        slot.state.store(WRITTEN, Ordering::Release);
    }

    /// Attempts to dequeue the oldest element.  Safe to call from any
    /// thread.
    ///
    /// [`Steal::Retry`] means the queue is non-empty but the head element's
    /// producer has not finished writing (or another consumer got in the
    /// way); the caller may retry immediately or come back later.
    pub fn try_pop(&self) -> Steal<T> {
        loop {
            let head = self.head.load(Ordering::Acquire);
            let tail = self.tail.load(Ordering::Acquire);
            if head >= tail {
                return Steal::Empty;
            }
            let hint = self.head_seg.load(Ordering::Acquire);
            // SAFETY: hints point at live segments.  If the hint has already
            // moved past our (stale) `head`, other consumers advanced the
            // queue under us — re-read everything.
            if unsafe { &*hint }.start > head {
                continue;
            }
            // `head < tail` means slot `head` was reserved — though its
            // segment may not be linked in yet.
            let Some(seg_ptr) = self.segment_for(hint, head, false) else {
                return Steal::Retry;
            };
            let seg = unsafe { &*seg_ptr };
            let slot = seg.slot(head);
            if slot.state.load(Ordering::Acquire) != WRITTEN {
                // Reserved but not yet written: do not wait on the producer.
                return Steal::Retry;
            }
            if self
                .head
                .compare_exchange(head, head + 1, Ordering::AcqRel, Ordering::Relaxed)
                .is_err()
            {
                // Another consumer claimed this index; try the next one.
                continue;
            }
            // We own index `head` exclusively now, and we observed WRITTEN
            // with Acquire before claiming it.
            // SAFETY: exactly one consumer claims each index.
            let value = unsafe { (*slot.value.get()).assume_init_read() };
            if head + 1 == seg.start + SEGMENT_SLOTS {
                // We consumed the last slot of this segment: advance the
                // head hint so later pops skip the walk.  The expected value
                // is the hint we actually loaded, so a lagging hint still
                // jumps forward.
                let next = seg.next.load(Ordering::Acquire);
                if !next.is_null() {
                    Self::advance_hint(&self.head_seg, hint, next);
                }
            }
            return Steal::Stolen(value);
        }
    }

    /// Dequeues the oldest element, retrying through transient
    /// [`Steal::Retry`] results a bounded number of times.
    pub fn pop(&self) -> Option<T> {
        let mut retries = 0;
        loop {
            match self.try_pop() {
                Steal::Stolen(v) => return Some(v),
                Steal::Empty => return None,
                Steal::Retry => {
                    retries += 1;
                    if retries > 32 {
                        return None;
                    }
                    std::hint::spin_loop();
                }
            }
        }
    }
}

impl<T> Drop for Injector<T> {
    fn drop(&mut self) {
        // `&mut self`: no concurrent producers or consumers.  Drop the
        // values still in [head, tail), then free the whole segment chain.
        let head = *self.head.get_mut();
        let tail = *self.tail.get_mut();
        let mut seg_ptr = self.first_seg;
        while !seg_ptr.is_null() {
            // SAFETY: the chain is only freed here, exactly once.
            let seg = unsafe { Box::from_raw(seg_ptr) };
            for index in seg.start..seg.start + SEGMENT_SLOTS {
                if index >= head && index < tail && seg.slot(index).state.load(Ordering::Relaxed) == WRITTEN
                {
                    // SAFETY: unclaimed, fully written slot; dropped once.
                    unsafe { (*seg.slot(index).value.get()).assume_init_drop() };
                }
            }
            seg_ptr = seg.next.load(Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize as StdAtomicUsize;
    use std::sync::Arc;

    #[test]
    fn fifo_single_threaded() {
        let q: Injector<u32> = Injector::new();
        assert!(q.is_empty());
        assert!(matches!(q.try_pop(), Steal::Empty));
        for i in 0..200 {
            q.push(i);
        }
        assert_eq!(q.len(), 200);
        for i in 0..200 {
            assert_eq!(q.pop(), Some(i), "strict FIFO order");
        }
        assert!(q.pop().is_none());
        assert!(q.is_empty());
    }

    #[test]
    fn crosses_many_segment_boundaries() {
        let q: Injector<usize> = Injector::new();
        let n = 10 * SEGMENT_SLOTS + 7;
        for i in 0..n {
            q.push(i);
        }
        for i in 0..n {
            assert_eq!(q.pop(), Some(i));
        }
        assert!(q.is_empty());
    }

    #[test]
    fn drop_releases_queued_elements() {
        static DROPS: StdAtomicUsize = StdAtomicUsize::new(0);
        struct Token;
        impl Drop for Token {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::SeqCst);
            }
        }
        {
            let q: Injector<Token> = Injector::new();
            for _ in 0..(SEGMENT_SLOTS + 9) {
                q.push(Token);
            }
            for _ in 0..5 {
                let _ = q.pop();
            }
        }
        assert_eq!(DROPS.load(Ordering::SeqCst), SEGMENT_SLOTS + 9);
    }

    #[test]
    fn mpmc_delivers_every_element_exactly_once() {
        const PRODUCERS: usize = 4;
        const CONSUMERS: usize = 4;
        const PER_PRODUCER: usize = 20_000;
        let q: Arc<Injector<usize>> = Arc::new(Injector::new());
        let seen = Arc::new(
            (0..PRODUCERS * PER_PRODUCER)
                .map(|_| StdAtomicUsize::new(0))
                .collect::<Vec<_>>(),
        );

        let producers: Vec<_> = (0..PRODUCERS)
            .map(|p| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    for i in 0..PER_PRODUCER {
                        q.push(p * PER_PRODUCER + i);
                    }
                })
            })
            .collect();
        let consumers: Vec<_> = (0..CONSUMERS)
            .map(|_| {
                let q = Arc::clone(&q);
                let seen = Arc::clone(&seen);
                std::thread::spawn(move || {
                    let mut taken = 0usize;
                    let mut idle = 0u32;
                    loop {
                        match q.try_pop() {
                            Steal::Stolen(v) => {
                                seen[v].fetch_add(1, Ordering::SeqCst);
                                taken += 1;
                                idle = 0;
                            }
                            Steal::Retry => {}
                            Steal::Empty => {
                                idle += 1;
                                if idle > 20_000 {
                                    break;
                                }
                                std::thread::yield_now();
                            }
                        }
                    }
                    taken
                })
            })
            .collect();
        for producer in producers {
            producer.join().unwrap();
        }
        let taken: usize = consumers.into_iter().map(|c| c.join().unwrap()).sum();
        assert_eq!(taken, PRODUCERS * PER_PRODUCER, "every element delivered");
        for (i, s) in seen.iter().enumerate() {
            assert_eq!(s.load(Ordering::SeqCst), 1, "element {i} delivered exactly once");
        }
        assert!(q.is_empty());
    }

    #[test]
    fn per_producer_order_is_preserved() {
        // FIFO per producer: a consumer never sees producer p's element k
        // after its element k+1.
        const PER_PRODUCER: usize = 30_000;
        let q: Arc<Injector<(usize, usize)>> = Arc::new(Injector::new());
        let producers: Vec<_> = (0..2)
            .map(|p| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    for i in 0..PER_PRODUCER {
                        q.push((p, i));
                    }
                })
            })
            .collect();
        let consumer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                let mut last = [None::<usize>; 2];
                let mut taken = 0;
                while taken < 2 * PER_PRODUCER {
                    if let Steal::Stolen((p, i)) = q.try_pop() {
                        if let Some(prev) = last[p] {
                            assert!(i > prev, "producer {p} reordered: {i} after {prev}");
                        }
                        last[p] = Some(i);
                        taken += 1;
                    } else {
                        std::hint::spin_loop();
                    }
                }
            })
        };
        for producer in producers {
            producer.join().unwrap();
        }
        consumer.join().unwrap();
    }
}
