//! A sharded wrapper over the MPMC injection queue.
//!
//! A single [`Injector`] serializes every producer and consumer on one
//! head/tail cache-line pair, which becomes the throughput ceiling once many
//! threads submit concurrently.  [`ShardedInjector`] spreads that traffic
//! over an array of independent `Injector` shards — in the scheduler one
//! shard per locality *domain* of the thread hierarchy (DESIGN.md §13):
//!
//! * **Push** is affinity-keyed: the caller names a home shard (a worker
//!   pushes to its own domain's shard; external submitters round-robin over
//!   shards) and receives the same one-sided *observed-empty* hint the
//!   single injector gives, scoped to that shard.
//! * **Pop** is local-first: a worker pops its own shard, and only when
//!   that is empty *sweeps* the remaining shards in a caller-provided
//!   (hierarchy-distance) order.
//!
//! Per-shard FIFO order is preserved exactly as in the single injector;
//! cross-shard ordering is not defined, which is fine for the scheduler's
//! root tasks (scopes order by completion latches, never by queue position).
//!
//! Every shard shares the creating domain for epoch reclamation, so the
//! pinning contract is unchanged from [`Injector::in_domain`].

use std::sync::Arc;

use teamsteal_util::epoch::Domain;

use crate::{Injector, Steal};

/// An array of [`Injector`] shards with affinity-keyed push and
/// local-first/sweep pop.  See the module docs.
pub struct ShardedInjector<T> {
    shards: Box<[Injector<T>]>,
}

impl<T: Send> ShardedInjector<T> {
    /// Creates `shards` independent shards, each with its own private epoch
    /// domain (standalone mode, no pinning required — e.g. for tests).
    ///
    /// # Panics
    ///
    /// Panics if `shards == 0`.
    pub fn new(shards: usize) -> Self {
        assert!(shards > 0, "at least one shard is required");
        ShardedInjector {
            shards: (0..shards).map(|_| Injector::new()).collect(),
        }
    }

    /// Creates `shards` shards all deferring reclaimed segments into
    /// `domain`.
    ///
    /// # Safety
    ///
    /// Same contract as [`Injector::in_domain`], extended over every shard:
    /// for as long as `domain` can be collected, every thread calling
    /// [`push_to`](Self::push_to)/[`try_pop_from`](Self::try_pop_from)/
    /// [`pop_from`](Self::pop_from)/[`pop_sweep`](Self::pop_sweep) must do
    /// so while pinned to a registered participant of that same domain.
    /// The length/segment accessors are exempt.
    ///
    /// # Panics
    ///
    /// Panics if `shards == 0`.
    pub unsafe fn in_domain(shards: usize, domain: Arc<Domain>) -> Self {
        assert!(shards > 0, "at least one shard is required");
        ShardedInjector {
            shards: (0..shards)
                // SAFETY: forwarded contract, see above.
                .map(|_| unsafe { Injector::in_domain(Arc::clone(&domain)) })
                .collect(),
        }
    }

    /// Number of shards.
    #[inline]
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Pushes `value` onto shard `shard` (indices wrap, so any affinity key
    /// is a valid shard selector).  Returns the shard's observed-empty hint
    /// with the same one-sided accuracy as [`Injector::push`]: `false`
    /// reliably means another element was in flight on *this shard*; `true`
    /// may be missed and should be treated as "a wake may be needed".
    #[inline]
    pub fn push_to(&self, shard: usize, value: T) -> bool {
        self.shards[shard % self.shards.len()].push(value)
    }

    /// One non-blocking pop attempt on shard `shard`
    /// (see [`Injector::try_pop`]).
    #[inline]
    pub fn try_pop_from(&self, shard: usize) -> Steal<T> {
        self.shards[shard].try_pop()
    }

    /// Pops from shard `shard`, absorbing transient `Retry` results
    /// (see [`Injector::pop`]).
    #[inline]
    pub fn pop_from(&self, shard: usize) -> Option<T> {
        self.shards[shard].pop()
    }

    /// Pops from the first non-empty shard in `order` (the caller's
    /// hierarchy-distance sweep, local shard first).  Returns the value
    /// together with the index *into `order`* it came from, so the caller
    /// can tell a local hit (`0`) from a remote one and knows which shard
    /// to re-check for wake chaining.
    pub fn pop_sweep(&self, order: &[usize]) -> Option<(T, usize)> {
        for (pos, &shard) in order.iter().enumerate() {
            if let Some(value) = self.shards[shard].pop() {
                return Some((value, pos));
            }
        }
        None
    }

    /// Snapshot of the number of elements in shard `shard` (O(1)).
    #[inline]
    pub fn shard_len(&self, shard: usize) -> usize {
        self.shards[shard].len()
    }

    /// Live (allocated, not yet reclaimed) segments of shard `shard` (O(1)).
    #[inline]
    pub fn shard_live_segments(&self, shard: usize) -> usize {
        self.shards[shard].live_segments()
    }

    /// Total element count across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(Injector::len).sum()
    }

    /// `true` when every shard was observed empty.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(Injector::is_empty)
    }

    /// Total live segments across all shards.
    pub fn live_segments(&self) -> usize {
        self.shards.iter().map(Injector::live_segments).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn push_wraps_affinity_keys_and_pops_fifo_per_shard() {
        let q: ShardedInjector<usize> = ShardedInjector::new(3);
        for i in 0..12 {
            q.push_to(i, i); // key i lands on shard i % 3
        }
        assert_eq!(q.len(), 12);
        for shard in 0..3 {
            assert_eq!(q.shard_len(shard), 4);
            for k in 0..4 {
                assert_eq!(q.pop_from(shard), Some(shard + 3 * k));
            }
        }
        assert!(q.is_empty());
    }

    #[test]
    fn sweep_pops_in_order_and_reports_position() {
        let q: ShardedInjector<u32> = ShardedInjector::new(4);
        q.push_to(2, 7);
        q.push_to(3, 9);
        // Sweep order [1, 2, 3, 0]: shard 1 is empty, shard 2 yields first.
        assert_eq!(q.pop_sweep(&[1, 2, 3, 0]), Some((7, 1)));
        assert_eq!(q.pop_sweep(&[1, 2, 3, 0]), Some((9, 2)));
        assert_eq!(q.pop_sweep(&[1, 2, 3, 0]), None);
    }

    #[test]
    fn observed_empty_hint_is_per_shard() {
        let q: ShardedInjector<u32> = ShardedInjector::new(2);
        assert!(q.push_to(0, 1), "first push into an empty shard");
        // Shard 0 now has an element; shard 1 is still empty.
        assert!(!q.push_to(0, 2));
        assert!(q.push_to(1, 3), "other shard's hint is independent");
    }

    #[test]
    fn concurrent_producers_and_sweepers_deliver_exactly_once() {
        const PRODUCERS: usize = 4;
        const PER_PRODUCER: usize = 5_000;
        const SHARDS: usize = 4;
        let q = Arc::new(ShardedInjector::<usize>::new(SHARDS));
        let seen: Arc<Vec<AtomicUsize>> = Arc::new(
            (0..PRODUCERS * PER_PRODUCER)
                .map(|_| AtomicUsize::new(0))
                .collect(),
        );
        let produced = Arc::new(AtomicUsize::new(0));

        let producers: Vec<_> = (0..PRODUCERS)
            .map(|id| {
                let q = Arc::clone(&q);
                let produced = Arc::clone(&produced);
                std::thread::spawn(move || {
                    for k in 0..PER_PRODUCER {
                        // Affinity-keyed: each producer has a home shard.
                        q.push_to(id, id * PER_PRODUCER + k);
                        produced.fetch_add(1, Ordering::SeqCst);
                    }
                })
            })
            .collect();

        let consumers: Vec<_> = (0..SHARDS)
            .map(|home| {
                let q = Arc::clone(&q);
                let seen = Arc::clone(&seen);
                let produced = Arc::clone(&produced);
                // Each consumer sweeps starting from its own shard.
                let order: Vec<usize> = (0..SHARDS).map(|i| (home + i) % SHARDS).collect();
                std::thread::spawn(move || loop {
                    match q.pop_sweep(&order) {
                        Some((v, _)) => {
                            seen[v].fetch_add(1, Ordering::SeqCst);
                        }
                        None => {
                            if produced.load(Ordering::SeqCst) == PRODUCERS * PER_PRODUCER
                                && q.is_empty()
                            {
                                break;
                            }
                            std::thread::yield_now();
                        }
                    }
                })
            })
            .collect();

        for h in producers {
            h.join().unwrap();
        }
        for h in consumers {
            h.join().unwrap();
        }
        for (i, s) in seen.iter().enumerate() {
            assert_eq!(s.load(Ordering::SeqCst), 1, "element {i} delivered exactly once");
        }
    }
}
