//! A lock-free Chase–Lev work-stealing deque with steal-half support.
//!
//! Standard work-stealing (Section 2 of the paper) keeps per-thread,
//! double-ended queues with the operations `pushBottom`, `popBottom`,
//! `popTop` (steal) and `isEmpty`, implemented lock-/wait-free following
//! Arora–Blumofe–Plaxton / Chase–Lev.  The team-building scheduler reuses the
//! same queues — one per size class (Refinement 1) — so this crate is the
//! storage substrate for both the classic and the mixed-mode scheduler.
//!
//! Two layers are provided:
//!
//! * [`RawDeque`] — the lock-free core, storing `usize`-sized words.  Slots
//!   are `AtomicUsize`, which makes the racy read in `steal` well defined
//!   (no torn reads) without an `unsafe` data race.
//! * [`Deque<T>`] — a typed wrapper that owns boxed `T` values and exposes
//!   the paper's API, including [`Deque::steal_half_into`] (the paper's
//!   `popappend`: transfer up to half of the victim's tasks to the thief).
//!
//! The crate also provides [`Injector`], a lock-free unbounded MPMC FIFO the
//! scheduler uses as its external root-task injection queue (see the
//! [`injector`] module docs for the design), and [`ShardedInjector`], the
//! per-locality-domain sharding of it the scheduler actually deploys (see
//! the [`sharded`] module docs).
//!
//! # Ownership protocol
//!
//! A deque is shared between its **owner** (the worker whose queue it is) and
//! arbitrarily many **thieves**.  `push_bottom` and `pop_bottom` must only be
//! called by the owner; `steal_top`, `len` and `is_empty` may be called by
//! anyone.  The scheduler upholds this statically (each worker only pushes to
//! and pops from its own queues); the deque checks it in debug builds via an
//! owner-thread assertion.
//!
//! # Memory management
//!
//! A thief may hold a stale buffer pointer while the owner grows the deque,
//! so retired growth buffers cannot be freed immediately.  Two reclamation
//! modes ship:
//!
//! * **Standalone** ([`RawDeque::new`] / [`RawDeque::with_capacity`]): the
//!   classic "leaky buffer" variant of Chase–Lev — retired buffers are kept
//!   on a list until the deque drops.  Bounded by twice the high-water mark
//!   of the queue, and safe for unpinned callers.
//! * **Epoch-reclaimed** ([`RawDeque::in_domain`]): retired buffers are
//!   handed to a [`teamsteal_util::epoch::Domain`] and freed once every
//!   registered participant has passed a quiescent point, so a long-lived
//!   scheduler's footprint does not retain every buffer it ever grew
//!   through.  The scheduler runs all its per-worker deques in this mode;
//!   the safety argument shares DESIGN.md §11 with the injection queue.
//!
//! The [`Injector`]'s consumed segments follow the same epoch scheme (see
//! the [`injector`] module docs).

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

use std::sync::atomic::{AtomicIsize, AtomicPtr, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use teamsteal_util::epoch::{Deferred, Domain, ReclaimClass};

pub mod injector;
pub mod sharded;

pub use injector::Injector;
pub use sharded::ShardedInjector;

/// Result of a steal attempt (`popTop`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Steal<T> {
    /// A value was stolen.
    Stolen(T),
    /// The deque was observed empty.
    Empty,
    /// The steal lost a race (with the owner or another thief); retrying may
    /// succeed.
    Retry,
}

impl<T> Steal<T> {
    /// Returns the stolen value, if any.
    pub fn success(self) -> Option<T> {
        match self {
            Steal::Stolen(v) => Some(v),
            _ => None,
        }
    }

    /// `true` if the deque was observed empty.
    pub fn is_empty(&self) -> bool {
        matches!(self, Steal::Empty)
    }
}

const MIN_CAPACITY: usize = 32;

struct Buffer {
    slots: Box<[AtomicUsize]>,
    capacity: usize,
}

impl Buffer {
    fn new(capacity: usize) -> Box<Buffer> {
        let slots = (0..capacity).map(|_| AtomicUsize::new(0)).collect();
        Box::new(Buffer { slots, capacity })
    }

    #[inline]
    fn read(&self, index: isize) -> usize {
        self.slots[index as usize & (self.capacity - 1)].load(Ordering::Relaxed)
    }

    #[inline]
    fn write(&self, index: isize, value: usize) {
        self.slots[index as usize & (self.capacity - 1)].store(value, Ordering::Relaxed);
    }
}

/// The lock-free Chase–Lev deque over word-sized values.
pub struct RawDeque {
    top: AtomicIsize,
    bottom: AtomicIsize,
    buffer: AtomicPtr<Buffer>,
    /// Retired buffers kept until drop so stale readers stay valid.  Only
    /// populated when no epoch domain is attached; empty otherwise (growth
    /// defers directly into the domain).
    retired: Mutex<Vec<*mut Buffer>>,
    /// Epoch domain retired buffers are deferred into, when attached.
    domain: Option<Arc<Domain>>,
}

// SAFETY: all shared mutable state is accessed through atomics; buffer
// contents are plain words whose ownership semantics are imposed by the typed
// wrapper.
unsafe impl Send for RawDeque {}
unsafe impl Sync for RawDeque {}

impl Default for RawDeque {
    fn default() -> Self {
        Self::new()
    }
}

impl RawDeque {
    /// Creates an empty deque.
    pub fn new() -> Self {
        Self::with_capacity(MIN_CAPACITY)
    }

    /// Creates an empty deque with at least the given initial capacity
    /// (rounded up to a power of two).
    pub fn with_capacity(capacity: usize) -> Self {
        let capacity = capacity.max(MIN_CAPACITY).next_power_of_two();
        let buffer = Box::into_raw(Buffer::new(capacity));
        RawDeque {
            top: AtomicIsize::new(0),
            bottom: AtomicIsize::new(0),
            buffer: AtomicPtr::new(buffer),
            retired: Mutex::new(Vec::new()),
            domain: None,
        }
    }

    /// Creates an empty deque whose retired growth buffers are reclaimed
    /// through `domain` instead of being retained until drop.
    ///
    /// # Safety
    ///
    /// For as long as `domain` can be collected
    /// ([`teamsteal_util::epoch::Domain::try_collect`]), every thread
    /// calling [`steal_top`](Self::steal_top) must do so while pinned to a
    /// registered participant of that same domain, and must treat the
    /// buffer pointer as dead across a repin.  The owner's
    /// `push_bottom`/`pop_bottom` are exempt: the owner only ever
    /// dereferences the *current* buffer, which is never deferred.
    pub unsafe fn in_domain(domain: Arc<Domain>) -> Self {
        let mut deque = Self::new();
        deque.domain = Some(domain);
        deque
    }

    /// Number of elements currently in the deque.  Like the paper's
    /// `Q.size()`, the value is a snapshot and may be stale by the time the
    /// caller acts on it.
    pub fn len(&self) -> usize {
        let b = self.bottom.load(Ordering::Acquire);
        let t = self.top.load(Ordering::Acquire);
        (b - t).max(0) as usize
    }

    /// `true` if the deque was observed empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Pushes a value at the bottom.  **Owner only.**
    pub fn push_bottom(&self, value: usize) {
        let b = self.bottom.load(Ordering::Relaxed);
        let t = self.top.load(Ordering::Acquire);
        let buf_ptr = self.buffer.load(Ordering::Relaxed);
        // SAFETY: only the owner mutates the buffer pointer; loading it on the
        // owner thread is always current.
        let mut buf = unsafe { &*buf_ptr };
        if b - t >= buf.capacity as isize {
            buf = self.grow(buf_ptr, t, b);
        }
        buf.write(b, value);
        self.bottom.store(b + 1, Ordering::Release);
    }

    /// Pops a value from the bottom.  **Owner only.**
    pub fn pop_bottom(&self) -> Option<usize> {
        let b = self.bottom.load(Ordering::Relaxed) - 1;
        // SAFETY: owner thread; see push_bottom.
        let buf = unsafe { &*self.buffer.load(Ordering::Relaxed) };
        self.bottom.store(b, Ordering::Relaxed);
        std::sync::atomic::fence(Ordering::SeqCst);
        let t = self.top.load(Ordering::Relaxed);
        if t <= b {
            let value = buf.read(b);
            if t == b {
                // Last element: race against thieves for it.
                let won = self
                    .top
                    .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
                    .is_ok();
                self.bottom.store(b + 1, Ordering::Relaxed);
                if won {
                    Some(value)
                } else {
                    None
                }
            } else {
                Some(value)
            }
        } else {
            // Deque was empty.
            self.bottom.store(b + 1, Ordering::Relaxed);
            None
        }
    }

    /// Attempts to steal a value from the top (the paper's `popTop`).  Safe to
    /// call from any thread.
    pub fn steal_top(&self) -> Steal<usize> {
        let t = self.top.load(Ordering::Acquire);
        std::sync::atomic::fence(Ordering::SeqCst);
        let b = self.bottom.load(Ordering::Acquire);
        if t >= b {
            return Steal::Empty;
        }
        // SAFETY: a stale buffer pointer remains readable — without a domain
        // retired buffers live until drop, and with one they are freed only
        // after this (pinned, per the `in_domain` contract) thief's next
        // quiescent point.  The value is only trusted if the CAS on `top`
        // succeeds, and the owner never overwrites live slots in a retired
        // buffer (growth copies them to the new buffer first).
        let buf = unsafe { &*self.buffer.load(Ordering::Acquire) };
        let value = buf.read(t);
        if self
            .top
            .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
            .is_ok()
        {
            Steal::Stolen(value)
        } else {
            Steal::Retry
        }
    }

    fn grow(&self, old_ptr: *mut Buffer, top: isize, bottom: isize) -> &Buffer {
        // SAFETY: owner thread; the current buffer is live.
        let old = unsafe { &*old_ptr };
        let new = Buffer::new(old.capacity * 2);
        for i in top..bottom {
            new.write(i, old.read(i));
        }
        let new_ptr = Box::into_raw(new);
        self.buffer.store(new_ptr, Ordering::Release);
        // Retire the old buffer: thieves may still read it through a stale
        // pointer, but the owner never writes live slots into a retired
        // buffer again (the live range was copied to the new one above).
        match &self.domain {
            // SAFETY: the buffer is unlinked (the `buffer` pointer moved on
            // above, Release-ordered before this defer's epoch read), this
            // retire path runs once per buffer, and pinned thieves are
            // exactly what the deferred free waits out (`in_domain`
            // contract).
            Some(domain) => domain.defer(unsafe { Deferred::from_box(old_ptr, ReclaimClass::Buffer) }),
            None => self
                .retired
                .lock()
                .expect("deque retire list poisoned")
                .push(old_ptr),
        }
        // SAFETY: the pointer was just created; it is freed at drop time.
        unsafe { &*new_ptr }
    }
}

impl Drop for RawDeque {
    fn drop(&mut self) {
        let retired = std::mem::take(
            &mut *self.retired.lock().expect("deque retire list poisoned"),
        );
        for ptr in retired {
            // SAFETY: each pointer was created by Box::into_raw and is freed
            // exactly once here (retired buffers are never also deferred).
            drop(unsafe { Box::from_raw(ptr) });
        }
        // SAFETY: the current buffer is owned by the deque and freed only
        // here; deferred buffers belong to the domain instead.
        drop(unsafe { Box::from_raw(*self.buffer.get_mut()) });
    }
}

/// A typed work-stealing deque that owns its elements (boxed internally).
///
/// Dropping a non-empty `Deque<T>` drops the remaining elements.
pub struct Deque<T> {
    raw: RawDeque,
    _marker: std::marker::PhantomData<T>,
}

impl<T: Send> Default for Deque<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Send> Deque<T> {
    /// Creates an empty deque.
    pub fn new() -> Self {
        Deque {
            raw: RawDeque::new(),
            _marker: std::marker::PhantomData,
        }
    }

    /// Creates an empty deque with at least the given initial capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        Deque {
            raw: RawDeque::with_capacity(capacity),
            _marker: std::marker::PhantomData,
        }
    }

    /// Snapshot of the number of elements.
    pub fn len(&self) -> usize {
        self.raw.len()
    }

    /// `true` if the deque was observed empty.
    pub fn is_empty(&self) -> bool {
        self.raw.is_empty()
    }

    /// Pushes a value at the bottom (owner only) — the paper's `pushBottom`.
    pub fn push_bottom(&self, value: T) {
        let ptr = Box::into_raw(Box::new(value)) as usize;
        self.raw.push_bottom(ptr);
    }

    /// Pops a value from the bottom (owner only) — the paper's `popBottom`.
    pub fn pop_bottom(&self) -> Option<T> {
        self.raw.pop_bottom().map(|ptr| {
            // SAFETY: every word in the deque was produced by Box::into_raw in
            // push_bottom, and ownership is transferred exactly once (either
            // to pop_bottom or to a successful steal).
            *unsafe { Box::from_raw(ptr as *mut T) }
        })
    }

    /// Attempts to steal a value from the top — the paper's `popTop`.
    pub fn steal_top(&self) -> Steal<T> {
        match self.raw.steal_top() {
            // SAFETY: see pop_bottom.
            Steal::Stolen(ptr) => Steal::Stolen(*unsafe { Box::from_raw(ptr as *mut T) }),
            Steal::Empty => Steal::Empty,
            Steal::Retry => Steal::Retry,
        }
    }

    /// The paper's `popappend(v, T)` (Algorithm 4): repeatedly steal from
    /// `self` (the victim) and append to `dest` (the thief's own deque), up
    /// to `max` elements, returning how many were transferred.  The caller
    /// must be the owner of `dest`.
    ///
    /// Transient `Retry` results are retried a bounded number of times so a
    /// single contended CAS does not abort the whole bulk transfer.
    pub fn steal_half_into(&self, dest: &Deque<T>, max: usize) -> usize {
        let mut moved = 0;
        let mut retries = 0;
        while moved < max {
            match self.steal_top() {
                Steal::Stolen(v) => {
                    dest.push_bottom(v);
                    moved += 1;
                    retries = 0;
                }
                Steal::Empty => break,
                Steal::Retry => {
                    retries += 1;
                    if retries > 8 {
                        break;
                    }
                    std::hint::spin_loop();
                }
            }
        }
        moved
    }

    /// Steals one element, retrying through transient contention, and returns
    /// it directly to the caller instead of appending it to a queue.  This is
    /// the "last stolen task is returned immediately" rule from Section 4 of
    /// the paper.
    pub fn steal_one(&self) -> Option<T> {
        let mut retries = 0;
        loop {
            match self.steal_top() {
                Steal::Stolen(v) => return Some(v),
                Steal::Empty => return None,
                Steal::Retry => {
                    retries += 1;
                    if retries > 16 {
                        return None;
                    }
                    std::hint::spin_loop();
                }
            }
        }
    }
}

impl<T> Drop for Deque<T> {
    fn drop(&mut self) {
        // Drain and drop any remaining owned elements.
        while let Some(ptr) = self.raw.pop_bottom() {
            // SAFETY: same ownership argument as pop_bottom.
            drop(unsafe { Box::from_raw(ptr as *mut T) });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize as StdAtomicUsize;
    use std::sync::Arc;

    #[test]
    fn lifo_for_owner() {
        let q: Deque<u32> = Deque::new();
        assert!(q.is_empty());
        for i in 0..10 {
            q.push_bottom(i);
        }
        assert_eq!(q.len(), 10);
        for i in (0..10).rev() {
            assert_eq!(q.pop_bottom(), Some(i));
        }
        assert_eq!(q.pop_bottom(), None);
        assert!(q.is_empty());
    }

    #[test]
    fn fifo_for_thieves() {
        let q: Deque<u32> = Deque::new();
        for i in 0..10 {
            q.push_bottom(i);
        }
        for i in 0..10 {
            assert_eq!(q.steal_top().success(), Some(i));
        }
        assert!(q.steal_top().is_empty());
    }

    #[test]
    fn growth_preserves_contents() {
        let q: Deque<usize> = Deque::with_capacity(4);
        let n = 10_000;
        for i in 0..n {
            q.push_bottom(i);
        }
        assert_eq!(q.len(), n);
        let mut out = Vec::new();
        while let Some(v) = q.pop_bottom() {
            out.push(v);
        }
        out.reverse();
        assert_eq!(out, (0..n).collect::<Vec<_>>());
    }

    #[test]
    fn drop_releases_remaining_elements() {
        static DROPS: StdAtomicUsize = StdAtomicUsize::new(0);
        struct Token;
        impl Drop for Token {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::SeqCst);
            }
        }
        {
            let q: Deque<Token> = Deque::new();
            for _ in 0..8 {
                q.push_bottom(Token);
            }
            let _ = q.pop_bottom();
        }
        assert_eq!(DROPS.load(Ordering::SeqCst), 8);
    }

    #[test]
    fn growth_with_domain_defers_and_reclaims_old_buffers() {
        use teamsteal_util::epoch::Domain;

        let domain = Domain::new(1);
        let me = domain.register().expect("slot");
        // SAFETY: single-threaded test; the only (owner) accessor needs no
        // pin and there are no thieves.
        let q = unsafe { RawDeque::in_domain(Arc::clone(&domain)) };
        me.pin();
        for i in 0..10 * MIN_CAPACITY {
            q.push_bottom(i);
        }
        // Several doublings happened; all old buffers went to the domain.
        assert!(domain.pending() >= 3, "pending: {}", domain.pending());
        me.pin();
        domain.try_collect();
        me.pin();
        domain.try_collect();
        let (_, freed_buffers, _) = domain.totals();
        assert!(freed_buffers >= 3, "freed: {freed_buffers}");
        // Contents survive the reclamation churn.
        for i in (0..10 * MIN_CAPACITY).rev() {
            assert_eq!(q.pop_bottom(), Some(i));
        }
    }

    #[test]
    fn steal_half_balances_queues() {
        let victim: Deque<u32> = Deque::new();
        let thief: Deque<u32> = Deque::new();
        for i in 0..100 {
            victim.push_bottom(i);
        }
        let moved = victim.steal_half_into(&thief, 50);
        assert_eq!(moved, 50);
        assert_eq!(victim.len(), 50);
        assert_eq!(thief.len(), 50);
        // The thief received the oldest tasks, in order.
        for i in (0..50).rev() {
            assert_eq!(thief.pop_bottom(), Some(i));
        }
    }

    #[test]
    fn concurrent_steals_deliver_every_element_once() {
        const N: usize = 20_000;
        const THIEVES: usize = 4;
        let q: Arc<Deque<usize>> = Arc::new(Deque::new());
        let seen = Arc::new((0..N).map(|_| StdAtomicUsize::new(0)).collect::<Vec<_>>());

        // Owner pushes and occasionally pops; thieves steal concurrently.
        let handles: Vec<_> = (0..THIEVES)
            .map(|_| {
                let q = Arc::clone(&q);
                let seen = Arc::clone(&seen);
                std::thread::spawn(move || {
                    let mut count = 0usize;
                    let mut idle = 0;
                    loop {
                        match q.steal_top() {
                            Steal::Stolen(v) => {
                                seen[v].fetch_add(1, Ordering::SeqCst);
                                count += 1;
                                idle = 0;
                            }
                            Steal::Empty => {
                                idle += 1;
                                if idle > 10_000 {
                                    break;
                                }
                                std::thread::yield_now();
                            }
                            Steal::Retry => {}
                        }
                    }
                    count
                })
            })
            .collect();

        let mut owner_popped = 0usize;
        for i in 0..N {
            q.push_bottom(i);
            if i % 7 == 0 {
                if let Some(v) = q.pop_bottom() {
                    seen[v].fetch_add(1, Ordering::SeqCst);
                    owner_popped += 1;
                }
            }
        }
        // Drain the rest as the owner.
        while let Some(v) = q.pop_bottom() {
            seen[v].fetch_add(1, Ordering::SeqCst);
            owner_popped += 1;
        }
        let stolen: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(owner_popped + stolen, N, "every element delivered");
        for (i, s) in seen.iter().enumerate() {
            assert_eq!(s.load(Ordering::SeqCst), 1, "element {i} delivered exactly once");
        }
    }

    #[test]
    fn owner_and_single_thief_race_on_last_element() {
        // Repeatedly race pop_bottom and steal_top over a single element; the
        // element must go to exactly one side.
        for _ in 0..2_000 {
            let q: Arc<Deque<u64>> = Arc::new(Deque::new());
            q.push_bottom(7);
            let thief = {
                let q = Arc::clone(&q);
                std::thread::spawn(move || q.steal_one())
            };
            let owner = q.pop_bottom();
            let stolen = thief.join().unwrap();
            match (owner, stolen) {
                (Some(7), None) | (None, Some(7)) => {}
                other => panic!("element duplicated or lost: {other:?}"),
            }
        }
    }
}
