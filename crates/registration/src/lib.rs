//! The packed team-registration structure and its CAS transition protocol.
//!
//! Every worker owns one registration structure `R` (Section 3 of the paper)
//! describing the team currently being built — or already built — for the
//! task at the bottom of the worker's queue:
//!
//! * `r` — number of threads **required** by that task,
//! * `a` — number of threads **acquired** (registered) so far,
//! * `t` — number of threads **teamed** up (the team actually formed),
//! * `N` — a renewal counter, bumped whenever previously acquired threads
//!   must re-register (because the coordinator switched to a smaller task or
//!   disbanded the team).
//!
//! The paper packs all four fields into one 64-bit word (16 bits each) so the
//! whole structure can be updated by a single compare-and-swap; joining a team
//! therefore costs exactly one CAS.  [`Registration`] is the unpacked value
//! type, [`AtomicRegistration`] the shared atomic cell with the transition
//! operations used by the scheduler:
//!
//! | operation | caller | effect |
//! |---|---|---|
//! | [`try_acquire`](AtomicRegistration::try_acquire) | a thief registering for a partner's task (Alg. 7 lines 7–14) | `a += 1` |
//! | [`try_release`](AtomicRegistration::try_release) | a registered thread switching coordinators (Alg. 9 lines 11–17) | `a -= 1` |
//! | [`try_form_team`](AtomicRegistration::try_form_team) | the coordinator once `a == r` (Alg. 6 lines 3–7) | `t = r` |
//! | [`push_requirement`](AtomicRegistration::push_requirement) | the coordinator when a new task reaches the bottom of a queue | adjust `r`, possibly reset `a` and bump `N` |
//! | [`shrink_team`](AtomicRegistration::shrink_team) | the coordinator when the next task needs fewer threads (Section 3.1) | `r = a = t = new size`, `N += 1` |
//! | [`disband`](AtomicRegistration::disband) | the coordinator when the next task needs more threads, or it stops coordinating (Alg. 9 lines 23–31) | `r = a = t = 1`, `N += 1` |
//! | [`try_reuse`](AtomicRegistration::try_reuse) | the coordinator publishing a consecutive task to a still-warm team (DESIGN.md §15) | validates `t = a = r ≥ new r`; **no write** |

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

use teamsteal_util::sync::atomic::{AtomicU64, Ordering};

/// Maximum value representable in each 16-bit field; also the largest
/// supported thread count / requirement.
pub const FIELD_MAX: u64 = u16::MAX as u64;

/// The unpacked registration value `{r, a, t, N}`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Registration {
    /// Threads required by the task currently being coordinated.
    pub required: u16,
    /// Threads acquired (registered) so far, including the coordinator.
    pub acquired: u16,
    /// Threads teamed up (the formed team size); `1` when no team exists.
    pub teamed: u16,
    /// Renewal counter: registrations taken under an older counter value are
    /// void and must be re-acquired.
    pub counter: u16,
}

impl Default for Registration {
    fn default() -> Self {
        Self::initial()
    }
}

impl Registration {
    /// The state every worker starts in: a singleton "team" of itself,
    /// coordinating nothing bigger than a sequential task.
    pub const fn initial() -> Self {
        Registration {
            required: 1,
            acquired: 1,
            teamed: 1,
            counter: 0,
        }
    }

    /// Packs the four fields into a single 64-bit word
    /// (`r` in the most significant 16 bits, then `a`, `t`, `N`).
    #[inline]
    pub const fn pack(self) -> u64 {
        (self.required as u64) << 48
            | (self.acquired as u64) << 32
            | (self.teamed as u64) << 16
            | self.counter as u64
    }

    /// Unpacks a 64-bit word produced by [`pack`](Registration::pack).
    #[inline]
    pub const fn unpack(word: u64) -> Self {
        Registration {
            required: (word >> 48) as u16,
            acquired: (word >> 32) as u16,
            teamed: (word >> 16) as u16,
            counter: word as u16,
        }
    }

    /// `true` while enough threads have registered to form the team.
    #[inline]
    pub fn is_complete(&self) -> bool {
        self.acquired >= self.required
    }

    /// `true` when a multi-thread team is currently formed.
    #[inline]
    pub fn has_team(&self) -> bool {
        self.teamed > 1
    }

    /// Validates the structural invariant the protocol maintains:
    /// `1 ≤ t ≤ a ≤ max(r, a)` and `t ≤ r`.
    pub fn is_well_formed(&self) -> bool {
        self.teamed >= 1
            && self.acquired >= 1
            && self.required >= 1
            && self.teamed <= self.acquired
            && self.teamed <= self.required
            && self.acquired <= self.required
    }
}

/// Outcome of [`AtomicRegistration::try_release`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReleaseOutcome {
    /// The registration was released (`a` decremented).
    Released,
    /// The registration had already been revoked by the coordinator (renewal
    /// counter moved on); nothing was decremented.
    Revoked,
    /// The team has been formed and the caller is part of it (Algorithm 9:
    /// "we are in our current coordinator's team and therefore can't drop
    /// out").  The caller must stay and keep polling the coordinator.
    Teamed,
}

/// Outcome of [`AtomicRegistration::try_acquire`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AcquireOutcome {
    /// The calling thread is now registered; the returned snapshot is the
    /// post-acquire value (its `counter` must be remembered to detect later
    /// revocation).
    Registered(Registration),
    /// The CAS failed because the structure changed concurrently; the caller
    /// may retry after re-reading.
    Contended,
    /// The coordinator no longer needs additional threads (`a == r` already,
    /// or the requirement dropped below what the caller could contribute to).
    NotNeeded(Registration),
}

/// Outcome of [`AtomicRegistration::try_reuse`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReuseOutcome {
    /// The word still encodes the formed team and it covers the new
    /// requirement: the coordinator may publish the next task to it directly,
    /// skipping partner visits and registration entirely.  The snapshot is
    /// the (unchanged) team the task will run on.
    Reused(Registration),
    /// No warm team, a torn/renewed word, or a team too small for the new
    /// requirement: the full §8 build protocol is needed.
    Incompatible(Registration),
}

/// A shared, atomically updated registration structure.
#[derive(Debug)]
pub struct AtomicRegistration {
    word: AtomicU64,
}

impl Default for AtomicRegistration {
    fn default() -> Self {
        Self::new()
    }
}

impl AtomicRegistration {
    /// Creates a registration cell in the [initial](Registration::initial)
    /// state.
    pub fn new() -> Self {
        AtomicRegistration {
            word: AtomicU64::new(Registration::initial().pack()),
        }
    }

    /// Atomically loads the current value.
    #[inline]
    pub fn load(&self) -> Registration {
        Registration::unpack(self.word.load(Ordering::Acquire))
    }

    /// Stores `value` unconditionally.  Only the owning coordinator may use
    /// this, and only in states where no other thread can be mid-CAS on
    /// fields it is about to overwrite (e.g. while `r == 1`, when no thief
    /// ever registers).
    #[inline]
    pub fn store(&self, value: Registration) {
        self.word.store(value.pack(), Ordering::Release);
    }

    /// Raw compare-and-swap on the packed word.  Returns `Ok(())` on success
    /// and the observed value on failure.
    #[inline]
    pub fn compare_exchange(
        &self,
        current: Registration,
        new: Registration,
    ) -> Result<(), Registration> {
        debug_assert!(new.is_well_formed(), "refusing to install malformed registration {new:?}");
        self.word
            .compare_exchange(
                current.pack(),
                new.pack(),
                Ordering::AcqRel,
                Ordering::Acquire,
            )
            .map(|_| ())
            .map_err(Registration::unpack)
    }

    /// A thief at hierarchy distance `min_team` (it can only contribute to
    /// teams of at least that size) attempts to register for the coordinator
    /// owning this cell — Algorithm 7, lines 6–14.  This is the paper's
    /// "single extra CAS per thread joining a team".
    pub fn try_acquire(&self, min_team: u16) -> AcquireOutcome {
        let cur = self.load();
        if (cur.required as u64) < min_team as u64 || cur.is_complete() {
            return AcquireOutcome::NotNeeded(cur);
        }
        let mut new = cur;
        new.acquired += 1;
        match self.compare_exchange(cur, new) {
            Ok(()) => AcquireOutcome::Registered(new),
            Err(_) => AcquireOutcome::Contended,
        }
    }

    /// A registered (but not yet teamed) thread abandons its registration —
    /// Algorithm 9, lines 11–17.  The release only succeeds if the renewal
    /// counter still matches the one observed at registration time; otherwise
    /// the registration was already revoked by the coordinator and nothing
    /// must be decremented.  If the team has meanwhile been formed with the
    /// caller in it, the caller may **not** leave and
    /// [`ReleaseOutcome::Teamed`] is returned instead.
    pub fn try_release(&self, registered_counter: u16) -> ReleaseOutcome {
        loop {
            let cur = self.load();
            if cur.counter != registered_counter {
                // Revoked by the coordinator: we are already unregistered.
                return ReleaseOutcome::Revoked;
            }
            if cur.acquired <= cur.teamed {
                // The counter still matches, so our registration was never
                // reset — yet there is nothing acquired beyond the team.
                // That can only mean the team formed and we are inside it.
                return ReleaseOutcome::Teamed;
            }
            let mut new = cur;
            new.acquired -= 1;
            if self.compare_exchange(cur, new).is_ok() {
                return ReleaseOutcome::Released;
            }
            // Contended: retry with a fresh snapshot.
        }
    }

    /// The coordinator attempts to fix the team once every required thread
    /// has registered — Algorithm 6, lines 3–7.  On success the returned
    /// snapshot has `t == r`.
    pub fn try_form_team(&self) -> Option<Registration> {
        let cur = self.load();
        if !cur.is_complete() {
            return None;
        }
        let mut new = cur;
        new.teamed = cur.required;
        new.acquired = cur.required;
        match self.compare_exchange(cur, new) {
            Ok(()) => Some(new),
            Err(_) => None,
        }
    }

    /// The coordinator announces that the task it will coordinate next
    /// requires `new_required` threads (called when a task is pushed to the
    /// bottom of a queue, or when the coordinator picks the next queue to
    /// work on).  Implements the rules from Section 3:
    ///
    /// * a larger requirement just replaces `r` (already registered threads
    ///   remain useful),
    /// * a smaller requirement resets `a` to the current team size and bumps
    ///   `N` so threads outside the new boundary re-register,
    /// * `r` never drops below the current team size `t`.
    ///
    /// Returns the resulting registration value.
    pub fn push_requirement(&self, new_required: u16) -> Registration {
        loop {
            let cur = self.load();
            let target = new_required.max(cur.teamed);
            if target == cur.required {
                return cur;
            }
            let mut new = cur;
            if target > cur.required {
                new.required = target;
            } else {
                new.required = target;
                new.acquired = cur.teamed;
                new.counter = cur.counter.wrapping_add(1);
            }
            if self.compare_exchange(cur, new).is_ok() {
                return new;
            }
        }
    }

    /// The coordinator shrinks an existing team to `new_size` (the next task
    /// requires fewer threads, Section 3.1).  Threads beyond the new boundary
    /// observe the bumped counter / reduced `t` and leave on their own.
    ///
    /// # Panics
    ///
    /// Panics (debug) if `new_size` exceeds the current team size.
    pub fn shrink_team(&self, new_size: u16) -> Registration {
        loop {
            let cur = self.load();
            debug_assert!(new_size <= cur.teamed, "shrink_team({new_size}) on team of {}", cur.teamed);
            debug_assert!(new_size >= 1);
            let mut new = cur;
            new.required = new_size;
            new.acquired = new_size;
            new.teamed = new_size;
            new.counter = cur.counter.wrapping_add(1);
            if self.compare_exchange(cur, new).is_ok() {
                return new;
            }
        }
    }

    /// The coordinator disbands the team entirely (the next task requires
    /// more threads than the current team, or the worker stops coordinating,
    /// Algorithm 9 lines 23–31): back to the singleton state with a bumped
    /// renewal counter.
    pub fn disband(&self) -> Registration {
        self.shrink_team(1)
    }

    /// The warm-reuse arm of the lifecycle (DESIGN.md §15): a coordinator
    /// holding a team from a *previous* task checks whether that team can run
    /// the next task of requirement `new_required` as-is.  Reuse is possible
    /// exactly when the word still encodes a fully formed, un-renewed team
    /// (`t = a = r > 1`) at least `new_required` strong — surplus members run
    /// the task with `is_surplus` local ids (Refinement 2), so a smaller
    /// requirement never forces a shrink on this path.
    ///
    /// This is deliberately a **pure read**: the whole point of warm reuse is
    /// that the happy path costs one `Acquire` load here plus the publication
    /// seqlock write, instead of the full partner-visit/registration/countdown
    /// protocol.  The single-word packing makes the check atomic — a
    /// concurrent `disband`/`shrink_team` either lands before the load (the
    /// caller sees `Incompatible`) or after it (members observe the bumped
    /// counter only once the coordinator, the sole writer of those arms, has
    /// decided against reuse).
    pub fn try_reuse(&self, new_required: u16) -> ReuseOutcome {
        let cur = self.load();
        if cur.has_team()
            && cur.acquired == cur.teamed
            && cur.required == cur.teamed
            && new_required <= cur.teamed
        {
            ReuseOutcome::Reused(cur)
        } else {
            ReuseOutcome::Incompatible(cur)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::sync::Arc;

    #[test]
    fn initial_state_is_singleton() {
        let r = Registration::initial();
        assert_eq!(r.required, 1);
        assert_eq!(r.acquired, 1);
        assert_eq!(r.teamed, 1);
        assert_eq!(r.counter, 0);
        assert!(r.is_well_formed());
        assert!(r.is_complete());
        assert!(!r.has_team());
    }

    #[test]
    fn pack_unpack_roundtrip_examples() {
        let r = Registration {
            required: 8,
            acquired: 3,
            teamed: 2,
            counter: 41,
        };
        assert_eq!(Registration::unpack(r.pack()), r);
        // Fields land in distinct bit ranges.
        assert_eq!(r.pack() >> 48, 8);
        assert_eq!((r.pack() >> 32) & 0xFFFF, 3);
        assert_eq!((r.pack() >> 16) & 0xFFFF, 2);
        assert_eq!(r.pack() & 0xFFFF, 41);
    }

    #[test]
    fn acquire_until_complete_then_not_needed() {
        let reg = AtomicRegistration::new();
        reg.push_requirement(4);
        // Coordinator itself counts as the first acquired thread.
        let mut acquired = 1;
        while acquired < 4 {
            match reg.try_acquire(2) {
                AcquireOutcome::Registered(snapshot) => {
                    acquired += 1;
                    assert_eq!(snapshot.acquired as usize, acquired);
                }
                AcquireOutcome::Contended => {}
                AcquireOutcome::NotNeeded(_) => panic!("registration refused too early"),
            }
        }
        // A fifth thread is rejected.
        assert!(matches!(reg.try_acquire(2), AcquireOutcome::NotNeeded(_)));
        // Now the coordinator can form the team.
        let formed = reg.try_form_team().expect("team should form");
        assert_eq!(formed.teamed, 4);
    }

    #[test]
    fn acquire_refused_when_requirement_too_small() {
        let reg = AtomicRegistration::new();
        reg.push_requirement(2);
        // A thief that could only contribute to teams of >= 4 threads is not
        // needed for a 2-thread task (Algorithm 7 line 6: r >= 2^(l+1)).
        assert!(matches!(reg.try_acquire(4), AcquireOutcome::NotNeeded(_)));
        assert!(matches!(reg.try_acquire(2), AcquireOutcome::Registered(_)));
    }

    #[test]
    fn release_after_revocation_is_a_noop() {
        let reg = AtomicRegistration::new();
        reg.push_requirement(4);
        let snapshot = match reg.try_acquire(2) {
            AcquireOutcome::Registered(s) => s,
            other => panic!("unexpected {other:?}"),
        };
        assert_eq!(reg.load().acquired, 2);
        // The coordinator switches to a smaller task: a reset, N bumped.
        reg.push_requirement(2);
        let after_reset = reg.load();
        assert_eq!(after_reset.acquired, 1);
        assert_ne!(after_reset.counter, snapshot.counter);
        // The stale registration must not decrement anything.
        assert_eq!(reg.try_release(snapshot.counter), ReleaseOutcome::Revoked);
        assert_eq!(reg.load().acquired, 1);
    }

    #[test]
    fn release_with_matching_counter_decrements() {
        let reg = AtomicRegistration::new();
        reg.push_requirement(8);
        let snap = match reg.try_acquire(2) {
            AcquireOutcome::Registered(s) => s,
            other => panic!("unexpected {other:?}"),
        };
        assert_eq!(reg.load().acquired, 2);
        assert_eq!(reg.try_release(snap.counter), ReleaseOutcome::Released);
        assert_eq!(reg.load().acquired, 1);
    }

    #[test]
    fn release_refused_once_teamed() {
        let reg = AtomicRegistration::new();
        reg.push_requirement(2);
        let snap = match reg.try_acquire(2) {
            AcquireOutcome::Registered(s) => s,
            other => panic!("unexpected {other:?}"),
        };
        reg.try_form_team().expect("team of 2 should form");
        // Algorithm 9: a teamed thread cannot drop out.
        assert_eq!(reg.try_release(snap.counter), ReleaseOutcome::Teamed);
        assert_eq!(reg.load().teamed, 2);
        assert_eq!(reg.load().acquired, 2);
    }

    #[test]
    fn push_requirement_grows_without_reset() {
        let reg = AtomicRegistration::new();
        reg.push_requirement(2);
        let _ = reg.try_acquire(2);
        let before = reg.load();
        let after = reg.push_requirement(8);
        assert_eq!(after.required, 8);
        assert_eq!(after.acquired, before.acquired, "growing r keeps acquisitions");
        assert_eq!(after.counter, before.counter, "growing r does not revoke");
    }

    #[test]
    fn push_requirement_never_drops_below_team() {
        let reg = AtomicRegistration::new();
        reg.push_requirement(4);
        while !matches!(reg.try_acquire(2), AcquireOutcome::NotNeeded(_)) {}
        let formed = reg.try_form_team().unwrap();
        assert_eq!(formed.teamed, 4);
        // Section 3: "We do not allow for r dropping below t".
        let after = reg.push_requirement(2);
        assert_eq!(after.required, 4);
        assert_eq!(after.teamed, 4);
    }

    #[test]
    fn shrink_and_disband() {
        let reg = AtomicRegistration::new();
        reg.push_requirement(8);
        while !matches!(reg.try_acquire(2), AcquireOutcome::NotNeeded(_)) {}
        let formed = reg.try_form_team().unwrap();
        assert_eq!(formed.teamed, 8);
        let shrunk = reg.shrink_team(4);
        assert_eq!(shrunk.teamed, 4);
        assert_eq!(shrunk.acquired, 4);
        assert_eq!(shrunk.required, 4);
        assert_eq!(shrunk.counter, formed.counter.wrapping_add(1));
        let disbanded = reg.disband();
        assert_eq!(disbanded.teamed, 1);
        assert_eq!(disbanded.required, 1);
        assert!(disbanded.is_well_formed());
    }

    #[test]
    fn reuse_accepts_a_warm_team_up_to_its_size() {
        let reg = AtomicRegistration::new();
        reg.push_requirement(4);
        while !matches!(reg.try_acquire(2), AcquireOutcome::NotNeeded(_)) {}
        let formed = reg.try_form_team().unwrap();
        // A consecutive task needing the same team — or any smaller one —
        // reuses the warm team without writing the word.
        for r in 1..=4u16 {
            match reg.try_reuse(r) {
                ReuseOutcome::Reused(snap) => assert_eq!(snap, formed),
                other => panic!("warm team of 4 must cover r = {r}: {other:?}"),
            }
        }
        assert_eq!(reg.load(), formed, "try_reuse must never write");
        // A bigger task cannot reuse: the full build protocol is needed.
        assert!(matches!(reg.try_reuse(5), ReuseOutcome::Incompatible(_)));
    }

    #[test]
    fn reuse_refused_without_a_team_or_after_disband() {
        let reg = AtomicRegistration::new();
        // Singleton word: nothing to reuse.
        assert!(matches!(reg.try_reuse(2), ReuseOutcome::Incompatible(_)));
        reg.push_requirement(2);
        let _ = reg.try_acquire(2);
        // Complete but not yet formed: reuse must not skip formation.
        assert!(matches!(reg.try_reuse(2), ReuseOutcome::Incompatible(_)));
        reg.try_form_team().unwrap();
        assert!(matches!(reg.try_reuse(2), ReuseOutcome::Reused(_)));
        reg.disband();
        assert!(matches!(reg.try_reuse(2), ReuseOutcome::Incompatible(_)));
    }

    #[test]
    fn reuse_refused_while_growing_past_the_team() {
        let reg = AtomicRegistration::new();
        reg.push_requirement(2);
        let _ = reg.try_acquire(2);
        reg.try_form_team().unwrap();
        // Announcing a larger requirement keeps the team but opens slots
        // (t < r): publication must wait for the new members.
        reg.push_requirement(4);
        assert!(matches!(reg.try_reuse(2), ReuseOutcome::Incompatible(_)));
    }

    #[test]
    fn form_team_fails_until_complete() {
        let reg = AtomicRegistration::new();
        reg.push_requirement(4);
        assert!(reg.try_form_team().is_none());
        let _ = reg.try_acquire(2);
        assert!(reg.try_form_team().is_none());
        let _ = reg.try_acquire(2);
        let _ = reg.try_acquire(2);
        assert!(reg.try_form_team().is_some());
    }

    #[test]
    fn concurrent_acquire_never_over_registers() {
        // The key safety property of the single-CAS join: no matter how many
        // thieves race, at most r - 1 of them register.
        for _ in 0..50 {
            let reg = Arc::new(AtomicRegistration::new());
            reg.push_requirement(4);
            let threads: Vec<_> = (0..8)
                .map(|_| {
                    let reg = Arc::clone(&reg);
                    std::thread::spawn(move || {
                        let mut registered = 0u32;
                        for _ in 0..64 {
                            match reg.try_acquire(2) {
                                AcquireOutcome::Registered(_) => {
                                    registered += 1;
                                    break;
                                }
                                AcquireOutcome::Contended => continue,
                                AcquireOutcome::NotNeeded(_) => break,
                            }
                        }
                        registered
                    })
                })
                .collect();
            let total: u32 = threads.into_iter().map(|h| h.join().unwrap()).sum();
            let final_state = reg.load();
            assert!(final_state.acquired <= 4);
            assert_eq!(total, final_state.acquired as u32 - 1);
        }
    }

    proptest! {
        #[test]
        fn pack_unpack_roundtrip(r in any::<u16>(), a in any::<u16>(), t in any::<u16>(), n in any::<u16>()) {
            let reg = Registration { required: r, acquired: a, teamed: t, counter: n };
            prop_assert_eq!(Registration::unpack(reg.pack()), reg);
        }

        #[test]
        fn transitions_preserve_well_formedness(ops in proptest::collection::vec(0u8..5, 1..64)) {
            // Drive a single registration cell through an arbitrary sequence
            // of coordinator-side and thief-side operations and check the
            // structural invariant after every step.
            let reg = AtomicRegistration::new();
            let mut last_counter = 0u16;
            for op in ops {
                match op {
                    0 => { reg.push_requirement(2); }
                    1 => { reg.push_requirement(8); }
                    2 => {
                        if let AcquireOutcome::Registered(s) = reg.try_acquire(2) {
                            last_counter = s.counter;
                        }
                    }
                    3 => { let _ = reg.try_form_team(); }
                    4 => { let _ = reg.try_release(last_counter); }
                    _ => unreachable!(),
                }
                let snapshot = reg.load();
                prop_assert!(snapshot.is_well_formed(), "invariant violated: {:?}", snapshot);
            }
        }
    }
}
