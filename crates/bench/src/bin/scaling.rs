//! Speedup-versus-thread-count sweep (the series view of the paper's tables).
//!
//! The paper reports its evaluation as tables of absolute times at one thread
//! count per machine; the natural figure a reader would plot from them is
//! "speedup over Seq/STL as the number of threads grows".  This harness
//! produces exactly that series, for the task-parallel (Fork), randomized
//! (Randfork), rayon (Cilk substitute) and mixed-mode (MMPar) Quicksorts, and
//! optionally for the mixed-mode application kernels.
//!
//! ```text
//! cargo run -p teamsteal-bench --release --bin scaling -- [options]
//!
//!   --size N        input size in elements (default 1<<20)
//!   --threads LIST  comma separated thread counts (default 1,2,4,8)
//!   --reps N        repetitions per point (default 5)
//!   --dist NAME     random | gauss | buckets | staggered (default random)
//!   --seed N        input seed (default 42)
//!   --apps          also sweep the application kernels (reduce, scan,
//!                   merge sort, stencil, bfs, histogram)
//! ```

use std::time::Duration;

use teamsteal_bench::{Variant, VariantRunner};
use teamsteal_core::Scheduler;
use teamsteal_data::Distribution;
use teamsteal_sort::SortConfig;
use teamsteal_util::timing::{speedup, time, RunStats};

struct Options {
    size: usize,
    threads: Vec<usize>,
    reps: usize,
    distribution: Distribution,
    seed: u64,
    apps: bool,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        size: 1 << 20,
        threads: vec![1, 2, 4, 8],
        reps: 5,
        distribution: Distribution::Random,
        seed: 42,
        apps: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--size" => {
                opts.size = args
                    .next()
                    .ok_or("--size needs a number")?
                    .parse()
                    .map_err(|e| format!("bad size: {e}"))?;
            }
            "--threads" => {
                let list = args.next().ok_or("--threads needs a list")?;
                opts.threads = list
                    .split(',')
                    .map(|t| t.trim().parse().map_err(|e| format!("bad thread count: {e}")))
                    .collect::<Result<Vec<usize>, String>>()?;
                if opts.threads.is_empty() {
                    return Err("--threads list is empty".into());
                }
            }
            "--reps" => {
                opts.reps = args
                    .next()
                    .ok_or("--reps needs a number")?
                    .parse()
                    .map_err(|e| format!("bad repetition count: {e}"))?;
            }
            "--dist" => {
                let name = args.next().ok_or("--dist needs a name")?.to_lowercase();
                opts.distribution = match name.as_str() {
                    "random" => Distribution::Random,
                    "gauss" => Distribution::Gauss,
                    "buckets" => Distribution::Buckets,
                    "staggered" => Distribution::Staggered,
                    other => return Err(format!("unknown distribution '{other}'")),
                };
            }
            "--seed" => {
                opts.seed = args
                    .next()
                    .ok_or("--seed needs a number")?
                    .parse()
                    .map_err(|e| format!("bad seed: {e}"))?;
            }
            "--apps" => opts.apps = true,
            "--help" | "-h" => {
                println!("{HELP}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument '{other}' (try --help)")),
        }
    }
    Ok(opts)
}

const HELP: &str = "Speedup-vs-threads sweep.
  --size N         input size (default 1048576)
  --threads LIST   e.g. 1,2,4,8 (default)
  --reps N         repetitions per point (default 5)
  --dist NAME      random | gauss | buckets | staggered
  --seed N         input seed
  --apps           also sweep the application kernels";

fn aggregate(reps: usize, mut run: impl FnMut() -> Duration) -> Duration {
    let mut stats = RunStats::new();
    for _ in 0..reps.max(1) {
        stats.record(run());
    }
    stats.best()
}

fn sweep_quicksort(opts: &Options, config: &SortConfig) {
    let input = opts.distribution.generate(opts.size, 8, opts.seed);

    // Sequential reference (thread-count independent).
    let mut runner1 = VariantRunner::new(1, config.clone());
    let seq = aggregate(opts.reps, || runner1.measure(Variant::SeqStd, &input).duration);
    println!(
        "Quicksort scaling — {} elements, {:?} distribution, best of {} runs, Seq/STL = {:.3}s",
        opts.size,
        opts.distribution,
        opts.reps,
        seq.as_secs_f64()
    );
    println!(
        "{:>8} {:>12} {:>6} {:>12} {:>6} {:>12} {:>6} {:>12} {:>6}",
        "threads", "Fork(s)", "SU", "Randfork(s)", "SU", "Rayon(s)", "SU", "MMPar(s)", "SU"
    );
    for &threads in &opts.threads {
        let mut runner = VariantRunner::new(threads, config.clone());
        let mut cell = |variant| {
            let d = aggregate(opts.reps, || runner.measure(variant, &input).duration);
            (d, speedup(seq, d))
        };
        let fork = cell(Variant::Fork);
        let rand = cell(Variant::RandFork);
        let rayon = cell(Variant::RayonJoin);
        let mm = cell(Variant::MmPar);
        println!(
            "{:>8} {:>12.3} {:>6.2} {:>12.3} {:>6.2} {:>12.3} {:>6.2} {:>12.3} {:>6.2}",
            threads,
            fork.0.as_secs_f64(),
            fork.1,
            rand.0.as_secs_f64(),
            rand.1,
            rayon.0.as_secs_f64(),
            rayon.1,
            mm.0.as_secs_f64(),
            mm.1
        );
    }
    println!();
}

fn sweep_apps(opts: &Options) {
    use teamsteal_apps::bfs::{bfs_mixed_with, CsrGraph};
    use teamsteal_apps::histogram::histogram_mixed_with;
    use teamsteal_apps::merge::{merge_sort_mixed_with, MergeSortConfig};
    use teamsteal_apps::reduce::team_reduce_with;
    use teamsteal_apps::scan::scan_with;
    use teamsteal_apps::stencil::{jacobi_mixed, StencilConfig};

    let n = opts.size;
    let ints: Vec<u64> = (0..n as u64).map(|i| i % 1009).collect();
    let sort_input = opts.distribution.generate(n, 8, opts.seed);
    let grid: Vec<f64> = (0..n).map(|i| (i % 101) as f64).collect();
    let side = ((n as f64).sqrt() as usize).max(2);
    let graph = CsrGraph::grid(side, side);
    let stencil_cfg = StencilConfig {
        sweeps: 10,
        alpha: 0.25,
        min_cells_per_member: 4096,
    };
    let msort_cfg = MergeSortConfig {
        leaf_size: 2048,
        min_elements_per_member: 8192,
    };

    // Sequential references.
    let seq_reduce = aggregate(opts.reps, || time(|| ints.iter().sum::<u64>()).0);
    let seq_scan = aggregate(opts.reps, || {
        time(|| {
            let mut acc = 0u64;
            let mut out = vec![0u64; ints.len()];
            for (o, &x) in out.iter_mut().zip(&ints) {
                acc += x;
                *o = acc;
            }
            out
        })
        .0
    });
    let seq_sort = aggregate(opts.reps, || {
        time(|| {
            let mut v = sort_input.clone();
            v.sort_unstable();
            v
        })
        .0
    });
    let seq_stencil = aggregate(opts.reps, || {
        time(|| teamsteal_apps::stencil::jacobi_sequential(&grid, &stencil_cfg)).0
    });
    let seq_bfs = aggregate(opts.reps, || {
        time(|| teamsteal_apps::bfs::bfs_sequential(&graph, 0)).0
    });
    let seq_hist = aggregate(opts.reps, || {
        time(|| teamsteal_apps::histogram::histogram_sequential(&sort_input, 256)).0
    });

    println!(
        "Application-kernel scaling — {} elements / cells, best of {} runs",
        n, opts.reps
    );
    println!(
        "{:>8} {:>11} {:>11} {:>11} {:>11} {:>11} {:>11}",
        "threads", "reduce SU", "scan SU", "msort SU", "stencil SU", "bfs SU", "hist SU"
    );
    for &threads in &opts.threads {
        let scheduler = Scheduler::with_threads(threads);
        let reduce = aggregate(opts.reps, || {
            time(|| team_reduce_with(&scheduler, &ints, 0u64, |a, b| a + b, 4096)).0
        });
        let scan = aggregate(opts.reps, || {
            let mut out = vec![0u64; ints.len()];
            time(|| scan_with(&scheduler, &ints, &mut out, 0u64, |a, b| a + b, true, 4096)).0
        });
        let msort = aggregate(opts.reps, || {
            let mut v = sort_input.clone();
            time(|| merge_sort_mixed_with(&scheduler, &mut v, &msort_cfg)).0
        });
        let stencil = aggregate(opts.reps, || {
            time(|| jacobi_mixed(&scheduler, &grid, &stencil_cfg)).0
        });
        let bfs = aggregate(opts.reps, || {
            time(|| bfs_mixed_with(&scheduler, &graph, 0, 2048)).0
        });
        let hist = aggregate(opts.reps, || {
            time(|| histogram_mixed_with(&scheduler, &sort_input, 256, 4096)).0
        });
        println!(
            "{:>8} {:>11.2} {:>11.2} {:>11.2} {:>11.2} {:>11.2} {:>11.2}",
            threads,
            speedup(seq_reduce, reduce),
            speedup(seq_scan, scan),
            speedup(seq_sort, msort),
            speedup(seq_stencil, stencil),
            speedup(seq_bfs, bfs),
            speedup(seq_hist, hist),
        );
    }
    println!();
}

fn main() {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    let config = SortConfig::default();
    println!(
        "teamsteal scaling harness — host parallelism: {}",
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    );
    println!();
    sweep_quicksort(&opts, &config);
    if opts.apps {
        sweep_apps(&opts);
    }
}
