//! Perf-trajectory harness: sweeps the paper's sort variants and the
//! application kernels and persists machine-readable reports
//! (`BENCH_sort.json`, `BENCH_kernels.json`) so every PR can be compared
//! against a recorded baseline.
//!
//! ```text
//! cargo run --release -p teamsteal-bench --bin perf -- [options]
//!
//!   --smoke            tiny sizes and minimal repetitions (CI guard)
//!   --size N           sort / kernel work budget in elements (default 1<<19)
//!   --threads LIST     comma-separated thread counts (default 1,2,4)
//!   --reps N           timed repetitions per scenario (default 5)
//!   --warmups N        untimed warmup runs per scenario (default 1)
//!   --seed N           input seed (default 42)
//!   --out-dir PATH     where the BENCH_*.json files are written (default .)
//!   --check FILE       compare the fresh sort report's MMPar records
//!                      against the baseline report FILE; exit 1 on any
//!                      median regression beyond the tolerance
//!   --tolerance PCT    regression tolerance in percent (default 25)
//! ```
//!
//! The JSON schema and the regeneration workflow are documented in
//! `EXPERIMENTS.md`; the measurement methodology (warmups, why the median is
//! the headline aggregate) in `DESIGN.md` §7.  Unlike the `tables` /
//! `scaling` bins this harness needs no optional features: it only measures
//! scenarios that run on the `teamsteal` scheduler itself, so its numbers
//! are meaningful even in the offline stub build.

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::time::{Duration, SystemTime};

use teamsteal_apps::harness::{Kernel, Workload};
use teamsteal_apps::micro;
use teamsteal_bench::report::{
    check_regressions, Environment, JsonValue, Report, RunRecord, TimingSummary, SCHEMA_VERSION,
};
use teamsteal_bench::{Variant, VariantRunner};
use teamsteal_core::{MetricsSnapshot, Scheduler};
use teamsteal_data::Distribution;
use teamsteal_sort::SortConfig;
use teamsteal_util::timing::RunStats;

/// The sort variants the trajectory tracks.  `SeqStd` is the speedup
/// denominator; the rayon baselines are excluded because in the offline stub
/// build their numbers are not comparable (see EXPERIMENTS.md).
const SORT_SEQUENTIAL: [Variant; 2] = [Variant::SeqStd, Variant::SeqQs];
const SORT_PARALLEL: [Variant; 3] = [Variant::Fork, Variant::RandFork, Variant::MmPar];

/// Which sweep families a run executes (`--only`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Sweeps {
    sort: bool,
    kernel: bool,
    micro: bool,
    injection: bool,
    soak: bool,
    wakeup_latency: bool,
    idle_burn: bool,
    team_build: bool,
    service: bool,
}

impl Default for Sweeps {
    fn default() -> Self {
        Sweeps {
            sort: true,
            kernel: true,
            micro: true,
            injection: true,
            soak: true,
            wakeup_latency: true,
            idle_burn: true,
            team_build: true,
            service: true,
        }
    }
}

impl Sweeps {
    const NONE: Sweeps = Sweeps {
        sort: false,
        kernel: false,
        micro: false,
        injection: false,
        soak: false,
        wakeup_latency: false,
        idle_burn: false,
        team_build: false,
        service: false,
    };

    /// `true` when any family writing into `BENCH_kernels.json` runs.
    fn any_kernel_report_family(&self) -> bool {
        self.kernel
            || self.micro
            || self.injection
            || self.soak
            || self.wakeup_latency
            || self.idle_burn
            || self.team_build
            || self.service
    }

    /// `true` when every `BENCH_kernels.json` family runs (no carryover
    /// needed).
    fn all_kernel_report_families(&self) -> bool {
        self.kernel
            && self.micro
            && self.injection
            && self.soak
            && self.wakeup_latency
            && self.idle_burn
            && self.team_build
            && self.service
    }
}

struct Options {
    smoke: bool,
    size: usize,
    threads: Vec<usize>,
    reps: usize,
    warmups: usize,
    seed: u64,
    out_dir: PathBuf,
    check: Option<PathBuf>,
    tolerance_pct: f64,
    sweeps: Sweeps,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            smoke: false,
            size: 1 << 19,
            threads: vec![1, 2, 4],
            reps: 5,
            warmups: 1,
            seed: 42,
            out_dir: PathBuf::from("."),
            check: None,
            tolerance_pct: 25.0,
            sweeps: Sweeps::default(),
        }
    }
}

const HELP: &str = "Perf-trajectory harness (writes BENCH_sort.json / BENCH_kernels.json).
  --smoke            tiny sizes and minimal repetitions (CI guard)
  --size N           sort / kernel work budget in elements (default 524288)
  --threads LIST     comma-separated thread counts (default 1,2,4)
  --reps N           timed repetitions per scenario (default 5)
  --warmups N        untimed warmup runs per scenario (default 1)
  --seed N           input seed (default 42)
  --out-dir PATH     output directory (default .)
  --only LIST        comma-separated sweep families to run: sort,kernel,
                     micro,injection_throughput,soak,wakeup_latency,idle_burn,
                     team_build,service_latency (default: all nine)
  --check FILE       fail (exit 1) on MMPar median regression vs baseline FILE;
                     with --smoke the comparison runs a dedicated MMPar pass at
                     the baseline's recorded size/threads so medians compare
  --tolerance PCT    regression tolerance in percent (default 25)";

fn parse_args() -> Result<Options, String> {
    let mut opts = Options::default();
    let all: Vec<String> = std::env::args().skip(1).collect();
    // Apply the smoke defaults first so explicit flags always win,
    // regardless of where --smoke appears on the command line.
    if all.iter().any(|a| a == "--smoke") {
        opts.smoke = true;
        opts.size = 20_000;
        opts.threads = vec![2];
        opts.reps = 2;
        opts.warmups = 1;
    }
    let mut args = all.into_iter();
    while let Some(arg) = args.next() {
        let mut value = |what: &str| args.next().ok_or(format!("{arg} needs {what}"));
        match arg.as_str() {
            "--smoke" => {}
            "--size" => {
                opts.size = value("a number")?
                    .parse()
                    .map_err(|e| format!("bad size: {e}"))?
            }
            "--threads" => {
                let list = value("a list")?;
                opts.threads = list
                    .split(',')
                    .map(|t| t.trim().parse().map_err(|e| format!("bad thread count: {e}")))
                    .collect::<Result<Vec<usize>, String>>()?;
                if opts.threads.is_empty() || opts.threads.contains(&0) {
                    return Err("--threads needs a non-empty list of positive counts".into());
                }
            }
            "--reps" => {
                opts.reps = value("a number")?
                    .parse()
                    .map_err(|e| format!("bad repetition count: {e}"))?
            }
            "--warmups" => {
                opts.warmups = value("a number")?
                    .parse()
                    .map_err(|e| format!("bad warmup count: {e}"))?
            }
            "--seed" => {
                opts.seed = value("a number")?
                    .parse()
                    .map_err(|e| format!("bad seed: {e}"))?
            }
            "--out-dir" => opts.out_dir = PathBuf::from(value("a path")?),
            "--only" => {
                let list = value("a list")?;
                let mut sweeps = Sweeps::NONE;
                for family in list.split(',') {
                    match family.trim() {
                        "sort" => sweeps.sort = true,
                        "kernel" => sweeps.kernel = true,
                        "micro" => sweeps.micro = true,
                        "injection_throughput" => sweeps.injection = true,
                        "soak" => sweeps.soak = true,
                        "wakeup_latency" => sweeps.wakeup_latency = true,
                        "idle_burn" => sweeps.idle_burn = true,
                        "team_build" => sweeps.team_build = true,
                        "service_latency" => sweeps.service = true,
                        other => {
                            return Err(format!(
                                "unknown sweep family '{other}' (expected sort, kernel, \
                                 micro, injection_throughput, soak, wakeup_latency, \
                                 idle_burn, team_build or service_latency)"
                            ))
                        }
                    }
                }
                opts.sweeps = sweeps;
            }
            "--check" => opts.check = Some(PathBuf::from(value("a path")?)),
            "--tolerance" => {
                opts.tolerance_pct = value("a percentage")?
                    .parse()
                    .map_err(|e| format!("bad tolerance: {e}"))?;
                if opts.tolerance_pct < 0.0 {
                    return Err("--tolerance must be non-negative".into());
                }
            }
            "--help" | "-h" => {
                println!("{HELP}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument '{other}' (try --help)")),
        }
    }
    opts.reps = opts.reps.max(1);
    Ok(opts)
}

fn params_json(opts: &Options, group: &str) -> JsonValue {
    JsonValue::Object(vec![
        ("group".into(), JsonValue::String(group.into())),
        ("smoke".into(), JsonValue::Bool(opts.smoke)),
        ("size".into(), JsonValue::Number(opts.size as f64)),
        (
            "threads".into(),
            JsonValue::Array(
                opts.threads
                    .iter()
                    .map(|&t| JsonValue::Number(t as f64))
                    .collect(),
            ),
        ),
        ("reps".into(), JsonValue::Number(opts.reps as f64)),
        ("warmups".into(), JsonValue::Number(opts.warmups as f64)),
        ("seed".into(), JsonValue::Number(opts.seed as f64)),
    ])
}

fn new_report(opts: &Options, group: &str, records: Vec<RunRecord>) -> Report {
    Report {
        schema_version: SCHEMA_VERSION,
        harness: "perf".into(),
        group: group.into(),
        created_unix_s: SystemTime::now()
            .duration_since(SystemTime::UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0),
        environment: Environment::detect(),
        params: params_json(opts, group),
        records,
    }
}

/// Runs `warmups` untimed and `reps` timed repetitions of one sort scenario
/// and folds them into a record.
fn sort_cell(
    runner: &mut VariantRunner,
    variant: Variant,
    distribution: Distribution,
    input: &[u32],
    opts: &Options,
    threads: usize,
) -> (RunStats, MetricsSnapshot) {
    for _ in 0..opts.warmups {
        runner.measure(variant, input);
    }
    let mut stats = RunStats::new();
    let mut metrics = MetricsSnapshot::default();
    for _ in 0..opts.reps {
        let m = runner.measure(variant, input);
        stats.record(m.duration);
        metrics = metrics.merge(m.metrics);
    }
    eprintln!(
        "sort    | {:<9} | {:<8} | p = {:>2} | median {:>10.6}s",
        distribution.label(),
        variant.label(),
        threads,
        stats.median().as_secs_f64()
    );
    (stats, metrics)
}

fn sort_record(
    variant: Variant,
    distribution: Distribution,
    opts: &Options,
    threads: usize,
    stats: &RunStats,
    metrics: MetricsSnapshot,
    seq_reference_s: Option<f64>,
) -> RunRecord {
    let secs = TimingSummary::from_stats(stats);
    let speedup_vs_seq = seq_reference_s
        .filter(|&s| secs.median_s > 0.0 && s > 0.0)
        .map(|s| s / secs.median_s);
    RunRecord {
        group: "sort".into(),
        name: variant.label().into(),
        distribution: Some(distribution.label().into()),
        size: opts.size,
        threads,
        warmups: opts.warmups,
        repetitions: opts.reps,
        secs,
        metrics,
        seq_reference_s,
        speedup_vs_seq,
        extra: None,
    }
}

/// Sweeps SeqQS/Fork/Randfork/MMPar (plus the Seq/STL reference) over every
/// input distribution and thread count.
fn sweep_sorts(opts: &Options) -> Report {
    let config = SortConfig::default();
    let mut records = Vec::new();
    // One input per distribution, shared by every variant and thread count.
    let inputs: Vec<(Distribution, Vec<u32>)> = Distribution::ALL
        .into_iter()
        .map(|d| (d, d.generate(opts.size, 8, opts.seed)))
        .collect();
    // Median Seq/STL time per distribution: the speedup denominator.
    let mut seq_medians: HashMap<&'static str, f64> = HashMap::new();

    // Sequential variants, measured once per distribution.
    let mut seq_runner = VariantRunner::new(1, config.clone());
    for (distribution, input) in &inputs {
        for variant in SORT_SEQUENTIAL {
            let (stats, metrics) =
                sort_cell(&mut seq_runner, variant, *distribution, input, opts, 1);
            if variant == Variant::SeqStd {
                seq_medians.insert(distribution.label(), stats.median().as_secs_f64());
            }
            records.push(sort_record(
                variant,
                *distribution,
                opts,
                1,
                &stats,
                metrics,
                None,
            ));
        }
    }

    // Parallel variants at every thread count; one runner (and hence one
    // scheduler set) per thread count, reused across distributions.
    for &threads in &opts.threads {
        let mut runner = VariantRunner::new(threads, config.clone());
        for (distribution, input) in &inputs {
            let seq_reference_s = seq_medians.get(distribution.label()).copied();
            for variant in SORT_PARALLEL {
                let (stats, metrics) =
                    sort_cell(&mut runner, variant, *distribution, input, opts, threads);
                records.push(sort_record(
                    variant,
                    *distribution,
                    opts,
                    threads,
                    &stats,
                    metrics,
                    seq_reference_s,
                ));
            }
        }
    }
    new_report(opts, "sort", records)
}

/// Sweeps every application kernel over the thread counts, with a sequential
/// reference per kernel.
fn sweep_kernels(opts: &Options) -> Report {
    let mut records = Vec::new();
    let workloads: Vec<Workload> = Kernel::ALL
        .iter()
        .map(|&k| Workload::prepare(k, opts.size, opts.seed))
        .collect();

    // Sequential references (median over the same repetition policy).
    let mut seq_medians: HashMap<&'static str, f64> = HashMap::new();
    for workload in &workloads {
        for _ in 0..opts.warmups {
            workload.run_sequential();
        }
        let mut stats = RunStats::new();
        for _ in 0..opts.reps {
            stats.record(workload.run_sequential());
        }
        eprintln!(
            "kernel  | {:<9} | sequential | median {:>10.6}s",
            workload.kernel().label(),
            stats.median().as_secs_f64()
        );
        seq_medians.insert(workload.kernel().label(), stats.median().as_secs_f64());
    }

    for &threads in &opts.threads {
        let scheduler = Scheduler::with_threads(threads);
        for workload in &workloads {
            for _ in 0..opts.warmups {
                workload.run_mixed(&scheduler);
            }
            let mut stats = RunStats::new();
            let mut metrics = MetricsSnapshot::default();
            for _ in 0..opts.reps {
                let before = scheduler.metrics();
                stats.record(workload.run_mixed(&scheduler));
                metrics = metrics.merge(scheduler.metrics().delta_since(&before));
            }
            let secs = TimingSummary::from_stats(&stats);
            let seq_reference_s = seq_medians.get(workload.kernel().label()).copied();
            let speedup_vs_seq = seq_reference_s
                .filter(|&s| secs.median_s > 0.0 && s > 0.0)
                .map(|s| s / secs.median_s);
            eprintln!(
                "kernel  | {:<9} | p = {:>2}     | median {:>10.6}s | SU {:>5.2}",
                workload.kernel().label(),
                threads,
                secs.median_s,
                speedup_vs_seq.unwrap_or(0.0)
            );
            records.push(RunRecord {
                group: "kernel".into(),
                name: workload.kernel().label().into(),
                distribution: None,
                size: workload.size(),
                threads,
                warmups: opts.warmups,
                repetitions: opts.reps,
                secs,
                metrics,
                seq_reference_s,
                speedup_vs_seq,
                extra: None,
            });
        }
    }
    new_report(opts, "kernel", records)
}

/// Runs `reps` timed repetitions of one micro scenario (after `warmups`
/// untimed ones) and folds them into a record.
fn micro_record(
    name: &str,
    work_items: usize,
    opts: &Options,
    threads: usize,
    scheduler: &teamsteal_core::Scheduler,
    mut run_once: impl FnMut() -> std::time::Duration,
) -> RunRecord {
    for _ in 0..opts.warmups {
        run_once();
    }
    let mut stats = RunStats::new();
    let mut metrics = MetricsSnapshot::default();
    for _ in 0..opts.reps {
        let before = scheduler.metrics();
        stats.record(run_once());
        metrics = metrics.merge(scheduler.metrics().delta_since(&before));
    }
    let secs = TimingSummary::from_stats(&stats);
    let per_item_ns = if work_items > 0 {
        secs.median_s * 1e9 / work_items as f64
    } else {
        0.0
    };
    eprintln!(
        "micro   | {name:<14} | p = {threads:>2} | median {:>10.6}s | {per_item_ns:>8.1} ns/task",
        secs.median_s
    );
    RunRecord {
        group: "micro".into(),
        name: name.into(),
        distribution: None,
        size: work_items,
        threads,
        warmups: opts.warmups,
        repetitions: opts.reps,
        secs,
        metrics,
        seq_reference_s: None,
        speedup_vs_seq: None,
        extra: None,
    }
}

/// Sweeps the scheduler micro-scenarios (spawn/join loop, steal-latency
/// probe, external-injection loop) over the thread counts.  The scenario
/// budgets are derived from `--size` so `--smoke` scales them down too.
fn sweep_micro(opts: &Options) -> Vec<RunRecord> {
    let spawns = (opts.size / 4).max(1_000);
    let steal_tasks = (opts.size / 8).max(1_000);
    let scopes = (opts.size / 2_048).max(32);
    let per_scope = 16;
    let mut records = Vec::new();
    for &threads in &opts.threads {
        let scheduler = teamsteal_core::Scheduler::with_threads(threads);
        records.push(micro_record(
            "spawn_overhead",
            spawns,
            opts,
            threads,
            &scheduler,
            || micro::spawn_overhead(&scheduler, spawns),
        ));
        if threads > 1 {
            records.push(micro_record(
                "steal_latency",
                steal_tasks,
                opts,
                threads,
                &scheduler,
                || micro::steal_latency(&scheduler, steal_tasks),
            ));
        }
        records.push(micro_record(
            "scope_inject",
            scopes * per_scope,
            opts,
            threads,
            &scheduler,
            || micro::scope_inject(&scheduler, scopes, per_scope),
        ));
    }
    records
}

/// Sweeps the multi-producer injection scenario
/// ([`micro::injection_throughput`]): 8 concurrent submitter threads feed
/// empty root tasks into one persistent scheduler.  Each thread count is
/// measured twice — once with the default domain width (sharded injector)
/// and once with `domain_width = p` (a single shard, the pre-sharding
/// layout) — so the sharded-vs-single comparison lives side by side in the
/// report.  On top of `--threads`, oversubscribed p = 32/64 "simulated big
/// iron" cells run too: that is where the domain structure has more than
/// one shard to spread producers over.
fn sweep_injection(opts: &Options) -> Vec<RunRecord> {
    const PRODUCERS: usize = 8;
    let per_producer = (opts.size / 32).clamp(256, 16_384);
    let tasks = PRODUCERS * per_producer;
    let mut thread_counts = opts.threads.clone();
    for big in [32usize, 64] {
        if !thread_counts.contains(&big) {
            thread_counts.push(big);
        }
    }
    let mut records = Vec::new();
    for &threads in &thread_counts {
        for (name, width) in [("sharded", None), ("single_shard", Some(threads))] {
            let mut builder = Scheduler::builder().threads(threads);
            if let Some(width) = width {
                builder = builder.domain_width(width);
            }
            let scheduler = builder.build();
            let shards = scheduler.injector_shard_segments().len();
            for _ in 0..opts.warmups {
                micro::injection_throughput(&scheduler, PRODUCERS, per_producer);
            }
            let mut stats = RunStats::new();
            let mut submit = RunStats::new();
            let mut metrics = MetricsSnapshot::default();
            for _ in 0..opts.reps {
                let before = scheduler.metrics();
                let outcome = micro::injection_throughput(&scheduler, PRODUCERS, per_producer);
                stats.record(outcome.duration);
                metrics = metrics.merge(scheduler.metrics().delta_since(&before));
                for sample in outcome.submit_to_start {
                    submit.record(sample);
                }
            }
            let secs = TimingSummary::from_stats(&stats);
            let submit_secs = TimingSummary::from_stats(&submit);
            let tasks_per_sec = if secs.median_s > 0.0 {
                tasks as f64 / secs.median_s
            } else {
                0.0
            };
            let pops = metrics.injector_local_pops + metrics.injector_remote_pops;
            let remote_share = if pops > 0 {
                metrics.injector_remote_pops as f64 / pops as f64
            } else {
                0.0
            };
            eprintln!(
                "inject  | {name:<12} | p = {threads:>2} | median {:>10.6}s | {tasks_per_sec:>10.0} tasks/s | shards {shards} | remote {:>5.1}%",
                secs.median_s,
                remote_share * 100.0
            );
            records.push(RunRecord {
                group: "injection_throughput".into(),
                name: name.into(),
                distribution: None,
                size: tasks,
                threads,
                warmups: opts.warmups,
                repetitions: opts.reps,
                secs,
                metrics,
                seq_reference_s: None,
                speedup_vs_seq: None,
                extra: Some(JsonValue::Object(vec![
                    ("producers".into(), JsonValue::Number(PRODUCERS as f64)),
                    (
                        "per_producer".into(),
                        JsonValue::Number(per_producer as f64),
                    ),
                    ("shards".into(), JsonValue::Number(shards as f64)),
                    ("tasks_per_sec".into(), JsonValue::Number(tasks_per_sec)),
                    (
                        "submit_to_start_median_us".into(),
                        JsonValue::Number(submit_secs.median_s * 1e6),
                    ),
                    (
                        "submit_to_start_p95_us".into(),
                        JsonValue::Number(submit_secs.p95_s * 1e6),
                    ),
                    (
                        "injector_remote_pop_share".into(),
                        JsonValue::Number(remote_share),
                    ),
                ])),
            });
        }
    }
    records
}

/// Sweeps the bounded-memory soak scenario ([`micro::soak`]) over the
/// thread counts: many back-to-back root-task lifetimes whose spawn bursts
/// also exercise deque growth.  The reclaimed-object counts land in the
/// record's ordinary scheduler metrics (`segments_reclaimed`,
/// `buffers_reclaimed`, `epoch_advances`); the retained-footprint gauges
/// ride in the record's `extra` object (see EXPERIMENTS.md).
fn sweep_soak(opts: &Options) -> Vec<RunRecord> {
    let per_scope = 8;
    let scopes = (opts.size / 256).max(24);
    let root_tasks = scopes * per_scope;
    let mut records = Vec::new();
    for &threads in &opts.threads {
        // Unlike the latency micros, each repetition runs a *fresh*
        // scheduler: soak measures a full scheduler lifecycle (cold deques
        // growing, segments churning, everything reclaimed), and a reused
        // engine would hide the buffer-retire traffic behind the warmup's
        // high-water mark.
        for _ in 0..opts.warmups {
            let scheduler = Scheduler::with_threads(threads);
            micro::soak(&scheduler, scopes.min(64), per_scope);
        }
        let mut stats = RunStats::new();
        let mut metrics = MetricsSnapshot::default();
        let mut peak_segments = 0usize;
        let mut peak_deferred = 0usize;
        let mut final_segments = 0usize;
        for _ in 0..opts.reps {
            let scheduler = Scheduler::with_threads(threads);
            let before = scheduler.metrics();
            let outcome = micro::soak(&scheduler, scopes, per_scope);
            stats.record(outcome.duration);
            metrics = metrics.merge(scheduler.metrics().delta_since(&before));
            peak_segments = peak_segments.max(outcome.peak_injector_segments);
            peak_deferred = peak_deferred.max(outcome.peak_deferred_items);
            final_segments = outcome.final_injector_segments;
        }
        let secs = TimingSummary::from_stats(&stats);
        eprintln!(
            "soak    | {root_tasks:>6} roots | p = {threads:>2} | median {:>10.6}s | peak segs {peak_segments} | reclaimed {}+{}",
            secs.median_s, metrics.segments_reclaimed, metrics.buffers_reclaimed
        );
        records.push(RunRecord {
            group: "soak".into(),
            name: "soak".into(),
            distribution: None,
            size: root_tasks,
            threads,
            warmups: opts.warmups,
            repetitions: opts.reps,
            secs,
            metrics,
            seq_reference_s: None,
            speedup_vs_seq: None,
            extra: Some(JsonValue::Object(vec![
                (
                    "peak_injector_segments".into(),
                    JsonValue::Number(peak_segments as f64),
                ),
                (
                    "final_injector_segments".into(),
                    JsonValue::Number(final_segments as f64),
                ),
                (
                    "peak_deferred_items".into(),
                    JsonValue::Number(peak_deferred as f64),
                ),
                ("scopes".into(), JsonValue::Number(scopes as f64)),
                ("per_scope".into(), JsonValue::Number(per_scope as f64)),
            ])),
        });
    }
    records
}

/// Sweeps the external-submission wake-latency scenario
/// ([`micro::wakeup_latency`]) over the thread counts.  Unlike the other
/// micros, the record's samples *are* the individual submit→start
/// latencies, so `secs.median_s` / `secs.p95_s` read directly as seconds of
/// wake latency (EXPERIMENTS.md).  The submission count is derived from
/// `--size`; each submission is preceded by a settle pause so the workers
/// actually park, which bounds how many are practical per run.
fn sweep_wakeup_latency(opts: &Options) -> Vec<RunRecord> {
    let submissions = (opts.size / 2_048).clamp(24, 240);
    let warmup_submissions = opts.warmups.min(1) * 8;
    let mut records = Vec::new();
    for &threads in &opts.threads {
        let scheduler = Scheduler::with_threads(threads);
        if warmup_submissions > 0 {
            micro::wakeup_latency(&scheduler, warmup_submissions);
        }
        let before = scheduler.metrics();
        let mut stats = RunStats::new();
        for latency in micro::wakeup_latency(&scheduler, submissions) {
            stats.record(latency);
        }
        let metrics = scheduler.metrics().delta_since(&before);
        let secs = TimingSummary::from_stats(&stats);
        eprintln!(
            "wakeup  | {submissions:>4} submits | p = {threads:>2} | median {:>8.1} us | p95 {:>8.1} us",
            secs.median_s * 1e6,
            secs.p95_s * 1e6
        );
        records.push(RunRecord {
            group: "wakeup_latency".into(),
            name: "wakeup_latency".into(),
            distribution: None,
            size: submissions,
            threads,
            warmups: warmup_submissions,
            repetitions: submissions,
            secs,
            metrics,
            seq_reference_s: None,
            speedup_vs_seq: None,
            extra: Some(JsonValue::Object(vec![(
                "settle_ms".into(),
                JsonValue::Number(micro::WAKEUP_SETTLE.as_secs_f64() * 1e3),
            )])),
        });
    }
    records
}

/// Sweeps the idle-CPU-burn scenario ([`micro::idle_burn`]) over the thread
/// counts.  Each sample is the CPU time (seconds) the whole process burned
/// across one idle wall interval — near-zero with event-driven parking,
/// `O(p · interval / poll-cap)` under sleep-polling.  On platforms without
/// a process-CPU clock the scenario is skipped (recording zeros would fake
/// a perfect result).
fn sweep_idle_burn(opts: &Options) -> Vec<RunRecord> {
    if micro::process_cpu_time().is_none() {
        eprintln!("idle    | skipped: no process-CPU clock on this platform");
        return Vec::new();
    }
    let wall = if opts.smoke {
        std::time::Duration::from_millis(150)
    } else {
        std::time::Duration::from_millis(500)
    };
    let mut records = Vec::new();
    for &threads in &opts.threads {
        let scheduler = Scheduler::with_threads(threads);
        let before = scheduler.metrics();
        let mut stats = RunStats::new();
        let mut wall_total = std::time::Duration::ZERO;
        let mut reps_recorded = 0usize;
        for _ in 0..opts.reps {
            let outcome = micro::idle_burn(&scheduler, wall);
            // The probe can transiently fail (procfs race); skip the sample
            // rather than abort the sweep.
            let Some(cpu) = outcome.cpu else { continue };
            stats.record(cpu);
            wall_total += outcome.wall;
            reps_recorded += 1;
        }
        if reps_recorded == 0 {
            eprintln!("idle    | skipped p = {threads}: CPU probe failed every repetition");
            continue;
        }
        let metrics = scheduler.metrics().delta_since(&before);
        let secs = TimingSummary::from_stats(&stats);
        let burn_ratio = if wall_total.as_secs_f64() > 0.0 {
            stats.samples().iter().map(|d| d.as_secs_f64()).sum::<f64>()
                / wall_total.as_secs_f64()
        } else {
            0.0
        };
        eprintln!(
            "idle    | {:>4} ms wall | p = {threads:>2} | median {:>8.3} ms CPU | burn {:>6.4}",
            wall.as_millis(),
            secs.median_s * 1e3,
            burn_ratio
        );
        records.push(RunRecord {
            group: "idle_burn".into(),
            name: "idle_burn".into(),
            distribution: None,
            size: wall.as_millis() as usize,
            threads,
            warmups: 0,
            repetitions: reps_recorded,
            secs,
            metrics,
            seq_reference_s: None,
            speedup_vs_seq: None,
            extra: Some(JsonValue::Object(vec![
                (
                    "wall_interval_s".into(),
                    JsonValue::Number(wall.as_secs_f64()),
                ),
                ("cpu_per_wall".into(), JsonValue::Number(burn_ratio)),
            ])),
        });
    }
    records
}

/// Sweeps the team-build latency scenarios
/// ([`micro::team_build_streak`], [`micro::team_build_cold`],
/// [`micro::team_build_mix`]) over the thread counts (skipping `p = 1`,
/// which has no teams to build).  For the `streak` and `cold` records the
/// samples *are* the per-task submit→team-start latencies — `secs.median_s`
/// / `secs.p95_s` read directly as seconds of team-build latency — and the
/// `reuse_hit_rate` extra reports how many publications rode a warm team
/// (`team_reuses / (teams_built + team_reuses)`, EXPERIMENTS.md).  The
/// `mix` record times a bursty heterogeneous requirement mix (fixed-`r`
/// streaks, moldable ranges, sequential riders) end-to-end.
fn sweep_team_build(opts: &Options) -> Vec<RunRecord> {
    let streak_tasks = (opts.size / 2_048).clamp(32, 256);
    // Every cold submission pays a keep-alive-expiry gap, which bounds how
    // many are practical per run.
    let cold_tasks = (opts.size / 8_192).clamp(8, 48);
    let mix_bursts = (opts.size / 4_096).clamp(8, 64);
    let mut records = Vec::new();
    let reuse_extra = |metrics: &MetricsSnapshot| {
        let publications = metrics.teams_built + metrics.team_reuses;
        let hit_rate = if publications > 0 {
            metrics.team_reuses as f64 / publications as f64
        } else {
            0.0
        };
        JsonValue::Object(vec![
            ("reuse_hit_rate".into(), JsonValue::Number(hit_rate)),
            (
                "cold_gap_ms".into(),
                JsonValue::Number(micro::TEAM_BUILD_COLD_GAP.as_secs_f64() * 1e3),
            ),
        ])
    };
    for &threads in &opts.threads {
        if threads < 2 {
            continue;
        }
        // Full-machine teams: with r = p the team level is unstealable, so
        // streak reuse measures the pool, not steal races.
        let r = threads;
        let scheduler = Scheduler::with_threads(threads);
        if opts.warmups > 0 {
            micro::team_build_streak(&scheduler, r, 8);
        }

        let before = scheduler.metrics();
        let streak = micro::team_build_streak(&scheduler, r, streak_tasks);
        let streak_metrics = scheduler.metrics().delta_since(&before);
        let mut stats = RunStats::new();
        for latency in &streak.submit_to_start {
            stats.record(*latency);
        }
        let secs = TimingSummary::from_stats(&stats);
        let streak_median_us = secs.median_s * 1e6;
        records.push(RunRecord {
            group: "team_build".into(),
            name: "team_build_streak".into(),
            distribution: None,
            size: streak_tasks,
            threads,
            warmups: opts.warmups,
            repetitions: streak_tasks,
            secs,
            extra: Some(reuse_extra(&streak_metrics)),
            metrics: streak_metrics,
            seq_reference_s: None,
            speedup_vs_seq: None,
        });

        let before = scheduler.metrics();
        let cold = micro::team_build_cold(&scheduler, r, cold_tasks);
        let cold_metrics = scheduler.metrics().delta_since(&before);
        let mut stats = RunStats::new();
        for latency in &cold.submit_to_start {
            stats.record(*latency);
        }
        let secs = TimingSummary::from_stats(&stats);
        eprintln!(
            "team    | r = {r:>2} | p = {threads:>2} | streak median {streak_median_us:>8.1} us (hit {:>5.3}) | cold median {:>8.1} us",
            streak_metrics.team_reuses as f64
                / (streak_metrics.teams_built + streak_metrics.team_reuses).max(1) as f64,
            secs.median_s * 1e6,
        );
        records.push(RunRecord {
            group: "team_build".into(),
            name: "team_build_cold".into(),
            distribution: None,
            size: cold_tasks,
            threads,
            warmups: opts.warmups,
            repetitions: cold_tasks,
            secs,
            extra: Some(reuse_extra(&cold_metrics)),
            metrics: cold_metrics,
            seq_reference_s: None,
            speedup_vs_seq: None,
        });

        let mut stats = RunStats::new();
        let mut metrics = MetricsSnapshot::default();
        for _ in 0..opts.reps {
            let before = scheduler.metrics();
            stats.record(micro::team_build_mix(&scheduler, mix_bursts));
            metrics = metrics.merge(scheduler.metrics().delta_since(&before));
        }
        let secs = TimingSummary::from_stats(&stats);
        eprintln!(
            "teammix | {mix_bursts:>4} bursts | p = {threads:>2} | median {:>10.6}s | built {} reused {} shrunk {}",
            secs.median_s, metrics.teams_built, metrics.team_reuses, metrics.team_shrinks
        );
        records.push(RunRecord {
            group: "team_build".into(),
            name: "team_build_mix".into(),
            distribution: None,
            size: mix_bursts,
            threads,
            warmups: 0,
            repetitions: opts.reps,
            secs,
            extra: Some(reuse_extra(&metrics)),
            metrics,
            seq_reference_s: None,
            speedup_vs_seq: None,
        });
    }
    records
}

/// The `service_latency` family (DESIGN.md §16, EXPERIMENTS.md): drives the
/// multi-tenant task service with the open-loop generator from
/// [`teamsteal_service::loadgen`] and records two scenarios per thread
/// count.  For the `service_latency_paced` record the samples *are* the
/// sampled submit-to-complete latencies — `secs.median_s` / `secs.p95_s`
/// read directly as p50/p95 service latency — with the arrival rate,
/// admission counters, nearest-rank p99 and per-tenant fairness ratios
/// (admitted share ÷ weight share; 1.0 is perfectly weighted-fair) in
/// `extra`.  The `service_saturation` record measures the closed-loop
/// completion ceiling and reports it as `saturation_tasks_per_sec`.
///
/// The `service_overload_2x` record (PR 10) is the graceful-degradation
/// demonstration: with heavier tasks the cell first measures that
/// configuration's saturation ceiling, then offers **2×** that rate with a
/// per-task deadline, a high-water mark too large to shed and an admission
/// budget too large to backpressure — so *stale-work expiry* is the only
/// defense.  Goodput (completions within deadline per second) must hold
/// near the at-saturation reference while `tasks_expired` absorbs the
/// excess; the same 2× run without deadlines shows the collapse being
/// avoided (timely completions crater even though raw throughput holds).
fn sweep_service(opts: &Options) -> Vec<RunRecord> {
    use teamsteal_service::loadgen::{saturation, service_latency, LoadgenConfig};
    // Weighted tenants so the fairness ratios exercise the non-trivial
    // (3:1) case; submitters alternate tenants, so offered load is even
    // and the weights — not the offered split — set the fair shares.
    let weights: Vec<u64> = vec![3, 1];
    let paced_duration = if opts.smoke {
        Duration::from_millis(250)
    } else {
        Duration::from_secs(2)
    };
    let arrival_rate_hz = (opts.size as u64).clamp(5_000, 50_000);
    // Sample roughly this many latencies regardless of scale: enough for a
    // stable nearest-rank p99, small enough that the committed baseline
    // (which embeds `samples_s`) stays reviewable.
    let offered_total = arrival_rate_hz as f64 * paced_duration.as_secs_f64();
    let sample_every = ((offered_total / 512.0) as usize).max(1);
    let mut records = Vec::new();
    for &threads in &opts.threads {
        let cfg = LoadgenConfig {
            threads,
            submitters: threads.max(2),
            arrival_rate_hz,
            duration: paced_duration,
            tenant_weights: weights.clone(),
            // Half the offered rate per weight unit: with weights 3 + 1 the
            // combined budget is 2x the offered rate, so admission is
            // normally quiet but bursts still brush the token buckets.
            refill_rate: (arrival_rate_hz / 2).max(1_000),
            burst: 256,
            high_water: 1 << 15,
            sample_every,
            task_spin_ns: 500,
            deadline: None,
        };
        let paced = service_latency(&cfg);
        let mut stats = RunStats::new();
        for latency in &paced.latencies {
            stats.record(*latency);
        }
        let secs = TimingSummary::from_stats(&stats);
        // Nearest-rank p99 over the sampled latencies (TimingSummary stops
        // at p95; tail latency is this family's whole point).
        let p99_s = {
            let mut sorted: Vec<f64> = secs.samples_s.clone();
            sorted.sort_by(f64::total_cmp);
            if sorted.is_empty() {
                0.0
            } else {
                sorted[((sorted.len() as f64 * 0.99).ceil() as usize).max(1) - 1]
            }
        };
        let fairness = paced.fairness_ratios(&weights);
        let mut extra = vec![
            (
                "arrival_rate_hz".into(),
                JsonValue::Number(arrival_rate_hz as f64),
            ),
            ("offered".into(), JsonValue::Number(paced.offered() as f64)),
            ("admitted".into(), JsonValue::Number(paced.admitted() as f64)),
            (
                "backpressure_count".into(),
                JsonValue::Number(paced.backpressure() as f64),
            ),
            ("shed_count".into(), JsonValue::Number(paced.shed() as f64)),
            ("p99_s".into(), JsonValue::Number(p99_s)),
        ];
        for (i, ratio) in fairness.iter().enumerate() {
            extra.push((format!("fairness_tenant_{i}"), JsonValue::Number(*ratio)));
        }
        eprintln!(
            "service | {arrival_rate_hz:>6} Hz | p = {threads:>2} | p50 {:>8.1} us | p95 {:>8.1} us | p99 {:>8.1} us | shed {} bp {}",
            secs.median_s * 1e6,
            secs.p95_s * 1e6,
            p99_s * 1e6,
            paced.shed(),
            paced.backpressure(),
        );
        records.push(RunRecord {
            group: "service_latency".into(),
            name: "service_latency_paced".into(),
            distribution: None,
            size: arrival_rate_hz as usize,
            threads,
            warmups: 0,
            repetitions: paced.latencies.len(),
            secs,
            extra: Some(JsonValue::Object(extra)),
            metrics: paced.metrics,
            seq_reference_s: None,
            speedup_vs_seq: None,
        });

        let mut sat_cfg = cfg.clone();
        sat_cfg.duration = paced_duration / 2;
        let sat = saturation(&sat_cfg);
        let throughput = sat.tasks_per_sec();
        eprintln!(
            "satsvc  | p = {threads:>2} | {:>12.0} tasks/s ceiling ({} completed)",
            throughput, sat.completed
        );
        let mut stats = RunStats::new();
        stats.record(sat.elapsed);
        records.push(RunRecord {
            group: "service_latency".into(),
            name: "service_saturation".into(),
            distribution: None,
            size: sat.completed as usize,
            threads,
            warmups: 0,
            repetitions: 1,
            secs: TimingSummary::from_stats(&stats),
            extra: Some(JsonValue::Object(vec![(
                "saturation_tasks_per_sec".into(),
                JsonValue::Number(throughput),
            )])),
            metrics: sat.metrics,
            seq_reference_s: None,
            speedup_vs_seq: None,
        });

        records.push(overload_2x_record(&cfg, paced_duration, threads));
    }
    records
}

/// Measures the `service_overload_2x` cell described in [`sweep_service`]'s
/// docs and packages it as one record whose samples are the overload run's
/// sampled latencies.
fn overload_2x_record(
    base_cfg: &teamsteal_service::loadgen::LoadgenConfig,
    paced_duration: Duration,
    threads: usize,
) -> RunRecord {
    use teamsteal_service::loadgen::{saturation, service_latency};
    let deadline = Duration::from_millis(20);
    // Heavier tasks (20 µs of work) pull the ceiling low enough that the
    // open-loop submitters can genuinely offer twice it; an effectively
    // unbounded admission budget and high-water mark take shedding and
    // backpressure out of the picture, leaving expiry as the only defense.
    let mut over_cfg = base_cfg.clone();
    over_cfg.task_spin_ns = 20_000;
    over_cfg.refill_rate = u64::MAX / (1 << 24);
    over_cfg.burst = 1 << 20;
    over_cfg.high_water = 1 << 22;
    over_cfg.duration = paced_duration;

    let mut probe_cfg = over_cfg.clone();
    probe_cfg.duration = paced_duration / 2;
    let ceiling = saturation(&probe_cfg).tasks_per_sec();
    let sat_rate = (ceiling as u64).max(1_000);
    let sample_for = |rate: u64| {
        let offered = rate as f64 * paced_duration.as_secs_f64();
        ((offered / 512.0) as usize).max(1)
    };

    // At-saturation goodput reference, with the same deadline.
    over_cfg.deadline = Some(deadline);
    over_cfg.arrival_rate_hz = sat_rate;
    over_cfg.sample_every = sample_for(sat_rate);
    let at_sat = service_latency(&over_cfg);
    let goodput_sat = at_sat.goodput_per_sec().unwrap_or(0.0);

    // 2× overload with deadlines: the record under test.
    let mut cfg_2x = over_cfg.clone();
    cfg_2x.arrival_rate_hz = sat_rate * 2;
    cfg_2x.sample_every = sample_for(sat_rate * 2);
    let over = service_latency(&cfg_2x);
    let goodput_2x = over.goodput_per_sec().unwrap_or(0.0);

    // The same 2× offered load *without* deadlines: raw completion
    // throughput holds (every admitted task eventually runs), but timely
    // completions collapse.  Estimated from the unbiased latency samples:
    // (fraction of samples within the deadline) × completions per second.
    let mut raw_cfg = cfg_2x.clone();
    raw_cfg.deadline = None;
    let raw = service_latency(&raw_cfg);
    let raw_completed: u64 = raw.per_tenant.iter().map(|(_, s)| s.completed).sum();
    let raw_tasks_per_sec = raw_completed as f64 / raw.elapsed.as_secs_f64().max(1e-9);
    let timely_fraction = if raw.latencies.is_empty() {
        0.0
    } else {
        raw.latencies.iter().filter(|l| **l <= deadline).count() as f64
            / raw.latencies.len() as f64
    };
    let raw_timely_per_sec = raw_tasks_per_sec * timely_fraction;

    let mut stats = RunStats::new();
    for latency in &over.latencies {
        stats.record(*latency);
    }
    eprintln!(
        "overload| p = {threads:>2} | sat {:>8.0}/s | goodput@1x {:>8.0}/s | goodput@2x {:>8.0}/s | expired {} | no-deadline timely {:>8.0}/s",
        ceiling,
        goodput_sat,
        goodput_2x,
        over.metrics.tasks_expired,
        raw_timely_per_sec,
    );
    RunRecord {
        group: "service_latency".into(),
        name: "service_overload_2x".into(),
        distribution: None,
        size: (sat_rate * 2) as usize,
        threads,
        warmups: 0,
        repetitions: over.latencies.len(),
        secs: TimingSummary::from_stats(&stats),
        extra: Some(JsonValue::Object(vec![
            ("deadline_ms".into(), JsonValue::Number(20.0)),
            ("saturation_tasks_per_sec".into(), JsonValue::Number(ceiling)),
            ("offered".into(), JsonValue::Number(over.offered() as f64)),
            ("admitted".into(), JsonValue::Number(over.admitted() as f64)),
            (
                "goodput_at_saturation_per_sec".into(),
                JsonValue::Number(goodput_sat),
            ),
            ("goodput_per_sec".into(), JsonValue::Number(goodput_2x)),
            (
                "deadline_miss_rate".into(),
                JsonValue::Number(over.deadline_miss_rate().unwrap_or(0.0)),
            ),
            (
                "tasks_expired".into(),
                JsonValue::Number(over.metrics.tasks_expired as f64),
            ),
            (
                "no_deadline_tasks_per_sec".into(),
                JsonValue::Number(raw_tasks_per_sec),
            ),
            (
                "no_deadline_timely_per_sec".into(),
                JsonValue::Number(raw_timely_per_sec),
            ),
        ])),
        metrics: over.metrics,
        seq_reference_s: None,
        speedup_vs_seq: None,
    }
}

/// Re-measures the checked variant (MMPar) at the baseline's recorded
/// (distribution, size, threads) cells, so `--smoke --check` compares
/// like-for-like medians instead of smoke-sized ones.  Repetitions and
/// warmups stay at the (smoke) values of the current run.
fn check_pass_report(baseline: &Report, opts: &Options) -> Result<Report, String> {
    let seed = baseline
        .params
        .get("seed")
        .and_then(JsonValue::as_f64)
        .map(|s| s as u64)
        .unwrap_or(opts.seed);
    let mmpar = Variant::MmPar.label();
    // Distinct cells of the baseline, preserving its sweep order.
    let mut cells: Vec<(String, usize, usize)> = Vec::new();
    for record in baseline.records.iter().filter(|r| r.name == mmpar) {
        let cell = (
            record.distribution.clone().unwrap_or_default(),
            record.size,
            record.threads,
        );
        if !cells.contains(&cell) {
            cells.push(cell);
        }
    }
    if cells.is_empty() {
        return Err("baseline contains no MMPar records to check against".into());
    }
    let config = SortConfig::default();
    let mut records = Vec::new();
    // One input per (distribution, size); one runner per thread count.
    let mut inputs: HashMap<(String, usize), Vec<u32>> = HashMap::new();
    let mut runners: HashMap<usize, VariantRunner> = HashMap::new();
    for (dist_label, size, threads) in cells {
        let distribution = Distribution::ALL
            .into_iter()
            .find(|d| d.label() == dist_label)
            .ok_or_else(|| format!("baseline has unknown distribution `{dist_label}`"))?;
        let input = inputs
            .entry((dist_label.clone(), size))
            .or_insert_with(|| distribution.generate(size, 8, seed));
        let runner = runners
            .entry(threads)
            .or_insert_with(|| VariantRunner::new(threads, config.clone()));
        let sized_opts = Options {
            smoke: opts.smoke,
            size,
            threads: opts.threads.clone(),
            reps: opts.reps,
            warmups: opts.warmups,
            seed,
            out_dir: opts.out_dir.clone(),
            check: None,
            tolerance_pct: opts.tolerance_pct,
            sweeps: opts.sweeps,
        };
        let (stats, metrics) =
            sort_cell(runner, Variant::MmPar, distribution, input, &sized_opts, threads);
        records.push(sort_record(
            Variant::MmPar,
            distribution,
            &sized_opts,
            threads,
            &stats,
            metrics,
            None,
        ));
    }
    Ok(new_report(opts, "sort", records))
}

fn write_report(path: &Path, report: &Report) -> Result<(), String> {
    std::fs::write(path, report.to_json_string())
        .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
    println!(
        "wrote {} ({} records)",
        path.display(),
        report.records.len()
    );
    Ok(())
}

fn run() -> Result<i32, String> {
    let opts = parse_args()?;
    if opts.check.is_some() && !opts.sweeps.sort && !opts.smoke {
        return Err("--check needs the sort sweep; drop `--only` families excluding it".into());
    }
    std::fs::create_dir_all(&opts.out_dir)
        .map_err(|e| format!("cannot create {}: {e}", opts.out_dir.display()))?;

    // Read and parse the baseline BEFORE any sweep writes its output: with
    // the default --out-dir the baseline path and the fresh report path are
    // the same file, and reading it afterwards would compare the fresh
    // report against itself (a vacuously green gate).
    let baseline = match &opts.check {
        Some(baseline_path) => {
            let text = std::fs::read_to_string(baseline_path)
                .map_err(|e| format!("cannot read baseline {}: {e}", baseline_path.display()))?;
            let report = Report::from_json_str(&text)
                .map_err(|e| format!("baseline {} is invalid: {e}", baseline_path.display()))?;
            if report.group != "sort" {
                return Err(format!(
                    "baseline {} is a `{}` report; --check compares sort reports (BENCH_sort.json)",
                    baseline_path.display(),
                    report.group
                ));
            }
            if report.schema_version != SCHEMA_VERSION {
                return Err(format!(
                    "baseline {} has schema version {}, this harness writes {SCHEMA_VERSION}",
                    baseline_path.display(),
                    report.schema_version
                ));
            }
            Some((baseline_path.clone(), report))
        }
        None => None,
    };

    eprintln!(
        "perf harness — size {}, threads {:?}, {} reps after {} warmups, seed {}{}",
        opts.size,
        opts.threads,
        opts.reps,
        opts.warmups,
        opts.seed,
        if opts.smoke { " (smoke)" } else { "" }
    );

    let sort_path = opts.out_dir.join("BENCH_sort.json");
    let sort_report = if opts.sweeps.sort {
        let report = sweep_sorts(&opts);
        write_report(&sort_path, &report)?;
        Some(report)
    } else {
        None
    };

    if opts.sweeps.any_kernel_report_family() {
        let kernels_path = opts.out_dir.join("BENCH_kernels.json");
        // A partial run (`--only kernel`, `--only soak`, …) must not clobber
        // the skipped families' records in an existing report at the
        // destination: carry them over instead.
        let preserved: Vec<RunRecord> = if opts.sweeps.all_kernel_report_families() {
            Vec::new()
        } else {
            std::fs::read_to_string(&kernels_path)
                .ok()
                .and_then(|text| Report::from_json_str(&text).ok())
                .map(|existing| {
                    existing
                        .records
                        .into_iter()
                        .filter(|r| {
                            (r.group == "kernel" && !opts.sweeps.kernel)
                                || (r.group == "micro" && !opts.sweeps.micro)
                                || (r.group == "injection_throughput"
                                    && !opts.sweeps.injection)
                                || (r.group == "soak" && !opts.sweeps.soak)
                                || (r.group == "wakeup_latency" && !opts.sweeps.wakeup_latency)
                                || (r.group == "idle_burn" && !opts.sweeps.idle_burn)
                                || (r.group == "team_build" && !opts.sweeps.team_build)
                                || (r.group == "service_latency" && !opts.sweeps.service)
                        })
                        .collect()
                })
                .unwrap_or_default()
        };
        // Stable record order: kernel, micro, injection_throughput, soak,
        // wakeup_latency, idle_burn, team_build, service_latency.
        let mut records: Vec<RunRecord> = Vec::new();
        let family = |enabled: bool,
                          group: &str,
                          records: &mut Vec<RunRecord>,
                          sweep: &mut dyn FnMut() -> Vec<RunRecord>| {
            if enabled {
                records.extend(sweep());
            } else {
                records.extend(preserved.iter().filter(|r| r.group == group).cloned());
            }
        };
        family(opts.sweeps.kernel, "kernel", &mut records, &mut || {
            sweep_kernels(&opts).records
        });
        family(opts.sweeps.micro, "micro", &mut records, &mut || {
            sweep_micro(&opts)
        });
        family(
            opts.sweeps.injection,
            "injection_throughput",
            &mut records,
            &mut || sweep_injection(&opts),
        );
        family(opts.sweeps.soak, "soak", &mut records, &mut || {
            sweep_soak(&opts)
        });
        family(
            opts.sweeps.wakeup_latency,
            "wakeup_latency",
            &mut records,
            &mut || sweep_wakeup_latency(&opts),
        );
        family(opts.sweeps.idle_burn, "idle_burn", &mut records, &mut || {
            sweep_idle_burn(&opts)
        });
        family(opts.sweeps.team_build, "team_build", &mut records, &mut || {
            sweep_team_build(&opts)
        });
        family(
            opts.sweeps.service,
            "service_latency",
            &mut records,
            &mut || sweep_service(&opts),
        );
        let kernel_report = new_report(&opts, "kernel", records);
        write_report(&kernels_path, &kernel_report)?;
    }

    if let Some((baseline_path, baseline)) = baseline {
        // Under --smoke the fresh sort report used tiny inputs, so its
        // medians are incomparable to the baseline: run a dedicated MMPar
        // pass at the baseline's recorded parameters instead.
        let current = if opts.smoke {
            check_pass_report(&baseline, &opts)?
        } else {
            sort_report.expect("--check without --smoke requires the sort sweep")
        };
        let outcome =
            check_regressions(&baseline, &current, Variant::MmPar.label(), opts.tolerance_pct);
        for missing in &outcome.missing_baseline {
            eprintln!("check: no baseline record for {missing}");
        }
        if baseline_path
            .canonicalize()
            .ok()
            .zip(sort_path.canonicalize().ok())
            .is_some_and(|(b, s)| b == s)
        {
            eprintln!(
                "note: {} was overwritten with the fresh report (comparison used the previous contents)",
                baseline_path.display()
            );
        }
        if outcome.compared == 0 {
            // A gate that compared nothing protects nothing: parameter
            // mismatches (size/threads/seed) must be loud, not green.
            eprintln!(
                "check: FAILED — no scenario of the current run matches the baseline {} \
                 (size/threads must match the recorded parameters)",
                baseline_path.display()
            );
            return Ok(1);
        }
        if outcome.passed() {
            println!(
                "check: OK — {} MMPar scenario(s) within +{:.1}% of {}",
                outcome.compared,
                opts.tolerance_pct,
                baseline_path.display()
            );
        } else {
            eprintln!(
                "check: FAILED — {} regression(s) vs {}:",
                outcome.regressions.len(),
                baseline_path.display()
            );
            for regression in &outcome.regressions {
                eprintln!("  {regression}");
            }
            return Ok(1);
        }
    }
    Ok(0)
}

fn main() {
    match run() {
        Ok(code) => std::process::exit(code),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    }
}
