//! Regenerates the paper's Tables 1–10 (and the steal-policy ablation).
//!
//! ```text
//! cargo run -p teamsteal-bench --release --bin tables -- [options]
//!
//!   --table N        regenerate paper table N (1..=10); may be repeated
//!   --all            regenerate all ten tables
//!   --scale S        input sizes: ci (default), medium, paper
//!   --reps N         repetitions per cell (default 10, like the paper)
//!   --threads N      override the table's thread count (e.g. to match the host)
//!   --seed N         input generation seed (default 42)
//!   --paper-config   use the paper's sort parameters (block 4096, 128 blocks/thread)
//!   --ablation steal-policy
//!                    run the deterministic vs randomized vs uniform ablation
//!   --quiet          suppress per-cell progress lines
//! ```
//!
//! With no arguments, Table 1 is regenerated at CI scale with 3 repetitions
//! (a quick smoke run); `EXPERIMENTS.md` records the full invocations used
//! for the reported numbers.

use std::time::Duration;

use teamsteal_bench::{render_table, run_table, TableSpec, Variant, VariantRunner};
use teamsteal_data::{Distribution, Scale};
use teamsteal_sort::SortConfig;
use teamsteal_util::timing::{speedup, RunStats};

struct Options {
    tables: Vec<u8>,
    scale: Scale,
    reps: usize,
    threads_override: Option<usize>,
    seed: u64,
    paper_config: bool,
    ablation: Option<String>,
    quiet: bool,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        tables: Vec::new(),
        scale: Scale::Ci,
        reps: 0,
        threads_override: None,
        seed: 42,
        paper_config: false,
        ablation: None,
        quiet: false,
    };
    let mut args = std::env::args().skip(1);
    let mut explicit_reps = false;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--table" => {
                let n: u8 = args
                    .next()
                    .ok_or("--table needs a number")?
                    .parse()
                    .map_err(|e| format!("bad table number: {e}"))?;
                if !(1..=10).contains(&n) {
                    return Err(format!("table {n} does not exist (1..=10)"));
                }
                opts.tables.push(n);
            }
            "--all" => opts.tables = (1..=10).collect(),
            "--scale" => {
                let s = args.next().ok_or("--scale needs a value")?;
                opts.scale = Scale::parse(&s).ok_or(format!("unknown scale '{s}'"))?;
            }
            "--reps" => {
                opts.reps = args
                    .next()
                    .ok_or("--reps needs a number")?
                    .parse()
                    .map_err(|e| format!("bad repetition count: {e}"))?;
                explicit_reps = true;
            }
            "--threads" => {
                opts.threads_override = Some(
                    args.next()
                        .ok_or("--threads needs a number")?
                        .parse()
                        .map_err(|e| format!("bad thread count: {e}"))?,
                );
            }
            "--seed" => {
                opts.seed = args
                    .next()
                    .ok_or("--seed needs a number")?
                    .parse()
                    .map_err(|e| format!("bad seed: {e}"))?;
            }
            "--paper-config" => opts.paper_config = true,
            "--ablation" => {
                opts.ablation = Some(args.next().ok_or("--ablation needs a name")?);
            }
            "--quiet" => opts.quiet = true,
            "--help" | "-h" => {
                println!("{HELP}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument '{other}' (try --help)")),
        }
    }
    if opts.tables.is_empty() && opts.ablation.is_none() {
        opts.tables.push(1);
        if !explicit_reps {
            opts.reps = 3; // quick smoke run
        }
    }
    if opts.reps == 0 {
        opts.reps = 10; // the paper's repetition count
    }
    Ok(opts)
}

const HELP: &str = "Regenerate the paper's tables.  See the module docs / EXPERIMENTS.md.
  --table N | --all     which tables (default: table 1, 3 reps)
  --scale ci|medium|paper
  --reps N              repetitions per cell (default 10)
  --threads N           override the table's thread count
  --seed N              input seed (default 42)
  --paper-config        paper sort parameters instead of scaled defaults
  --ablation steal-policy
  --quiet               no per-cell progress";

fn main() {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    let config = if opts.paper_config {
        SortConfig::paper()
    } else {
        SortConfig::default()
    };
    println!(
        "teamsteal table harness — host parallelism: {}, scale {:?}, {} repetitions, sort config {:?}",
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
        opts.scale,
        opts.reps,
        config
    );
    println!();

    if let Some(ablation) = &opts.ablation {
        match ablation.as_str() {
            "steal-policy" => run_steal_policy_ablation(&opts, &config),
            other => {
                eprintln!("unknown ablation '{other}' (available: steal-policy)");
                std::process::exit(2);
            }
        }
        return;
    }

    for number in &opts.tables {
        let mut spec = TableSpec::by_number(*number).expect("validated table number");
        if let Some(threads) = opts.threads_override {
            spec.threads = threads;
        }
        let result = run_table(&spec, opts.scale, opts.reps, &config, opts.seed, |line| {
            if !opts.quiet {
                eprintln!("  {line}");
            }
        });
        println!("{}", render_table(&result));
        println!();
    }
}

/// Ablation A1 (DESIGN.md): deterministic vs. randomized-within-level vs.
/// uniformly random stealing, for the fork-join and the mixed-mode Quicksort.
fn run_steal_policy_ablation(opts: &Options, config: &SortConfig) {
    use teamsteal_core::{Scheduler, StealPolicy};
    use teamsteal_sort::{fork_join_sort, mixed_mode_sort, std_sort};
    use teamsteal_util::timing::time;

    let threads = opts.threads_override.unwrap_or(8);
    let size = opts.scale.sizes()[2];
    println!(
        "Ablation: steal policy — {threads} threads, n = {size}, {} reps",
        opts.reps
    );
    println!(
        "{:<10} {:<26} {:>11} {:>6}",
        "Type", "Configuration", "seconds", "SU"
    );

    for distribution in Distribution::ALL {
        let input = distribution.generate(size, threads, opts.seed);
        // Sequential reference for the speedup column.
        let mut seq_stats = RunStats::new();
        for _ in 0..opts.reps {
            let mut copy = input.clone();
            let (d, ()) = time(|| std_sort(&mut copy));
            seq_stats.record(d);
        }
        let seq = seq_stats.average();
        let report = |label: &str, duration: Duration| {
            println!(
                "{:<10} {:<26} {:>11.3} {:>6.1}",
                distribution.label(),
                label,
                duration.as_secs_f64(),
                speedup(seq, duration)
            );
        };
        report("sequential (STL)", seq);

        let configs: [(&str, StealPolicy, bool); 5] = [
            ("fork / deterministic", StealPolicy::Deterministic, false),
            ("fork / rand-within-level", StealPolicy::RandomizedWithinLevel, false),
            ("fork / uniform-random", StealPolicy::UniformRandom, false),
            ("mmpar / deterministic", StealPolicy::Deterministic, true),
            ("mmpar / rand-within-level", StealPolicy::RandomizedWithinLevel, true),
        ];
        for (label, policy, mixed) in configs {
            let scheduler = Scheduler::builder()
                .threads(threads)
                .steal_policy(policy)
                .build();
            let mut stats = RunStats::new();
            for _ in 0..opts.reps {
                let mut copy = input.clone();
                let (d, ()) = time(|| {
                    if mixed {
                        mixed_mode_sort(&scheduler, &mut copy, config)
                    } else {
                        fork_join_sort(&scheduler, &mut copy, config)
                    }
                });
                assert!(teamsteal_data::is_sorted(&copy));
                stats.record(d);
            }
            report(label, stats.average());
        }
        println!();
    }
    // Touch the library types so the harness and the ablation stay in sync.
    let _ = VariantRunner::new(1, config.clone());
    let _ = Variant::MmPar;
}
