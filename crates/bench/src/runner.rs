//! Variant runners: one timed sort execution per (variant, input).

use std::time::Duration;

use teamsteal_core::{MetricsSnapshot, Scheduler, StealPolicy};
use teamsteal_sort::{fork_join_sort, mixed_mode_sort, sequential_quicksort, std_sort, SortConfig};
use teamsteal_util::timing::time;

#[cfg(feature = "cilk-substitute")]
use crate::cilk_substitute::{rayon_join_quicksort, rayon_par_sort, rayon_pool};

/// The sorting variants of the paper's tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Variant {
    /// The best available sequential sort (paper: *Seq/STL*).
    SeqStd,
    /// Handwritten sequential Quicksort with cutoff (paper: *SeqQS*).
    SeqQs,
    /// Task-parallel Quicksort on the deterministic work-stealer (paper:
    /// *Fork*).
    Fork,
    /// Task-parallel Quicksort with uniformly random victim selection
    /// (paper: *Randfork*).
    RandFork,
    /// Fork-join Quicksort on rayon — the Cilk++ substitute (paper: *Cilk*).
    RayonJoin,
    /// Rayon's built-in parallel sort (paper: *Cilk sample*).
    RayonSort,
    /// Mixed-mode parallel Quicksort on the team-building work-stealer
    /// (paper: *MMPar*).
    MmPar,
}

impl Variant {
    /// Column header used when rendering tables.
    pub fn label(&self) -> &'static str {
        match self {
            Variant::SeqStd => "Seq/STL",
            Variant::SeqQs => "SeqQS",
            Variant::Fork => "Fork",
            Variant::RandFork => "Randfork",
            Variant::RayonJoin => "Rayon(Cilk)",
            Variant::RayonSort => "RayonSort",
            Variant::MmPar => "MMPar",
        }
    }

    /// `true` for the variants whose speedup the paper reports in an `SU`
    /// column (Fork, Cilk and MMPar).
    pub fn has_speedup_column(&self) -> bool {
        matches!(self, Variant::Fork | Variant::RayonJoin | Variant::MmPar)
    }
}

/// One timed run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Measurement {
    /// Which variant produced it.
    pub variant: Variant,
    /// Wall-clock duration of the sort (input generation excluded).
    pub duration: Duration,
    /// Scheduler-counter delta attributable to this run (steals, teams
    /// built, registrations, …).  Zero for variants that do not execute on a
    /// `teamsteal` scheduler (Seq/STL, SeqQS and the rayon baselines).
    pub metrics: MetricsSnapshot,
}

/// Holds the lazily created execution engines (schedulers, rayon pools) so
/// repeated measurements of one table reuse the same worker threads, as the
/// paper's prototype does.
pub struct VariantRunner {
    threads: usize,
    config: SortConfig,
    det: Option<Scheduler>,
    rand: Option<Scheduler>,
    team: Option<Scheduler>,
    #[cfg(feature = "cilk-substitute")]
    rayon: Option<rayon::ThreadPool>,
}

impl VariantRunner {
    /// Creates a runner for `threads` worker threads and the given sort
    /// parameters.
    pub fn new(threads: usize, config: SortConfig) -> Self {
        VariantRunner {
            threads,
            config,
            det: None,
            rand: None,
            team: None,
            #[cfg(feature = "cilk-substitute")]
            rayon: None,
        }
    }

    /// Number of worker threads this runner targets.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The sort configuration in use.
    pub fn config(&self) -> &SortConfig {
        &self.config
    }

    fn det_scheduler(&mut self) -> &Scheduler {
        let threads = self.threads;
        self.det.get_or_insert_with(|| {
            Scheduler::builder()
                .threads(threads)
                .steal_policy(StealPolicy::Deterministic)
                .build()
        })
    }

    fn rand_scheduler(&mut self) -> &Scheduler {
        let threads = self.threads;
        self.rand.get_or_insert_with(|| {
            Scheduler::builder()
                .threads(threads)
                .steal_policy(StealPolicy::UniformRandom)
                .build()
        })
    }

    fn team_scheduler(&mut self) -> &Scheduler {
        let threads = self.threads;
        self.team.get_or_insert_with(|| {
            Scheduler::builder()
                .threads(threads)
                .steal_policy(StealPolicy::Deterministic)
                .build()
        })
    }

    #[cfg(feature = "cilk-substitute")]
    fn rayon_pool(&mut self) -> &rayon::ThreadPool {
        let threads = self.threads;
        self.rayon.get_or_insert_with(|| rayon_pool(threads))
    }

    /// Sorts a copy of `input` with `variant` and returns the measurement,
    /// including the scheduler-counter delta the run caused.  The sorted
    /// output is validated (cheap sortedness check) so a broken variant can
    /// never silently report a good time.
    pub fn measure(&mut self, variant: Variant, input: &[u32]) -> Measurement {
        let mut data = input.to_vec();
        let config = self.config.clone();
        // Times `f` on `scheduler` and attributes the counter delta to it.
        fn timed_on(
            scheduler: &Scheduler,
            f: impl FnOnce(&Scheduler),
        ) -> (Duration, MetricsSnapshot) {
            let before = scheduler.metrics();
            let (duration, ()) = time(|| f(scheduler));
            (duration, scheduler.metrics().delta_since(&before))
        }
        let (duration, metrics) = match variant {
            Variant::SeqStd => (time(|| std_sort(&mut data)).0, MetricsSnapshot::default()),
            Variant::SeqQs => (
                time(|| sequential_quicksort(&mut data, &config)).0,
                MetricsSnapshot::default(),
            ),
            Variant::Fork => timed_on(self.det_scheduler(), |s| {
                fork_join_sort(s, &mut data, &config)
            }),
            Variant::RandFork => timed_on(self.rand_scheduler(), |s| {
                fork_join_sort(s, &mut data, &config)
            }),
            #[cfg(feature = "cilk-substitute")]
            Variant::RayonJoin => {
                let pool = self.rayon_pool();
                (
                    time(|| rayon_join_quicksort(pool, &mut data, &config)).0,
                    MetricsSnapshot::default(),
                )
            }
            #[cfg(feature = "cilk-substitute")]
            Variant::RayonSort => {
                let pool = self.rayon_pool();
                (
                    time(|| rayon_par_sort(pool, &mut data)).0,
                    MetricsSnapshot::default(),
                )
            }
            #[cfg(not(feature = "cilk-substitute"))]
            Variant::RayonJoin | Variant::RayonSort => panic!(
                "{} requires the `cilk-substitute` feature of teamsteal-bench",
                variant.label()
            ),
            Variant::MmPar => timed_on(self.team_scheduler(), |s| {
                mixed_mode_sort(s, &mut data, &config)
            }),
        };
        assert!(
            teamsteal_data::is_sorted(&data),
            "{} produced an unsorted result",
            variant.label()
        );
        Measurement {
            variant,
            duration,
            metrics,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use teamsteal_data::Distribution;

    #[test]
    fn labels_are_distinct() {
        let variants = [
            Variant::SeqStd,
            Variant::SeqQs,
            Variant::Fork,
            Variant::RandFork,
            Variant::RayonJoin,
            Variant::RayonSort,
            Variant::MmPar,
        ];
        let mut labels: Vec<&str> = variants.iter().map(|v| v.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), variants.len());
        assert!(Variant::MmPar.has_speedup_column());
        assert!(!Variant::SeqQs.has_speedup_column());
    }

    #[test]
    fn every_variant_measures_and_sorts() {
        let input = Distribution::Random.generate(40_000, 4, 33);
        let config = SortConfig {
            cutoff: 256,
            block_size: 512,
            min_blocks_per_thread: 4,
        };
        let mut runner = VariantRunner::new(2, config);
        let mut variants = vec![
            Variant::SeqStd,
            Variant::SeqQs,
            Variant::Fork,
            Variant::RandFork,
            Variant::MmPar,
        ];
        if cfg!(feature = "cilk-substitute") {
            variants.extend([Variant::RayonJoin, Variant::RayonSort]);
        }
        for variant in variants {
            let m = runner.measure(variant, &input);
            assert!(m.duration > Duration::ZERO);
            assert_eq!(m.variant, variant);
        }
    }

    #[test]
    fn scheduler_variants_report_metrics_and_sequential_ones_do_not() {
        let input = Distribution::Random.generate(60_000, 4, 7);
        let config = SortConfig {
            cutoff: 256,
            block_size: 512,
            min_blocks_per_thread: 2,
        };
        let mut runner = VariantRunner::new(2, config);
        let seq = runner.measure(Variant::SeqQs, &input);
        assert_eq!(seq.metrics, teamsteal_core::MetricsSnapshot::default());
        let fork = runner.measure(Variant::Fork, &input);
        assert!(
            fork.metrics.tasks_executed > 0,
            "fork-join sort must execute r = 1 tasks"
        );
        let mm = runner.measure(Variant::MmPar, &input);
        assert!(
            mm.metrics.teams_formed > 0,
            "mixed-mode sort at this size must build at least one team"
        );
        // A second measurement reuses the scheduler but the delta is still
        // attributed per run, not cumulatively.  Cumulative attribution
        // would make the second run report ~2x the first run's executions
        // (same input, same work), so a 1.5x bound detects it while leaving
        // headroom for scheduling variance in the per-run counts.
        let mm2 = runner.measure(Variant::MmPar, &input);
        assert!(
            mm2.metrics.total_executions() * 2 < mm.metrics.total_executions() * 3,
            "second run reported {} executions vs {} on the first — delta looks cumulative",
            mm2.metrics.total_executions(),
            mm.metrics.total_executions()
        );
    }
}
