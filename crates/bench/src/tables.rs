//! Table specifications and the sweep that regenerates Tables 1–10.

use std::time::Duration;

use teamsteal_data::{Distribution, Scale};
use teamsteal_sort::SortConfig;
use teamsteal_util::timing::{speedup, RunStats};

use crate::runner::{Variant, VariantRunner};

/// How repeated measurements are aggregated into the reported number.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Aggregation {
    /// Average over the repetitions (the paper's "Average running times").
    Average,
    /// Best (minimum) over the repetitions (the paper's "Best ... running
    /// time").
    Best,
}

impl Aggregation {
    fn pick(&self, stats: &RunStats) -> Duration {
        match self {
            Aggregation::Average => stats.average(),
            Aggregation::Best => stats.best(),
        }
    }
}

/// Description of one of the paper's tables.
#[derive(Debug, Clone)]
pub struct TableSpec {
    /// Table number in the paper (1–10).
    pub number: u8,
    /// Short description of the machine the paper measured on.
    pub system: &'static str,
    /// Number of worker threads (the paper's hardware-thread count).
    pub threads: usize,
    /// Average or best-of-N.
    pub aggregation: Aggregation,
    /// Whether the table has the Cilk columns (the Solaris machines could not
    /// run Cilk++; we mirror the column layout).
    pub with_cilk: bool,
    /// Indices into [`Scale::sizes`] used by this table (the Opteron and Sun
    /// tables omit the 10⁹ row).
    pub size_indices: &'static [usize],
}

impl TableSpec {
    /// All ten tables of the paper.
    pub fn all() -> Vec<TableSpec> {
        let six: &'static [usize] = &[0, 1, 2, 3, 4, 5];
        let five: &'static [usize] = &[0, 1, 3, 4, 5];
        vec![
            TableSpec { number: 1, system: "8-core Intel Nehalem", threads: 8, aggregation: Aggregation::Average, with_cilk: true, size_indices: six },
            TableSpec { number: 2, system: "8-core Intel Nehalem", threads: 8, aggregation: Aggregation::Best, with_cilk: true, size_indices: six },
            TableSpec { number: 3, system: "16-core AMD Opteron", threads: 16, aggregation: Aggregation::Average, with_cilk: false, size_indices: five },
            TableSpec { number: 4, system: "16-core AMD Opteron", threads: 16, aggregation: Aggregation::Best, with_cilk: false, size_indices: five },
            TableSpec { number: 5, system: "32-core Intel Nehalem EX", threads: 32, aggregation: Aggregation::Average, with_cilk: true, size_indices: six },
            TableSpec { number: 6, system: "32-core Intel Nehalem EX", threads: 32, aggregation: Aggregation::Best, with_cilk: true, size_indices: six },
            TableSpec { number: 7, system: "16-core Sun T2+ (32 threads)", threads: 32, aggregation: Aggregation::Average, with_cilk: false, size_indices: five },
            TableSpec { number: 8, system: "16-core Sun T2+ (32 threads)", threads: 32, aggregation: Aggregation::Best, with_cilk: false, size_indices: five },
            TableSpec { number: 9, system: "16-core Sun T2+ (64 threads)", threads: 64, aggregation: Aggregation::Average, with_cilk: false, size_indices: five },
            TableSpec { number: 10, system: "16-core Sun T2+ (64 threads)", threads: 64, aggregation: Aggregation::Best, with_cilk: false, size_indices: five },
        ]
    }

    /// Looks up the spec for a paper table number.
    pub fn by_number(number: u8) -> Option<TableSpec> {
        Self::all().into_iter().find(|t| t.number == number)
    }

    /// The variants (columns) of this table, in the paper's order.
    pub fn variants(&self) -> Vec<Variant> {
        let mut v = vec![
            Variant::SeqStd,
            Variant::SeqQs,
            Variant::Fork,
            Variant::RandFork,
        ];
        if self.with_cilk && cfg!(feature = "cilk-substitute") {
            v.push(Variant::RayonJoin);
            v.push(Variant::RayonSort);
        }
        v.push(Variant::MmPar);
        v
    }
}

/// One row of a regenerated table.
#[derive(Debug, Clone)]
pub struct TableRow {
    /// Input distribution.
    pub distribution: Distribution,
    /// Input size in elements.
    pub size: usize,
    /// Aggregated duration per variant (same order as `TableResult::variants`).
    pub durations: Vec<Duration>,
}

/// A fully regenerated table.
#[derive(Debug, Clone)]
pub struct TableResult {
    /// The specification that produced it.
    pub spec: TableSpec,
    /// Input scale used.
    pub scale: Scale,
    /// Repetitions per cell.
    pub repetitions: usize,
    /// Column variants.
    pub variants: Vec<Variant>,
    /// Rows, grouped by distribution then size (the paper's layout).
    pub rows: Vec<TableRow>,
}

impl TableResult {
    /// Speedup of `variant` in `row` relative to the sequential reference
    /// (column Seq/STL), the way the paper's `SU` columns are computed.
    pub fn speedup(&self, row: &TableRow, variant: Variant) -> f64 {
        let seq_idx = self
            .variants
            .iter()
            .position(|&v| v == Variant::SeqStd)
            .expect("SeqStd column present");
        let idx = self
            .variants
            .iter()
            .position(|&v| v == variant)
            .expect("variant present");
        speedup(row.durations[seq_idx], row.durations[idx])
    }
}

/// Runs the sweep for one table: every distribution × size × variant,
/// `repetitions` times, aggregated per the spec.  `progress` is called after
/// every finished cell with a short status line (pass `|_| {}` to silence).
pub fn run_table(
    spec: &TableSpec,
    scale: Scale,
    repetitions: usize,
    config: &SortConfig,
    seed: u64,
    mut progress: impl FnMut(&str),
) -> TableResult {
    let variants = spec.variants();
    let sizes: Vec<usize> = {
        let all = scale.sizes();
        spec.size_indices.iter().map(|&i| all[i]).collect()
    };
    let mut runner = VariantRunner::new(spec.threads, config.clone());
    let mut rows = Vec::new();
    for distribution in Distribution::ALL {
        for &size in &sizes {
            let input = distribution.generate(size, spec.threads, seed ^ size as u64);
            let mut durations = Vec::with_capacity(variants.len());
            for &variant in &variants {
                let mut stats = RunStats::new();
                for _ in 0..repetitions.max(1) {
                    stats.record(runner.measure(variant, &input).duration);
                }
                progress(&format!(
                    "table {:>2} | {:<9} | n = {:>9} | {:<11} | {:>9.3?} ({} reps)",
                    spec.number,
                    distribution.label(),
                    size,
                    variant.label(),
                    spec.aggregation.pick(&stats),
                    stats.len()
                ));
                durations.push(spec.aggregation.pick(&stats));
            }
            rows.push(TableRow {
                distribution,
                size,
                durations,
            });
        }
    }
    TableResult {
        spec: spec.clone(),
        scale,
        repetitions,
        variants,
        rows,
    }
}

/// Renders a regenerated table in the paper's layout (times in seconds,
/// speedup columns after Fork, Cilk and MMPar).
pub fn render_table(result: &TableResult) -> String {
    let mut out = String::new();
    let agg = match result.spec.aggregation {
        Aggregation::Average => "average",
        Aggregation::Best => "best (minimum)",
    };
    out.push_str(&format!(
        "Table {} — Quicksort on the {} ({} threads), {} of {} runs, scale {:?}\n",
        result.spec.number,
        result.spec.system,
        result.spec.threads,
        agg,
        result.repetitions,
        result.scale
    ));
    // Header.
    out.push_str(&format!("{:<10} {:>10}", "Type", "Size"));
    for v in &result.variants {
        out.push_str(&format!(" {:>11}", v.label()));
        if v.has_speedup_column() {
            out.push_str(&format!(" {:>5}", "SU"));
        }
    }
    out.push('\n');
    let width = out.lines().last().map(|l| l.len()).unwrap_or(80);
    out.push_str(&"-".repeat(width));
    out.push('\n');
    // Rows.
    let mut last_distribution = None;
    for row in &result.rows {
        let label = if last_distribution != Some(row.distribution) {
            last_distribution = Some(row.distribution);
            row.distribution.label()
        } else {
            ""
        };
        out.push_str(&format!("{:<10} {:>10}", label, row.size));
        for (i, v) in result.variants.iter().enumerate() {
            out.push_str(&format!(" {:>11.3}", row.durations[i].as_secs_f64()));
            if v.has_speedup_column() {
                out.push_str(&format!(" {:>5.1}", result.speedup(row, *v)));
            }
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_ten_tables_are_specified() {
        let all = TableSpec::all();
        assert_eq!(all.len(), 10);
        for (i, spec) in all.iter().enumerate() {
            assert_eq!(spec.number as usize, i + 1);
        }
        // Thread counts follow the paper's machines.
        assert_eq!(TableSpec::by_number(1).unwrap().threads, 8);
        assert_eq!(TableSpec::by_number(3).unwrap().threads, 16);
        assert_eq!(TableSpec::by_number(5).unwrap().threads, 32);
        assert_eq!(TableSpec::by_number(9).unwrap().threads, 64);
        assert!(TableSpec::by_number(11).is_none());
        // Cilk columns only on the Intel machines.
        assert!(TableSpec::by_number(1).unwrap().with_cilk);
        assert!(!TableSpec::by_number(7).unwrap().with_cilk);
        // Odd tables are averages, even tables are best-of-N.
        for spec in &all {
            let expected = if spec.number % 2 == 1 {
                Aggregation::Average
            } else {
                Aggregation::Best
            };
            assert_eq!(spec.aggregation, expected, "table {}", spec.number);
        }
    }

    #[test]
    fn variant_order_matches_paper_columns() {
        let with_cilk = TableSpec::by_number(1).unwrap().variants();
        let mut expected = vec![
            Variant::SeqStd,
            Variant::SeqQs,
            Variant::Fork,
            Variant::RandFork,
        ];
        if cfg!(feature = "cilk-substitute") {
            expected.extend([Variant::RayonJoin, Variant::RayonSort]);
        }
        expected.push(Variant::MmPar);
        assert_eq!(with_cilk, expected);
        let without = TableSpec::by_number(3).unwrap().variants();
        assert!(!without.contains(&Variant::RayonJoin));
        assert_eq!(*without.last().unwrap(), Variant::MmPar);
    }

    #[test]
    fn tiny_table_runs_and_renders() {
        // A miniature sweep (2 threads, 1 repetition, tiny inputs) exercising
        // the full pipeline end to end.
        let spec = TableSpec {
            number: 1,
            system: "test",
            threads: 2,
            aggregation: Aggregation::Best,
            with_cilk: true,
            size_indices: &[0],
        };
        let config = SortConfig {
            cutoff: 256,
            block_size: 256,
            min_blocks_per_thread: 2,
        };
        let result = run_table(&spec, Scale::Ci, 1, &config, 7, |_| {});
        assert_eq!(result.rows.len(), 4, "one row per distribution");
        for row in &result.rows {
            assert_eq!(row.durations.len(), result.variants.len());
            let su = result.speedup(row, Variant::MmPar);
            assert!(su > 0.0);
        }
        let rendered = render_table(&result);
        assert!(rendered.contains("Table 1"));
        assert!(rendered.contains("MMPar"));
        assert!(rendered.contains("Random"));
        assert!(rendered.contains("Staggered"));
        // Header + separator + 4 rows.
        assert_eq!(rendered.lines().count(), 2 + 1 + 4);
    }
}
