//! Benchmark harness reproducing the paper's evaluation (Tables 1–10).
//!
//! The paper compares, for four input distributions and six input sizes on
//! four machines, the running time of
//!
//! | paper column | this crate |
//! |---|---|
//! | Seq/STL | [`Variant::SeqStd`] — `slice::sort_unstable` |
//! | SeqQS | [`Variant::SeqQs`] — handwritten sequential Quicksort |
//! | Fork | [`Variant::Fork`] — Algorithm 10 on the deterministic work-stealer |
//! | Randfork | [`Variant::RandFork`] — Algorithm 10 with uniformly random stealing |
//! | Cilk | [`Variant::RayonJoin`] — the same fork-join Quicksort on rayon (Cilk++ substitute) |
//! | Cilk sample | [`Variant::RayonSort`] — rayon's built-in `par_sort_unstable` |
//! | MMPar | [`Variant::MmPar`] — Algorithm 11 on the team-building work-stealer |
//!
//! [`TableSpec`] encodes which table uses which thread count, aggregation
//! (average vs. best of N) and column set; [`run_table`] regenerates one
//! table and [`render_table`] prints it in the paper's row/column layout.

#![warn(missing_docs)]

#[cfg(feature = "cilk-substitute")]
pub mod cilk_substitute;
pub mod report;
pub mod runner;
pub mod tables;

#[cfg(feature = "cilk-substitute")]
pub use cilk_substitute::{rayon_join_quicksort, rayon_par_sort};
pub use report::{check_regressions, CheckOutcome, Environment, JsonValue, Report, RunRecord, TimingSummary};
pub use runner::{Measurement, Variant, VariantRunner};
pub use tables::{render_table, run_table, Aggregation, TableResult, TableSpec};
