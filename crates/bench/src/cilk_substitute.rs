//! The Cilk++ baseline substitute.
//!
//! The paper compares against Cilk++ (a handwritten fork-join Quicksort with
//! the same cutoff, and the sample Quicksort shipped with the Cilk++
//! compiler).  Cilk++ is unavailable today, so we substitute **rayon** — the
//! canonical Rust work-stealing fork/join runtime — in both roles:
//!
//! * [`rayon_join_quicksort`] is the same Algorithm-10 Quicksort expressed
//!   with `rayon::join` (≙ the paper's handwritten "Cilk" column),
//! * [`rayon_par_sort`] is rayon's built-in `par_sort_unstable` (≙ the
//!   "Cilk sample" column: the tuned sort shipped with the runtime).
//!
//! See DESIGN.md §3 for the substitution rationale.

use rayon::ThreadPool;
use teamsteal_sort::seq::{median_of_three, split_around};
use teamsteal_sort::SortConfig;

/// Fork-join Quicksort on a rayon thread pool, mirroring Algorithm 10
/// (sequential partition, two joined subtasks, cutoff to the library sort).
pub fn rayon_join_quicksort(pool: &ThreadPool, data: &mut [u32], config: &SortConfig) {
    let cutoff = config.cutoff.max(1);
    pool.install(|| quicksort(data, cutoff));
}

fn quicksort(data: &mut [u32], cutoff: usize) {
    if data.len() <= cutoff {
        data.sort_unstable();
        return;
    }
    let pivot = median_of_three(data);
    let (left_len, right_start) = split_around(data, pivot);
    let (left, rest) = data.split_at_mut(left_len);
    let right = &mut rest[right_start - left_len..];
    rayon::join(|| quicksort(left, cutoff), || quicksort(right, cutoff));
}

/// Rayon's built-in parallel sort (the "tuned library sort" analogue of the
/// paper's Cilk sample sort).
pub fn rayon_par_sort(pool: &ThreadPool, data: &mut [u32]) {
    use rayon::slice::ParallelSliceMut;
    pool.install(|| data.par_sort_unstable());
}

/// Builds a rayon pool with exactly `threads` workers.
pub fn rayon_pool(threads: usize) -> ThreadPool {
    rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("failed to build rayon pool")
}

#[cfg(test)]
mod tests {
    use super::*;
    use teamsteal_data::{is_permutation_of, is_sorted, Distribution};

    #[test]
    fn rayon_baselines_sort_correctly() {
        let pool = rayon_pool(4);
        for d in Distribution::ALL {
            let original = d.generate(100_000, 4, 21);
            let mut a = original.clone();
            rayon_join_quicksort(&pool, &mut a, &SortConfig::default());
            assert!(is_sorted(&a));
            assert!(is_permutation_of(&original, &a));

            let mut b = original.clone();
            rayon_par_sort(&pool, &mut b);
            assert!(is_sorted(&b));
            assert!(is_permutation_of(&original, &b));
        }
    }

    #[test]
    fn rayon_join_quicksort_handles_edge_cases() {
        let pool = rayon_pool(2);
        for v in [vec![], vec![1u32], vec![5u32; 10_000]] {
            let mut s = v.clone();
            rayon_join_quicksort(&pool, &mut s, &SortConfig::default());
            assert!(is_sorted(&s));
            assert!(is_permutation_of(&v, &s));
        }
    }
}
