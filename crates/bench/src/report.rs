//! Machine-readable perf-trajectory reports (`BENCH_*.json`).
//!
//! The paper's contribution is quantitative (Tables 1–10 plus the "no
//! overhead in the `r = 1` case" claim), so every perf-relevant change to
//! this repository needs numbers that a later change can be compared
//! against.  This module is that instrument: the `perf` bin sweeps the sort
//! variants and the application kernels and persists one [`Report`] per
//! group as JSON at the repository root.
//!
//! Three design constraints shape the module:
//!
//! 1. **No third-party dependencies.**  The build environment has no
//!    crates.io access (see `stubs/README.md`), so the JSON layer is a small
//!    hand-rolled writer plus a minimal recursive-descent parser
//!    ([`JsonValue`]) instead of serde.  The parser exists so that reports
//!    round-trip (tested), and so `--check` can read a recorded baseline.
//! 2. **Explainable numbers.**  Every [`RunRecord`] carries a
//!    [`MetricsSnapshot`] delta next to its timing aggregates: a slowdown
//!    with a spike in `failed_steal_rounds` reads very differently from one
//!    with constant metrics.
//! 3. **Regression gating.**  [`check_regressions`] compares two reports
//!    record-by-record and reports the scenarios whose median regressed
//!    beyond a tolerance — the `perf --check <baseline>` exit status.
//!
//! The JSON schema is documented in `EXPERIMENTS.md` ("Regenerating
//! `BENCH_*.json`").

use std::fmt::Write as _;
use std::time::Duration;

use teamsteal_core::{MetricsSnapshot, WakeLatencyHistogram};
use teamsteal_util::timing::RunStats;

/// Current value of the `schema_version` field written into every report.
pub const SCHEMA_VERSION: u64 = 1;

// ---------------------------------------------------------------------------
// JSON value: writer + minimal parser
// ---------------------------------------------------------------------------

/// A JSON document, as written and parsed by this crate.
///
/// Objects preserve insertion order (they are association lists, not maps) so
/// that regenerated reports diff cleanly against committed ones.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.  Stored as `f64`; the counters this crate writes stay
    /// far below 2^53, where `f64` is exact.
    Number(f64),
    /// A string (unescaped representation).
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object as an ordered association list.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Looks up a key in an object.  Returns `None` for non-objects.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean value, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Serializes the value as pretty-printed JSON (2-space indent, `\n`
    /// line endings, trailing newline at the top level).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out, 0);
        out.push('\n');
        out
    }

    fn render_into(&self, out: &mut String, indent: usize) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Number(n) => render_number(out, *n),
            JsonValue::String(s) => render_string(out, s),
            JsonValue::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    out.push_str(if i == 0 { "\n" } else { ",\n" });
                    push_indent(out, indent + 1);
                    item.render_into(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            JsonValue::Object(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in pairs.iter().enumerate() {
                    out.push_str(if i == 0 { "\n" } else { ",\n" });
                    push_indent(out, indent + 1);
                    render_string(out, key);
                    out.push_str(": ");
                    value.render_into(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
        }
    }

    /// Parses a JSON document.
    ///
    /// This is a minimal, strict parser: it accepts exactly one top-level
    /// value surrounded by optional whitespace, and supports the escape
    /// sequences of RFC 8259 including `\uXXXX` (with surrogate pairs).
    pub fn parse(text: &str) -> Result<JsonValue, JsonError> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        skip_ws(bytes, &mut pos);
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(JsonError::at(pos, "trailing characters after JSON value"));
        }
        Ok(value)
    }
}

fn push_indent(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn render_number(out: &mut String, n: f64) {
    if n.is_finite() {
        // `{}` on f64 produces the shortest representation that round-trips,
        // never in exponent notation — always a valid JSON number.
        let _ = write!(out, "{n}");
    } else {
        // JSON has no NaN/Infinity; degrade to null rather than emit an
        // unparseable file.
        out.push_str("null");
    }
}

fn render_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Error produced by [`JsonValue::parse`]: byte offset plus message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the input at which parsing failed.
    pub offset: usize,
    /// Human-readable description of the failure.
    pub message: String,
}

impl JsonError {
    fn at(offset: usize, message: impl Into<String>) -> Self {
        JsonError {
            offset,
            message: message.into(),
        }
    }
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect_literal(bytes: &[u8], pos: &mut usize, lit: &str) -> Result<(), JsonError> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(JsonError::at(*pos, format!("expected `{lit}`")))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, JsonError> {
    match bytes.get(*pos) {
        None => Err(JsonError::at(*pos, "unexpected end of input")),
        Some(b'n') => expect_literal(bytes, pos, "null").map(|()| JsonValue::Null),
        Some(b't') => expect_literal(bytes, pos, "true").map(|()| JsonValue::Bool(true)),
        Some(b'f') => expect_literal(bytes, pos, "false").map(|()| JsonValue::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(JsonValue::String),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'-' | b'0'..=b'9') => parse_number(bytes, pos),
        Some(&c) => Err(JsonError::at(*pos, format!("unexpected byte 0x{c:02x}"))),
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, JsonError> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while matches!(
        bytes.get(*pos),
        Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    ) {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos])
        .map_err(|_| JsonError::at(start, "invalid UTF-8 in number"))?;
    text.parse::<f64>()
        .map(JsonValue::Number)
        .map_err(|_| JsonError::at(start, format!("invalid number `{text}`")))
}

fn parse_hex4(bytes: &[u8], pos: &mut usize) -> Result<u16, JsonError> {
    let slice = bytes
        .get(*pos..*pos + 4)
        .ok_or_else(|| JsonError::at(*pos, "truncated \\u escape"))?;
    let text = std::str::from_utf8(slice)
        .map_err(|_| JsonError::at(*pos, "invalid UTF-8 in \\u escape"))?;
    let code = u16::from_str_radix(text, 16)
        .map_err(|_| JsonError::at(*pos, format!("invalid \\u escape `{text}`")))?;
    *pos += 4;
    Ok(code)
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, JsonError> {
    debug_assert_eq!(bytes[*pos], b'"');
    *pos += 1;
    let mut out = String::new();
    let start = *pos;
    loop {
        match bytes.get(*pos) {
            None => return Err(JsonError::at(start, "unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                let esc = *bytes
                    .get(*pos)
                    .ok_or_else(|| JsonError::at(*pos, "truncated escape"))?;
                *pos += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'b' => out.push('\u{08}'),
                    b'f' => out.push('\u{0c}'),
                    b'u' => {
                        let hi = parse_hex4(bytes, pos)?;
                        let c = if (0xd800..0xdc00).contains(&hi) {
                            // High surrogate: a \uXXXX low surrogate must follow.
                            expect_literal(bytes, pos, "\\u")?;
                            let lo = parse_hex4(bytes, pos)?;
                            if !(0xdc00..0xe000).contains(&lo) {
                                return Err(JsonError::at(*pos, "invalid low surrogate"));
                            }
                            let c = 0x10000
                                + ((hi as u32 - 0xd800) << 10)
                                + (lo as u32 - 0xdc00);
                            char::from_u32(c)
                        } else {
                            char::from_u32(hi as u32)
                        };
                        out.push(
                            c.ok_or_else(|| JsonError::at(*pos, "invalid unicode escape"))?,
                        );
                    }
                    other => {
                        return Err(JsonError::at(
                            *pos,
                            format!("unknown escape `\\{}`", other as char),
                        ))
                    }
                }
            }
            Some(_) => {
                // Consume one UTF-8 encoded character.
                let rest = std::str::from_utf8(&bytes[*pos..])
                    .map_err(|_| JsonError::at(*pos, "invalid UTF-8 in string"))?;
                let c = rest.chars().next().expect("non-empty by construction");
                if (c as u32) < 0x20 {
                    return Err(JsonError::at(*pos, "unescaped control character"));
                }
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, JsonError> {
    debug_assert_eq!(bytes[*pos], b'[');
    *pos += 1;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(JsonValue::Array(items));
    }
    loop {
        skip_ws(bytes, pos);
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(JsonValue::Array(items));
            }
            _ => return Err(JsonError::at(*pos, "expected `,` or `]`")),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, JsonError> {
    debug_assert_eq!(bytes[*pos], b'{');
    *pos += 1;
    let mut pairs = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(JsonValue::Object(pairs));
    }
    loop {
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b'"') {
            return Err(JsonError::at(*pos, "expected string key"));
        }
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(JsonError::at(*pos, "expected `:`"));
        }
        *pos += 1;
        skip_ws(bytes, pos);
        let value = parse_value(bytes, pos)?;
        pairs.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(JsonValue::Object(pairs));
            }
            _ => return Err(JsonError::at(*pos, "expected `,` or `}`")),
        }
    }
}

// ---------------------------------------------------------------------------
// Report data model
// ---------------------------------------------------------------------------

/// Timing aggregates of one scenario, in seconds.
///
/// Built from a [`RunStats`] via [`TimingSummary::from_stats`]; the raw
/// samples are retained so a future reader can re-aggregate differently.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TimingSummary {
    /// Best (minimum) sample.
    pub best_s: f64,
    /// Arithmetic mean.
    pub average_s: f64,
    /// Median — the headline aggregate (see `DESIGN.md` §7).
    pub median_s: f64,
    /// 95th percentile (nearest-rank).
    pub p95_s: f64,
    /// Worst (maximum) sample.
    pub worst_s: f64,
    /// Sample standard deviation.
    pub stddev_s: f64,
    /// Every timed sample, in execution order.
    pub samples_s: Vec<f64>,
}

impl TimingSummary {
    /// Aggregates a set of recorded samples.
    pub fn from_stats(stats: &RunStats) -> Self {
        TimingSummary {
            best_s: stats.best().as_secs_f64(),
            average_s: stats.average().as_secs_f64(),
            median_s: stats.median().as_secs_f64(),
            p95_s: stats.p95().as_secs_f64(),
            worst_s: stats.worst().as_secs_f64(),
            stddev_s: stats.stddev_secs(),
            samples_s: stats.samples().iter().map(Duration::as_secs_f64).collect(),
        }
    }

    fn to_json(&self) -> JsonValue {
        JsonValue::Object(vec![
            ("best_s".into(), JsonValue::Number(self.best_s)),
            ("average_s".into(), JsonValue::Number(self.average_s)),
            ("median_s".into(), JsonValue::Number(self.median_s)),
            ("p95_s".into(), JsonValue::Number(self.p95_s)),
            ("worst_s".into(), JsonValue::Number(self.worst_s)),
            ("stddev_s".into(), JsonValue::Number(self.stddev_s)),
            (
                "samples_s".into(),
                JsonValue::Array(self.samples_s.iter().map(|&s| JsonValue::Number(s)).collect()),
            ),
        ])
    }

    fn from_json(value: &JsonValue) -> Result<Self, String> {
        let num = |key: &str| -> Result<f64, String> {
            value
                .get(key)
                .and_then(JsonValue::as_f64)
                .ok_or_else(|| format!("timing summary missing number `{key}`"))
        };
        let samples = value
            .get("samples_s")
            .and_then(JsonValue::as_array)
            .ok_or("timing summary missing `samples_s`")?
            .iter()
            .map(|v| v.as_f64().ok_or_else(|| "non-numeric sample".to_string()))
            .collect::<Result<Vec<f64>, String>>()?;
        Ok(TimingSummary {
            best_s: num("best_s")?,
            average_s: num("average_s")?,
            median_s: num("median_s")?,
            p95_s: num("p95_s")?,
            worst_s: num("worst_s")?,
            stddev_s: num("stddev_s")?,
            samples_s: samples,
        })
    }
}

/// The scalar scheduler-counter fields serialized into every record, in
/// schema order.  Shared by the writer, the parser and the schema
/// documentation.
///
/// `nodes_recycled`, `tasks_injected` and `liveness_resyncs` were added with
/// the arena/injector runtime (PR 3); `segments_reclaimed`,
/// `buffers_reclaimed` and `epoch_advances` with the epoch-reclamation
/// subsystem (PR 4); `parks`, `wakeups` and `spurious_wakes` (plus the
/// non-scalar `wake_latency_us` bucket array) with the event-driven parking
/// subsystem (PR 5); `injector_local_pops`, `injector_remote_pops` and
/// `external_pin_waits` with the sharded injector (PR 6); `teams_built`,
/// `team_reuses`, `team_shrinks`, `steals_local` and `steals_remote` with
/// moldable teams and the topology-biased fallback scan (PR 8);
/// `tasks_expired`, `tasks_cancelled` and `retry_attempts` with the
/// deadline/cancellation/retry layer (PR 10).  The parser defaults absent
/// counters to zero so reports written by earlier harnesses stay readable.
const METRIC_FIELDS: [&str; 30] = [
    "tasks_executed",
    "team_tasks_executed",
    "teams_formed",
    "registrations",
    "steals",
    "tasks_stolen",
    "failed_steal_rounds",
    "help_steals",
    "tasks_spawned",
    "cas_failures",
    "nodes_recycled",
    "tasks_injected",
    "injector_local_pops",
    "injector_remote_pops",
    "external_pin_waits",
    "liveness_resyncs",
    "segments_reclaimed",
    "buffers_reclaimed",
    "epoch_advances",
    "parks",
    "wakeups",
    "spurious_wakes",
    "teams_built",
    "team_reuses",
    "team_shrinks",
    "steals_local",
    "steals_remote",
    "tasks_expired",
    "tasks_cancelled",
    "retry_attempts",
];

/// Key of the wake-latency histogram inside the metrics object: one count
/// per bucket, bounds `teamsteal_core::metrics::WAKE_LATENCY_BOUNDS_US`
/// (last bucket unbounded).
const WAKE_LATENCY_FIELD: &str = "wake_latency_us";

fn metrics_to_json(m: &MetricsSnapshot) -> JsonValue {
    let values = [
        m.tasks_executed,
        m.team_tasks_executed,
        m.teams_formed,
        m.registrations,
        m.steals,
        m.tasks_stolen,
        m.failed_steal_rounds,
        m.help_steals,
        m.tasks_spawned,
        m.cas_failures,
        m.nodes_recycled,
        m.tasks_injected,
        m.injector_local_pops,
        m.injector_remote_pops,
        m.external_pin_waits,
        m.liveness_resyncs,
        m.segments_reclaimed,
        m.buffers_reclaimed,
        m.epoch_advances,
        m.parks,
        m.wakeups,
        m.spurious_wakes,
        m.teams_built,
        m.team_reuses,
        m.team_shrinks,
        m.steals_local,
        m.steals_remote,
        m.tasks_expired,
        m.tasks_cancelled,
        m.retry_attempts,
    ];
    let mut pairs: Vec<(String, JsonValue)> = METRIC_FIELDS
        .iter()
        .zip(values)
        .map(|(&k, v)| (k.to_string(), JsonValue::Number(v as f64)))
        .collect();
    pairs.push((
        WAKE_LATENCY_FIELD.to_string(),
        JsonValue::Array(
            m.wake_latency
                .buckets
                .iter()
                .map(|&b| JsonValue::Number(b as f64))
                .collect(),
        ),
    ));
    JsonValue::Object(pairs)
}

fn metrics_from_json(value: &JsonValue) -> Result<MetricsSnapshot, String> {
    let field = |key: &str| -> Result<u64, String> {
        value
            .get(key)
            .and_then(JsonValue::as_f64)
            .map(|n| n as u64)
            .ok_or_else(|| format!("metrics missing `{key}`"))
    };
    // Counters added after schema introduction default to zero, so older
    // committed baselines keep parsing.
    let optional_field = |key: &str| -> u64 {
        value
            .get(key)
            .and_then(JsonValue::as_f64)
            .map(|n| n as u64)
            .unwrap_or(0)
    };
    // The wake-latency histogram is a bucket array; absent (pre-PR 5
    // baselines) or malformed entries default to all-zero.
    let mut wake_latency = WakeLatencyHistogram::default();
    if let Some(buckets) = value.get(WAKE_LATENCY_FIELD).and_then(JsonValue::as_array) {
        for (slot, bucket) in wake_latency.buckets.iter_mut().zip(buckets) {
            *slot = bucket.as_f64().unwrap_or(0.0) as u64;
        }
    }
    Ok(MetricsSnapshot {
        tasks_executed: field("tasks_executed")?,
        team_tasks_executed: field("team_tasks_executed")?,
        teams_formed: field("teams_formed")?,
        registrations: field("registrations")?,
        steals: field("steals")?,
        tasks_stolen: field("tasks_stolen")?,
        failed_steal_rounds: field("failed_steal_rounds")?,
        help_steals: field("help_steals")?,
        tasks_spawned: field("tasks_spawned")?,
        cas_failures: field("cas_failures")?,
        nodes_recycled: optional_field("nodes_recycled"),
        tasks_injected: optional_field("tasks_injected"),
        injector_local_pops: optional_field("injector_local_pops"),
        injector_remote_pops: optional_field("injector_remote_pops"),
        external_pin_waits: optional_field("external_pin_waits"),
        liveness_resyncs: optional_field("liveness_resyncs"),
        segments_reclaimed: optional_field("segments_reclaimed"),
        buffers_reclaimed: optional_field("buffers_reclaimed"),
        epoch_advances: optional_field("epoch_advances"),
        parks: optional_field("parks"),
        wakeups: optional_field("wakeups"),
        spurious_wakes: optional_field("spurious_wakes"),
        teams_built: optional_field("teams_built"),
        team_reuses: optional_field("team_reuses"),
        team_shrinks: optional_field("team_shrinks"),
        steals_local: optional_field("steals_local"),
        steals_remote: optional_field("steals_remote"),
        tasks_expired: optional_field("tasks_expired"),
        tasks_cancelled: optional_field("tasks_cancelled"),
        retry_attempts: optional_field("retry_attempts"),
        wake_latency,
    })
}

/// One measured scenario: a (name, distribution, size, threads) cell with its
/// timing aggregates and the scheduler-counter delta accumulated over the
/// timed repetitions.
#[derive(Debug, Clone, PartialEq)]
pub struct RunRecord {
    /// Record family: `"sort"` for the Quicksort variants, `"kernel"` for the
    /// application kernels.
    pub group: String,
    /// Scenario name: a variant label (`"MMPar"`, `"Fork"`, …) or a kernel
    /// label (`"reduce"`, `"matmul"`, …).
    pub name: String,
    /// Input distribution label for sort records; `None` for kernels.
    pub distribution: Option<String>,
    /// Input size in elements (kernels: see the schema notes in
    /// `EXPERIMENTS.md` for each kernel's interpretation).
    pub size: usize,
    /// Worker threads of the engine that produced the record (1 for purely
    /// sequential scenarios).
    pub threads: usize,
    /// Untimed warmup runs executed before sampling.
    pub warmups: usize,
    /// Timed repetitions (the number of samples).
    pub repetitions: usize,
    /// Timing aggregates over the repetitions.
    pub secs: TimingSummary,
    /// Scheduler-counter delta summed over the timed repetitions (zero for
    /// scenarios that do not run on a `teamsteal` scheduler).
    pub metrics: MetricsSnapshot,
    /// Median sequential reference time for this scenario, if one was
    /// measured (the paper's `SU` denominators).
    pub seq_reference_s: Option<f64>,
    /// `seq_reference_s / median_s`, if a reference exists.
    pub speedup_vs_seq: Option<f64>,
    /// Scenario-specific extra measurements as a free-form JSON object
    /// (`null` for scenarios without any).  The `soak` scenario records its
    /// memory-footprint gauges here (see EXPERIMENTS.md).  Absent in
    /// reports written before schema field introduction; the parser
    /// defaults it to `None`.
    pub extra: Option<JsonValue>,
}

impl RunRecord {
    /// Serializes the record into the schema's object layout.
    pub fn to_json(&self) -> JsonValue {
        let opt_num = |v: Option<f64>| v.map(JsonValue::Number).unwrap_or(JsonValue::Null);
        JsonValue::Object(vec![
            ("group".into(), JsonValue::String(self.group.clone())),
            ("name".into(), JsonValue::String(self.name.clone())),
            (
                "distribution".into(),
                self.distribution
                    .clone()
                    .map(JsonValue::String)
                    .unwrap_or(JsonValue::Null),
            ),
            ("size".into(), JsonValue::Number(self.size as f64)),
            ("threads".into(), JsonValue::Number(self.threads as f64)),
            ("warmups".into(), JsonValue::Number(self.warmups as f64)),
            (
                "repetitions".into(),
                JsonValue::Number(self.repetitions as f64),
            ),
            ("secs".into(), self.secs.to_json()),
            ("metrics".into(), metrics_to_json(&self.metrics)),
            ("seq_reference_s".into(), opt_num(self.seq_reference_s)),
            ("speedup_vs_seq".into(), opt_num(self.speedup_vs_seq)),
            (
                "extra".into(),
                self.extra.clone().unwrap_or(JsonValue::Null),
            ),
        ])
    }

    /// Parses a record from its object layout.
    pub fn from_json(value: &JsonValue) -> Result<Self, String> {
        let str_field = |key: &str| -> Result<String, String> {
            value
                .get(key)
                .and_then(JsonValue::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("record missing string `{key}`"))
        };
        let usize_field = |key: &str| -> Result<usize, String> {
            value
                .get(key)
                .and_then(JsonValue::as_f64)
                .map(|n| n as usize)
                .ok_or_else(|| format!("record missing number `{key}`"))
        };
        let opt_num = |key: &str| -> Option<f64> { value.get(key).and_then(JsonValue::as_f64) };
        Ok(RunRecord {
            group: str_field("group")?,
            name: str_field("name")?,
            distribution: value
                .get("distribution")
                .and_then(JsonValue::as_str)
                .map(str::to_string),
            size: usize_field("size")?,
            threads: usize_field("threads")?,
            warmups: usize_field("warmups")?,
            repetitions: usize_field("repetitions")?,
            secs: TimingSummary::from_json(
                value.get("secs").ok_or("record missing `secs`")?,
            )?,
            metrics: metrics_from_json(
                value.get("metrics").ok_or("record missing `metrics`")?,
            )?,
            seq_reference_s: opt_num("seq_reference_s"),
            speedup_vs_seq: opt_num("speedup_vs_seq"),
            extra: value
                .get("extra")
                .filter(|v| !matches!(v, JsonValue::Null))
                .cloned(),
        })
    }

    /// The identity of a record for baseline matching: everything that names
    /// the scenario, nothing that was measured.
    pub fn scenario_key(&self) -> (String, String, Option<String>, usize, usize) {
        (
            self.group.clone(),
            self.name.clone(),
            self.distribution.clone(),
            self.size,
            self.threads,
        )
    }
}

/// Execution environment recorded into every report, so a number can never
/// outlive the knowledge of where it was measured.
#[derive(Debug, Clone, PartialEq)]
pub struct Environment {
    /// `std::thread::available_parallelism` at measurement time.
    pub available_parallelism: usize,
    /// Operating system (`std::env::consts::OS`).
    pub os: String,
    /// CPU architecture (`std::env::consts::ARCH`).
    pub arch: String,
    /// `git rev-parse HEAD` of the repository, or `"unknown"`.
    pub git_commit: String,
    /// Whether the working tree had uncommitted changes (`None` when git was
    /// unavailable).
    pub git_dirty: Option<bool>,
}

impl Environment {
    /// Detects the current environment.  Git queries run `git` as a
    /// subprocess and degrade to `"unknown"` / `None` when that fails.
    pub fn detect() -> Self {
        let git = |args: &[&str]| -> Option<String> {
            let out = std::process::Command::new("git").args(args).output().ok()?;
            out.status
                .success()
                .then(|| String::from_utf8_lossy(&out.stdout).trim().to_string())
        };
        Environment {
            available_parallelism: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            os: std::env::consts::OS.to_string(),
            arch: std::env::consts::ARCH.to_string(),
            git_commit: git(&["rev-parse", "HEAD"]).unwrap_or_else(|| "unknown".into()),
            git_dirty: git(&["status", "--porcelain"]).map(|s| !s.is_empty()),
        }
    }

    fn to_json(&self) -> JsonValue {
        JsonValue::Object(vec![
            (
                "available_parallelism".into(),
                JsonValue::Number(self.available_parallelism as f64),
            ),
            ("os".into(), JsonValue::String(self.os.clone())),
            ("arch".into(), JsonValue::String(self.arch.clone())),
            ("git_commit".into(), JsonValue::String(self.git_commit.clone())),
            (
                "git_dirty".into(),
                self.git_dirty.map(JsonValue::Bool).unwrap_or(JsonValue::Null),
            ),
        ])
    }

    fn from_json(value: &JsonValue) -> Result<Self, String> {
        Ok(Environment {
            available_parallelism: value
                .get("available_parallelism")
                .and_then(JsonValue::as_f64)
                .ok_or("environment missing `available_parallelism`")?
                as usize,
            os: value
                .get("os")
                .and_then(JsonValue::as_str)
                .ok_or("environment missing `os`")?
                .to_string(),
            arch: value
                .get("arch")
                .and_then(JsonValue::as_str)
                .ok_or("environment missing `arch`")?
                .to_string(),
            git_commit: value
                .get("git_commit")
                .and_then(JsonValue::as_str)
                .ok_or("environment missing `git_commit`")?
                .to_string(),
            git_dirty: value.get("git_dirty").and_then(JsonValue::as_bool),
        })
    }
}

/// A full perf-trajectory report: metadata plus one [`RunRecord`] per
/// measured scenario.  Serialized to `BENCH_sort.json` / `BENCH_kernels.json`
/// by the `perf` bin.
#[derive(Debug, Clone, PartialEq)]
pub struct Report {
    /// Schema version, [`SCHEMA_VERSION`] for reports written by this code.
    pub schema_version: u64,
    /// Name of the producing harness (`"perf"`).
    pub harness: String,
    /// Record family contained in this report (`"sort"` or `"kernel"`).
    pub group: String,
    /// Unix timestamp (seconds) at which the sweep started.
    pub created_unix_s: u64,
    /// Measurement environment.
    pub environment: Environment,
    /// Harness parameters, stored verbatim for reproducibility (free-form
    /// object; the `perf` bin records sizes, thread lists, reps, seed).
    pub params: JsonValue,
    /// One record per measured scenario.
    pub records: Vec<RunRecord>,
}

impl Report {
    /// Serializes the report to its on-disk JSON text.
    pub fn to_json_string(&self) -> String {
        JsonValue::Object(vec![
            (
                "schema_version".into(),
                JsonValue::Number(self.schema_version as f64),
            ),
            ("harness".into(), JsonValue::String(self.harness.clone())),
            ("group".into(), JsonValue::String(self.group.clone())),
            (
                "created_unix_s".into(),
                JsonValue::Number(self.created_unix_s as f64),
            ),
            ("environment".into(), self.environment.to_json()),
            ("params".into(), self.params.clone()),
            (
                "records".into(),
                JsonValue::Array(self.records.iter().map(RunRecord::to_json).collect()),
            ),
        ])
        .render()
    }

    /// Parses a report from its on-disk JSON text.
    pub fn from_json_str(text: &str) -> Result<Report, String> {
        let value = JsonValue::parse(text).map_err(|e| e.to_string())?;
        let str_field = |key: &str| -> Result<String, String> {
            value
                .get(key)
                .and_then(JsonValue::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("report missing string `{key}`"))
        };
        let records = value
            .get("records")
            .and_then(JsonValue::as_array)
            .ok_or("report missing `records`")?
            .iter()
            .map(RunRecord::from_json)
            .collect::<Result<Vec<RunRecord>, String>>()?;
        Ok(Report {
            schema_version: value
                .get("schema_version")
                .and_then(JsonValue::as_f64)
                .ok_or("report missing `schema_version`")? as u64,
            harness: str_field("harness")?,
            group: str_field("group")?,
            created_unix_s: value
                .get("created_unix_s")
                .and_then(JsonValue::as_f64)
                .unwrap_or(0.0) as u64,
            environment: Environment::from_json(
                value.get("environment").ok_or("report missing `environment`")?,
            )?,
            params: value.get("params").cloned().unwrap_or(JsonValue::Null),
            records,
        })
    }
}

// ---------------------------------------------------------------------------
// Regression checking
// ---------------------------------------------------------------------------

/// Outcome of comparing a fresh report against a recorded baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckOutcome {
    /// Number of scenarios present in both reports and compared.
    pub compared: usize,
    /// Human-readable description of every scenario whose median regressed
    /// beyond the tolerance.  Empty means the check passed.
    pub regressions: Vec<String>,
    /// Scenarios selected in the current report with no baseline counterpart
    /// (reported for transparency, not a failure).
    pub missing_baseline: Vec<String>,
}

impl CheckOutcome {
    /// `true` when no regression was found.
    pub fn passed(&self) -> bool {
        self.regressions.is_empty()
    }
}

/// Compares the records named `name` in `current` against their counterparts
/// in `baseline` (matched on the full [`RunRecord::scenario_key`]) and flags
/// every scenario whose median time exceeds the baseline median by more than
/// `tolerance_pct` percent.
///
/// Scenarios with a non-positive baseline median are skipped (a degenerate
/// baseline must not make every future run fail).
pub fn check_regressions(
    baseline: &Report,
    current: &Report,
    name: &str,
    tolerance_pct: f64,
) -> CheckOutcome {
    let mut outcome = CheckOutcome {
        compared: 0,
        regressions: Vec::new(),
        missing_baseline: Vec::new(),
    };
    for record in current.records.iter().filter(|r| r.name == name) {
        let key = record.scenario_key();
        let label = format!(
            "{}/{}{} n={} p={}",
            record.group,
            record.name,
            record
                .distribution
                .as_deref()
                .map(|d| format!(" [{d}]"))
                .unwrap_or_default(),
            record.size,
            record.threads
        );
        let Some(base) = baseline
            .records
            .iter()
            .find(|b| b.scenario_key() == key)
        else {
            outcome.missing_baseline.push(label);
            continue;
        };
        if base.secs.median_s <= 0.0 {
            continue;
        }
        outcome.compared += 1;
        let ratio = record.secs.median_s / base.secs.median_s;
        let limit = 1.0 + tolerance_pct / 100.0;
        if ratio > limit {
            outcome.regressions.push(format!(
                "{label}: median {:.6}s vs baseline {:.6}s ({:+.1}% > +{:.1}% tolerance)",
                record.secs.median_s,
                base.secs.median_s,
                (ratio - 1.0) * 100.0,
                tolerance_pct
            ));
        }
    }
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn sample_record(name: &str, median: f64) -> RunRecord {
        let mut stats = RunStats::new();
        stats.record(Duration::from_secs_f64(median * 0.9));
        stats.record(Duration::from_secs_f64(median));
        stats.record(Duration::from_secs_f64(median * 1.3));
        RunRecord {
            group: "sort".into(),
            name: name.into(),
            distribution: Some("Random".into()),
            size: 1 << 16,
            threads: 4,
            warmups: 1,
            repetitions: 3,
            secs: TimingSummary::from_stats(&stats),
            metrics: MetricsSnapshot {
                steals: 17,
                teams_formed: 3,
                registrations: 9,
                parks: 12,
                wakeups: 11,
                spurious_wakes: 1,
                teams_built: 3,
                team_reuses: 7,
                team_shrinks: 2,
                steals_local: 13,
                steals_remote: 4,
                wake_latency: WakeLatencyHistogram {
                    buckets: [2, 5, 3, 1, 0, 0, 0, 0],
                },
                ..Default::default()
            },
            seq_reference_s: Some(median * 2.0),
            speedup_vs_seq: Some(2.0),
            extra: Some(JsonValue::Object(vec![(
                "peak_injector_segments".into(),
                JsonValue::Number(3.0),
            )])),
        }
    }

    fn sample_report(median: f64) -> Report {
        Report {
            schema_version: SCHEMA_VERSION,
            harness: "perf".into(),
            group: "sort".into(),
            created_unix_s: 1_753_000_000,
            environment: Environment {
                available_parallelism: 8,
                os: "linux".into(),
                arch: "x86_64".into(),
                git_commit: "deadbeef".into(),
                git_dirty: Some(false),
            },
            params: JsonValue::Object(vec![
                ("size".into(), JsonValue::Number(65536.0)),
                ("seed".into(), JsonValue::Number(42.0)),
            ]),
            records: vec![sample_record("MMPar", median), sample_record("Fork", median)],
        }
    }

    #[test]
    fn json_strings_are_escaped_and_round_trip() {
        let nasty = "quote \" backslash \\ newline \n tab \t nul \u{0} emoji 🦀";
        let value = JsonValue::Object(vec![(
            "k\"ey".to_string(),
            JsonValue::String(nasty.to_string()),
        )]);
        let text = value.render();
        // The rendered form must not contain raw control characters.
        assert!(!text.chars().any(|c| (c as u32) < 0x20 && c != '\n' && c != ' '));
        let parsed = JsonValue::parse(&text).expect("rendered JSON parses");
        assert_eq!(parsed, value);
        assert_eq!(
            parsed.get("k\"ey").and_then(JsonValue::as_str),
            Some(nasty)
        );
    }

    #[test]
    fn json_parser_handles_scalars_arrays_and_unicode_escapes() {
        let parsed = JsonValue::parse(
            r#"{"a": [1, -2.5, 1e3, true, false, null], "b": "é🦀"}"#,
        )
        .unwrap();
        let a = parsed.get("a").and_then(JsonValue::as_array).unwrap();
        assert_eq!(a[0].as_f64(), Some(1.0));
        assert_eq!(a[1].as_f64(), Some(-2.5));
        assert_eq!(a[2].as_f64(), Some(1000.0));
        assert_eq!(a[3].as_bool(), Some(true));
        assert_eq!(a[5], JsonValue::Null);
        assert_eq!(parsed.get("b").and_then(JsonValue::as_str), Some("é🦀"));
    }

    #[test]
    fn json_parser_rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\" 1}",
            "tru",
            "\"unterminated",
            "1 2",
            "{\"a\": 1,}",
        ] {
            assert!(JsonValue::parse(bad).is_err(), "`{bad}` should fail");
        }
    }

    #[test]
    fn non_finite_numbers_render_as_null() {
        let v = JsonValue::Array(vec![
            JsonValue::Number(f64::NAN),
            JsonValue::Number(f64::INFINITY),
            JsonValue::Number(1.5),
        ]);
        let text = v.render();
        let parsed = JsonValue::parse(&text).unwrap();
        let items = parsed.as_array().unwrap();
        assert_eq!(items[0], JsonValue::Null);
        assert_eq!(items[1], JsonValue::Null);
        assert_eq!(items[2].as_f64(), Some(1.5));
    }

    #[test]
    fn report_round_trips_through_the_parser() {
        let report = sample_report(0.010);
        let text = report.to_json_string();
        let parsed = Report::from_json_str(&text).expect("report parses");
        assert_eq!(parsed, report);
        // And the re-rendered text is byte-identical (stable key order).
        assert_eq!(parsed.to_json_string(), text);
    }

    #[test]
    fn timing_summary_matches_run_stats() {
        let mut stats = RunStats::new();
        for ms in [10u64, 20, 30, 40] {
            stats.record(Duration::from_millis(ms));
        }
        let summary = TimingSummary::from_stats(&stats);
        assert_eq!(summary.best_s, 0.010);
        assert_eq!(summary.worst_s, 0.040);
        assert_eq!(summary.median_s, 0.025);
        assert_eq!(summary.samples_s.len(), 4);
    }

    #[test]
    fn pre_parking_baselines_parse_with_defaulted_metrics() {
        // A record written before PR 5 carries neither the parking scalars
        // nor the wake-latency bucket array: strip them from a fresh record
        // and the parser must default all of them to zero (so old committed
        // baselines keep working as `--check` inputs).
        let report = sample_report(0.010);
        let text = report.to_json_string();
        let mut value = JsonValue::parse(&text).unwrap();
        if let JsonValue::Object(pairs) = &mut value {
            if let Some((_, JsonValue::Array(records))) =
                pairs.iter_mut().find(|(k, _)| k == "records")
            {
                for record in records {
                    if let JsonValue::Object(fields) = record {
                        if let Some((_, JsonValue::Object(metrics))) =
                            fields.iter_mut().find(|(k, _)| k == "metrics")
                        {
                            metrics.retain(|(k, _)| {
                                !matches!(
                                    k.as_str(),
                                    "parks" | "wakeups" | "spurious_wakes" | "wake_latency_us"
                                )
                            });
                        }
                    }
                }
            }
        }
        let parsed = Report::from_json_str(&value.render()).expect("old schema parses");
        for record in &parsed.records {
            assert_eq!(record.metrics.parks, 0);
            assert_eq!(record.metrics.wakeups, 0);
            assert_eq!(record.metrics.spurious_wakes, 0);
            assert_eq!(record.metrics.wake_latency, WakeLatencyHistogram::default());
            // The pre-existing counters survived the strip.
            assert_eq!(record.metrics.steals, 17);
        }
        // And a defaulted report round-trips stably.
        assert_eq!(
            Report::from_json_str(&parsed.to_json_string()).unwrap(),
            parsed
        );
    }

    #[test]
    fn pre_sharding_baselines_parse_with_defaulted_metrics() {
        // A record written before PR 6 carries none of the sharded-injector
        // counters: strip them from a fresh record and the parser must
        // default all of them to zero (so PR 5-era committed baselines keep
        // working as `--check` inputs).
        let report = sample_report(0.010);
        let text = report.to_json_string();
        let mut value = JsonValue::parse(&text).unwrap();
        if let JsonValue::Object(pairs) = &mut value {
            if let Some((_, JsonValue::Array(records))) =
                pairs.iter_mut().find(|(k, _)| k == "records")
            {
                for record in records {
                    if let JsonValue::Object(fields) = record {
                        if let Some((_, JsonValue::Object(metrics))) =
                            fields.iter_mut().find(|(k, _)| k == "metrics")
                        {
                            metrics.retain(|(k, _)| {
                                !matches!(
                                    k.as_str(),
                                    "injector_local_pops"
                                        | "injector_remote_pops"
                                        | "external_pin_waits"
                                )
                            });
                        }
                    }
                }
            }
        }
        let parsed = Report::from_json_str(&value.render()).expect("old schema parses");
        for record in &parsed.records {
            assert_eq!(record.metrics.injector_local_pops, 0);
            assert_eq!(record.metrics.injector_remote_pops, 0);
            assert_eq!(record.metrics.external_pin_waits, 0);
            // The pre-existing counters survived the strip.
            assert_eq!(record.metrics.steals, 17);
            assert_eq!(record.metrics.parks, 12);
        }
        // And a defaulted report round-trips stably.
        assert_eq!(
            Report::from_json_str(&parsed.to_json_string()).unwrap(),
            parsed
        );
    }

    #[test]
    fn pre_moldable_baselines_parse_with_defaulted_metrics() {
        // A record written before PR 8 carries none of the moldable-team or
        // steal-locality counters: strip them from a fresh record and the
        // parser must default all of them to zero (so PR 7-era committed
        // baselines keep working as `--check` inputs).
        let report = sample_report(0.010);
        let text = report.to_json_string();
        let mut value = JsonValue::parse(&text).unwrap();
        if let JsonValue::Object(pairs) = &mut value {
            if let Some((_, JsonValue::Array(records))) =
                pairs.iter_mut().find(|(k, _)| k == "records")
            {
                for record in records {
                    if let JsonValue::Object(fields) = record {
                        if let Some((_, JsonValue::Object(metrics))) =
                            fields.iter_mut().find(|(k, _)| k == "metrics")
                        {
                            metrics.retain(|(k, _)| {
                                !matches!(
                                    k.as_str(),
                                    "teams_built"
                                        | "team_reuses"
                                        | "team_shrinks"
                                        | "steals_local"
                                        | "steals_remote"
                                )
                            });
                        }
                    }
                }
            }
        }
        let parsed = Report::from_json_str(&value.render()).expect("old schema parses");
        for record in &parsed.records {
            assert_eq!(record.metrics.teams_built, 0);
            assert_eq!(record.metrics.team_reuses, 0);
            assert_eq!(record.metrics.team_shrinks, 0);
            assert_eq!(record.metrics.steals_local, 0);
            assert_eq!(record.metrics.steals_remote, 0);
            // The pre-existing counters survived the strip.
            assert_eq!(record.metrics.steals, 17);
            assert_eq!(record.metrics.teams_formed, 3);
        }
        // And a defaulted report round-trips stably.
        assert_eq!(
            Report::from_json_str(&parsed.to_json_string()).unwrap(),
            parsed
        );
    }

    #[test]
    fn pre_cancellation_baselines_parse_with_defaulted_metrics() {
        // A record written before PR 10 carries none of the
        // deadline/cancellation counters: strip them from a fresh record and
        // the parser must default all of them to zero (so PR 9-era committed
        // baselines keep working as `--check` inputs).
        let report = sample_report(0.010);
        let text = report.to_json_string();
        let mut value = JsonValue::parse(&text).unwrap();
        if let JsonValue::Object(pairs) = &mut value {
            if let Some((_, JsonValue::Array(records))) =
                pairs.iter_mut().find(|(k, _)| k == "records")
            {
                for record in records {
                    if let JsonValue::Object(fields) = record {
                        if let Some((_, JsonValue::Object(metrics))) =
                            fields.iter_mut().find(|(k, _)| k == "metrics")
                        {
                            metrics.retain(|(k, _)| {
                                !matches!(
                                    k.as_str(),
                                    "tasks_expired" | "tasks_cancelled" | "retry_attempts"
                                )
                            });
                        }
                    }
                }
            }
        }
        let parsed = Report::from_json_str(&value.render()).expect("old schema parses");
        for record in &parsed.records {
            assert_eq!(record.metrics.tasks_expired, 0);
            assert_eq!(record.metrics.tasks_cancelled, 0);
            assert_eq!(record.metrics.retry_attempts, 0);
            // The pre-existing counters survived the strip.
            assert_eq!(record.metrics.steals, 17);
            assert_eq!(record.metrics.teams_formed, 3);
        }
        // And a defaulted report round-trips stably.
        assert_eq!(
            Report::from_json_str(&parsed.to_json_string()).unwrap(),
            parsed
        );
    }

    /// A `service_latency` record as `perf --only service_latency` writes
    /// it (PR 9): the samples are submit-to-complete latencies, and the
    /// family's counters — arrival rate, admission outcomes, nearest-rank
    /// p99 and per-tenant fairness ratios — ride in `extra`.
    fn sample_service_record() -> RunRecord {
        let mut stats = RunStats::new();
        for us in [9u64, 11, 14, 21, 34] {
            stats.record(Duration::from_micros(us));
        }
        RunRecord {
            group: "service_latency".into(),
            name: "service_latency_paced".into(),
            distribution: None,
            size: 20_000, // the arrival rate doubles as the cell size
            threads: 2,
            warmups: 0,
            repetitions: 5,
            secs: TimingSummary::from_stats(&stats),
            metrics: MetricsSnapshot {
                tasks_injected: 5_000,
                injector_local_pops: 4_000,
                injector_remote_pops: 1_000,
                ..Default::default()
            },
            seq_reference_s: None,
            speedup_vs_seq: None,
            extra: Some(JsonValue::Object(vec![
                ("arrival_rate_hz".into(), JsonValue::Number(20_000.0)),
                ("offered".into(), JsonValue::Number(5_000.0)),
                ("admitted".into(), JsonValue::Number(4_900.0)),
                ("backpressure_count".into(), JsonValue::Number(80.0)),
                ("shed_count".into(), JsonValue::Number(20.0)),
                ("p99_s".into(), JsonValue::Number(34e-6)),
                ("fairness_tenant_0".into(), JsonValue::Number(1.02)),
                ("fairness_tenant_1".into(), JsonValue::Number(0.94)),
            ])),
        }
    }

    #[test]
    fn service_latency_records_round_trip_with_extras() {
        let mut report = sample_report(0.010);
        report.group = "kernel".into();
        report.records = vec![sample_service_record()];
        let text = report.to_json_string();
        let parsed = Report::from_json_str(&text).expect("service report parses");
        assert_eq!(parsed, report);
        assert_eq!(parsed.to_json_string(), text);
        // The family counters survive the round trip through `extra`.
        let extra = parsed.records[0].extra.as_ref().expect("extra present");
        for (key, expected) in [
            ("arrival_rate_hz", 20_000.0),
            ("shed_count", 20.0),
            ("backpressure_count", 80.0),
            ("p99_s", 34e-6),
            ("fairness_tenant_0", 1.02),
            ("fairness_tenant_1", 0.94),
        ] {
            assert_eq!(
                extra.get(key).and_then(JsonValue::as_f64),
                Some(expected),
                "extra field `{key}` lost in the round trip"
            );
        }
    }

    #[test]
    fn pre_service_baselines_parse_with_defaulted_extra() {
        // A kernels report written before PR 9 carries no `service_latency`
        // records, and records written by even older harnesses carry no
        // `extra` field at all: strip `extra` from every record and the
        // parser must default it to `None` (so pre-service committed
        // baselines keep working as carryover inputs).
        let mut report = sample_report(0.010);
        report.group = "kernel".into();
        let text = report.to_json_string();
        let mut value = JsonValue::parse(&text).unwrap();
        if let JsonValue::Object(pairs) = &mut value {
            if let Some((_, JsonValue::Array(records))) =
                pairs.iter_mut().find(|(k, _)| k == "records")
            {
                for record in records {
                    if let JsonValue::Object(fields) = record {
                        fields.retain(|(k, _)| k != "extra");
                    }
                }
            }
        }
        let parsed = Report::from_json_str(&value.render()).expect("old schema parses");
        assert!(!parsed.records.is_empty());
        for record in &parsed.records {
            assert_eq!(record.extra, None);
            // The pre-existing fields survived the strip.
            assert_eq!(record.metrics.steals, 17);
        }
        // And a defaulted report round-trips stably.
        assert_eq!(
            Report::from_json_str(&parsed.to_json_string()).unwrap(),
            parsed
        );
    }

    #[test]
    fn check_passes_within_tolerance_and_fails_beyond_it() {
        let baseline = sample_report(0.010);
        // 10% slower: inside a 25% tolerance, outside a 5% one.
        let current = sample_report(0.011);
        let ok = check_regressions(&baseline, &current, "MMPar", 25.0);
        assert!(ok.passed());
        assert_eq!(ok.compared, 1);
        let bad = check_regressions(&baseline, &current, "MMPar", 5.0);
        assert!(!bad.passed());
        assert_eq!(bad.regressions.len(), 1);
        assert!(bad.regressions[0].contains("MMPar"));
        // Only records with the requested name are considered.
        let fork = check_regressions(&baseline, &current, "Fork", 5.0);
        assert_eq!(fork.compared, 1);
    }

    #[test]
    fn check_reports_missing_baseline_scenarios() {
        let mut baseline = sample_report(0.010);
        baseline.records.retain(|r| r.name != "MMPar");
        let current = sample_report(0.010);
        let outcome = check_regressions(&baseline, &current, "MMPar", 25.0);
        assert!(outcome.passed());
        assert_eq!(outcome.compared, 0);
        assert_eq!(outcome.missing_baseline.len(), 1);
    }

    #[test]
    fn degenerate_zero_baseline_is_skipped() {
        let mut baseline = sample_report(0.010);
        for r in &mut baseline.records {
            r.secs.median_s = 0.0;
        }
        let current = sample_report(10.0);
        let outcome = check_regressions(&baseline, &current, "MMPar", 25.0);
        assert!(outcome.passed());
        assert_eq!(outcome.compared, 0);
    }

    #[test]
    fn environment_detects_something_sane() {
        let env = Environment::detect();
        assert!(env.available_parallelism >= 1);
        assert!(!env.os.is_empty());
        assert!(!env.git_commit.is_empty());
    }
}
