//! Ablation benchmarks for the tunable parameters the paper calls out
//! (experiment A2 in DESIGN.md):
//!
//! * **Number of tasks to steal** (Section 4): steal `2^ℓ`, half of the
//!   victim's queue, or a single task per steal.
//! * **Block size of the data-parallel partitioning step** (Section 5): the
//!   paper uses 4096-element blocks; smaller blocks increase the number of
//!   claims, larger blocks increase the sequential cleanup.
//! * **Mixed-mode threshold** (`getBestNp`): how much data per thread is
//!   needed before the data-parallel partitioning pays off.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use teamsteal_core::{Scheduler, StealAmount, StealPolicy};
use teamsteal_data::Distribution;
use teamsteal_sort::{fork_join_sort, mixed_mode_sort, SortConfig};

fn bench_steal_amount(c: &mut Criterion) {
    let mut group = c.benchmark_group("steal_amount");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(1));
    let n = 200_000usize;
    let input = Distribution::Random.generate(n, 4, 7);
    let config = SortConfig::default();
    group.throughput(Throughput::Elements(n as u64));
    for (label, amount) in [
        ("two_to_level", StealAmount::TwoToLevel),
        ("half_of_victim", StealAmount::HalfOfVictim),
        ("single_task", StealAmount::One),
    ] {
        let scheduler = Scheduler::builder()
            .threads(4)
            .steal_policy(StealPolicy::Deterministic)
            .steal_amount(amount)
            .build();
        group.bench_function(BenchmarkId::new("fork_quicksort", label), |b| {
            b.iter(|| {
                let mut data = input.clone();
                fork_join_sort(&scheduler, &mut data, &config);
                assert!(teamsteal_data::is_sorted(&data));
            });
        });
    }
    group.finish();
}

fn bench_partition_block_size(c: &mut Criterion) {
    let mut group = c.benchmark_group("partition_block_size");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(1));
    let n = 400_000usize;
    let input = Distribution::Random.generate(n, 4, 8);
    let scheduler = Scheduler::with_threads(4);
    group.throughput(Throughput::Elements(n as u64));
    for block_size in [256usize, 1024, 4096] {
        let config = SortConfig {
            cutoff: 512,
            block_size,
            min_blocks_per_thread: 4,
        };
        group.bench_with_input(
            BenchmarkId::new("mmpar_quicksort", block_size),
            &block_size,
            |b, _| {
                b.iter(|| {
                    let mut data = input.clone();
                    mixed_mode_sort(&scheduler, &mut data, &config);
                    assert!(teamsteal_data::is_sorted(&data));
                });
            },
        );
    }
    group.finish();
}

fn bench_mixed_mode_threshold(c: &mut Criterion) {
    let mut group = c.benchmark_group("mixed_mode_threshold");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(1));
    let n = 400_000usize;
    let input = Distribution::Staggered.generate(n, 4, 9);
    let scheduler = Scheduler::with_threads(4);
    group.throughput(Throughput::Elements(n as u64));
    for min_blocks in [4usize, 64, 1024] {
        let config = SortConfig {
            cutoff: 512,
            block_size: 1024,
            min_blocks_per_thread: min_blocks,
        };
        group.bench_with_input(
            BenchmarkId::new("min_blocks_per_thread", min_blocks),
            &min_blocks,
            |b, _| {
                b.iter(|| {
                    let mut data = input.clone();
                    mixed_mode_sort(&scheduler, &mut data, &config);
                    assert!(teamsteal_data::is_sorted(&data));
                });
            },
        );
    }
    group.finish();
}

fn benches(c: &mut Criterion) {
    bench_steal_amount(c);
    bench_partition_block_size(c);
    bench_mixed_mode_threshold(c);
}

criterion_group!(ablation, benches);
criterion_main!(ablation);
