//! Criterion benchmarks for the mixed-mode application kernels (experiment
//! M2 in DESIGN.md): each kernel is measured in its sequential form and in
//! its mixed-mode (team-task) form on the same scheduler, so the relative
//! shape — how much a single long-lived team buys over sequential execution,
//! and how the kernels compare with a fork-join formulation where one exists
//! — can be tracked on any host.
//!
//! Sizes are deliberately modest so `cargo bench --workspace` stays tractable
//! on a laptop / CI container; the scaling harness (`--bin scaling`) is the
//! instrument for larger sweeps.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use teamsteal_apps::bfs::{bfs_mixed_with, bfs_sequential, CsrGraph};
use teamsteal_apps::histogram::{histogram_mixed_with, histogram_sequential};
use teamsteal_apps::matmul::{matmul_mixed_with, matmul_sequential, Matrix};
use teamsteal_apps::merge::{merge_sort_mixed_with, MergeSortConfig};
use teamsteal_apps::reduce::team_reduce_with;
use teamsteal_apps::scan::scan_with;
use teamsteal_apps::stencil::{jacobi_mixed, jacobi_sequential, StencilConfig};
use teamsteal_core::Scheduler;
use teamsteal_data::Distribution;

const THREADS: usize = 4;

fn group_defaults<'a>(
    c: &'a mut Criterion,
    name: &str,
) -> criterion::BenchmarkGroup<'a, criterion::measurement::WallTime> {
    let mut group = c.benchmark_group(name);
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(900));
    group
}

fn bench_reduce(c: &mut Criterion) {
    let mut group = group_defaults(c, "apps_reduce");
    let scheduler = Scheduler::with_threads(THREADS);
    let n = 1 << 20;
    let data: Vec<u64> = (0..n as u64).map(|i| i % 1009).collect();
    group.throughput(Throughput::Elements(n as u64));
    group.bench_function("sequential_sum", |b| {
        b.iter(|| data.iter().copied().fold(0u64, |a, x| a.wrapping_add(x)))
    });
    group.bench_function("team_sum", |b| {
        b.iter(|| team_reduce_with(&scheduler, &data, 0u64, |a, x| a.wrapping_add(x), 4096))
    });
    group.finish();
}

fn bench_scan(c: &mut Criterion) {
    let mut group = group_defaults(c, "apps_scan");
    let scheduler = Scheduler::with_threads(THREADS);
    let n = 1 << 20;
    let data: Vec<u64> = (0..n as u64).map(|i| i % 17).collect();
    let mut out = vec![0u64; n];
    group.throughput(Throughput::Elements(n as u64));
    group.bench_function("sequential_inclusive", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for (o, &x) in out.iter_mut().zip(&data) {
                acc += x;
                *o = acc;
            }
            acc
        })
    });
    group.bench_function("team_inclusive", |b| {
        b.iter(|| scan_with(&scheduler, &data, &mut out, 0u64, |a, x| a + x, true, 4096))
    });
    group.finish();
}

fn bench_merge_sort(c: &mut Criterion) {
    let mut group = group_defaults(c, "apps_merge_sort");
    let scheduler = Scheduler::with_threads(THREADS);
    let n = 1 << 19;
    let input = Distribution::Random.generate(n, THREADS, 7);
    let config = MergeSortConfig {
        leaf_size: 2048,
        min_elements_per_member: 8192,
    };
    group.throughput(Throughput::Elements(n as u64));
    group.bench_function("std_sort_unstable", |b| {
        b.iter(|| {
            let mut v = input.clone();
            v.sort_unstable();
            v
        })
    });
    group.bench_function("mixed_mode_merge_sort", |b| {
        b.iter(|| {
            let mut v = input.clone();
            merge_sort_mixed_with(&scheduler, &mut v, &config);
            v
        })
    });
    group.finish();
}

fn bench_matmul(c: &mut Criterion) {
    let mut group = group_defaults(c, "apps_matmul");
    let scheduler = Scheduler::with_threads(THREADS);
    let n = 192usize;
    let a = Matrix::from_fn(n, n, |i, j| ((i * 31 + j * 7) % 13) as f64 * 0.5);
    let b = Matrix::from_fn(n, n, |i, j| ((i * 17 + j * 3) % 11) as f64 * 0.25);
    group.throughput(Throughput::Elements((n * n * n) as u64));
    group.bench_function("sequential_ikj", |bch| bch.iter(|| matmul_sequential(&a, &b)));
    group.bench_function("mixed_mode_bands", |bch| {
        bch.iter(|| matmul_mixed_with(&scheduler, &a, &b, 1 << 14))
    });
    group.finish();
}

fn bench_stencil(c: &mut Criterion) {
    let mut group = group_defaults(c, "apps_stencil");
    let scheduler = Scheduler::with_threads(THREADS);
    let grid: Vec<f64> = (0..200_000).map(|i| (i % 101) as f64).collect();
    let config = StencilConfig {
        sweeps: 20,
        alpha: 0.25,
        min_cells_per_member: 4096,
    };
    group.throughput(Throughput::Elements((grid.len() * config.sweeps) as u64));
    group.bench_function("sequential", |b| b.iter(|| jacobi_sequential(&grid, &config)));
    group.bench_function("team_reused_across_sweeps", |b| {
        b.iter(|| jacobi_mixed(&scheduler, &grid, &config))
    });
    group.finish();
}

fn bench_bfs(c: &mut Criterion) {
    let mut group = group_defaults(c, "apps_bfs");
    let scheduler = Scheduler::with_threads(THREADS);
    let graph = CsrGraph::grid(400, 250);
    group.throughput(Throughput::Elements(graph.num_edges() as u64));
    group.bench_function("sequential", |b| b.iter(|| bfs_sequential(&graph, 0)));
    group.bench_function("mixed_mode_levels", |b| {
        b.iter(|| bfs_mixed_with(&scheduler, &graph, 0, 2048))
    });
    group.finish();
}

fn bench_histogram(c: &mut Criterion) {
    let mut group = group_defaults(c, "apps_histogram");
    let scheduler = Scheduler::with_threads(THREADS);
    let data = Distribution::Gauss.generate(1 << 20, THREADS, 11);
    group.throughput(Throughput::Elements(data.len() as u64));
    for buckets in [16usize, 256] {
        group.bench_with_input(
            BenchmarkId::new("sequential", buckets),
            &buckets,
            |b, &buckets| b.iter(|| histogram_sequential(&data, buckets)),
        );
        group.bench_with_input(
            BenchmarkId::new("team_privatized", buckets),
            &buckets,
            |b, &buckets| b.iter(|| histogram_mixed_with(&scheduler, &data, buckets, 4096)),
        );
    }
    group.finish();
}

fn benches(c: &mut Criterion) {
    bench_reduce(c);
    bench_scan(c);
    bench_merge_sort(c);
    bench_matmul(c);
    bench_stencil(c);
    bench_bfs(c);
    bench_histogram(c);
}

criterion_group!(apps_kernels, benches);
criterion_main!(apps_kernels);
