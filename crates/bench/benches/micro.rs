//! Criterion micro-benchmarks (experiment M1 in DESIGN.md):
//!
//! * work-stealing deque operations (push/pop, steal),
//! * task spawn/execute overhead of the scheduler (the degenerate r = 1 case
//!   the paper argues has "no extra overhead"),
//! * team formation latency as a function of team size (the cost of the
//!   "single extra CAS per thread" protocol end to end),
//! * small sorts with every variant, so relative shapes can be tracked over
//!   time.
//!
//! The suites use small sample counts so `cargo bench --workspace` stays
//! tractable on a laptop-class (or CI) machine; the table harness
//! (`--bin tables`) is the instrument for the paper-scale numbers.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use teamsteal_bench::{Variant, VariantRunner};
use teamsteal_core::Scheduler;
use teamsteal_data::Distribution;
use teamsteal_deque::Deque;
use teamsteal_sort::SortConfig;

fn configure(c: &mut Criterion) -> &mut Criterion {
    c
}

fn bench_deque(c: &mut Criterion) {
    let mut group = c.benchmark_group("deque");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600));
    group.throughput(Throughput::Elements(1000));
    group.bench_function("push_pop_bottom_1000", |b| {
        let q: Deque<usize> = Deque::new();
        b.iter(|| {
            for i in 0..1000 {
                q.push_bottom(i);
            }
            while q.pop_bottom().is_some() {}
        });
    });
    group.bench_function("push_steal_1000", |b| {
        let q: Deque<usize> = Deque::new();
        b.iter(|| {
            for i in 0..1000 {
                q.push_bottom(i);
            }
            while q.steal_top().success().is_some() {}
        });
    });
    group.finish();
}

fn bench_spawn_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("spawn_overhead");
    group
        .sample_size(15)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800));
    for threads in [1usize, 4] {
        let scheduler = Scheduler::with_threads(threads);
        group.throughput(Throughput::Elements(1000));
        group.bench_with_input(
            BenchmarkId::new("spawn_1000_empty_tasks", threads),
            &threads,
            |b, _| {
                b.iter(|| {
                    let counter = Arc::new(AtomicUsize::new(0));
                    scheduler.scope(|scope| {
                        for _ in 0..1000 {
                            let counter = Arc::clone(&counter);
                            scope.spawn(move |_| {
                                counter.fetch_add(1, Ordering::Relaxed);
                            });
                        }
                    });
                    assert_eq!(counter.load(Ordering::Relaxed), 1000);
                });
            },
        );
    }
    group.finish();
}

fn bench_team_formation(c: &mut Criterion) {
    let mut group = c.benchmark_group("team_formation");
    group
        .sample_size(15)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800));
    for team in [2usize, 4, 8] {
        let scheduler = Scheduler::with_threads(8);
        group.bench_with_input(BenchmarkId::new("build_and_run", team), &team, |b, &team| {
            b.iter(|| {
                let hits = Arc::new(AtomicUsize::new(0));
                let h = Arc::clone(&hits);
                scheduler.run_team(team, move |ctx| {
                    h.fetch_add(1, Ordering::Relaxed);
                    ctx.barrier();
                });
                assert_eq!(hits.load(Ordering::Relaxed), team);
            });
        });
    }
    group.finish();
}

fn bench_sort_variants(c: &mut Criterion) {
    let mut group = c.benchmark_group("sort_small");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(1));
    let n = 200_000usize;
    let input = Distribution::Random.generate(n, 4, 99);
    let config = SortConfig {
        cutoff: 512,
        block_size: 1024,
        min_blocks_per_thread: 4,
    };
    let mut runner = VariantRunner::new(4, config);
    group.throughput(Throughput::Elements(n as u64));
    for variant in [
        Variant::SeqStd,
        Variant::SeqQs,
        Variant::Fork,
        Variant::RayonJoin,
        Variant::MmPar,
    ] {
        group.bench_function(variant.label(), |b| {
            b.iter(|| runner.measure(variant, &input));
        });
    }
    group.finish();
}

fn benches(c: &mut Criterion) {
    let c = configure(c);
    bench_deque(c);
    bench_spawn_overhead(c);
    bench_team_formation(c);
    bench_sort_variants(c);
}

criterion_group!(micro, benches);
criterion_main!(micro);
