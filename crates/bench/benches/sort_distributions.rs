//! Criterion benchmark over the paper's four input distributions (experiment
//! M3 in DESIGN.md): one fixed input size, every distribution × the main
//! sorting variants.  The tables harness reports absolute seconds in the
//! paper's layout; this bench gives criterion's statistical view of the same
//! comparison (and adds the task-parallel sample sort, which the tables do
//! not include) so regressions in any single variant/distribution pair are
//! caught.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use teamsteal_bench::{Variant, VariantRunner};
use teamsteal_core::Scheduler;
use teamsteal_data::Distribution;
use teamsteal_sort::{sample_sort, SortConfig};

const THREADS: usize = 4;
const SIZE: usize = 1 << 19;

fn bench_distributions(c: &mut Criterion) {
    let config = SortConfig {
        cutoff: 512,
        block_size: 1024,
        min_blocks_per_thread: 4,
    };
    let mut runner = VariantRunner::new(THREADS, config.clone());
    let sample_scheduler = Scheduler::with_threads(THREADS);

    for distribution in Distribution::ALL {
        let input = distribution.generate(SIZE, THREADS, 4242);
        let mut group = c.benchmark_group(format!("sort_{}", distribution.label().to_lowercase()));
        group
            .sample_size(10)
            .warm_up_time(Duration::from_millis(200))
            .measurement_time(Duration::from_secs(1))
            .throughput(Throughput::Elements(SIZE as u64));

        for variant in [
            Variant::SeqStd,
            Variant::Fork,
            Variant::RandFork,
            Variant::RayonJoin,
            Variant::MmPar,
        ] {
            group.bench_with_input(
                BenchmarkId::new(variant.label(), SIZE),
                &input,
                |b, input| b.iter(|| runner.measure(variant, input)),
            );
        }
        group.bench_with_input(BenchmarkId::new("SampleSort", SIZE), &input, |b, input| {
            b.iter(|| {
                let mut data = input.clone();
                sample_sort(&sample_scheduler, &mut data, &config);
                assert!(teamsteal_data::is_sorted(&data));
                data
            })
        });
        group.finish();
    }
}

criterion_group!(sort_distributions, bench_distributions);
criterion_main!(sort_distributions);
