//! Integration tests for the `perf` bin: the harness itself must never rot.
//!
//! The bin is run at `--smoke` scale (tiny inputs, 2 repetitions) through
//! the path CI uses, and its output files are parsed back through the
//! report layer.  A doctored baseline with absurdly fast times verifies the
//! `--check` regression gate actually fails.

use std::path::{Path, PathBuf};
use std::process::Command;

use teamsteal_bench::report::Report;

/// A fresh scratch directory under the target dir (no tempfile crate in the
/// offline build); unique per test to keep them independent.
fn scratch_dir(test: &str) -> PathBuf {
    let dir = Path::new(env!("CARGO_TARGET_TMPDIR")).join(format!("perf-{test}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

fn run_perf(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_perf"))
        .args(args)
        .output()
        .expect("perf bin runs")
}

#[test]
fn smoke_run_writes_complete_parseable_reports() {
    let dir = scratch_dir("smoke");
    let out = run_perf(&["--smoke", "--out-dir", dir.to_str().unwrap()]);
    assert!(
        out.status.success(),
        "perf --smoke failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    let sort_text = std::fs::read_to_string(dir.join("BENCH_sort.json")).expect("sort report");
    let sort = Report::from_json_str(&sort_text).expect("sort report parses");
    assert_eq!(sort.group, "sort");
    // Every requested scenario must be present: 4 distributions for each of
    // the 4 tracked variants (plus the Seq/STL reference).
    for name in ["Seq/STL", "SeqQS", "Fork", "Randfork", "MMPar"] {
        for dist in ["Random", "Gauss", "Buckets", "Staggered"] {
            assert!(
                sort.records
                    .iter()
                    .any(|r| r.name == name && r.distribution.as_deref() == Some(dist)),
                "missing sort record {name}/{dist}"
            );
        }
    }
    for record in &sort.records {
        assert_eq!(record.secs.samples_s.len(), record.repetitions);
        assert!(record.secs.median_s > 0.0, "{} has zero median", record.name);
        // Parallel variants carry a speedup against the Seq/STL reference.
        if record.name == "MMPar" {
            assert!(record.speedup_vs_seq.is_some());
        }
    }
    // The scheduler-backed variants must carry scheduler metrics; the
    // sequential ones must not.
    let spawned: u64 = sort
        .records
        .iter()
        .filter(|r| matches!(r.name.as_str(), "Fork" | "Randfork" | "MMPar"))
        .map(|r| r.metrics.tasks_spawned)
        .sum();
    assert!(spawned > 0, "parallel sort records carry no metrics");
    for record in sort.records.iter().filter(|r| r.name == "Seq/STL") {
        assert_eq!(record.metrics.total_executions(), 0);
    }

    let kernel_text =
        std::fs::read_to_string(dir.join("BENCH_kernels.json")).expect("kernel report");
    let kernels = Report::from_json_str(&kernel_text).expect("kernel report parses");
    assert_eq!(kernels.group, "kernel");
    for name in ["reduce", "scan", "matmul", "stencil", "bfs", "histogram"] {
        let record = kernels
            .records
            .iter()
            .find(|r| r.name == name)
            .unwrap_or_else(|| panic!("missing kernel record {name}"));
        assert!(record.secs.median_s > 0.0);
        assert!(record.seq_reference_s.is_some());
        assert!(record.speedup_vs_seq.is_some());
    }

    // The soak scenario carries the memory-footprint gauges in `extra` and
    // its reclamation counters in the ordinary metrics block.
    let soak = kernels
        .records
        .iter()
        .find(|r| r.group == "soak" && r.name == "soak")
        .expect("missing soak record");
    assert!(soak.secs.median_s > 0.0);
    let extra = soak.extra.as_ref().expect("soak record has extra gauges");
    for gauge in [
        "peak_injector_segments",
        "final_injector_segments",
        "peak_deferred_items",
    ] {
        assert!(
            extra.get(gauge).and_then(|v| v.as_f64()).is_some(),
            "soak extra missing {gauge}"
        );
    }
    // Even at smoke scale the root tasks cross several injection segments,
    // so the retained count must stay far below size/SEGMENT_SLOTS if
    // reclamation works; the dedicated reclamation integration tests pin
    // the tight bounds, here we only guard against total regression.
    let peak = extra
        .get("peak_injector_segments")
        .and_then(|v| v.as_f64())
        .unwrap();
    assert!(
        peak < soak.size as f64 / 64.0,
        "soak retained {peak} segments over {} roots — reclamation inert?",
        soak.size
    );

    // The parking scenarios: wakeup_latency's samples are the individual
    // submit→start latencies and its metrics must show notified wakeups.
    let wakeup = kernels
        .records
        .iter()
        .find(|r| r.group == "wakeup_latency")
        .expect("missing wakeup_latency record");
    assert_eq!(wakeup.secs.samples_s.len(), wakeup.repetitions);
    assert!(wakeup.secs.median_s > 0.0);
    assert!(
        wakeup.metrics.wakeups > 0,
        "submissions never woke a parked worker: {:?}",
        wakeup.metrics
    );
    assert!(
        wakeup.metrics.wake_latency.total() > 0,
        "no wake latencies recorded: {:?}",
        wakeup.metrics
    );
    // idle_burn is skipped only on platforms without a process-CPU clock;
    // CI and the recording machine are Linux.
    if cfg!(target_os = "linux") {
        let idle = kernels
            .records
            .iter()
            .find(|r| r.group == "idle_burn")
            .expect("missing idle_burn record");
        let burn = idle
            .extra
            .as_ref()
            .and_then(|e| e.get("cpu_per_wall"))
            .and_then(|v| v.as_f64())
            .expect("idle_burn extra missing cpu_per_wall");
        // Parked workers burn (nearly) nothing; 50% of a core would mean
        // the scenario regressed all the way back to busy-polling.  The
        // sleep-poll baseline burned ~5% per idle worker, so even on a
        // noisy CI host this bound separates parking from polling.
        assert!(
            burn < 0.5,
            "idle scheduler burned {burn} CPU-seconds per wall-second"
        );
    }
}

#[test]
fn only_soak_runs_without_other_families() {
    let dir = scratch_dir("only-soak");
    let out = run_perf(&["--smoke", "--only", "soak", "--out-dir", dir.to_str().unwrap()]);
    assert!(
        out.status.success(),
        "perf --smoke --only soak failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(
        !dir.join("BENCH_sort.json").exists(),
        "--only soak must not write a sort report"
    );
    let kernels =
        Report::from_json_str(&std::fs::read_to_string(dir.join("BENCH_kernels.json")).unwrap())
            .unwrap();
    assert!(kernels.records.iter().all(|r| r.group == "soak"));
    assert!(!kernels.records.is_empty());
}

#[test]
fn check_mode_fails_on_injected_regression_and_passes_on_honest_baseline() {
    let dir = scratch_dir("check");
    let out = run_perf(&["--smoke", "--out-dir", dir.to_str().unwrap(), "--seed", "7"]);
    assert!(out.status.success());

    let honest = dir.join("BENCH_sort.json");
    let text = std::fs::read_to_string(&honest).unwrap();
    let mut baseline = Report::from_json_str(&text).unwrap();

    // Honest baseline with a generous tolerance: same machine, same seed —
    // must pass.
    let pass_dir = scratch_dir("check-pass");
    let out = run_perf(&[
        "--smoke",
        "--seed",
        "7",
        "--out-dir",
        pass_dir.to_str().unwrap(),
        "--check",
        honest.to_str().unwrap(),
        "--tolerance",
        "100000",
    ]);
    assert!(
        out.status.success(),
        "honest baseline flagged as regression: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    // Inject a regression: pretend the baseline was 1000x faster.
    for record in &mut baseline.records {
        record.secs.median_s /= 1000.0;
    }
    let doctored = dir.join("baseline_doctored.json");
    std::fs::write(&doctored, baseline.to_json_string()).unwrap();
    let fail_dir = scratch_dir("check-fail");
    let out = run_perf(&[
        "--smoke",
        "--seed",
        "7",
        "--out-dir",
        fail_dir.to_str().unwrap(),
        "--check",
        doctored.to_str().unwrap(),
    ]);
    assert_eq!(
        out.status.code(),
        Some(1),
        "doctored baseline must fail the check: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("check: FAILED"));
    assert!(stderr.contains("MMPar"));
}

#[test]
fn in_place_check_compares_against_the_previous_contents() {
    // Regression test: with --out-dir equal to the baseline's directory the
    // fresh report overwrites the baseline file; the gate must still compare
    // against the baseline as it was BEFORE the run, not against itself.
    let dir = scratch_dir("check-in-place");
    let out = run_perf(&["--smoke", "--seed", "3", "--out-dir", dir.to_str().unwrap()]);
    assert!(out.status.success());
    let baseline_path = dir.join("BENCH_sort.json");
    let mut baseline =
        Report::from_json_str(&std::fs::read_to_string(&baseline_path).unwrap()).unwrap();
    for record in &mut baseline.records {
        record.secs.median_s /= 1000.0;
    }
    std::fs::write(&baseline_path, baseline.to_json_string()).unwrap();
    let out = run_perf(&[
        "--smoke",
        "--seed",
        "3",
        "--out-dir",
        dir.to_str().unwrap(),
        "--check",
        baseline_path.to_str().unwrap(),
    ]);
    assert_eq!(
        out.status.code(),
        Some(1),
        "in-place check must not compare the fresh report against itself: {}",
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn check_fails_when_no_scenario_matches_the_baseline() {
    // In a full (non-smoke) run, a baseline recorded at a different size
    // matches nothing; a gate that compared zero scenarios must fail loudly
    // instead of passing.  (Under --smoke the harness instead re-measures at
    // the baseline's own parameters, so a mismatch cannot occur there.)
    let dir = scratch_dir("check-mismatch");
    let out = run_perf(&["--smoke", "--out-dir", dir.to_str().unwrap()]);
    assert!(out.status.success());
    let baseline = dir.join("BENCH_sort.json");
    let other_dir = scratch_dir("check-mismatch-run");
    let out = run_perf(&[
        "--size",
        "30000", // differs from the baseline's 20000
        "--threads",
        "2",
        "--reps",
        "1",
        "--warmups",
        "0",
        "--only",
        "sort",
        "--out-dir",
        other_dir.to_str().unwrap(),
        "--check",
        baseline.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains("no scenario"));
}

#[test]
fn partial_only_run_preserves_the_skipped_familys_records() {
    // `--only micro` over an existing BENCH_kernels.json must carry the
    // kernel records over instead of silently discarding them (and vice
    // versa for `--only kernel`).
    let dir = scratch_dir("only-preserves");
    let out = run_perf(&["--smoke", "--out-dir", dir.to_str().unwrap()]);
    assert!(out.status.success());
    let kernels_path = dir.join("BENCH_kernels.json");
    let full = Report::from_json_str(&std::fs::read_to_string(&kernels_path).unwrap()).unwrap();
    let kernel_count = full.records.iter().filter(|r| r.group == "kernel").count();
    let micro_count = full.records.iter().filter(|r| r.group == "micro").count();
    assert!(kernel_count > 0 && micro_count > 0);

    let out = run_perf(&["--smoke", "--only", "micro", "--out-dir", dir.to_str().unwrap()]);
    assert!(out.status.success());
    let merged = Report::from_json_str(&std::fs::read_to_string(&kernels_path).unwrap()).unwrap();
    assert_eq!(
        merged.records.iter().filter(|r| r.group == "kernel").count(),
        kernel_count,
        "a micro-only run must preserve the existing kernel records"
    );
    assert_eq!(
        merged.records.iter().filter(|r| r.group == "micro").count(),
        micro_count,
        "the micro records must be refreshed, not duplicated"
    );
    // Order stays kernel-first, micro-last.
    let first_micro = merged.records.iter().position(|r| r.group == "micro").unwrap();
    assert!(merged.records[..first_micro].iter().all(|r| r.group == "kernel"));
}

#[test]
fn smoke_check_compares_at_the_baselines_parameters() {
    // --smoke --check must be meaningful against a full-size baseline: the
    // harness re-measures MMPar at the baseline's recorded cells.  A
    // non-regressed baseline (medians forced to ~infinity) therefore passes
    // even though the smoke sweep itself used different sizes.
    let dir = scratch_dir("smoke-check-params");
    let out = run_perf(&["--smoke", "--seed", "7", "--out-dir", dir.to_str().unwrap()]);
    assert!(out.status.success());
    let baseline_path = dir.join("BENCH_sort.json");
    let mut baseline =
        Report::from_json_str(&std::fs::read_to_string(&baseline_path).unwrap()).unwrap();
    for record in &mut baseline.records {
        record.secs.median_s *= 1000.0; // current run is guaranteed faster
    }
    std::fs::write(&baseline_path, baseline.to_json_string()).unwrap();
    let run_dir = scratch_dir("smoke-check-params-run");
    let out = run_perf(&[
        "--smoke",
        "--seed",
        "7",
        "--size",
        "12345", // deliberately different from the baseline's 20000
        "--only",
        "sort",
        "--out-dir",
        run_dir.to_str().unwrap(),
        "--check",
        baseline_path.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "smoke check must compare at baseline parameters: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("check: OK"), "stdout: {stdout}");
}

#[test]
fn explicit_flags_win_over_smoke_defaults_regardless_of_order() {
    let dir = scratch_dir("smoke-order");
    let out = run_perf(&[
        "--threads",
        "1",
        "--smoke",
        "--out-dir",
        dir.to_str().unwrap(),
    ]);
    assert!(out.status.success());
    let sort =
        Report::from_json_str(&std::fs::read_to_string(dir.join("BENCH_sort.json")).unwrap())
            .unwrap();
    assert!(
        sort.records.iter().all(|r| r.threads == 1),
        "--threads 1 before --smoke must not be overridden by the smoke defaults"
    );
}

#[test]
fn bad_arguments_exit_with_usage_error() {
    let out = run_perf(&["--no-such-flag"]);
    assert_eq!(out.status.code(), Some(2));
    let out = run_perf(&["--threads", "0"]);
    assert_eq!(out.status.code(), Some(2));
}
