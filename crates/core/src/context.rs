//! The execution context handed to every running task.

use std::sync::Arc;

use crate::task::{Job, JobSlot, OnceJob, ScopeState, TeamJob};
use crate::team::TeamBarrier;

/// Internal interface the executing worker exposes to the task context so
/// tasks can spawn further tasks onto the worker's own queues (the paper's
/// `pushBottom` from inside `task.run()`).
pub(crate) trait SpawnTarget {
    /// Allocates a task node for `job` (from the worker's arena when one is
    /// available) and pushes it onto the executing worker's local queue
    /// (bottom), choosing the queue level from the requirement.  Increments
    /// the scope's pending counter.  `requirement_min < requirement` marks a
    /// **moldable** task (DESIGN.md §15): the worker picks the effective
    /// team size in `requirement_min ..= requirement` from current load.
    fn spawn_job_slot(
        &self,
        job: JobSlot,
        requirement: usize,
        requirement_min: usize,
        scope: &Arc<ScopeState>,
    );
    /// Global id of the executing worker thread.
    fn worker_id(&self) -> usize;
    /// Total number of worker threads in the scheduler.
    fn num_threads(&self) -> usize;
}

/// Context of one task execution on one worker.
///
/// For sequential tasks (`r = 1`) the team consists of the executing worker
/// only.  For team tasks every member receives its own context with a
/// distinct [`local_id`](TaskContext::local_id) in `0 .. team_size`.
pub struct TaskContext<'a> {
    pub(crate) worker: &'a dyn SpawnTarget,
    pub(crate) scope: &'a Arc<ScopeState>,
    /// Thread requirement requested at spawn time (`r`).
    pub(crate) requested: usize,
    /// Size of the executing team (may exceed `requested` when the
    /// requirement was rounded up to a full hierarchy group, Refinement 2).
    pub(crate) team_size: usize,
    /// First global worker id of the team.
    pub(crate) team_base: usize,
    /// This member's consecutive id within the team.
    pub(crate) local_id: usize,
    /// Barrier shared by the team for this task (absent for singleton teams).
    pub(crate) barrier: Option<&'a Arc<TeamBarrier>>,
}

impl<'a> TaskContext<'a> {
    /// The executing member's id within the team, `0 ≤ local_id < team_size`
    /// (Section 3.1: global id minus the leftmost id of the team).
    #[inline]
    pub fn local_id(&self) -> usize {
        self.local_id
    }

    /// Number of threads executing this task together.
    #[inline]
    pub fn team_size(&self) -> usize {
        self.team_size
    }

    /// Thread requirement `r` requested when the task was spawned.  When the
    /// requirement is not a power of two (Refinement 2) the executing team
    /// may be larger; surplus members can check [`is_surplus`](Self::is_surplus).
    #[inline]
    pub fn requested_threads(&self) -> usize {
        self.requested
    }

    /// `true` for team members beyond the requested thread count (only
    /// possible for non power-of-two requirements, Refinement 2).  Such
    /// members may simply return from the job body, or share the work if the
    /// job knows how to use them.
    #[inline]
    pub fn is_surplus(&self) -> bool {
        self.local_id >= self.requested
    }

    /// Global id of the leftmost worker in the team.
    #[inline]
    pub fn team_base(&self) -> usize {
        self.team_base
    }

    /// Global id of the worker executing this context.
    #[inline]
    pub fn global_thread_id(&self) -> usize {
        self.worker.worker_id()
    }

    /// Total number of worker threads in the scheduler.
    #[inline]
    pub fn num_threads(&self) -> usize {
        self.worker.num_threads()
    }

    /// Waits until every team member has reached the barrier.  Returns `true`
    /// on exactly one member per round (the last arriver).  A no-op returning
    /// `true` for singleton teams.
    pub fn barrier(&self) -> bool {
        match self.barrier {
            Some(b) => b.wait(),
            None => true,
        }
    }

    /// The team barrier, if this execution has more than one member.
    pub fn team_barrier(&self) -> Option<&TeamBarrier> {
        self.barrier.map(|b| &**b)
    }

    /// Spawns a sequential (`r = 1`) child task onto the executing worker's
    /// local queue.  The task becomes part of the same scope; the enclosing
    /// [`Scheduler::scope`](crate::Scheduler::scope) call returns only after
    /// it (and all tasks it transitively spawns) has finished.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce(&TaskContext<'_>) + Send + 'static,
    {
        self.spawn_concrete(OnceJob::new(f));
    }

    /// Spawns a data-parallel child task requiring `threads` workers (the
    /// paper's `async(np) …`).  The closure is executed by every team member
    /// once the team has been built.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero or exceeds the number of scheduler
    /// threads.
    pub fn spawn_team<F>(&self, threads: usize, f: F)
    where
        F: Fn(&TaskContext<'_>) + Send + Sync + 'static,
    {
        self.spawn_concrete(TeamJob::new(threads, f));
    }

    /// Spawns a **moldable** data-parallel child task (DESIGN.md §15): any
    /// team size in `threads` (an inclusive range) can run the closure, and
    /// the scheduler picks the effective size from current load — small when
    /// the machine is saturated (no point building a team it cannot fill),
    /// large when workers sit idle.  The closure must therefore adapt to
    /// [`team_size`](TaskContext::team_size) like any other team job.
    ///
    /// `spawn_team_moldable(r..=r, f)` is equivalent to `spawn_team(r, f)`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty, starts at zero, or ends beyond the
    /// number of scheduler threads.
    pub fn spawn_team_moldable<F>(&self, threads: std::ops::RangeInclusive<usize>, f: F)
    where
        F: Fn(&TaskContext<'_>) + Send + Sync + 'static,
    {
        let (min, max) = (*threads.start(), *threads.end());
        assert!(min <= max, "moldable range {min}..={max} is empty");
        self.spawn_concrete(TeamJob::moldable(min, max, f));
    }

    /// Spawns an arbitrary [`Job`] implementation.
    ///
    /// # Panics
    ///
    /// Panics if the job's requirement is zero or exceeds the number of
    /// scheduler threads.
    pub fn spawn_job(&self, job: Box<dyn Job>) {
        let requirement = job.requirement();
        let requirement_min = job.requirement_min();
        self.check_requirement(requirement, requirement_min);
        self.worker
            .spawn_job_slot(JobSlot::Boxed(job), requirement, requirement_min, self.scope);
    }

    /// Spawns a concretely typed job, storing it inline in the task node
    /// when it fits (the common case for `spawn` / `spawn_team` closures).
    fn spawn_concrete<J: Job + 'static>(&self, job: J) {
        let requirement = job.requirement();
        let requirement_min = job.requirement_min();
        self.check_requirement(requirement, requirement_min);
        self.worker
            .spawn_job_slot(JobSlot::new(job), requirement, requirement_min, self.scope);
    }

    fn check_requirement(&self, requirement: usize, requirement_min: usize) {
        assert!(requirement_min >= 1, "a task requires at least one thread");
        assert!(
            requirement_min <= requirement,
            "minimum requirement {requirement_min} exceeds the requirement {requirement}"
        );
        assert!(
            requirement <= self.worker.num_threads(),
            "task requires {requirement} threads but the scheduler only has {}",
            self.worker.num_threads()
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;

    struct RecordingTarget {
        spawned: RefCell<Vec<(usize, usize)>>,
        threads: usize,
    }

    impl SpawnTarget for RecordingTarget {
        fn spawn_job_slot(
            &self,
            job: JobSlot,
            requirement: usize,
            requirement_min: usize,
            scope: &Arc<ScopeState>,
        ) {
            drop(job);
            self.spawned.borrow_mut().push((requirement, requirement_min));
            // The test target executes nothing: account the task as
            // spawned-and-finished immediately.
            scope.task_spawned();
            scope.task_finished();
        }
        fn worker_id(&self) -> usize {
            3
        }
        fn num_threads(&self) -> usize {
            self.threads
        }
    }

    fn test_ctx<'a>(target: &'a RecordingTarget, scope: &'a Arc<ScopeState>) -> TaskContext<'a> {
        TaskContext {
            worker: target,
            scope,
            requested: 3,
            team_size: 4,
            team_base: 0,
            local_id: 3,
            barrier: None,
        }
    }

    #[test]
    fn accessors_reflect_team_shape() {
        let target = RecordingTarget {
            spawned: RefCell::new(Vec::new()),
            threads: 8,
        };
        let scope = ScopeState::new();
        let ctx = test_ctx(&target, &scope);
        assert_eq!(ctx.local_id(), 3);
        assert_eq!(ctx.team_size(), 4);
        assert_eq!(ctx.requested_threads(), 3);
        assert!(ctx.is_surplus(), "local id 3 with 3 requested threads is surplus");
        assert_eq!(ctx.global_thread_id(), 3);
        assert_eq!(ctx.num_threads(), 8);
        assert!(ctx.barrier(), "no barrier behaves like a trivially open one");
        assert!(ctx.team_barrier().is_none());
    }

    #[test]
    fn spawn_routes_through_worker() {
        let target = RecordingTarget {
            spawned: RefCell::new(Vec::new()),
            threads: 8,
        };
        let scope = ScopeState::new();
        let ctx = test_ctx(&target, &scope);
        ctx.spawn(|_| {});
        ctx.spawn_team(4, |_| {});
        ctx.spawn_team_moldable(2..=6, |_| {});
        assert_eq!(*target.spawned.borrow(), vec![(1, 1), (4, 4), (6, 2)]);
        assert_eq!(scope.pending(), 0, "test target finishes tasks immediately");
    }

    #[test]
    #[should_panic]
    fn spawn_team_rejects_oversized_requirement() {
        let target = RecordingTarget {
            spawned: RefCell::new(Vec::new()),
            threads: 4,
        };
        let scope = ScopeState::new();
        let ctx = test_ctx(&target, &scope);
        ctx.spawn_team(8, |_| {});
    }

    #[test]
    #[should_panic]
    fn spawn_team_moldable_rejects_empty_range() {
        let target = RecordingTarget {
            spawned: RefCell::new(Vec::new()),
            threads: 4,
        };
        let scope = ScopeState::new();
        let ctx = test_ctx(&target, &scope);
        #[allow(clippy::reversed_empty_ranges)]
        ctx.spawn_team_moldable(3..=2, |_| {});
    }

    #[test]
    #[should_panic]
    fn spawn_team_moldable_rejects_oversized_ceiling() {
        let target = RecordingTarget {
            spawned: RefCell::new(Vec::new()),
            threads: 4,
        };
        let scope = ScopeState::new();
        let ctx = test_ctx(&target, &scope);
        ctx.spawn_team_moldable(2..=8, |_| {});
    }
}
