//! The public scheduler front-end: thread pool construction, scopes and
//! metrics.

use std::sync::Arc;
use std::thread::JoinHandle;

use teamsteal_topology::{StealPolicy, Topology};

use crate::cancel::CancelCell;
use crate::config::{SchedulerConfig, StealAmount};
use crate::context::TaskContext;
use crate::metrics::MetricsSnapshot;
use crate::task::{Job, JobSlot, OnceJob, ScopeState, TaskNode, TeamJob};
use crate::worker::{SchedulerShared, Worker};

/// Builder for a [`Scheduler`].
///
/// ```
/// use teamsteal_core::Scheduler;
/// use teamsteal_topology::StealPolicy;
///
/// let scheduler = Scheduler::builder()
///     .threads(4)
///     .steal_policy(StealPolicy::Deterministic)
///     .build();
/// assert_eq!(scheduler.num_threads(), 4);
/// ```
#[derive(Debug, Clone, Default)]
pub struct SchedulerBuilder {
    config: SchedulerConfig,
}

impl SchedulerBuilder {
    /// Sets the number of worker threads (the paper's `p`).
    ///
    /// ```
    /// use teamsteal_core::Scheduler;
    ///
    /// let scheduler = Scheduler::builder().threads(3).build();
    /// assert_eq!(scheduler.num_threads(), 3);
    /// ```
    pub fn threads(mut self, threads: usize) -> Self {
        self.config.num_threads = threads;
        self
    }

    /// Sets an explicit machine topology (Refinement 3).  Its size must match
    /// the configured thread count.
    ///
    /// ```
    /// use teamsteal_core::{Scheduler, Topology};
    ///
    /// let scheduler = Scheduler::builder()
    ///     .threads(4)
    ///     .topology(Topology::power_of_two(4))
    ///     .build();
    /// assert_eq!(scheduler.topology().num_threads(), 4);
    /// ```
    pub fn topology(mut self, topology: Topology) -> Self {
        self.config.topology = Some(topology);
        self
    }

    /// Sets the partner / victim selection policy.
    ///
    /// [`StealPolicy::Deterministic`] is the paper's team-building scheduler;
    /// [`StealPolicy::UniformRandom`] is the classic randomized work-stealer
    /// (the *Randfork* baseline) and supports only `r = 1` tasks.
    ///
    /// ```
    /// use teamsteal_core::{Scheduler, StealPolicy};
    ///
    /// let scheduler = Scheduler::builder()
    ///     .threads(2)
    ///     .steal_policy(StealPolicy::UniformRandom)
    ///     .build();
    /// scheduler.run(|_| {});
    /// ```
    pub fn steal_policy(mut self, policy: StealPolicy) -> Self {
        self.config.steal_policy = policy;
        self
    }

    /// Sets how many tasks a successful steal transfers.
    ///
    /// ```
    /// use teamsteal_core::{Scheduler, StealAmount};
    ///
    /// let scheduler = Scheduler::builder()
    ///     .threads(2)
    ///     .steal_amount(StealAmount::HalfOfVictim)
    ///     .build();
    /// scheduler.run(|_| {});
    /// ```
    pub fn steal_amount(mut self, amount: StealAmount) -> Self {
        self.config.steal_amount = amount;
        self
    }

    /// Sets the PRNG seed used for randomized stealing.
    ///
    /// ```
    /// use teamsteal_core::{Scheduler, StealPolicy};
    ///
    /// let scheduler = Scheduler::builder()
    ///     .threads(2)
    ///     .steal_policy(StealPolicy::UniformRandom)
    ///     .seed(0xfeed)
    ///     .build();
    /// scheduler.run(|_| {});
    /// ```
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    /// Sets the defensive upper bound on one eventcount park (see
    /// [`SchedulerConfig::park_backstop`]): parked workers re-check their
    /// wait condition at least this often even if a notification were lost.
    /// The parking protocol does not rely on it; shrink it in paranoid
    /// deployments, grow it to make idle wake-ups even rarer.
    ///
    /// ```
    /// use std::time::Duration;
    /// use teamsteal_core::Scheduler;
    ///
    /// let scheduler = Scheduler::builder()
    ///     .threads(2)
    ///     .park_backstop(Duration::from_millis(250))
    ///     .build();
    /// scheduler.run(|_| {});
    /// ```
    pub fn park_backstop(mut self, backstop: std::time::Duration) -> Self {
        self.config.park_backstop = backstop;
        self
    }

    /// Sets the number of unproductive spin/yield rounds a blocking site
    /// burns before parking (see [`SchedulerConfig::park_spin_rounds`]).
    ///
    /// ```
    /// use teamsteal_core::Scheduler;
    ///
    /// let scheduler = Scheduler::builder()
    ///     .threads(2)
    ///     .park_spin_rounds(4)
    ///     .build();
    /// scheduler.run(|_| {});
    /// ```
    pub fn park_spin_rounds(mut self, rounds: u32) -> Self {
        self.config.park_spin_rounds = rounds;
        self
    }

    /// Sets the maximum worker count per injection-shard domain (see
    /// [`SchedulerConfig::domain_width`]): the external injection queue gets
    /// one shard per hierarchy domain of at most this width.  A width ≥ the
    /// thread count forces a single shard (the pre-sharding behaviour); a
    /// width of 1 gives one shard per worker.
    ///
    /// ```
    /// use teamsteal_core::Scheduler;
    ///
    /// let scheduler = Scheduler::builder()
    ///     .threads(4)
    ///     .domain_width(2)
    ///     .build();
    /// assert_eq!(scheduler.injector_shard_segments().len(), 2);
    /// ```
    pub fn domain_width(mut self, width: usize) -> Self {
        self.config.domain_width = width;
        self
    }

    /// Sets how long a coordinator keeps a completed team warm for reuse by
    /// a compatible next task (see [`SchedulerConfig::warm_keepalive`]).
    /// `Duration::ZERO` disables warm reuse — every completed team disbands
    /// immediately, the paper's behaviour.
    ///
    /// ```
    /// use std::time::Duration;
    /// use teamsteal_core::Scheduler;
    ///
    /// let scheduler = Scheduler::builder()
    ///     .threads(2)
    ///     .warm_keepalive(Duration::from_micros(500))
    ///     .build();
    /// scheduler.run(|_| {});
    /// ```
    pub fn warm_keepalive(mut self, keepalive: std::time::Duration) -> Self {
        self.config.warm_keepalive = keepalive;
        self
    }

    /// Sets the injector-backlog threshold that triggers **elastic shrink**
    /// (see [`SchedulerConfig::elastic_backlog_threshold`]): a team whose
    /// task completes while at least this many external tasks are pending
    /// disbands at that barrier instead of staying warm, releasing its
    /// members back to the steal loop.  `usize::MAX` disables the mechanism.
    ///
    /// ```
    /// use teamsteal_core::Scheduler;
    ///
    /// let scheduler = Scheduler::builder()
    ///     .threads(2)
    ///     .elastic_backlog_threshold(16)
    ///     .build();
    /// scheduler.run(|_| {});
    /// ```
    pub fn elastic_backlog_threshold(mut self, threshold: usize) -> Self {
        self.config.elastic_backlog_threshold = threshold;
        self
    }

    /// Sets the number of pre-registered epoch-pin slots for threads outside
    /// the worker pool (see [`SchedulerConfig::external_participants`]).
    /// Size it at least as large as the peak number of threads submitting
    /// concurrently: with the pool exhausted, surplus submitters spin-wait
    /// for a slot and are counted in `external_pin_waits`.
    ///
    /// ```
    /// use teamsteal_core::Scheduler;
    ///
    /// let scheduler = Scheduler::builder()
    ///     .threads(2)
    ///     .external_participants(128)
    ///     .build();
    /// assert_eq!(scheduler.external_pin_slots(), 128);
    /// ```
    pub fn external_participants(mut self, slots: usize) -> Self {
        self.config.external_participants = slots;
        self
    }

    /// Overrides the full configuration.
    ///
    /// ```
    /// use teamsteal_core::{Scheduler, SchedulerConfig};
    ///
    /// let scheduler = Scheduler::builder()
    ///     .config(SchedulerConfig::with_threads(2))
    ///     .build();
    /// assert_eq!(scheduler.num_threads(), 2);
    /// ```
    pub fn config(mut self, config: SchedulerConfig) -> Self {
        self.config = config;
        self
    }

    /// Builds the scheduler and starts its worker threads.
    pub fn build(self) -> Scheduler {
        Scheduler::new(self.config)
    }
}

/// A work-stealing scheduler with deterministic team-building.
///
/// The scheduler owns `p` worker threads.  Work is submitted through
/// [`Scheduler::scope`]; tasks may be sequential (classic work-stealing) or
/// request `r > 1` threads, in which case a team of `r` consecutively
/// numbered workers is assembled to execute them cooperatively.
///
/// Dropping the scheduler shuts the workers down (after any active scope has
/// completed, since scopes borrow the scheduler).
pub struct Scheduler {
    shared: Arc<SchedulerShared>,
    threads: Vec<JoinHandle<()>>,
    steal_policy: StealPolicy,
}

impl Scheduler {
    /// Creates a scheduler with the given configuration and starts its
    /// workers.
    pub fn new(config: SchedulerConfig) -> Self {
        let shared = SchedulerShared::new(&config);
        let mut threads = Vec::with_capacity(shared.num_threads());
        for id in 0..shared.num_threads() {
            let shared = Arc::clone(&shared);
            let handle = std::thread::Builder::new()
                .name(format!("teamsteal-worker-{id}"))
                .spawn(move || {
                    let mut worker = Worker::new(id, shared);
                    worker.run_loop();
                })
                .expect("failed to spawn worker thread");
            threads.push(handle);
        }
        Scheduler {
            shared,
            threads,
            steal_policy: config.steal_policy,
        }
    }

    /// Creates a scheduler with default configuration and the given number of
    /// threads.
    pub fn with_threads(threads: usize) -> Self {
        Self::new(SchedulerConfig::with_threads(threads))
    }

    /// Returns a [`SchedulerBuilder`].
    pub fn builder() -> SchedulerBuilder {
        SchedulerBuilder::default()
    }

    /// Number of worker threads.
    pub fn num_threads(&self) -> usize {
        self.shared.num_threads()
    }

    /// The machine topology the scheduler was built with.
    pub fn topology(&self) -> &Topology {
        &self.shared.topology
    }

    /// Runs `f` with a [`Scope`] through which root tasks can be submitted,
    /// then blocks until **all** tasks spawned within the scope — directly or
    /// transitively from other tasks — have finished.
    ///
    /// If any task panics, the panic is re-thrown here once the remaining
    /// tasks have drained.
    pub fn scope<F, R>(&self, f: F) -> R
    where
        F: FnOnce(&Scope<'_>) -> R,
    {
        let state = ScopeState::new();
        let scope = Scope {
            scheduler: self,
            state: Arc::clone(&state),
        };
        let result = f(&scope);
        state.wait();
        if let Some(payload) = state.take_panic() {
            std::panic::resume_unwind(payload);
        }
        result
    }

    /// Convenience wrapper: runs a single sequential root task and waits for
    /// everything it (transitively) spawns.
    pub fn run<F>(&self, f: F)
    where
        F: FnOnce(&TaskContext<'_>) + Send + 'static,
    {
        self.scope(|s| s.spawn(f));
    }

    /// Convenience wrapper: runs a single team root task requiring `threads`
    /// workers and waits for everything it (transitively) spawns.
    pub fn run_team<F>(&self, threads: usize, f: F)
    where
        F: Fn(&TaskContext<'_>) + Send + Sync + 'static,
    {
        self.scope(|s| s.spawn_team(threads, f));
    }

    /// Convenience wrapper: runs a single **moldable** team root task
    /// (DESIGN.md §15) — any team size in the inclusive `threads` range can
    /// execute it, and the scheduler picks the effective size from current
    /// load — and waits for everything it (transitively) spawns.
    ///
    /// ```
    /// use teamsteal_core::Scheduler;
    ///
    /// let scheduler = Scheduler::with_threads(4);
    /// scheduler.run_team_moldable(2..=4, |ctx| {
    ///     assert!((2..=4).contains(&ctx.requested_threads()));
    ///     ctx.barrier();
    /// });
    /// ```
    pub fn run_team_moldable<F>(&self, threads: std::ops::RangeInclusive<usize>, f: F)
    where
        F: Fn(&TaskContext<'_>) + Send + Sync + 'static,
    {
        self.scope(|s| s.spawn_team_moldable(threads, f));
    }

    /// Per-worker metric snapshots, indexed by worker id.
    pub fn worker_metrics(&self) -> Vec<MetricsSnapshot> {
        self.shared
            .workers
            .iter()
            .map(|w| w.counters.snapshot())
            .collect()
    }

    /// Aggregated metrics over all workers.
    ///
    /// Counters are cumulative over the scheduler's lifetime; diff two
    /// snapshots with [`MetricsSnapshot::delta_since`] to attribute events to
    /// one region of interest.
    ///
    /// ```
    /// use teamsteal_core::Scheduler;
    ///
    /// let scheduler = Scheduler::with_threads(4);
    /// let before = scheduler.metrics();
    /// scheduler.run_team(4, |ctx| {
    ///     ctx.barrier();
    /// });
    /// let delta = scheduler.metrics().delta_since(&before);
    /// assert_eq!(delta.teams_formed, 1);        // one team, built once
    /// assert!(delta.registrations >= 3);        // one CAS per non-coordinator
    /// assert_eq!(delta.team_tasks_executed, 4); // counted per participant
    /// ```
    pub fn metrics(&self) -> MetricsSnapshot {
        let mut aggregate = self
            .worker_metrics()
            .into_iter()
            .fold(MetricsSnapshot::default(), MetricsSnapshot::merge);
        // Scheduler-wide counters that no single worker owns.
        aggregate.external_pin_waits = self.shared.external_pins.pin_waits();
        aggregate
    }

    /// One-line dump of every worker's scheduler-visible state (registration
    /// word, coordinator, start countdown, queue lengths) plus the injection
    /// queue length.  Lock-free and safe to call while the scheduler is
    /// running; intended for stall diagnostics and test watchdogs.
    pub fn debug_state(&self) -> String {
        self.shared.debug_state_line()
    }

    /// Point-in-time snapshot of the memory-reclamation state (DESIGN.md
    /// §11): how many injection-queue segments are currently retained, how
    /// many retired objects await their epoch, and the global epoch itself.
    ///
    /// With reclamation healthy, `injector_segments` stays bounded by the
    /// live queue (it does **not** grow with lifetime root-task count) and
    /// `deferred_items` stays within a small collection window.  Lock-free
    /// reads; values may be stale by the time the caller acts on them.
    ///
    /// ```
    /// use teamsteal_core::Scheduler;
    ///
    /// let scheduler = Scheduler::with_threads(2);
    /// scheduler.run(|_| {});
    /// let r = scheduler.reclamation();
    /// assert!(r.injector_segments >= 1); // the current segment is always live
    /// ```
    pub fn reclamation(&self) -> ReclamationSnapshot {
        ReclamationSnapshot {
            injector_segments: self.shared.injector.live_segments(),
            deferred_items: self.shared.epoch.pending(),
            global_epoch: self.shared.epoch.global_epoch(),
        }
    }

    /// Live (allocated, not yet reclaimed) injection-queue segments per
    /// shard, indexed by shard/domain.  The per-shard view of
    /// [`reclamation`](Self::reclamation)'s aggregate `injector_segments`:
    /// with reclamation healthy, **each** shard's count stays bounded by
    /// its live queue, so a shard starved of consumers cannot hide behind a
    /// healthy aggregate.
    ///
    /// ```
    /// use teamsteal_core::Scheduler;
    ///
    /// let scheduler = Scheduler::with_threads(2);
    /// let per_shard = scheduler.injector_shard_segments();
    /// assert!(per_shard.iter().all(|&s| s >= 1)); // current segment is live
    /// assert_eq!(per_shard.iter().sum::<usize>(),
    ///            scheduler.reclamation().injector_segments);
    /// ```
    pub fn injector_shard_segments(&self) -> Vec<usize> {
        (0..self.shared.injector.num_shards())
            .map(|s| self.shared.injector.shard_live_segments(s))
            .collect()
    }

    /// Current queue length of every injection shard, indexed by
    /// shard/domain (DESIGN.md §13).  This is the external **backlog**
    /// gauge — root tasks submitted but not yet popped by a worker — that
    /// admission-control layers use as their high-water signal.  Lock-free
    /// reads; values may be stale by the time the caller acts on them.
    ///
    /// ```
    /// use teamsteal_core::Scheduler;
    ///
    /// let scheduler = Scheduler::with_threads(2);
    /// scheduler.run(|_| {});
    /// // After a scope has drained, no external backlog remains.
    /// assert_eq!(scheduler.injector_shard_lens().iter().sum::<usize>(), 0);
    /// ```
    pub fn injector_shard_lens(&self) -> Vec<usize> {
        (0..self.shared.injector.num_shards())
            .map(|s| self.shared.injector.shard_len(s))
            .collect()
    }

    /// Total external backlog: the sum of
    /// [`injector_shard_lens`](Self::injector_shard_lens) over all shards.
    pub fn injector_len(&self) -> usize {
        self.shared.injector.len()
    }

    /// Number of pre-registered epoch-pin slots for external submitter
    /// threads (see [`SchedulerBuilder::external_participants`]).
    pub fn external_pin_slots(&self) -> usize {
        self.shared.external_pins.capacity()
    }

    fn check_requirement(&self, requirement: usize, requirement_min: usize) {
        assert!(requirement_min >= 1, "a task requires at least one thread");
        assert!(
            requirement_min <= requirement,
            "minimum requirement {requirement_min} exceeds the requirement {requirement}"
        );
        assert!(
            requirement <= self.num_threads(),
            "task requires {requirement} threads but the scheduler only has {}",
            self.num_threads()
        );
        // A moldable task collapses to `requirement_min` under
        // `UniformRandom` (there is no hierarchy to recruit a team from),
        // so only a *minimum* above 1 is unrunnable there.
        if requirement_min > 1 {
            assert!(
                self.steal_policy != StealPolicy::UniformRandom,
                "team tasks (r > 1) require a hierarchical steal policy; \
                 StealPolicy::UniformRandom supports only sequential tasks"
            );
        }
    }
}

impl Drop for Scheduler {
    fn drop(&mut self) {
        self.shared
            .shutdown
            .store(true, std::sync::atomic::Ordering::Release);
        // Wake every parked worker so shutdown is observed in microseconds;
        // the eventcount's ticket bump also covers workers that are
        // mid-commit into a park.
        self.shared.sleep.notify_all();
        for handle in self.threads.drain(..) {
            let _ = handle.join();
        }
        // Free any leftover nodes (only present if a scope was abandoned).
        self.shared.drain_leftovers();
    }
}

/// Point-in-time view of the scheduler's memory-reclamation state, from
/// [`Scheduler::reclamation`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReclamationSnapshot {
    /// Injection-queue segments currently linked (live chain; retired ones
    /// are excluded).  Bounded when reclamation is healthy.
    pub injector_segments: usize,
    /// Retired objects (segments + deque buffers) deferred but not yet
    /// freed by the epoch domain.
    pub deferred_items: usize,
    /// The reclamation domain's global epoch.
    pub global_epoch: u64,
}

/// Handle for submitting root tasks from outside the worker pool.
///
/// Obtained from [`Scheduler::scope`]; all spawned work is accounted to that
/// scope and the scope call returns only once the work has drained.
pub struct Scope<'a> {
    scheduler: &'a Scheduler,
    state: Arc<ScopeState>,
}

impl Scope<'_> {
    /// Submits a sequential (`r = 1`) root task.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce(&TaskContext<'_>) + Send + 'static,
    {
        self.spawn_concrete(OnceJob::new(f));
    }

    /// Submits a data-parallel root task requiring `threads` workers.  The
    /// closure is executed by every member of the team built for it.
    pub fn spawn_team<F>(&self, threads: usize, f: F)
    where
        F: Fn(&TaskContext<'_>) + Send + Sync + 'static,
    {
        self.spawn_concrete(TeamJob::new(threads, f));
    }

    /// Submits a **moldable** data-parallel root task (DESIGN.md §15): any
    /// team size in the inclusive `threads` range can run the closure; the
    /// scheduler picks the effective size from current load when the task is
    /// pulled from the injection queue.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty, starts at zero, or ends beyond the
    /// number of scheduler threads.
    pub fn spawn_team_moldable<F>(&self, threads: std::ops::RangeInclusive<usize>, f: F)
    where
        F: Fn(&TaskContext<'_>) + Send + Sync + 'static,
    {
        let (min, max) = (*threads.start(), *threads.end());
        assert!(min <= max, "moldable range {min}..={max} is empty");
        self.spawn_concrete(TeamJob::moldable(min, max, f));
    }

    /// Submits an arbitrary [`Job`] implementation as a root task.
    pub fn spawn_job(&self, job: Box<dyn Job>) {
        let requirement = job.requirement();
        let requirement_min = job.requirement_min();
        self.scheduler.check_requirement(requirement, requirement_min);
        let node = TaskNode::allocate_boxed(
            JobSlot::Boxed(job),
            requirement,
            requirement_min,
            Arc::clone(&self.state),
        );
        self.scheduler.shared.inject(node);
    }

    /// Submits a concretely typed root task.  Small jobs are stored inline
    /// in the (boxed) node, so external submission costs one allocation.
    fn spawn_concrete<J: Job + 'static>(&self, job: J) {
        let requirement = job.requirement();
        let requirement_min = job.requirement_min();
        self.scheduler.check_requirement(requirement, requirement_min);
        let node = TaskNode::allocate_boxed(
            JobSlot::new(job),
            requirement,
            requirement_min,
            Arc::clone(&self.state),
        );
        self.scheduler.shared.inject(node);
    }

    /// Number of worker threads of the underlying scheduler.
    pub fn num_threads(&self) -> usize {
        self.scheduler.num_threads()
    }
}

/// A reusable, clonable scope for **concurrent external submission**.
///
/// [`Scheduler::scope`] is transactional: it borrows the scheduler, blocks
/// the calling thread until everything it spawned has drained, and hands the
/// [`Scope`] to exactly one closure.  A `ConcurrentScope` decouples all
/// three for long-lived front-ends: it owns nothing but completion
/// bookkeeping (one `Arc`), is `Clone + Send + Sync`, and accepts
/// submissions from any number of threads while earlier tasks are still
/// running.  Callers block only where they choose to, via
/// [`wait_idle`](Self::wait_idle).
///
/// A panicking task does **not** unwind any caller here (there is no scope
/// call to re-throw from); the first payload is captured and surfaces
/// through [`take_panic`](Self::take_panic).
///
/// ```
/// use std::sync::atomic::{AtomicUsize, Ordering};
/// use std::sync::Arc;
/// use teamsteal_core::{ConcurrentScope, Scheduler};
///
/// let scheduler = Scheduler::with_threads(2);
/// let scope = ConcurrentScope::new();
/// let hits = Arc::new(AtomicUsize::new(0));
/// for _ in 0..8 {
///     let hits = Arc::clone(&hits);
///     scope.submit(&scheduler, move |_| {
///         hits.fetch_add(1, Ordering::Relaxed);
///     });
/// }
/// scope.wait_idle();
/// assert_eq!(hits.load(Ordering::Relaxed), 8);
/// ```
#[derive(Clone)]
pub struct ConcurrentScope {
    state: Arc<ScopeState>,
}

impl Default for ConcurrentScope {
    fn default() -> Self {
        Self::new()
    }
}

impl ConcurrentScope {
    /// Creates an empty concurrent scope.
    pub fn new() -> Self {
        ConcurrentScope {
            state: ScopeState::new(),
        }
    }

    /// Submits a sequential (`r = 1`) root task to `scheduler`, accounted to
    /// this scope.  Returns as soon as the task is enqueued.
    pub fn submit<F>(&self, scheduler: &Scheduler, f: F)
    where
        F: FnOnce(&TaskContext<'_>) + Send + 'static,
    {
        self.submit_concrete(scheduler, OnceJob::new(f));
    }

    /// Submits a data-parallel root task requiring `threads` workers (see
    /// [`Scope::spawn_team`]).
    pub fn submit_team<F>(&self, scheduler: &Scheduler, threads: usize, f: F)
    where
        F: Fn(&TaskContext<'_>) + Send + Sync + 'static,
    {
        self.submit_concrete(scheduler, TeamJob::new(threads, f));
    }

    /// Submits a **moldable** data-parallel root task (see
    /// [`Scope::spawn_team_moldable`]).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty, starts at zero, or ends beyond the
    /// number of scheduler threads.
    pub fn submit_team_moldable<F>(
        &self,
        scheduler: &Scheduler,
        threads: std::ops::RangeInclusive<usize>,
        f: F,
    ) where
        F: Fn(&TaskContext<'_>) + Send + Sync + 'static,
    {
        let (min, max) = (*threads.start(), *threads.end());
        assert!(min <= max, "moldable range {min}..={max} is empty");
        self.submit_concrete(scheduler, TeamJob::moldable(min, max, f));
    }

    /// Submits a sequential root task with a cancellation cell and/or an
    /// absolute deadline attached (DESIGN.md §17).  A worker that picks the
    /// task up after `cancel.cancel()` won the claim race, or after
    /// `deadline` has passed, drops it **without running it** — the scope
    /// countdown and the closure's captured state (e.g. a completion guard)
    /// are still retired exactly once.
    pub fn submit_cancellable<F>(
        &self,
        scheduler: &Scheduler,
        cancel: Option<Arc<CancelCell>>,
        deadline: Option<std::time::Instant>,
        f: F,
    ) where
        F: FnOnce(&TaskContext<'_>) + Send + 'static,
    {
        let job = OnceJob::new(f);
        let requirement = job.requirement();
        let requirement_min = job.requirement_min();
        scheduler.check_requirement(requirement, requirement_min);
        let node = TaskNode::allocate_boxed(
            JobSlot::new(job),
            requirement,
            requirement_min,
            Arc::clone(&self.state),
        );
        // SAFETY: between `allocate_boxed` and `inject` this thread is the
        // node's exclusive owner; the injector's release/acquire handoff
        // publishes the fields to the popping worker.
        unsafe {
            (*node).cancel = cancel;
            (*node).deadline = deadline;
        }
        scheduler.shared.inject(node);
    }

    /// Number of submitted tasks (including their transitively spawned
    /// children) that have not finished yet.  A point-in-time gauge: with
    /// concurrent submitters it can be stale immediately.
    pub fn pending(&self) -> usize {
        self.state.pending()
    }

    /// Total task panics recorded against this scope over its lifetime,
    /// including payloads dropped because an earlier panic already occupied
    /// the [`take_panic`](Self::take_panic) slot.
    pub fn panics_observed(&self) -> u64 {
        self.state.panics_observed()
    }

    /// Blocks until every task accounted to this scope — submitted directly
    /// or spawned transitively from one — has finished.  Other threads may
    /// keep submitting while a caller waits; the call returns at the first
    /// observed quiescent point.
    pub fn wait_idle(&self) {
        self.state.wait();
    }

    /// Takes the first panic payload raised by a task of this scope, if any.
    /// Call at drain points to rethrow (or log) deferred task panics.
    pub fn take_panic(&self) -> Option<Box<dyn std::any::Any + Send>> {
        self.state.take_panic()
    }

    fn submit_concrete<J: Job + 'static>(&self, scheduler: &Scheduler, job: J) {
        let requirement = job.requirement();
        let requirement_min = job.requirement_min();
        scheduler.check_requirement(requirement, requirement_min);
        let node = TaskNode::allocate_boxed(
            JobSlot::new(job),
            requirement,
            requirement_min,
            Arc::clone(&self.state),
        );
        scheduler.shared.inject(node);
    }
}
