//! Intra-team synchronization: the team barrier.
//!
//! Once a team has been built for a data-parallel task, its members execute
//! the task cooperatively and typically need to synchronize between phases
//! (the mixed-mode Quicksort's parallel partitioning, for example, has a
//! block-neutralization phase followed by a cleanup phase).  The paper leaves
//! intra-team communication to the application — members are given
//! consecutive local ids "such that the co-scheduled tasks have a means of
//! identifying and communicating with each other" — so this crate provides
//! the one primitive every such application needs: a reusable,
//! sense-reversing barrier sized to the team.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

use teamsteal_util::Backoff;

/// A reusable sense-reversing barrier for a fixed number of participants.
///
/// The barrier spins briefly and then yields / sleeps (via
/// [`teamsteal_util::Backoff`]), so it behaves acceptably even when the team
/// is over-subscribed onto fewer hardware threads than members.
#[derive(Debug)]
pub struct TeamBarrier {
    participants: usize,
    remaining: AtomicUsize,
    sense: AtomicBool,
}

impl TeamBarrier {
    /// Creates a barrier for `participants` threads.
    ///
    /// # Panics
    ///
    /// Panics if `participants == 0`.
    pub fn new(participants: usize) -> Self {
        assert!(participants > 0, "a barrier needs at least one participant");
        TeamBarrier {
            participants,
            remaining: AtomicUsize::new(participants),
            sense: AtomicBool::new(false),
        }
    }

    /// Number of threads that must arrive before the barrier opens.
    pub fn participants(&self) -> usize {
        self.participants
    }

    /// Blocks until all participants have called `wait`.  Returns `true` on
    /// exactly one participant per round (the last arriver), which is handy
    /// for single-threaded epilogue work.
    pub fn wait(&self) -> bool {
        let sense = self.sense.load(Ordering::Relaxed);
        if self.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
            // Last arriver: reset and flip the sense to release everyone.
            self.remaining.store(self.participants, Ordering::Relaxed);
            self.sense.store(!sense, Ordering::Release);
            true
        } else {
            let mut backoff = Backoff::new();
            while self.sense.load(Ordering::Acquire) == sense {
                backoff.wait();
            }
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize as Counter;
    use std::sync::Arc;

    #[test]
    fn single_participant_never_blocks() {
        let b = TeamBarrier::new(1);
        for _ in 0..10 {
            assert!(b.wait());
        }
    }

    #[test]
    #[should_panic]
    fn zero_participants_rejected() {
        let _ = TeamBarrier::new(0);
    }

    #[test]
    fn phases_are_separated() {
        // Every thread increments a counter in phase 1; after the barrier all
        // threads must observe the full phase-1 total.
        const THREADS: usize = 4;
        const ROUNDS: usize = 25;
        let barrier = Arc::new(TeamBarrier::new(THREADS));
        let counter = Arc::new(Counter::new(0));
        let handles: Vec<_> = (0..THREADS)
            .map(|_| {
                let barrier = Arc::clone(&barrier);
                let counter = Arc::clone(&counter);
                std::thread::spawn(move || {
                    for round in 0..ROUNDS {
                        counter.fetch_add(1, Ordering::SeqCst);
                        barrier.wait();
                        let expected = (round + 1) * THREADS;
                        assert!(counter.load(Ordering::SeqCst) >= expected);
                        barrier.wait();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(counter.load(Ordering::SeqCst), THREADS * ROUNDS);
    }

    #[test]
    fn exactly_one_leader_per_round() {
        const THREADS: usize = 3;
        const ROUNDS: usize = 50;
        let barrier = Arc::new(TeamBarrier::new(THREADS));
        let leaders = Arc::new(Counter::new(0));
        let handles: Vec<_> = (0..THREADS)
            .map(|_| {
                let barrier = Arc::clone(&barrier);
                let leaders = Arc::clone(&leaders);
                std::thread::spawn(move || {
                    for _ in 0..ROUNDS {
                        if barrier.wait() {
                            leaders.fetch_add(1, Ordering::SeqCst);
                        }
                        // Second barrier so rounds cannot overlap; it too has
                        // exactly one leader.
                        if barrier.wait() {
                            leaders.fetch_add(1, Ordering::SeqCst);
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        // One leader per wait-round; there are 2 * ROUNDS rounds in total.
        assert_eq!(leaders.load(Ordering::SeqCst), 2 * ROUNDS);
    }
}
