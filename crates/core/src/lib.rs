//! # teamsteal-core — work-stealing with deterministic team-building
//!
//! This crate is a Rust implementation of the scheduler described in
//! *"Work-stealing for mixed-mode parallelism by deterministic team-building"*
//! (Wimmer & Träff, SPAA 2011).  It generalizes classical work-stealing to
//! **mixed-mode parallelism**: dynamically spawned tasks may declare a fixed,
//! non-malleable thread requirement `r ≥ 1`, and the scheduler assembles a
//! *team* of `r` consecutively numbered worker threads to execute each such
//! task cooperatively.
//!
//! ## Highlights
//!
//! * **Deterministic team-building** — idle workers visit `log p` partners
//!   obtained by flipping one bit of their id (or, on non power-of-two
//!   machines, from a precomputed hierarchy), so the threads that can join a
//!   team at a given coordinator form a fixed, aligned block and every team
//!   gets consecutive local ids `0 … r − 1`.
//! * **One CAS per join** — team membership is tracked in a packed 64-bit
//!   registration word `{r, a, t, N}`; joining a team costs a single
//!   compare-and-swap.
//! * **No overhead in the degenerate case** — with only `r = 1` tasks the
//!   scheduler behaves exactly like a deterministic work-stealer (and can be
//!   switched to classic uniformly random victim selection).
//! * **Helping instead of waiting** — workers waiting for a large team to
//!   form steal smaller tasks from their partners, and conflicts between
//!   competing coordinators are resolved deterministically.
//! * **Team reuse** — a formed team keeps executing further tasks of the same
//!   size without any additional coordination, shrinks for smaller tasks and
//!   is rebuilt for larger ones.
//!
//! ## Quick start
//!
//! ```
//! use teamsteal_core::Scheduler;
//!
//! let scheduler = Scheduler::with_threads(4);
//!
//! // Sequential tasks: classic work-stealing.
//! let counter = std::sync::Arc::new(std::sync::atomic::AtomicUsize::new(0));
//! let c = counter.clone();
//! scheduler.scope(|scope| {
//!     for _ in 0..16 {
//!         let c = c.clone();
//!         scope.spawn(move |_ctx| {
//!             c.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
//!         });
//!     }
//! });
//! assert_eq!(counter.load(std::sync::atomic::Ordering::Relaxed), 16);
//!
//! // A data-parallel task executed by a team of 4 threads.
//! let hits = std::sync::Arc::new(std::sync::atomic::AtomicUsize::new(0));
//! let h = hits.clone();
//! scheduler.run_team(4, move |ctx| {
//!     assert!(ctx.local_id() < ctx.team_size());
//!     h.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
//!     ctx.barrier();
//! });
//! assert_eq!(hits.load(std::sync::atomic::Ordering::Relaxed), 4);
//! ```
//!
//! ## Crate layout
//!
//! | module | contents |
//! |---|---|
//! | [`scheduler`] | [`Scheduler`], [`SchedulerBuilder`], [`Scope`] |
//! | [`config`] | [`SchedulerConfig`], [`StealAmount`] |
//! | [`task`] | the [`Job`] trait and internal task nodes |
//! | [`cancel`] | the lock-free [`CancelCell`] claim-to-run arbiter (DESIGN.md §17) |
//! | [`context`] | [`TaskContext`] passed to every running task |
//! | [`team`] | [`TeamBarrier`] for intra-team synchronization |
//! | [`metrics`] | execution counters |
//! | `sleep` | the parking/wakeup controller over the eventcount (DESIGN.md §12) |
//! | `worker` | the worker loop implementing Algorithms 5–9 of the paper |

#![warn(missing_docs)]

pub mod cancel;
pub mod config;
pub mod context;
pub mod metrics;
pub mod scheduler;
mod sleep;
pub mod task;
pub mod team;
mod worker;

pub use cancel::CancelCell;
pub use config::{SchedulerConfig, StealAmount};
pub use context::TaskContext;
pub use metrics::{MetricsSnapshot, WakeLatencyHistogram};
pub use scheduler::{ConcurrentScope, ReclamationSnapshot, Scheduler, SchedulerBuilder, Scope};
pub use task::Job;
pub use team::TeamBarrier;
pub use worker::{enable_stall_debug, stall_report};

// Re-export the topology types users need to configure a scheduler.
pub use teamsteal_topology::{StealPolicy, Topology};

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    fn counter() -> Arc<AtomicUsize> {
        Arc::new(AtomicUsize::new(0))
    }

    #[test]
    fn empty_scope_returns_immediately() {
        let s = Scheduler::with_threads(2);
        let out = s.scope(|_| 42);
        assert_eq!(out, 42);
    }

    #[test]
    fn single_thread_scheduler_runs_tasks() {
        let s = Scheduler::with_threads(1);
        let c = counter();
        let cc = Arc::clone(&c);
        s.scope(|scope| {
            for _ in 0..100 {
                let cc = Arc::clone(&cc);
                scope.spawn(move |_| {
                    cc.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(c.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn nested_spawns_all_execute() {
        let s = Scheduler::with_threads(4);
        let c = counter();
        let cc = Arc::clone(&c);
        s.scope(|scope| {
            let cc = Arc::clone(&cc);
            scope.spawn(move |ctx| {
                for _ in 0..10 {
                    let cc = Arc::clone(&cc);
                    ctx.spawn(move |ctx2| {
                        let cc = Arc::clone(&cc);
                        ctx2.spawn(move |_| {
                            cc.fetch_add(1, Ordering::Relaxed);
                        });
                    });
                }
            });
        });
        assert_eq!(c.load(Ordering::Relaxed), 10);
    }

    #[test]
    fn team_task_runs_on_every_member_with_distinct_local_ids() {
        let s = Scheduler::with_threads(4);
        let seen = Arc::new([
            AtomicUsize::new(0),
            AtomicUsize::new(0),
            AtomicUsize::new(0),
            AtomicUsize::new(0),
        ]);
        let seen2 = Arc::clone(&seen);
        s.run_team(4, move |ctx| {
            assert_eq!(ctx.team_size(), 4);
            assert_eq!(ctx.requested_threads(), 4);
            seen2[ctx.local_id()].fetch_add(1, Ordering::Relaxed);
            ctx.barrier();
        });
        for slot in seen.iter() {
            assert_eq!(slot.load(Ordering::Relaxed), 1);
        }
    }

    #[test]
    fn degenerate_case_uses_no_team_machinery() {
        // Paper, Section 3.1: with only r = 1 tasks the algorithm coincides
        // with deterministic work-stealing and the extra CAS never happens.
        let s = Scheduler::with_threads(2);
        let c = counter();
        let cc = Arc::clone(&c);
        s.scope(|scope| {
            for _ in 0..200 {
                let cc = Arc::clone(&cc);
                scope.spawn(move |_| {
                    cc.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(c.load(Ordering::Relaxed), 200);
        let m = s.metrics();
        assert_eq!(m.teams_formed, 0);
        assert_eq!(m.registrations, 0);
        assert_eq!(m.team_tasks_executed, 0);
        assert_eq!(m.tasks_executed, 200);
    }

    #[test]
    fn panicking_task_propagates_to_scope() {
        let s = Scheduler::with_threads(2);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            s.scope(|scope| {
                scope.spawn(|_| panic!("boom"));
            });
        }));
        assert!(result.is_err(), "panic must propagate out of scope()");
        // The scheduler remains usable afterwards.
        let c = counter();
        let cc = Arc::clone(&c);
        s.run(move |_| {
            cc.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(c.load(Ordering::Relaxed), 1);
    }

    #[test]
    #[should_panic]
    fn oversized_team_request_is_rejected() {
        let s = Scheduler::with_threads(2);
        s.run_team(4, |_| {});
    }

    #[test]
    fn pending_small_and_large_teams_do_not_deadlock() {
        // Regression test: with an r = 2 task and an r = 4 task pending in the
        // same scope, two half-machine teams used to form, both try to grow,
        // and deadlock (Section 3.1 requires the coordinator to *disband* a
        // formed team before coordinating a larger task).
        let s = Scheduler::with_threads(4);
        let small = counter();
        let large = counter();
        for _ in 0..5 {
            let small = Arc::clone(&small);
            let large = Arc::clone(&large);
            s.scope(|scope| {
                for _ in 0..2 {
                    let c = Arc::clone(&small);
                    scope.spawn_team(2, move |ctx| {
                        c.fetch_add(1, Ordering::Relaxed);
                        ctx.barrier();
                    });
                    let c = Arc::clone(&large);
                    scope.spawn_team(4, move |ctx| {
                        c.fetch_add(1, Ordering::Relaxed);
                        ctx.barrier();
                    });
                }
            });
        }
        assert_eq!(small.load(Ordering::Relaxed), 5 * 2 * 2);
        assert_eq!(large.load(Ordering::Relaxed), 5 * 2 * 4);
    }

    #[test]
    fn uniform_random_policy_runs_sequential_tasks() {
        let s = Scheduler::builder()
            .threads(3)
            .steal_policy(StealPolicy::UniformRandom)
            .build();
        let c = counter();
        let cc = Arc::clone(&c);
        s.scope(|scope| {
            for _ in 0..50 {
                let cc = Arc::clone(&cc);
                scope.spawn(move |ctx| {
                    let cc = Arc::clone(&cc);
                    ctx.spawn(move |_| {
                        cc.fetch_add(1, Ordering::Relaxed);
                    });
                });
            }
        });
        assert_eq!(c.load(Ordering::Relaxed), 50);
    }

    #[test]
    #[should_panic]
    fn uniform_random_policy_rejects_team_tasks() {
        let s = Scheduler::builder()
            .threads(4)
            .steal_policy(StealPolicy::UniformRandom)
            .build();
        s.run_team(2, |_| {});
    }
}
