//! Scheduler observability: per-worker and aggregated counters.
//!
//! The counters exist for three reasons: the degenerate-case claim of the
//! paper ("if all tasks require `r = 1` … the additional CAS … are never
//! executed") is directly testable through them, the ablation benchmarks
//! report them, and they make scheduler tests meaningful (e.g. "stealing
//! actually happened" rather than "the result happened to be correct").

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Number of buckets in the wake-latency histogram.
pub const WAKE_LATENCY_BUCKETS: usize = 8;

/// Upper bounds (exclusive, in microseconds) of the wake-latency buckets;
/// the last bucket is unbounded.  Factor-4 spacing from 1 µs to 4 ms covers
/// everything between "futex fast path" and "the backstop fired".
pub const WAKE_LATENCY_BOUNDS_US: [u64; WAKE_LATENCY_BUCKETS - 1] =
    [1, 4, 16, 64, 256, 1024, 4096];

/// Index of the bucket a wake latency falls into.
fn wake_latency_bucket(latency: Duration) -> usize {
    let us = latency.as_micros() as u64;
    WAKE_LATENCY_BOUNDS_US
        .iter()
        .position(|&bound| us < bound)
        .unwrap_or(WAKE_LATENCY_BUCKETS - 1)
}

/// Relaxed event counters owned by one worker.
#[derive(Debug, Default)]
pub struct WorkerCounters {
    /// Sequential (`r = 1`) tasks executed by this worker.
    pub tasks_executed: AtomicU64,
    /// Team tasks in whose execution this worker participated.
    pub team_tasks_executed: AtomicU64,
    /// Teams formed with this worker as coordinator.
    pub teams_formed: AtomicU64,
    /// Team-task publications onto a *freshly built* team — the coordinator
    /// paid the full §8 protocol (partner visits, registration, countdown)
    /// for this task.  Together with [`team_reuses`](Self::team_reuses) this
    /// gives the warm-reuse hit rate (DESIGN.md §15).
    pub teams_built: AtomicU64,
    /// Team-task publications onto a still-warm team from a previous task:
    /// the whole build protocol was skipped — one `try_reuse` load plus the
    /// publication seqlock write.
    pub team_reuses: AtomicU64,
    /// Elastic-shrink events: an executing team released its members back to
    /// the steal loop at a barrier because injector depth / sleeper pressure
    /// crossed the configured threshold (DESIGN.md §15).
    pub team_shrinks: AtomicU64,
    /// Successful registrations of this worker at a foreign coordinator
    /// (each one is exactly one CAS — the paper's "single extra CAS").
    pub registrations: AtomicU64,
    /// Successful steal operations (at least one task transferred).
    pub steals: AtomicU64,
    /// Tasks received through stealing.
    pub tasks_stolen: AtomicU64,
    /// Successful steals whose victim shares the thief's hierarchy domain
    /// (the `injector_local_pops` analogue for the steal path, DESIGN.md
    /// §13/§15): `steals_remote / (steals_local + steals_remote)` is the
    /// cross-domain steal share.
    pub steals_local: AtomicU64,
    /// Successful steals from a victim in a foreign hierarchy domain.
    pub steals_remote: AtomicU64,
    /// Steal rounds that visited every partner without finding anything.
    pub failed_steal_rounds: AtomicU64,
    /// Steals performed while helping a smaller task during coordination
    /// (Algorithm 8, lines 21–29).
    pub help_steals: AtomicU64,
    /// Tasks spawned by tasks running on this worker.
    pub tasks_spawned: AtomicU64,
    /// CAS failures on registration structures observed by this worker.
    pub cas_failures: AtomicU64,
    /// Task nodes served from this worker's recycling arena instead of fresh
    /// memory (`nodes_recycled / tasks_spawned` is the arena hit rate).
    pub nodes_recycled: AtomicU64,
    /// Externally injected root tasks this worker pulled from the injection
    /// queue.
    pub tasks_injected: AtomicU64,
    /// Injected tasks this worker popped from its **own** domain's injector
    /// shard (DESIGN.md §13).  `injector_remote_pops / (local + remote)` is
    /// the remote-pop share — the locality cost of injection.
    pub injector_local_pops: AtomicU64,
    /// Injected tasks this worker popped from a foreign domain's shard
    /// during the distance-ordered sweep.
    pub injector_remote_pops: AtomicU64,
    /// Times this worker triggered the liveness backstop (coordinator
    /// re-announcement or member re-registration after a long unproductive
    /// poll).  Zero in healthy runs.
    pub liveness_resyncs: AtomicU64,
    /// Consumed injection-queue segments this worker freed while collecting
    /// the epoch domain at a quiescent point (DESIGN.md §11).
    pub segments_reclaimed: AtomicU64,
    /// Retired deque growth buffers this worker freed while collecting the
    /// epoch domain.
    pub buffers_reclaimed: AtomicU64,
    /// Global epoch advances won by this worker's collection calls.
    pub epoch_advances: AtomicU64,
    /// Times this worker committed an eventcount park (blocked on the OS
    /// instead of sleep-polling; DESIGN.md §12).
    pub parks: AtomicU64,
    /// Parks that ended through an explicit notification (a targeted claim
    /// or a ticket movement) rather than the defensive backstop.
    pub wakeups: AtomicU64,
    /// Parks that ended through the backstop timeout.  (Almost) zero in
    /// healthy runs; growth means a state change forgot its notify call.
    pub spurious_wakes: AtomicU64,
    /// Tasks this worker dropped without running because their deadline had
    /// already passed when the worker picked them up (DESIGN.md §17).  The
    /// scope countdown and completion accounting still fire exactly once.
    pub tasks_expired: AtomicU64,
    /// Tasks this worker dropped without running because their cancel token
    /// was cancelled before the claim-to-run CAS (DESIGN.md §17).
    pub tasks_cancelled: AtomicU64,
    /// Histogram of notification-to-wake latencies for parks that were
    /// explicitly claimed by a notifier (bucket bounds:
    /// [`WAKE_LATENCY_BOUNDS_US`]).
    pub wake_latency: [AtomicU64; WAKE_LATENCY_BUCKETS],
}

impl WorkerCounters {
    #[inline]
    fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Increments the sequential-task counter.
    #[inline]
    pub fn inc_tasks_executed(&self) {
        Self::bump(&self.tasks_executed);
    }

    /// Increments the team-task participation counter.
    #[inline]
    pub fn inc_team_tasks_executed(&self) {
        Self::bump(&self.team_tasks_executed);
    }

    /// Increments the teams-formed counter.
    #[inline]
    pub fn inc_teams_formed(&self) {
        Self::bump(&self.teams_formed);
    }

    /// Increments the cold-path team-publication counter.
    #[inline]
    pub fn inc_teams_built(&self) {
        Self::bump(&self.teams_built);
    }

    /// Increments the warm-reuse team-publication counter.
    #[inline]
    pub fn inc_team_reuses(&self) {
        Self::bump(&self.team_reuses);
    }

    /// Increments the elastic-shrink counter.
    #[inline]
    pub fn inc_team_shrinks(&self) {
        Self::bump(&self.team_shrinks);
    }

    /// Increments the registration counter.
    #[inline]
    pub fn inc_registrations(&self) {
        Self::bump(&self.registrations);
    }

    /// Increments the successful-steal counter.
    #[inline]
    pub fn inc_steals(&self) {
        Self::bump(&self.steals);
    }

    /// Increments the same-domain steal classification counter.
    #[inline]
    pub fn inc_steals_local(&self) {
        Self::bump(&self.steals_local);
    }

    /// Increments the cross-domain steal classification counter.
    #[inline]
    pub fn inc_steals_remote(&self) {
        Self::bump(&self.steals_remote);
    }

    /// Increments the failed-steal-round counter.
    #[inline]
    pub fn inc_failed_steal_rounds(&self) {
        Self::bump(&self.failed_steal_rounds);
    }

    /// Increments the help-steal counter.
    #[inline]
    pub fn inc_help_steals(&self) {
        Self::bump(&self.help_steals);
    }

    /// Increments the spawned-task counter.
    #[inline]
    pub fn inc_tasks_spawned(&self) {
        Self::bump(&self.tasks_spawned);
    }

    /// Increments the registration CAS failure counter.
    #[inline]
    pub fn inc_cas_failures(&self) {
        Self::bump(&self.cas_failures);
    }

    /// Increments the recycled-node counter.
    #[inline]
    pub fn inc_nodes_recycled(&self) {
        Self::bump(&self.nodes_recycled);
    }

    /// Increments the injected-task counter.
    #[inline]
    pub fn inc_tasks_injected(&self) {
        Self::bump(&self.tasks_injected);
    }

    /// Increments the local-shard injector pop counter.
    #[inline]
    pub fn inc_injector_local_pops(&self) {
        Self::bump(&self.injector_local_pops);
    }

    /// Increments the remote-shard injector pop counter.
    #[inline]
    pub fn inc_injector_remote_pops(&self) {
        Self::bump(&self.injector_remote_pops);
    }

    /// Increments the liveness-resync counter.
    #[inline]
    pub fn inc_liveness_resyncs(&self) {
        Self::bump(&self.liveness_resyncs);
    }

    /// Adds `n` to the stolen-task counter.
    #[inline]
    pub fn add_tasks_stolen(&self, n: u64) {
        self.tasks_stolen.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds `n` to the reclaimed-segment counter.
    #[inline]
    pub fn add_segments_reclaimed(&self, n: u64) {
        self.segments_reclaimed.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds `n` to the reclaimed-buffer counter.
    #[inline]
    pub fn add_buffers_reclaimed(&self, n: u64) {
        self.buffers_reclaimed.fetch_add(n, Ordering::Relaxed);
    }

    /// Increments the epoch-advance counter.
    #[inline]
    pub fn inc_epoch_advances(&self) {
        Self::bump(&self.epoch_advances);
    }

    /// Increments the park counter.
    #[inline]
    pub fn inc_parks(&self) {
        Self::bump(&self.parks);
    }

    /// Increments the notified-wakeup counter.
    #[inline]
    pub fn inc_wakeups(&self) {
        Self::bump(&self.wakeups);
    }

    /// Increments the spurious-wake (backstop) counter.
    #[inline]
    pub fn inc_spurious_wakes(&self) {
        Self::bump(&self.spurious_wakes);
    }

    /// Increments the deadline-expiry drop counter.
    #[inline]
    pub fn inc_tasks_expired(&self) {
        Self::bump(&self.tasks_expired);
    }

    /// Increments the cancelled-drop counter.
    #[inline]
    pub fn inc_tasks_cancelled(&self) {
        Self::bump(&self.tasks_cancelled);
    }

    /// Records one notification-to-wake latency sample.
    #[inline]
    pub fn record_wake_latency(&self, latency: Duration) {
        Self::bump(&self.wake_latency[wake_latency_bucket(latency)]);
    }

    /// Snapshot of this worker's counters.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            tasks_executed: self.tasks_executed.load(Ordering::Relaxed),
            team_tasks_executed: self.team_tasks_executed.load(Ordering::Relaxed),
            teams_formed: self.teams_formed.load(Ordering::Relaxed),
            teams_built: self.teams_built.load(Ordering::Relaxed),
            team_reuses: self.team_reuses.load(Ordering::Relaxed),
            team_shrinks: self.team_shrinks.load(Ordering::Relaxed),
            registrations: self.registrations.load(Ordering::Relaxed),
            steals: self.steals.load(Ordering::Relaxed),
            tasks_stolen: self.tasks_stolen.load(Ordering::Relaxed),
            steals_local: self.steals_local.load(Ordering::Relaxed),
            steals_remote: self.steals_remote.load(Ordering::Relaxed),
            failed_steal_rounds: self.failed_steal_rounds.load(Ordering::Relaxed),
            help_steals: self.help_steals.load(Ordering::Relaxed),
            tasks_spawned: self.tasks_spawned.load(Ordering::Relaxed),
            cas_failures: self.cas_failures.load(Ordering::Relaxed),
            nodes_recycled: self.nodes_recycled.load(Ordering::Relaxed),
            tasks_injected: self.tasks_injected.load(Ordering::Relaxed),
            injector_local_pops: self.injector_local_pops.load(Ordering::Relaxed),
            injector_remote_pops: self.injector_remote_pops.load(Ordering::Relaxed),
            external_pin_waits: 0,
            liveness_resyncs: self.liveness_resyncs.load(Ordering::Relaxed),
            segments_reclaimed: self.segments_reclaimed.load(Ordering::Relaxed),
            buffers_reclaimed: self.buffers_reclaimed.load(Ordering::Relaxed),
            epoch_advances: self.epoch_advances.load(Ordering::Relaxed),
            parks: self.parks.load(Ordering::Relaxed),
            wakeups: self.wakeups.load(Ordering::Relaxed),
            spurious_wakes: self.spurious_wakes.load(Ordering::Relaxed),
            tasks_expired: self.tasks_expired.load(Ordering::Relaxed),
            tasks_cancelled: self.tasks_cancelled.load(Ordering::Relaxed),
            retry_attempts: 0,
            wake_latency: WakeLatencyHistogram {
                buckets: std::array::from_fn(|i| self.wake_latency[i].load(Ordering::Relaxed)),
            },
        }
    }
}

/// A point-in-time copy of the wake-latency histogram (bucket bounds:
/// [`WAKE_LATENCY_BOUNDS_US`], last bucket unbounded).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WakeLatencyHistogram {
    /// Sample count per bucket.
    pub buckets: [u64; WAKE_LATENCY_BUCKETS],
}

impl WakeLatencyHistogram {
    /// Total recorded samples.
    pub fn total(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Upper bound (µs) of the bucket containing the p-th percentile sample,
    /// or `None` when there are no samples or the percentile lands in the
    /// unbounded last bucket.  A coarse but monotone latency summary: "p95
    /// ≤ 16 µs" style statements, which is all the regression gate needs.
    ///
    /// ```
    /// use teamsteal_core::WakeLatencyHistogram;
    ///
    /// let h = WakeLatencyHistogram { buckets: [90, 8, 2, 0, 0, 0, 0, 0] };
    /// assert_eq!(h.percentile_bound_us(50.0), Some(1));
    /// assert_eq!(h.percentile_bound_us(95.0), Some(4));
    /// assert_eq!(h.percentile_bound_us(99.0), Some(16));
    /// ```
    pub fn percentile_bound_us(&self, p: f64) -> Option<u64> {
        let total = self.total();
        if total == 0 {
            return None;
        }
        let rank = (p / 100.0 * total as f64).ceil() as u64;
        let mut seen = 0u64;
        for (i, &count) in self.buckets.iter().enumerate() {
            seen += count;
            if seen >= rank.max(1) {
                return WAKE_LATENCY_BOUNDS_US.get(i).copied();
            }
        }
        None
    }

    /// Element-wise sum.
    pub fn merge(self, other: WakeLatencyHistogram) -> WakeLatencyHistogram {
        WakeLatencyHistogram {
            buckets: std::array::from_fn(|i| self.buckets[i] + other.buckets[i]),
        }
    }

    /// Element-wise difference, saturating at zero.
    pub fn delta_since(&self, earlier: &WakeLatencyHistogram) -> WakeLatencyHistogram {
        WakeLatencyHistogram {
            buckets: std::array::from_fn(|i| {
                self.buckets[i].saturating_sub(earlier.buckets[i])
            }),
        }
    }
}

/// A point-in-time copy of the counters, either of one worker or aggregated
/// over the whole scheduler.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Sequential tasks executed.
    pub tasks_executed: u64,
    /// Team-task executions (counted once per participating worker).
    pub team_tasks_executed: u64,
    /// Teams formed (counted at the coordinator).
    pub teams_formed: u64,
    /// Team-task publications that paid the full build protocol.
    pub teams_built: u64,
    /// Team-task publications onto a still-warm team (build skipped).
    pub team_reuses: u64,
    /// Elastic-shrink events (members released at a barrier under pressure).
    pub team_shrinks: u64,
    /// Successful team registrations.
    pub registrations: u64,
    /// Successful steal operations.
    pub steals: u64,
    /// Tasks received through stealing.
    pub tasks_stolen: u64,
    /// Successful steals from a victim in the thief's own hierarchy domain.
    pub steals_local: u64,
    /// Successful steals from a victim in a foreign hierarchy domain.
    pub steals_remote: u64,
    /// Unsuccessful full steal rounds.
    pub failed_steal_rounds: u64,
    /// Help-steals performed during coordination.
    pub help_steals: u64,
    /// Tasks spawned from running tasks.
    pub tasks_spawned: u64,
    /// Registration CAS failures.
    pub cas_failures: u64,
    /// Task nodes served from a worker's recycling arena.
    pub nodes_recycled: u64,
    /// Root tasks pulled from the external injection queue.
    pub tasks_injected: u64,
    /// Injected tasks popped from the popping worker's own domain shard.
    pub injector_local_pops: u64,
    /// Injected tasks popped from a foreign domain's shard during the
    /// distance-ordered sweep.
    pub injector_remote_pops: u64,
    /// Exhaustion-backoff episodes of external submitters waiting for a
    /// free epoch-pin slot (always zero in per-worker snapshots; filled in
    /// by the scheduler-wide aggregate, which owns the shared pin array).
    pub external_pin_waits: u64,
    /// Liveness-backstop resyncs (zero in healthy runs).
    pub liveness_resyncs: u64,
    /// Consumed injection-queue segments freed through the epoch domain.
    pub segments_reclaimed: u64,
    /// Retired deque growth buffers freed through the epoch domain.
    pub buffers_reclaimed: u64,
    /// Global epoch advances won by collection calls.
    pub epoch_advances: u64,
    /// Eventcount parks committed (DESIGN.md §12).
    pub parks: u64,
    /// Parks ended by an explicit notification.
    pub wakeups: u64,
    /// Parks ended by the defensive backstop timeout ((almost) zero in
    /// healthy runs).
    pub spurious_wakes: u64,
    /// Tasks dropped without running because their deadline had passed when
    /// a worker picked them up (DESIGN.md §17).
    pub tasks_expired: u64,
    /// Tasks dropped without running because their cancel token lost the
    /// claim-to-run race (DESIGN.md §17).
    pub tasks_cancelled: u64,
    /// Admission retries performed by the service layer's `RetryPolicy`
    /// (always zero in per-worker snapshots; filled in by the service
    /// report/load-generator aggregation, like `external_pin_waits`).
    pub retry_attempts: u64,
    /// Notification-to-wake latency histogram for claimed parks.
    pub wake_latency: WakeLatencyHistogram,
}

impl MetricsSnapshot {
    /// Element-wise sum of two snapshots.
    ///
    /// ```
    /// use teamsteal_core::MetricsSnapshot;
    ///
    /// let a = MetricsSnapshot { steals: 2, ..Default::default() };
    /// let b = MetricsSnapshot { steals: 3, teams_formed: 1, ..Default::default() };
    /// let sum = a.merge(b);
    /// assert_eq!(sum.steals, 5);
    /// assert_eq!(sum.teams_formed, 1);
    /// ```
    pub fn merge(self, other: MetricsSnapshot) -> MetricsSnapshot {
        MetricsSnapshot {
            tasks_executed: self.tasks_executed + other.tasks_executed,
            team_tasks_executed: self.team_tasks_executed + other.team_tasks_executed,
            teams_formed: self.teams_formed + other.teams_formed,
            teams_built: self.teams_built + other.teams_built,
            team_reuses: self.team_reuses + other.team_reuses,
            team_shrinks: self.team_shrinks + other.team_shrinks,
            registrations: self.registrations + other.registrations,
            steals: self.steals + other.steals,
            tasks_stolen: self.tasks_stolen + other.tasks_stolen,
            steals_local: self.steals_local + other.steals_local,
            steals_remote: self.steals_remote + other.steals_remote,
            failed_steal_rounds: self.failed_steal_rounds + other.failed_steal_rounds,
            help_steals: self.help_steals + other.help_steals,
            tasks_spawned: self.tasks_spawned + other.tasks_spawned,
            cas_failures: self.cas_failures + other.cas_failures,
            nodes_recycled: self.nodes_recycled + other.nodes_recycled,
            tasks_injected: self.tasks_injected + other.tasks_injected,
            injector_local_pops: self.injector_local_pops + other.injector_local_pops,
            injector_remote_pops: self.injector_remote_pops + other.injector_remote_pops,
            external_pin_waits: self.external_pin_waits + other.external_pin_waits,
            liveness_resyncs: self.liveness_resyncs + other.liveness_resyncs,
            segments_reclaimed: self.segments_reclaimed + other.segments_reclaimed,
            buffers_reclaimed: self.buffers_reclaimed + other.buffers_reclaimed,
            epoch_advances: self.epoch_advances + other.epoch_advances,
            parks: self.parks + other.parks,
            wakeups: self.wakeups + other.wakeups,
            spurious_wakes: self.spurious_wakes + other.spurious_wakes,
            tasks_expired: self.tasks_expired + other.tasks_expired,
            tasks_cancelled: self.tasks_cancelled + other.tasks_cancelled,
            retry_attempts: self.retry_attempts + other.retry_attempts,
            wake_latency: self.wake_latency.merge(other.wake_latency),
        }
    }

    /// Element-wise difference `self - earlier`, saturating at zero.
    ///
    /// Scheduler counters are cumulative over the scheduler's lifetime; to
    /// attribute events to one measured region, snapshot before and after and
    /// diff.  Saturation (rather than panicking) keeps the result sane if the
    /// two snapshots are accidentally swapped.
    ///
    /// ```
    /// use teamsteal_core::Scheduler;
    ///
    /// let scheduler = Scheduler::with_threads(2);
    /// let before = scheduler.metrics();
    /// scheduler.run_team(2, |ctx| {
    ///     ctx.barrier();
    /// });
    /// let delta = scheduler.metrics().delta_since(&before);
    /// assert_eq!(delta.teams_formed, 1);
    /// ```
    pub fn delta_since(&self, earlier: &MetricsSnapshot) -> MetricsSnapshot {
        MetricsSnapshot {
            tasks_executed: self.tasks_executed.saturating_sub(earlier.tasks_executed),
            team_tasks_executed: self
                .team_tasks_executed
                .saturating_sub(earlier.team_tasks_executed),
            teams_formed: self.teams_formed.saturating_sub(earlier.teams_formed),
            teams_built: self.teams_built.saturating_sub(earlier.teams_built),
            team_reuses: self.team_reuses.saturating_sub(earlier.team_reuses),
            team_shrinks: self.team_shrinks.saturating_sub(earlier.team_shrinks),
            registrations: self.registrations.saturating_sub(earlier.registrations),
            steals: self.steals.saturating_sub(earlier.steals),
            tasks_stolen: self.tasks_stolen.saturating_sub(earlier.tasks_stolen),
            steals_local: self.steals_local.saturating_sub(earlier.steals_local),
            steals_remote: self.steals_remote.saturating_sub(earlier.steals_remote),
            failed_steal_rounds: self
                .failed_steal_rounds
                .saturating_sub(earlier.failed_steal_rounds),
            help_steals: self.help_steals.saturating_sub(earlier.help_steals),
            tasks_spawned: self.tasks_spawned.saturating_sub(earlier.tasks_spawned),
            cas_failures: self.cas_failures.saturating_sub(earlier.cas_failures),
            nodes_recycled: self.nodes_recycled.saturating_sub(earlier.nodes_recycled),
            tasks_injected: self.tasks_injected.saturating_sub(earlier.tasks_injected),
            injector_local_pops: self
                .injector_local_pops
                .saturating_sub(earlier.injector_local_pops),
            injector_remote_pops: self
                .injector_remote_pops
                .saturating_sub(earlier.injector_remote_pops),
            external_pin_waits: self
                .external_pin_waits
                .saturating_sub(earlier.external_pin_waits),
            liveness_resyncs: self
                .liveness_resyncs
                .saturating_sub(earlier.liveness_resyncs),
            segments_reclaimed: self
                .segments_reclaimed
                .saturating_sub(earlier.segments_reclaimed),
            buffers_reclaimed: self
                .buffers_reclaimed
                .saturating_sub(earlier.buffers_reclaimed),
            epoch_advances: self.epoch_advances.saturating_sub(earlier.epoch_advances),
            parks: self.parks.saturating_sub(earlier.parks),
            wakeups: self.wakeups.saturating_sub(earlier.wakeups),
            spurious_wakes: self.spurious_wakes.saturating_sub(earlier.spurious_wakes),
            tasks_expired: self.tasks_expired.saturating_sub(earlier.tasks_expired),
            tasks_cancelled: self.tasks_cancelled.saturating_sub(earlier.tasks_cancelled),
            retry_attempts: self.retry_attempts.saturating_sub(earlier.retry_attempts),
            wake_latency: self.wake_latency.delta_since(&earlier.wake_latency),
        }
    }

    /// Total number of task executions (sequential + team participations).
    ///
    /// ```
    /// use teamsteal_core::MetricsSnapshot;
    ///
    /// let s = MetricsSnapshot { tasks_executed: 3, team_tasks_executed: 4, ..Default::default() };
    /// assert_eq!(s.total_executions(), 7);
    /// ```
    pub fn total_executions(&self) -> u64 {
        self.tasks_executed + self.team_tasks_executed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_start_at_zero_and_increment() {
        let c = WorkerCounters::default();
        assert_eq!(c.snapshot(), MetricsSnapshot::default());
        c.inc_tasks_executed();
        c.inc_tasks_executed();
        c.inc_teams_formed();
        c.add_tasks_stolen(5);
        let s = c.snapshot();
        assert_eq!(s.tasks_executed, 2);
        assert_eq!(s.teams_formed, 1);
        assert_eq!(s.tasks_stolen, 5);
        assert_eq!(s.total_executions(), 2);
    }

    #[test]
    fn every_counter_has_a_working_incrementer() {
        let c = WorkerCounters::default();
        c.inc_tasks_executed();
        c.inc_team_tasks_executed();
        c.inc_teams_formed();
        c.inc_teams_built();
        c.inc_team_reuses();
        c.inc_team_shrinks();
        c.inc_registrations();
        c.inc_steals();
        c.inc_steals_local();
        c.inc_steals_remote();
        c.inc_failed_steal_rounds();
        c.inc_help_steals();
        c.inc_tasks_spawned();
        c.inc_cas_failures();
        c.inc_nodes_recycled();
        c.inc_tasks_injected();
        c.inc_injector_local_pops();
        c.inc_injector_remote_pops();
        c.inc_liveness_resyncs();
        c.add_tasks_stolen(1);
        c.add_segments_reclaimed(1);
        c.add_buffers_reclaimed(1);
        c.inc_epoch_advances();
        c.inc_parks();
        c.inc_wakeups();
        c.inc_spurious_wakes();
        c.inc_tasks_expired();
        c.inc_tasks_cancelled();
        c.record_wake_latency(Duration::from_micros(2));
        let s = c.snapshot();
        assert_eq!(
            s,
            MetricsSnapshot {
                tasks_executed: 1,
                team_tasks_executed: 1,
                teams_formed: 1,
                teams_built: 1,
                team_reuses: 1,
                team_shrinks: 1,
                registrations: 1,
                steals: 1,
                tasks_stolen: 1,
                steals_local: 1,
                steals_remote: 1,
                failed_steal_rounds: 1,
                help_steals: 1,
                tasks_spawned: 1,
                cas_failures: 1,
                nodes_recycled: 1,
                tasks_injected: 1,
                injector_local_pops: 1,
                injector_remote_pops: 1,
                external_pin_waits: 0,
                liveness_resyncs: 1,
                segments_reclaimed: 1,
                buffers_reclaimed: 1,
                epoch_advances: 1,
                parks: 1,
                wakeups: 1,
                spurious_wakes: 1,
                tasks_expired: 1,
                tasks_cancelled: 1,
                retry_attempts: 0,
                wake_latency: WakeLatencyHistogram {
                    buckets: [0, 1, 0, 0, 0, 0, 0, 0],
                },
            }
        );
    }

    #[test]
    fn wake_latency_buckets_cover_the_range() {
        let c = WorkerCounters::default();
        c.record_wake_latency(Duration::from_nanos(100)); // < 1 µs
        c.record_wake_latency(Duration::from_micros(3)); // [1, 4)
        c.record_wake_latency(Duration::from_micros(100)); // [64, 256)
        c.record_wake_latency(Duration::from_millis(50)); // >= 4096 µs
        let h = c.snapshot().wake_latency;
        assert_eq!(h.buckets, [1, 1, 0, 0, 1, 0, 0, 1]);
        assert_eq!(h.total(), 4);
        assert_eq!(h.percentile_bound_us(50.0), Some(4));
        assert_eq!(h.percentile_bound_us(100.0), None, "top bucket unbounded");
        assert_eq!(WakeLatencyHistogram::default().percentile_bound_us(95.0), None);
        // Merge and delta are element-wise.
        let merged = h.merge(h);
        assert_eq!(merged.total(), 8);
        assert_eq!(merged.delta_since(&h), h);
    }

    #[test]
    fn delta_since_subtracts_and_saturates() {
        let earlier = MetricsSnapshot {
            tasks_executed: 5,
            steals: 2,
            ..Default::default()
        };
        let later = MetricsSnapshot {
            tasks_executed: 9,
            steals: 2,
            registrations: 4,
            ..Default::default()
        };
        let d = later.delta_since(&earlier);
        assert_eq!(d.tasks_executed, 4);
        assert_eq!(d.steals, 0);
        assert_eq!(d.registrations, 4);
        // Swapped operands saturate instead of underflowing.
        let swapped = earlier.delta_since(&later);
        assert_eq!(swapped.tasks_executed, 0);
        assert_eq!(swapped.registrations, 0);
    }

    #[test]
    fn merge_adds_fields() {
        let a = MetricsSnapshot {
            tasks_executed: 1,
            steals: 2,
            ..Default::default()
        };
        let b = MetricsSnapshot {
            tasks_executed: 10,
            registrations: 3,
            ..Default::default()
        };
        let m = a.merge(b);
        assert_eq!(m.tasks_executed, 11);
        assert_eq!(m.steals, 2);
        assert_eq!(m.registrations, 3);
    }
}
