//! Scheduler observability: per-worker and aggregated counters.
//!
//! The counters exist for three reasons: the degenerate-case claim of the
//! paper ("if all tasks require `r = 1` … the additional CAS … are never
//! executed") is directly testable through them, the ablation benchmarks
//! report them, and they make scheduler tests meaningful (e.g. "stealing
//! actually happened" rather than "the result happened to be correct").

use std::sync::atomic::{AtomicU64, Ordering};

/// Relaxed event counters owned by one worker.
#[derive(Debug, Default)]
pub struct WorkerCounters {
    /// Sequential (`r = 1`) tasks executed by this worker.
    pub tasks_executed: AtomicU64,
    /// Team tasks in whose execution this worker participated.
    pub team_tasks_executed: AtomicU64,
    /// Teams formed with this worker as coordinator.
    pub teams_formed: AtomicU64,
    /// Successful registrations of this worker at a foreign coordinator
    /// (each one is exactly one CAS — the paper's "single extra CAS").
    pub registrations: AtomicU64,
    /// Successful steal operations (at least one task transferred).
    pub steals: AtomicU64,
    /// Tasks received through stealing.
    pub tasks_stolen: AtomicU64,
    /// Steal rounds that visited every partner without finding anything.
    pub failed_steal_rounds: AtomicU64,
    /// Steals performed while helping a smaller task during coordination
    /// (Algorithm 8, lines 21–29).
    pub help_steals: AtomicU64,
    /// Tasks spawned by tasks running on this worker.
    pub tasks_spawned: AtomicU64,
    /// CAS failures on registration structures observed by this worker.
    pub cas_failures: AtomicU64,
    /// Task nodes served from this worker's recycling arena instead of fresh
    /// memory (`nodes_recycled / tasks_spawned` is the arena hit rate).
    pub nodes_recycled: AtomicU64,
    /// Externally injected root tasks this worker pulled from the injection
    /// queue.
    pub tasks_injected: AtomicU64,
    /// Times this worker triggered the liveness backstop (coordinator
    /// re-announcement or member re-registration after a long unproductive
    /// poll).  Zero in healthy runs.
    pub liveness_resyncs: AtomicU64,
    /// Consumed injection-queue segments this worker freed while collecting
    /// the epoch domain at a quiescent point (DESIGN.md §11).
    pub segments_reclaimed: AtomicU64,
    /// Retired deque growth buffers this worker freed while collecting the
    /// epoch domain.
    pub buffers_reclaimed: AtomicU64,
    /// Global epoch advances won by this worker's collection calls.
    pub epoch_advances: AtomicU64,
}

impl WorkerCounters {
    #[inline]
    fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Increments the sequential-task counter.
    #[inline]
    pub fn inc_tasks_executed(&self) {
        Self::bump(&self.tasks_executed);
    }

    /// Increments the team-task participation counter.
    #[inline]
    pub fn inc_team_tasks_executed(&self) {
        Self::bump(&self.team_tasks_executed);
    }

    /// Increments the teams-formed counter.
    #[inline]
    pub fn inc_teams_formed(&self) {
        Self::bump(&self.teams_formed);
    }

    /// Increments the registration counter.
    #[inline]
    pub fn inc_registrations(&self) {
        Self::bump(&self.registrations);
    }

    /// Increments the successful-steal counter.
    #[inline]
    pub fn inc_steals(&self) {
        Self::bump(&self.steals);
    }

    /// Increments the failed-steal-round counter.
    #[inline]
    pub fn inc_failed_steal_rounds(&self) {
        Self::bump(&self.failed_steal_rounds);
    }

    /// Increments the help-steal counter.
    #[inline]
    pub fn inc_help_steals(&self) {
        Self::bump(&self.help_steals);
    }

    /// Increments the spawned-task counter.
    #[inline]
    pub fn inc_tasks_spawned(&self) {
        Self::bump(&self.tasks_spawned);
    }

    /// Increments the registration CAS failure counter.
    #[inline]
    pub fn inc_cas_failures(&self) {
        Self::bump(&self.cas_failures);
    }

    /// Increments the recycled-node counter.
    #[inline]
    pub fn inc_nodes_recycled(&self) {
        Self::bump(&self.nodes_recycled);
    }

    /// Increments the injected-task counter.
    #[inline]
    pub fn inc_tasks_injected(&self) {
        Self::bump(&self.tasks_injected);
    }

    /// Increments the liveness-resync counter.
    #[inline]
    pub fn inc_liveness_resyncs(&self) {
        Self::bump(&self.liveness_resyncs);
    }

    /// Adds `n` to the stolen-task counter.
    #[inline]
    pub fn add_tasks_stolen(&self, n: u64) {
        self.tasks_stolen.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds `n` to the reclaimed-segment counter.
    #[inline]
    pub fn add_segments_reclaimed(&self, n: u64) {
        self.segments_reclaimed.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds `n` to the reclaimed-buffer counter.
    #[inline]
    pub fn add_buffers_reclaimed(&self, n: u64) {
        self.buffers_reclaimed.fetch_add(n, Ordering::Relaxed);
    }

    /// Increments the epoch-advance counter.
    #[inline]
    pub fn inc_epoch_advances(&self) {
        Self::bump(&self.epoch_advances);
    }

    /// Snapshot of this worker's counters.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            tasks_executed: self.tasks_executed.load(Ordering::Relaxed),
            team_tasks_executed: self.team_tasks_executed.load(Ordering::Relaxed),
            teams_formed: self.teams_formed.load(Ordering::Relaxed),
            registrations: self.registrations.load(Ordering::Relaxed),
            steals: self.steals.load(Ordering::Relaxed),
            tasks_stolen: self.tasks_stolen.load(Ordering::Relaxed),
            failed_steal_rounds: self.failed_steal_rounds.load(Ordering::Relaxed),
            help_steals: self.help_steals.load(Ordering::Relaxed),
            tasks_spawned: self.tasks_spawned.load(Ordering::Relaxed),
            cas_failures: self.cas_failures.load(Ordering::Relaxed),
            nodes_recycled: self.nodes_recycled.load(Ordering::Relaxed),
            tasks_injected: self.tasks_injected.load(Ordering::Relaxed),
            liveness_resyncs: self.liveness_resyncs.load(Ordering::Relaxed),
            segments_reclaimed: self.segments_reclaimed.load(Ordering::Relaxed),
            buffers_reclaimed: self.buffers_reclaimed.load(Ordering::Relaxed),
            epoch_advances: self.epoch_advances.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of the counters, either of one worker or aggregated
/// over the whole scheduler.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Sequential tasks executed.
    pub tasks_executed: u64,
    /// Team-task executions (counted once per participating worker).
    pub team_tasks_executed: u64,
    /// Teams formed (counted at the coordinator).
    pub teams_formed: u64,
    /// Successful team registrations.
    pub registrations: u64,
    /// Successful steal operations.
    pub steals: u64,
    /// Tasks received through stealing.
    pub tasks_stolen: u64,
    /// Unsuccessful full steal rounds.
    pub failed_steal_rounds: u64,
    /// Help-steals performed during coordination.
    pub help_steals: u64,
    /// Tasks spawned from running tasks.
    pub tasks_spawned: u64,
    /// Registration CAS failures.
    pub cas_failures: u64,
    /// Task nodes served from a worker's recycling arena.
    pub nodes_recycled: u64,
    /// Root tasks pulled from the external injection queue.
    pub tasks_injected: u64,
    /// Liveness-backstop resyncs (zero in healthy runs).
    pub liveness_resyncs: u64,
    /// Consumed injection-queue segments freed through the epoch domain.
    pub segments_reclaimed: u64,
    /// Retired deque growth buffers freed through the epoch domain.
    pub buffers_reclaimed: u64,
    /// Global epoch advances won by collection calls.
    pub epoch_advances: u64,
}

impl MetricsSnapshot {
    /// Element-wise sum of two snapshots.
    ///
    /// ```
    /// use teamsteal_core::MetricsSnapshot;
    ///
    /// let a = MetricsSnapshot { steals: 2, ..Default::default() };
    /// let b = MetricsSnapshot { steals: 3, teams_formed: 1, ..Default::default() };
    /// let sum = a.merge(b);
    /// assert_eq!(sum.steals, 5);
    /// assert_eq!(sum.teams_formed, 1);
    /// ```
    pub fn merge(self, other: MetricsSnapshot) -> MetricsSnapshot {
        MetricsSnapshot {
            tasks_executed: self.tasks_executed + other.tasks_executed,
            team_tasks_executed: self.team_tasks_executed + other.team_tasks_executed,
            teams_formed: self.teams_formed + other.teams_formed,
            registrations: self.registrations + other.registrations,
            steals: self.steals + other.steals,
            tasks_stolen: self.tasks_stolen + other.tasks_stolen,
            failed_steal_rounds: self.failed_steal_rounds + other.failed_steal_rounds,
            help_steals: self.help_steals + other.help_steals,
            tasks_spawned: self.tasks_spawned + other.tasks_spawned,
            cas_failures: self.cas_failures + other.cas_failures,
            nodes_recycled: self.nodes_recycled + other.nodes_recycled,
            tasks_injected: self.tasks_injected + other.tasks_injected,
            liveness_resyncs: self.liveness_resyncs + other.liveness_resyncs,
            segments_reclaimed: self.segments_reclaimed + other.segments_reclaimed,
            buffers_reclaimed: self.buffers_reclaimed + other.buffers_reclaimed,
            epoch_advances: self.epoch_advances + other.epoch_advances,
        }
    }

    /// Element-wise difference `self - earlier`, saturating at zero.
    ///
    /// Scheduler counters are cumulative over the scheduler's lifetime; to
    /// attribute events to one measured region, snapshot before and after and
    /// diff.  Saturation (rather than panicking) keeps the result sane if the
    /// two snapshots are accidentally swapped.
    ///
    /// ```
    /// use teamsteal_core::Scheduler;
    ///
    /// let scheduler = Scheduler::with_threads(2);
    /// let before = scheduler.metrics();
    /// scheduler.run_team(2, |ctx| {
    ///     ctx.barrier();
    /// });
    /// let delta = scheduler.metrics().delta_since(&before);
    /// assert_eq!(delta.teams_formed, 1);
    /// ```
    pub fn delta_since(&self, earlier: &MetricsSnapshot) -> MetricsSnapshot {
        MetricsSnapshot {
            tasks_executed: self.tasks_executed.saturating_sub(earlier.tasks_executed),
            team_tasks_executed: self
                .team_tasks_executed
                .saturating_sub(earlier.team_tasks_executed),
            teams_formed: self.teams_formed.saturating_sub(earlier.teams_formed),
            registrations: self.registrations.saturating_sub(earlier.registrations),
            steals: self.steals.saturating_sub(earlier.steals),
            tasks_stolen: self.tasks_stolen.saturating_sub(earlier.tasks_stolen),
            failed_steal_rounds: self
                .failed_steal_rounds
                .saturating_sub(earlier.failed_steal_rounds),
            help_steals: self.help_steals.saturating_sub(earlier.help_steals),
            tasks_spawned: self.tasks_spawned.saturating_sub(earlier.tasks_spawned),
            cas_failures: self.cas_failures.saturating_sub(earlier.cas_failures),
            nodes_recycled: self.nodes_recycled.saturating_sub(earlier.nodes_recycled),
            tasks_injected: self.tasks_injected.saturating_sub(earlier.tasks_injected),
            liveness_resyncs: self
                .liveness_resyncs
                .saturating_sub(earlier.liveness_resyncs),
            segments_reclaimed: self
                .segments_reclaimed
                .saturating_sub(earlier.segments_reclaimed),
            buffers_reclaimed: self
                .buffers_reclaimed
                .saturating_sub(earlier.buffers_reclaimed),
            epoch_advances: self.epoch_advances.saturating_sub(earlier.epoch_advances),
        }
    }

    /// Total number of task executions (sequential + team participations).
    ///
    /// ```
    /// use teamsteal_core::MetricsSnapshot;
    ///
    /// let s = MetricsSnapshot { tasks_executed: 3, team_tasks_executed: 4, ..Default::default() };
    /// assert_eq!(s.total_executions(), 7);
    /// ```
    pub fn total_executions(&self) -> u64 {
        self.tasks_executed + self.team_tasks_executed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_start_at_zero_and_increment() {
        let c = WorkerCounters::default();
        assert_eq!(c.snapshot(), MetricsSnapshot::default());
        c.inc_tasks_executed();
        c.inc_tasks_executed();
        c.inc_teams_formed();
        c.add_tasks_stolen(5);
        let s = c.snapshot();
        assert_eq!(s.tasks_executed, 2);
        assert_eq!(s.teams_formed, 1);
        assert_eq!(s.tasks_stolen, 5);
        assert_eq!(s.total_executions(), 2);
    }

    #[test]
    fn every_counter_has_a_working_incrementer() {
        let c = WorkerCounters::default();
        c.inc_tasks_executed();
        c.inc_team_tasks_executed();
        c.inc_teams_formed();
        c.inc_registrations();
        c.inc_steals();
        c.inc_failed_steal_rounds();
        c.inc_help_steals();
        c.inc_tasks_spawned();
        c.inc_cas_failures();
        c.inc_nodes_recycled();
        c.inc_tasks_injected();
        c.inc_liveness_resyncs();
        c.add_tasks_stolen(1);
        c.add_segments_reclaimed(1);
        c.add_buffers_reclaimed(1);
        c.inc_epoch_advances();
        let s = c.snapshot();
        assert_eq!(
            s,
            MetricsSnapshot {
                tasks_executed: 1,
                team_tasks_executed: 1,
                teams_formed: 1,
                registrations: 1,
                steals: 1,
                tasks_stolen: 1,
                failed_steal_rounds: 1,
                help_steals: 1,
                tasks_spawned: 1,
                cas_failures: 1,
                nodes_recycled: 1,
                tasks_injected: 1,
                liveness_resyncs: 1,
                segments_reclaimed: 1,
                buffers_reclaimed: 1,
                epoch_advances: 1,
            }
        );
    }

    #[test]
    fn delta_since_subtracts_and_saturates() {
        let earlier = MetricsSnapshot {
            tasks_executed: 5,
            steals: 2,
            ..Default::default()
        };
        let later = MetricsSnapshot {
            tasks_executed: 9,
            steals: 2,
            registrations: 4,
            ..Default::default()
        };
        let d = later.delta_since(&earlier);
        assert_eq!(d.tasks_executed, 4);
        assert_eq!(d.steals, 0);
        assert_eq!(d.registrations, 4);
        // Swapped operands saturate instead of underflowing.
        let swapped = earlier.delta_since(&later);
        assert_eq!(swapped.tasks_executed, 0);
        assert_eq!(swapped.registrations, 0);
    }

    #[test]
    fn merge_adds_fields() {
        let a = MetricsSnapshot {
            tasks_executed: 1,
            steals: 2,
            ..Default::default()
        };
        let b = MetricsSnapshot {
            tasks_executed: 10,
            registrations: 3,
            ..Default::default()
        };
        let m = a.merge(b);
        assert_eq!(m.tasks_executed, 11);
        assert_eq!(m.steals, 2);
        assert_eq!(m.registrations, 3);
    }
}
