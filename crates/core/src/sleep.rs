//! The sleep controller: worker-count bookkeeping on top of the
//! [`eventcount`](teamsteal_util::eventcount), so notifications are free
//! when nobody sleeps (DESIGN.md §12).
//!
//! The eventcount makes parking *correct*; this module makes waking
//! *cheap and targeted*.  It tracks how many workers are **sleeping**
//! (parked on the eventcount) and how many are **searching** (running steal
//! rounds with empty local queues) in one packed atomic, Rayon-style:
//!
//! * A producer with new anonymous work ([`SleepController::notify_work`])
//!   loads the packed word once.  No sleepers ⇒ nothing to do.  A searcher
//!   already active ⇒ also nothing to do — the searcher will find the work,
//!   and waking a second worker would only add contention.  Only the
//!   "sleepers, but no searcher" state pays for an actual wake.
//! * Team handshake events (registration, publication, disband, countdown)
//!   always notify their **specific** target worker(s) — these paths are
//!   cold and a missed wake there costs milliseconds, so they never gate on
//!   the counts.
//!
//! The sleeping count is incremented *before* the eventcount's
//! `prepare_wait` (one `SeqCst` RMW) and a producer reads it *after* a
//! `SeqCst` fence that follows its work publication, closing the classic
//! Dekker race: either the producer observes the would-be sleeper (and
//! issues the wake), or the sleeper's recheck observes the work (and does
//! not park).  The full ordering argument lives in DESIGN.md §12.

use std::sync::atomic::{fence, AtomicU64, Ordering};
use std::time::Duration;

use teamsteal_util::eventcount::{EventCount, ParkClass, WakeReason};
use teamsteal_util::CachePadded;

/// One sleeping worker in the packed state word.
const SLEEPING_ONE: u64 = 1;
/// One searching worker in the packed state word.
const SEARCHING_ONE: u64 = 1 << 32;

#[inline]
fn sleeping(state: u64) -> u64 {
    state & 0xffff_ffff
}

#[inline]
fn searching(state: u64) -> u64 {
    state >> 32
}

/// Sleep/search bookkeeping plus the eventcount all workers park on.
pub(crate) struct SleepController {
    ec: EventCount,
    /// Packed `searching << 32 | sleeping` worker counts.  Both fields are
    /// bounded by the worker count, so the fields can never carry into each
    /// other.
    state: CachePadded<AtomicU64>,
}

impl SleepController {
    pub(crate) fn new(workers: usize) -> SleepController {
        SleepController {
            ec: EventCount::new(workers),
            state: CachePadded::new(AtomicU64::new(0)),
        }
    }

    /// Number of workers currently parked (diagnostics).
    pub(crate) fn sleepers(&self) -> u64 {
        sleeping(self.state.load(Ordering::Relaxed))
    }

    /// Number of workers currently in a steal round (diagnostics).
    pub(crate) fn searchers(&self) -> u64 {
        searching(self.state.load(Ordering::Relaxed))
    }

    /// A worker enters the searching state (local queues empty, about to
    /// run steal rounds).
    pub(crate) fn start_search(&self) {
        self.state.fetch_add(SEARCHING_ONE, Ordering::SeqCst);
    }

    /// A worker leaves the searching state without parking (it found work
    /// or switched to a coordination path).
    pub(crate) fn end_search(&self) {
        self.state.fetch_sub(SEARCHING_ONE, Ordering::SeqCst);
    }

    /// `true` when at most this worker is searching — the "last searcher"
    /// about to park should stay awake a little longer if work hints are
    /// visible, so steal throughput does not collapse to wake latency.
    pub(crate) fn is_last_searcher(&self) -> bool {
        searching(self.state.load(Ordering::Relaxed)) <= 1
    }

    /// Step 1 of an **idle** park: the searching worker becomes a sleeper
    /// (one RMW) and reads the eventcount ticket.  The caller must re-check
    /// for work before [`park_idle`](Self::park_idle) and call
    /// [`cancel_idle`](Self::cancel_idle) if the recheck fires.
    pub(crate) fn prepare_idle(&self) -> u64 {
        self.state
            .fetch_add(SLEEPING_ONE.wrapping_sub(SEARCHING_ONE), Ordering::SeqCst);
        self.ec.prepare_wait()
    }

    /// Aborts a prepared idle park (recheck found work): back to searching.
    pub(crate) fn cancel_idle(&self) {
        self.state
            .fetch_add(SEARCHING_ONE.wrapping_sub(SLEEPING_ONE), Ordering::SeqCst);
    }

    /// Step 3 of an idle park: block.  On return the worker is a searcher
    /// again (it re-enters its steal loop).
    pub(crate) fn park_idle(&self, slot: usize, ticket: u64, backstop: Duration) -> WakeReason {
        let reason = self.ec.park(slot, ticket, ParkClass::Idle, backstop);
        self.state
            .fetch_add(SEARCHING_ONE.wrapping_sub(SLEEPING_ONE), Ordering::SeqCst);
        reason
    }

    /// Step 1 of a **handshake** park (member poll, coordinator wait, start
    /// countdown): the worker becomes a sleeper without having been a
    /// searcher.
    pub(crate) fn prepare_handshake(&self) -> u64 {
        self.state.fetch_add(SLEEPING_ONE, Ordering::SeqCst);
        self.ec.prepare_wait()
    }

    /// Aborts a prepared handshake park.
    pub(crate) fn cancel_handshake(&self) {
        self.state.fetch_sub(SLEEPING_ONE, Ordering::SeqCst);
    }

    /// Step 3 of a handshake park: block until a targeted notification (or
    /// the backstop).
    pub(crate) fn park_handshake(
        &self,
        slot: usize,
        ticket: u64,
        backstop: Duration,
    ) -> WakeReason {
        let reason = self.ec.park(slot, ticket, ParkClass::Handshake, backstop);
        self.state.fetch_sub(SLEEPING_ONE, Ordering::SeqCst);
        reason
    }

    /// New anonymous work became visible (a spawn into an empty queue, an
    /// injector push, a bulk steal leaving surplus).  Wakes one idle sleeper
    /// unless nobody sleeps or a searcher is already scanning for exactly
    /// this work.  `from_searcher` must be `true` when the **caller itself**
    /// is counted as searching (the wake chains in the idle loop), so its
    /// own count does not suppress the wake it is trying to send.  Returns
    /// `true` if a sleeper was claimed.
    pub(crate) fn notify_work(&self, from_searcher: bool) -> bool {
        // The fence orders the caller's work publication before the count
        // load, pairing with the RMW+fence in `prepare_*` (module docs).
        fence(Ordering::SeqCst);
        let state = self.state.load(Ordering::Relaxed);
        if sleeping(state) == 0 || searching(state) > u64::from(from_searcher) {
            return false;
        }
        self.ec.notify_one_idle()
    }

    /// The locality-aware variant of [`notify_work`](Self::notify_work):
    /// same gate, but a wake that does fire prefers a sleeper whose slot
    /// lies in `near` — the worker range of the domain the work was pushed
    /// into — before falling back to the global rotating scan (DESIGN.md
    /// §13).  Like the anonymous wake it claims only *idle* parkers, so a
    /// handshake park can never swallow it.
    pub(crate) fn notify_work_near(
        &self,
        near: std::ops::Range<usize>,
        from_searcher: bool,
    ) -> bool {
        fence(Ordering::SeqCst);
        let state = self.state.load(Ordering::Relaxed);
        if sleeping(state) == 0 || searching(state) > u64::from(from_searcher) {
            return false;
        }
        self.ec.notify_one_idle_in(near)
    }

    /// `true` when any worker is parked, with the `SeqCst` fence that makes
    /// the answer reliable against a concurrent `prepare_*` (module docs):
    /// a `false` guarantees every not-yet-parked worker's recheck will see
    /// the caller's preceding state change.
    fn any_sleeper(&self) -> bool {
        fence(Ordering::SeqCst);
        sleeping(self.state.load(Ordering::Relaxed)) > 0
    }

    /// Targeted wake of one worker (handshake events).  Free when nobody is
    /// parked; otherwise bumps the eventcount ticket (so a target
    /// mid-commit can never sleep through the event) and claims the
    /// target's slot if parked.  Returns `true` if the target was claimed.
    pub(crate) fn notify_worker(&self, worker: usize) -> bool {
        if !self.any_sleeper() {
            return false;
        }
        self.ec.notify_slot(worker)
    }

    /// Targeted wake of a worker range minus the caller (team announcements,
    /// publications, disbands).  Free when nobody is parked; otherwise one
    /// ticket bump for the whole batch.
    pub(crate) fn notify_workers(
        &self,
        workers: impl IntoIterator<Item = usize>,
        except: usize,
    ) -> usize {
        if !self.any_sleeper() {
            return 0;
        }
        self.ec
            .notify_slots(workers.into_iter().filter(|&w| w != except))
    }

    /// Wakes every parked worker (shutdown, stall resync).
    pub(crate) fn notify_all(&self) -> usize {
        self.ec.notify_all()
    }
}

impl std::fmt::Debug for SleepController {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SleepController")
            .field("sleepers", &self.sleepers())
            .field("searchers", &self.searchers())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_track_transitions() {
        let s = SleepController::new(2);
        assert_eq!((s.sleepers(), s.searchers()), (0, 0));
        s.start_search();
        assert_eq!((s.sleepers(), s.searchers()), (0, 1));
        assert!(s.is_last_searcher());
        let t = s.prepare_idle();
        assert_eq!((s.sleepers(), s.searchers()), (1, 0));
        s.cancel_idle();
        assert_eq!((s.sleepers(), s.searchers()), (0, 1));
        s.end_search();
        assert_eq!((s.sleepers(), s.searchers()), (0, 0));
        let _ = t;
    }

    #[test]
    fn notify_work_is_gated_on_the_counts() {
        let s = SleepController::new(2);
        // Nobody sleeping: nothing to wake.
        assert!(!s.notify_work(false));
        // A searcher is active: the work will be found without a wake.
        s.start_search();
        let _t = s.prepare_handshake(); // one sleeper (handshake)
        assert_eq!((s.sleepers(), s.searchers()), (1, 1));
        assert!(!s.notify_work(false));
        // …unless the searcher is the *caller* chaining a wake: its own
        // count must not suppress the notification (the scan still claims
        // nobody here, because the only sleeper is a handshake park).
        let _ = s.notify_work(true);
        assert_eq!((s.sleepers(), s.searchers()), (1, 1));
        s.cancel_handshake();
        s.end_search();
    }

    #[test]
    fn handshake_prepare_cancel_balances() {
        let s = SleepController::new(1);
        let _t = s.prepare_handshake();
        assert_eq!(s.sleepers(), 1);
        s.cancel_handshake();
        assert_eq!(s.sleepers(), 0);
    }

    #[test]
    fn notify_workers_skips_the_sender() {
        let s = SleepController::new(4);
        // No one parked: zero claims either way, but the call must not wake
        // or count the sender's own slot.
        assert_eq!(s.notify_workers(0..4, 2), 0);
    }
}
