//! Cooperative cancellation: the lock-free claim-to-run cell
//! (DESIGN.md §17).
//!
//! A [`CancelCell`] is the decided-race arbiter between "this task runs"
//! and "this task is dropped without running".  It is a three-state
//! machine over one atomic word:
//!
//! ```text
//!            cancel()                try_claim()
//! Pending ─────────────▶ Cancelled   Pending ─────────────▶ Claimed
//! ```
//!
//! Both transitions are single CASes out of `Pending`, and `Cancelled`
//! and `Claimed` are terminal, so exactly one of the two ever wins: a
//! task either executes (its runner won the claim CAS) or is dropped
//! (the canceller won, or the runner observed the cancellation and
//! retired the node), never both and never neither.  The exhaustive
//! interleaving proof lives in `crates/model/tests/cancel_model.rs`,
//! which is why the cell's atomic comes from the `teamsteal_util::sync`
//! shim rather than `std` directly.
//!
//! Deadlines deliberately do **not** live in the cell: a task's deadline
//! is plain immutable data on the `TaskNode`, checked by whichever worker
//! exclusively owns the node at pop/claim time (node ownership transfers
//! linearly through the deques, so no two threads ever race on the
//! deadline check).  Only *external* cancellation — a caller thread
//! racing the executing worker — needs the CAS; the expiry path merely
//! settles the cell to `Cancelled` so a late `cancel()` or `is_finished`
//! observer sees a coherent terminal state.

use teamsteal_util::sync::atomic::{AtomicU32, Ordering};

const PENDING: u32 = 0;
const CANCELLED: u32 = 1;
const CLAIMED: u32 = 2;

/// Lock-free Pending → Cancelled/Claimed cell deciding the run-vs-cancel
/// race for one task.  See the module docs.
#[derive(Debug)]
pub struct CancelCell {
    state: AtomicU32,
}

impl Default for CancelCell {
    fn default() -> Self {
        Self::new()
    }
}

impl CancelCell {
    /// Creates a cell in the `Pending` state.
    pub fn new() -> Self {
        CancelCell {
            state: AtomicU32::new(PENDING),
        }
    }

    /// Requests cancellation.  Returns `true` if this call won the race —
    /// the task is then guaranteed never to run.  Returns `false` when the
    /// task was already claimed for execution (it runs, or is running, or
    /// ran) or was already cancelled by an earlier call.
    ///
    /// The acquire on failure pairs with the claimer's release, so a caller
    /// that observes `Claimed` also observes every write the claimer made
    /// before the CAS.
    pub fn cancel(&self) -> bool {
        self.state
            .compare_exchange(PENDING, CANCELLED, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
    }

    /// Claims the task for execution.  Returns `true` for the single caller
    /// that may run it; `false` means the task was cancelled first and must
    /// be retired without running.  Called exactly once per task, by the
    /// worker that owns the node at execution time.
    pub fn try_claim(&self) -> bool {
        self.state
            .compare_exchange(PENDING, CLAIMED, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
    }

    /// `true` once a `cancel()` has won the race (the task will never run).
    pub fn is_cancelled(&self) -> bool {
        self.state.load(Ordering::Acquire) == CANCELLED
    }

    /// `true` once a runner has claimed the task (cancellation can no
    /// longer prevent execution).
    pub fn is_claimed(&self) -> bool {
        self.state.load(Ordering::Acquire) == CLAIMED
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn claim_then_cancel_fails() {
        let cell = CancelCell::new();
        assert!(!cell.is_cancelled());
        assert!(cell.try_claim());
        assert!(cell.is_claimed());
        assert!(!cell.cancel(), "cancel after claim must lose");
        assert!(!cell.is_cancelled());
    }

    #[test]
    fn cancel_then_claim_fails() {
        let cell = CancelCell::new();
        assert!(cell.cancel());
        assert!(cell.is_cancelled());
        assert!(!cell.try_claim(), "claim after cancel must lose");
        assert!(!cell.is_claimed());
    }

    #[test]
    fn transitions_are_exactly_once() {
        let cell = CancelCell::new();
        assert!(cell.cancel());
        assert!(!cell.cancel(), "second cancel does not win again");
        let cell = CancelCell::new();
        assert!(cell.try_claim());
        assert!(!cell.try_claim(), "second claim does not win again");
    }
}
