//! Cooperative cancellation: the lock-free claim-to-run cell
//! (DESIGN.md §17).
//!
//! A [`CancelCell`] is the decided-race arbiter between "this task runs"
//! and "this task is dropped without running".  It is a four-state
//! machine over one atomic word:
//!
//! ```text
//!            cancel()                try_claim()
//! Pending ─────────────▶ Cancelled   Pending ─────────────▶ Claimed
//!
//!            expire()
//! Pending ─────────────▶ Expired
//! ```
//!
//! All three transitions are single CASes out of `Pending`, and every
//! non-`Pending` state is terminal, so exactly one of them ever wins: a
//! task either executes (its runner won the claim CAS) or is dropped
//! (a canceller or the owner's deadline check won, or the runner
//! observed the settled cell and retired the node), never both and never
//! neither.  Keeping `Cancelled` and `Expired` distinct keeps the
//! observers honest: `is_cancelled()` is true only when a `cancel()`
//! call actually won the race, never when a deadline lapsed.  The
//! exhaustive interleaving proof lives in
//! `crates/model/tests/cancel_model.rs`, which is why the cell's atomic
//! comes from the `teamsteal_util::sync` shim rather than `std` directly.
//!
//! Deadlines deliberately do **not** live in the cell: a task's deadline
//! is plain immutable data on the `TaskNode`, checked by whichever worker
//! exclusively owns the node at pop/claim time (node ownership transfers
//! linearly through the deques, so no two threads ever race on the
//! deadline check).  Only *external* cancellation — a caller thread
//! racing the executing worker — needs the CAS; the expiry path merely
//! settles the cell to `Expired` so a late `cancel()`, `is_expired` or
//! `is_finished` observer sees a coherent terminal state.

use teamsteal_util::sync::atomic::{AtomicU32, Ordering};

const PENDING: u32 = 0;
const CANCELLED: u32 = 1;
const CLAIMED: u32 = 2;
const EXPIRED: u32 = 3;

/// Lock-free Pending → Cancelled/Claimed/Expired cell deciding the
/// run-vs-drop race for one task.  See the module docs.
#[derive(Debug)]
pub struct CancelCell {
    state: AtomicU32,
}

impl Default for CancelCell {
    fn default() -> Self {
        Self::new()
    }
}

impl CancelCell {
    /// Creates a cell in the `Pending` state.
    pub fn new() -> Self {
        CancelCell {
            state: AtomicU32::new(PENDING),
        }
    }

    /// Requests cancellation.  Returns `true` if this call won the race —
    /// the task is then guaranteed never to run.  Returns `false` when the
    /// task was already claimed for execution (it runs, or is running, or
    /// ran), already expired, or already cancelled by an earlier call.
    ///
    /// The acquire on failure pairs with the claimer's release, so a caller
    /// that observes `Claimed` also observes every write the claimer made
    /// before the CAS.
    pub fn cancel(&self) -> bool {
        self.state
            .compare_exchange(PENDING, CANCELLED, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
    }

    /// Marks the task expired: its deadline passed before any runner
    /// claimed it.  Returns `true` if this call settled the cell; `false`
    /// when the cell was already claimed, cancelled or expired.  Called
    /// only by the worker that exclusively owns the node at claim time
    /// (the deadline check itself needs no atomics — see the module docs);
    /// the CAS exists so a concurrently racing `cancel()` and a late
    /// observer still see one coherent terminal state.
    pub fn expire(&self) -> bool {
        self.state
            .compare_exchange(PENDING, EXPIRED, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
    }

    /// Claims the task for execution.  Returns `true` for the single caller
    /// that may run it; `false` means the task was cancelled or expired
    /// first and must be retired without running.  Called exactly once per
    /// task, by the worker that owns the node at execution time.
    pub fn try_claim(&self) -> bool {
        self.state
            .compare_exchange(PENDING, CLAIMED, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
    }

    /// `true` while no transition has won yet: the task is still queued
    /// and both `cancel()` and `try_claim()` could still succeed.
    pub fn is_pending(&self) -> bool {
        self.state.load(Ordering::Acquire) == PENDING
    }

    /// `true` once a `cancel()` has won the race (the task will never run).
    /// Expiry does **not** count: see [`is_expired`](Self::is_expired).
    pub fn is_cancelled(&self) -> bool {
        self.state.load(Ordering::Acquire) == CANCELLED
    }

    /// `true` once the owner's deadline check settled the cell (the task
    /// will never run because its deadline passed while it was queued).
    pub fn is_expired(&self) -> bool {
        self.state.load(Ordering::Acquire) == EXPIRED
    }

    /// `true` once a runner has claimed the task (cancellation can no
    /// longer prevent execution).
    pub fn is_claimed(&self) -> bool {
        self.state.load(Ordering::Acquire) == CLAIMED
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn claim_then_cancel_fails() {
        let cell = CancelCell::new();
        assert!(!cell.is_cancelled());
        assert!(cell.try_claim());
        assert!(cell.is_claimed());
        assert!(!cell.cancel(), "cancel after claim must lose");
        assert!(!cell.is_cancelled());
    }

    #[test]
    fn cancel_then_claim_fails() {
        let cell = CancelCell::new();
        assert!(cell.cancel());
        assert!(cell.is_cancelled());
        assert!(!cell.try_claim(), "claim after cancel must lose");
        assert!(!cell.is_claimed());
    }

    #[test]
    fn transitions_are_exactly_once() {
        let cell = CancelCell::new();
        assert!(cell.cancel());
        assert!(!cell.cancel(), "second cancel does not win again");
        let cell = CancelCell::new();
        assert!(cell.try_claim());
        assert!(!cell.try_claim(), "second claim does not win again");
        let cell = CancelCell::new();
        assert!(cell.expire());
        assert!(!cell.expire(), "second expire does not win again");
    }

    #[test]
    fn expiry_is_terminal_and_distinct_from_cancellation() {
        let cell = CancelCell::new();
        assert!(cell.is_pending());
        assert!(cell.expire());
        assert!(cell.is_expired());
        assert!(!cell.is_cancelled(), "expiry must not report as cancelled");
        assert!(!cell.is_pending());
        assert!(!cell.cancel(), "cancel after expiry must lose");
        assert!(!cell.try_claim(), "claim after expiry must lose");
        // And the other direction: a won cancel is never reported expired.
        let cell = CancelCell::new();
        assert!(cell.cancel());
        assert!(!cell.expire());
        assert!(!cell.is_expired());
    }
}
