//! The worker loop: classic work-stealing generalized with deterministic
//! team-building (Algorithms 5–9 of the paper).
//!
//! Each worker owns one entry of the shared per-thread state array (the
//! paper's `ThreadRef[]`) and runs [`Worker::run_loop`].  The loop is a
//! faithful — but explicitly clarified — implementation of the paper's
//! modified `getTask` / `stealTasks` / `coordinateTask` / `pollPartners` /
//! `switchToCoordinator` procedures; every deliberate clarification or
//! deviation is marked with a `paper:` comment and summarized in DESIGN.md §5.

use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, AtomicPtr, AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use std::cell::UnsafeCell;

use teamsteal_deque::{Injector, RawDeque, Steal};
use teamsteal_registration::{AcquireOutcome, AtomicRegistration, ReleaseOutcome};
use teamsteal_topology::{StealPolicy, Topology};
use teamsteal_util::epoch::{Domain, Participant};
use teamsteal_util::rng::{worker_rng, Xoshiro256};
use teamsteal_util::slab::Slab;
use teamsteal_util::{bits, Backoff, CachePadded};

use crate::config::{SchedulerConfig, StealAmount};
use crate::context::{SpawnTarget, TaskContext};
use crate::metrics::WorkerCounters;
use crate::task::{JobSlot, ScopeState, TaskNode, TaskPtr};
use crate::team::TeamBarrier;

/// Runtime switch for the stall-state dumps, in addition to the
/// `TEAMSTEAL_STALL_DEBUG` environment variable.  See [`enable_stall_debug`].
static FORCE_STALL_DEBUG: AtomicBool = AtomicBool::new(false);

/// Turns on the scheduler's periodic stall-state dumps at runtime, as if
/// `TEAMSTEAL_STALL_DEBUG` had been set.  Intended for test watchdogs that
/// have detected a hang and want the workers to report their state before
/// the process is aborted.  There is deliberately no way to turn the dumps
/// off again: by the time this is called, the process is already doomed to
/// debugging.
pub fn enable_stall_debug() {
    FORCE_STALL_DEBUG.store(true, Ordering::Release);
}

/// Per-worker state visible to other workers (the paper's per-thread
/// data structure reachable through `ThreadRef[]`).
pub(crate) struct WorkerShared {
    /// Fixed worker id `I` (kept for debugging / future NUMA pinning).
    #[allow(dead_code)]
    pub(crate) id: usize,
    /// One deque per hierarchy level (Refinement 1): queue `ℓ` holds tasks
    /// whose requirement maps to level `ℓ` for this worker.  The deques
    /// store raw `TaskNode` pointers as words, so pushing a task never
    /// allocates.
    pub(crate) queues: Vec<RawDeque>,
    /// Occupancy bitmask: bit `ℓ` is set when queue `ℓ` *may* be non-empty.
    /// The owner sets a bit **before** pushing and is the only clearer
    /// (after observing emptiness), so for thieves a clear bit reliably
    /// means "empty", while a set bit is a hint to check the queue.
    pub(crate) occupancy: AtomicUsize,
    /// This worker's task-node arena.  `alloc` is owner-only (the spawn
    /// path); `free` is called by whichever worker finishes a task last.
    pub(crate) node_pool: Slab<TaskNode>,
    /// The packed registration structure `R = {r, a, t, N}`.
    pub(crate) reg: AtomicRegistration,
    /// Id of the coordinator this worker is registered with (self ⇒ none).
    /// Written only by the owning worker.
    pub(crate) coordinator: AtomicUsize,
    /// Publication seqlock: even ⇒ stable, odd ⇒ publication in progress.
    /// Monotonically increasing, so members can tell new tasks from ones they
    /// have already executed (the paper's "remember the last executed task").
    pub(crate) publish_seq: AtomicU64,
    /// The published team task (`c.task` in the paper).
    pub(crate) publish_task: AtomicPtr<TaskNode>,
    /// First worker id of the published task's team.
    pub(crate) publish_base: AtomicUsize,
    /// Team size of the published task.
    pub(crate) publish_size: AtomicUsize,
    /// Start countdown `G`: non-coordinator members that have not yet picked
    /// up the published task.
    pub(crate) start_countdown: AtomicU32,
    /// Event counters.
    pub(crate) counters: WorkerCounters,
}

impl WorkerShared {
    fn new(id: usize, queue_levels: usize, epoch: &Arc<Domain>) -> Self {
        debug_assert!(
            queue_levels <= usize::BITS as usize,
            "occupancy bitmask holds one bit per queue level"
        );
        WorkerShared {
            id,
            // SAFETY: every thread that steals from these deques is a worker
            // thread pinned for the whole loop iteration (`run_loop`), or
            // has exclusive access (drop-time draining) — the `in_domain`
            // contract.
            queues: (0..queue_levels)
                .map(|_| unsafe { RawDeque::in_domain(Arc::clone(epoch)) })
                .collect(),
            occupancy: AtomicUsize::new(0),
            node_pool: Slab::new(),
            reg: AtomicRegistration::new(),
            coordinator: AtomicUsize::new(id),
            publish_seq: AtomicU64::new(0),
            publish_task: AtomicPtr::new(std::ptr::null_mut()),
            publish_base: AtomicUsize::new(0),
            publish_size: AtomicUsize::new(0),
            start_countdown: AtomicU32::new(0),
            counters: WorkerCounters::default(),
        }
    }

    /// Pushes a task onto queue `level`.  **Owner only** (deque contract).
    fn push_task(&self, level: usize, ptr: *mut TaskNode) {
        // Set the occupancy bit before the push: a thief that observes a
        // clear bit may then safely skip the level, because the element
        // cannot become visible (release store in `push_bottom`) before the
        // bit does.
        let bit = 1usize << level;
        if self.occupancy.load(Ordering::Relaxed) & bit == 0 {
            self.occupancy.fetch_or(bit, Ordering::Relaxed);
        }
        self.queues[level].push_bottom(ptr as usize);
    }

    /// Pops from the bottom of queue `level`.  **Owner only.**
    fn pop_task(&self, level: usize) -> Option<*mut TaskNode> {
        self.queues[level].pop_bottom().map(|word| word as *mut TaskNode)
    }

    /// Returns the index of the lowest non-empty queue, if any, using the
    /// occupancy bitmask instead of scanning every deque.  **Owner only**:
    /// stale-set bits (queues drained by thieves) are healed here, and only
    /// the owner may clear bits — after it observed emptiness nobody but the
    /// owner itself could have refilled the queue.
    fn lowest_nonempty_level(&self) -> Option<usize> {
        let mut mask = self.occupancy.load(Ordering::Relaxed);
        while let Some(level) = bits::lowest_set(mask) {
            if !self.queues[level].is_empty() {
                return Some(level);
            }
            self.occupancy.fetch_and(!(1usize << level), Ordering::Relaxed);
            mask = bits::clear_bit(mask, level);
        }
        None
    }
}

/// Participant slots pre-registered for threads *outside* the worker pool
/// (`Scheduler::scope` submitters, drop-time draining).  More simultaneous
/// submitters than this briefly spin for a free slot in `ExternalPins`.
const EXTERNAL_PARTICIPANTS: usize = 32;

/// A fixed pool of pre-registered epoch participants that threads outside
/// the worker pool borrow around each injector access.
///
/// Workers own their participant for the whole thread lifetime; external
/// submitters are arbitrary short-lived threads, so they claim a slot with
/// one CAS, pin, touch the queue, unpin and release — keeping the injection
/// path lock-free (a claimed slot is exclusive, so the `UnsafeCell` access
/// is data-race free).
pub(crate) struct ExternalPins {
    slots: Box<[CachePadded<ExternalSlot>]>,
}

struct ExternalSlot {
    busy: AtomicBool,
    participant: UnsafeCell<Participant>,
}

// SAFETY: `participant` is only touched between a successful `busy` CAS
// (Acquire) and the matching Release store, which serializes all access.
unsafe impl Sync for ExternalPins {}
unsafe impl Send for ExternalPins {}

impl ExternalPins {
    fn new(epoch: &Arc<Domain>, count: usize) -> Self {
        ExternalPins {
            slots: (0..count)
                .map(|_| {
                    CachePadded::new(ExternalSlot {
                        busy: AtomicBool::new(false),
                        participant: UnsafeCell::new(
                            epoch.register().expect("domain sized for the external pool"),
                        ),
                    })
                })
                .collect(),
        }
    }

    /// Runs `f` pinned to a borrowed external participant.
    pub(crate) fn with_pinned<R>(&self, f: impl FnOnce() -> R) -> R {
        /// Unpins and releases the claimed slot even if `f` unwinds: a
        /// leaked claim would otherwise leave its participant pinned at a
        /// stale epoch *forever*, wedging reclamation for the scheduler's
        /// whole lifetime (and losing a pool slot).
        struct SlotGuard<'a>(&'a ExternalSlot);
        impl Drop for SlotGuard<'_> {
            fn drop(&mut self) {
                // SAFETY: the guard exists only while we hold the claim.
                unsafe { &*self.0.participant.get() }.unpin();
                self.0.busy.store(false, Ordering::Release);
            }
        }

        // Start the scan at a per-thread offset so concurrent submitters
        // claim *different* cache-padded slots instead of all CASing slot
        // 0's line on every injection.
        thread_local! {
            static SCAN_OFFSET: usize = {
                static NEXT: AtomicUsize = AtomicUsize::new(0);
                NEXT.fetch_add(1, Ordering::Relaxed)
            };
        }
        let start = SCAN_OFFSET.with(|o| *o) % self.slots.len();
        let mut backoff = Backoff::new();
        loop {
            for i in 0..self.slots.len() {
                let slot = &*self.slots[(start + i) % self.slots.len()];
                if slot.busy.load(Ordering::Relaxed) {
                    continue;
                }
                if slot
                    .busy
                    .compare_exchange(false, true, Ordering::Acquire, Ordering::Relaxed)
                    .is_err()
                {
                    continue;
                }
                let guard = SlotGuard(slot);
                // SAFETY: the claimed `busy` flag gives us exclusive access
                // until the guard's Release store.
                unsafe { &*slot.participant.get() }.pin();
                let result = f();
                drop(guard);
                return result;
            }
            // All slots claimed: more than EXTERNAL_PARTICIPANTS threads are
            // mid-injection right now.  Briefly back off and rescan.
            backoff.wait_capped(std::time::Duration::from_micros(50));
        }
    }
}

/// State shared by all workers of one scheduler.
pub(crate) struct SchedulerShared {
    pub(crate) workers: Vec<CachePadded<WorkerShared>>,
    pub(crate) topology: Topology,
    pub(crate) steal_policy: StealPolicy,
    pub(crate) steal_amount: StealAmount,
    pub(crate) idle_sleep_cap: std::time::Duration,
    pub(crate) member_poll_sleep_cap: std::time::Duration,
    pub(crate) seed: u64,
    /// Epoch-reclamation domain shared by the injector and every worker
    /// deque; sized for all workers plus the external-submitter pool
    /// (DESIGN.md §11).
    pub(crate) epoch: Arc<Domain>,
    /// Borrowed pins for threads outside the worker pool.
    pub(crate) external_pins: ExternalPins,
    /// External injection queue for root tasks submitted by
    /// `Scheduler::scope`: a lock-free MPMC FIFO, so submitters never
    /// serialize against each other or against idle workers polling for
    /// work.
    pub(crate) injector: Injector<TaskPtr>,
    pub(crate) shutdown: AtomicBool,
}

impl SchedulerShared {
    pub(crate) fn new(config: &SchedulerConfig) -> Arc<Self> {
        let topology = config.resolve_topology();
        let p = topology.num_threads();
        let queue_levels = topology.num_queue_levels();
        let epoch = Domain::new(p + EXTERNAL_PARTICIPANTS);
        let external_pins = ExternalPins::new(&epoch, EXTERNAL_PARTICIPANTS);
        Arc::new(SchedulerShared {
            workers: (0..p)
                .map(|id| CachePadded::new(WorkerShared::new(id, queue_levels, &epoch)))
                .collect(),
            topology,
            steal_policy: config.steal_policy,
            steal_amount: config.steal_amount,
            idle_sleep_cap: config.idle_sleep_cap,
            member_poll_sleep_cap: config.member_poll_sleep_cap,
            seed: config.seed,
            // SAFETY: all injector access goes through pinned participants —
            // workers pin for the whole loop iteration, external submitters
            // borrow a pinned slot via `ExternalPins::with_pinned`
            // (including drop-time draining).
            injector: unsafe { Injector::in_domain(Arc::clone(&epoch)) },
            epoch,
            external_pins,
            shutdown: AtomicBool::new(false),
        })
    }

    pub(crate) fn num_threads(&self) -> usize {
        self.workers.len()
    }

    /// One-line state dump of every worker (registration word, coordinator,
    /// start countdown, queue lengths) plus the injector length.  Lock-free;
    /// shared by the stall reporter and `Scheduler::debug_state`.
    pub(crate) fn debug_state_line(&self) -> String {
        let mut line = format!(
            "injector={} segs={} deferred={}",
            self.injector.len(),
            self.injector.live_segments(),
            self.epoch.pending(),
        );
        for (i, w) in self.workers.iter().enumerate() {
            let reg = w.reg.load();
            let qlens: Vec<usize> = w.queues.iter().map(|q| q.len()).collect();
            line.push_str(&format!(
                " | w{i}: coord={} r={} a={} t={} n={} G={} q={qlens:?}",
                w.coordinator.load(Ordering::Relaxed),
                reg.required,
                reg.acquired,
                reg.teamed,
                reg.counter,
                w.start_countdown.load(Ordering::Relaxed),
            ));
        }
        line
    }

    /// Injects a root task from outside the worker pool.  Lock-free: one
    /// CAS to borrow an external epoch pin, one `fetch_add` plus a release
    /// store in the queue, one release store to return the pin.
    pub(crate) fn inject(&self, ptr: *mut TaskNode) {
        self.external_pins
            .with_pinned(|| self.injector.push(TaskPtr(ptr)));
    }

    /// Frees any task nodes still sitting in queues or the injector.  Called
    /// by the scheduler after all workers have exited (only relevant when a
    /// scope was abandoned because a task panicked).
    pub(crate) fn drain_leftovers(&self) {
        let mut leftovers: Vec<TaskPtr> = Vec::new();
        self.external_pins.with_pinned(|| {
            while let Some(task) = self.injector.pop() {
                leftovers.push(task);
            }
        });
        for w in &self.workers {
            for q in &w.queues {
                while let Some(word) = q.pop_bottom() {
                    leftovers.push(TaskPtr(word as *mut TaskNode));
                }
            }
        }
        for TaskPtr(ptr) in leftovers {
            // SAFETY: nobody else references a node once it has been drained
            // from a queue; the workers have all exited.
            let scope = unsafe { Arc::clone(&(*ptr).scope) };
            unsafe { TaskNode::release(ptr) };
            scope.task_finished();
        }
    }
}

/// Unproductive poll rounds after which a coordinator withdraws and
/// re-announces its requirement (≈1.6 s at the default 200 µs poll-sleep
/// cap).  Liveness backstop for the grow/shrink handshake; see
/// `coordinate_level`.
const COORDINATOR_RESYNC_ROUNDS: u32 = 8192;

/// Unproductive poll rounds after which a registered-but-unteamed member
/// deregisters and re-synchronizes from scratch (≈0.8 s).  Liveness backstop
/// for a member that missed a registration update; see `member_step`.
const MEMBER_RESYNC_ROUNDS: u32 = 4096;

/// Outcome of one `pollPartners` round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PollOutcome {
    /// The caller switched to (registered with) a different coordinator.
    Switched,
    /// The caller stole smaller tasks to help a partner finish.
    Helped,
    /// Nothing changed.
    Nothing,
}

/// Loop iterations between opportunistic epoch collections while the worker
/// is busy (idle workers collect every round instead).  Collection is cheap
/// when there is no garbage, so this only bounds bag-mutex traffic.
const COLLECT_INTERVAL: u64 = 64;

/// Worker-local (unshared) state plus a handle to the shared state.
pub(crate) struct Worker {
    pub(crate) id: usize,
    pub(crate) shared: Arc<SchedulerShared>,
    rng: Xoshiro256,
    /// Highest publication sequence number already handled, per coordinator.
    last_seen_seq: Vec<u64>,
    /// Renewal counter recorded at registration time, per coordinator.
    registered_counter: Vec<u16>,
    /// This worker's epoch participant.  Pinned at the top of every loop
    /// iteration (a quiescent point), unpinned around sleeps so a parked
    /// worker never stalls reclamation (DESIGN.md §11).
    participant: Participant,
    /// Loop iterations since start; rate-limits busy-path collection.
    loop_ticks: u64,
}

impl Worker {
    pub(crate) fn new(id: usize, shared: Arc<SchedulerShared>) -> Self {
        let p = shared.num_threads();
        let rng = worker_rng(shared.seed, id);
        let participant = shared
            .epoch
            .register()
            .expect("epoch domain is sized for every worker");
        Worker {
            id,
            shared,
            rng,
            last_seen_seq: vec![0; p],
            registered_counter: vec![0; p],
            participant,
            loop_ticks: 0,
        }
    }

    /// Collects the epoch domain, crediting freed objects to this worker's
    /// counters.  Must be called at a quiescent point (directly after a
    /// repin, before any protected pointer is obtained).
    fn collect_epoch(&self) {
        let freed = self.shared.epoch.try_collect();
        if freed.advanced {
            self.me().counters.inc_epoch_advances();
        }
        self.me().counters.add_segments_reclaimed(freed.freed_segments);
        self.me().counters.add_buffers_reclaimed(freed.freed_buffers);
    }

    /// Backoff-sleeps with the epoch pin released, so a waiting worker never
    /// blocks the global epoch.  Every wait site holds no protected pointer
    /// across the sleep; the caller's next protected access happens after
    /// the repin here (a fresh quiescent point).
    fn unpinned_wait(&self, backoff: &mut Backoff, cap: std::time::Duration) {
        self.participant.unpin();
        backoff.wait_capped(cap);
        self.participant.pin();
    }

    #[inline]
    fn me(&self) -> &WorkerShared {
        &self.shared.workers[self.id]
    }

    /// `true` when the `TEAMSTEAL_STALL_DEBUG` environment variable is set
    /// or [`enable_stall_debug`] was called: long-running waits then print a
    /// one-line state dump of every worker at spaced intervals, which is the
    /// intended way to diagnose a scheduler that appears to make no
    /// progress.
    fn stall_debug_enabled() -> bool {
        static ENABLED: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
        *ENABLED.get_or_init(|| std::env::var_os("TEAMSTEAL_STALL_DEBUG").is_some())
            || FORCE_STALL_DEBUG.load(Ordering::Acquire)
    }

    /// Prints the scheduler-wide state when a wait loop has gone around
    /// `rounds` times without progress — at rounds 512, 1024, 2048, … and,
    /// so that dumps keep coming when the debug switch is flipped on *after*
    /// a hang started, at every later multiple of 4096.  Only active when
    /// stall debugging is enabled; the diagnostic path takes no locks.
    fn stall_report(&self, site: &str, rounds: u32) {
        if !Self::stall_debug_enabled() {
            return;
        }
        if rounds < 512 || (rounds.count_ones() != 1 && rounds % 4096 != 0) {
            return;
        }
        eprintln!(
            "[teamsteal stall] worker {} at {site} after {rounds} rounds | {}",
            self.id,
            self.shared.debug_state_line()
        );
    }

    #[inline]
    fn topo(&self) -> &Topology {
        &self.shared.topology
    }

    /// The scheduler's main loop (the paper's Algorithm 1 + Algorithm 5).
    pub(crate) fn run_loop(&mut self) {
        let mut idle = Backoff::new();
        loop {
            if self.shared.shutdown.load(Ordering::Acquire) {
                break;
            }
            // Quiescent point: every protected pointer from the previous
            // iteration is dead here.  Re-pin to the current epoch, and
            // opportunistically collect ripe garbage (every round while
            // idle would be wasteful when busy, so busy rounds collect at
            // COLLECT_INTERVAL).
            self.participant.pin();
            self.loop_ticks = self.loop_ticks.wrapping_add(1);
            if self.loop_ticks % COLLECT_INTERVAL == 0 {
                self.collect_epoch();
            }
            let coordinator = self.me().coordinator.load(Ordering::Relaxed);
            if coordinator != self.id {
                // paper: Algorithm 5 lines 7–14 — this worker is registered
                // with another coordinator; run its published task or help.
                self.member_step(coordinator, &mut idle);
                continue;
            }
            // Refinement 1: while a team is formed, keep working on the queue
            // of that size before looking at smaller tasks.
            if let Some(level) = self.preferred_level() {
                idle.reset();
                self.work_on_level(level);
                continue;
            }
            // All local queues are empty.  Dissolve any team we coordinate
            // (Lemma 1: "the team will dissolve ... as soon as the current
            // coordinator's queue runs empty") and go stealing.
            self.release_team_if_any();
            if self.pop_injected() || self.steal_round() {
                idle.reset();
                continue;
            }
            self.me().counters.inc_failed_steal_rounds();
            self.stall_report("idle/steal", idle.rounds());
            // An idle round is the cheapest quiescent point there is:
            // collect before parking, then sleep unpinned so reclamation
            // never waits on a sleeper.
            self.collect_epoch();
            self.unpinned_wait(&mut idle, self.shared.idle_sleep_cap);
        }
        self.participant.unpin();
    }

    /// The queue level this worker should work on next: the formed team's
    /// level while its queue is non-empty (Refinement 1), otherwise the
    /// lowest non-empty level (smallest tasks first).
    fn preferred_level(&self) -> Option<usize> {
        let reg = self.me().reg.load();
        if reg.teamed > 1 {
            let team_level = self
                .topo()
                .level_for_requirement(self.id, reg.teamed as usize);
            if !self.me().queues[team_level].is_empty() {
                return Some(team_level);
            }
        }
        self.me().lowest_nonempty_level()
    }

    // ------------------------------------------------------------------
    // Own-queue execution and coordination
    // ------------------------------------------------------------------

    fn work_on_level(&mut self, level: usize) {
        let group = self.topo().group_range(self.id, level);
        if group.len() == 1 {
            // Degenerate case (r = 1): exactly classic work-stealing — no
            // registration CAS, no publication (paper, Section 3.1).  If we
            // still hold a larger team from earlier work, resize it away so
            // its members do not wait on us needlessly (Refinement 1: the
            // team is resized to work on a queue containing smaller tasks).
            if self.me().reg.load().teamed > 1 {
                self.release_team_if_any();
            }
            if let Some(ptr) = self.me().pop_task(level) {
                self.run_singleton(ptr);
            }
        } else {
            self.coordinate_level(level);
        }
    }

    fn run_singleton(&mut self, ptr: *mut TaskNode) {
        // SAFETY: the node stays alive until the last participant (here: only
        // us) finishes it.
        let node = unsafe { &*ptr };
        let ctx = TaskContext {
            worker: &*self,
            scope: &node.scope,
            requested: node.requirement,
            team_size: 1,
            team_base: self.id,
            local_id: 0,
            barrier: None,
        };
        Self::run_job(node, &ctx);
        self.me().counters.inc_tasks_executed();
        self.finish_node(ptr);
    }

    /// Runs a job body, converting panics into a recorded scope failure so a
    /// panicking task cannot wedge the whole scheduler.
    fn run_job(node: &TaskNode, ctx: &TaskContext<'_>) {
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| node.job.run(ctx)));
        if let Err(payload) = result {
            node.scope.record_panic(payload);
        }
    }

    fn finish_node(&self, ptr: *mut TaskNode) {
        // SAFETY: node is alive until the last participant decrements.  The
        // AcqRel makes every participant's job effects visible to the last
        // one before the node is recycled or freed.
        let node = unsafe { &*ptr };
        if node.participants.fetch_sub(1, Ordering::AcqRel) == 1 {
            let scope = Arc::clone(&node.scope);
            // SAFETY: we are the last participant; nobody else will touch
            // it.  The node returns to its home arena (or the heap).
            unsafe { TaskNode::release(ptr) };
            scope.task_finished();
        }
    }

    /// The paper's `coordinateTask` (Algorithm 6), generalized to one call
    /// per queue level: build (or reuse) the team for this level's group and
    /// execute the tasks in the level's queue with it.
    fn coordinate_level(&mut self, level: usize) {
        let me = self.id;
        let group = self.topo().group_range(me, level);
        let team_size = group.len();

        // Adjust the advertised requirement.  paper: "r is modified every
        // time a new task is added to the bottom of the queue"; here we also
        // (re-)announce it when we start coordinating the level.
        let cur = self.me().reg.load();
        if (cur.teamed as usize) > team_size {
            // Next task is smaller than the current team: shrink (Section 3.1).
            self.wait_countdown_zero();
            self.me().reg.shrink_team(team_size as u16);
        } else if cur.teamed > 1 && (cur.teamed as usize) < team_size {
            // paper, Section 3.1: "If the next task is larger, the coordinator
            // breaks up the team as soon as execution of the previous task has
            // finished.  This is done by setting t = 1.  The team for the
            // larger task then has to be rebuilt from scratch."  Keeping the
            // smaller team formed here deadlocks: its members may never leave
            // a formed team, and a coordinator of a formed team never switches
            // to a competing coordinator, so two half-machine teams that both
            // want to grow wait on each other forever.
            self.wait_countdown_zero();
            self.me().reg.disband();
            self.me().reg.push_requirement(team_size as u16);
        } else if (cur.required as usize) != team_size {
            self.me().reg.push_requirement(team_size as u16);
        }

        let mut backoff = Backoff::new();
        loop {
            if self.shared.shutdown.load(Ordering::Acquire) {
                return;
            }
            let reg = self.me().reg.load();
            let team_formed = reg.teamed as usize == team_size;
            if !team_formed {
                // Smaller tasks take priority until the team exists
                // (Lemma 1: "tasks requiring less threads are always
                // prioritized").
                if let Some(l) = self.me().lowest_nonempty_level() {
                    if l < level {
                        return;
                    }
                }
            }
            if self.me().queues[level].is_empty() {
                // Nothing left at this level (drained or stolen away); the
                // main loop decides what to do with the team next.
                return;
            }
            if reg.is_complete() {
                let ready = if team_formed {
                    true
                } else {
                    match self.me().reg.try_form_team() {
                        Some(_) => {
                            self.me().counters.inc_teams_formed();
                            true
                        }
                        None => {
                            self.me().counters.inc_cas_failures();
                            false
                        }
                    }
                };
                if ready {
                    match self.me().pop_task(level) {
                        Some(ptr) => {
                            self.execute_team_task_as_coordinator(ptr, group.start, team_size);
                            backoff.reset();
                        }
                        None => return,
                    }
                }
            } else {
                // Not enough threads yet: poll the partners required for this
                // team (Algorithm 8), possibly helping or switching.
                match self.poll_partners(me, team_size, level) {
                    PollOutcome::Switched | PollOutcome::Helped => return,
                    PollOutcome::Nothing => {
                        // Liveness backstop (ROADMAP flake): if the team has
                        // not completed for a long time, the acquired count
                        // may have desynchronized from the members that are
                        // actually polling us.  Withdraw the advertisement
                        // and re-announce it under a fresh renewal counter,
                        // forcing every registrant to re-register; any
                        // correctly waiting member re-acquires within one
                        // poll round, so the cost of a false positive is one
                        // extra CAS per member.
                        if backoff.rounds() >= COORDINATOR_RESYNC_ROUNDS
                            && backoff.rounds() % COORDINATOR_RESYNC_ROUNDS == 0
                            && !self.me().reg.load().has_team()
                        {
                            self.me().reg.disband();
                            self.me().reg.push_requirement(team_size as u16);
                            self.me().counters.inc_liveness_resyncs();
                        }
                        self.stall_report("coordinate_level", backoff.rounds());
                        self.unpinned_wait(&mut backoff, self.shared.member_poll_sleep_cap);
                    }
                }
            }
        }
    }

    /// Publishes `ptr` to the (already formed) team and executes the
    /// coordinator's share.
    fn execute_team_task_as_coordinator(&mut self, ptr: *mut TaskNode, base: usize, team_size: usize) {
        debug_assert!(team_size >= 2);
        let me = self.id;
        // SAFETY: the node is alive; we are the only thread that can publish
        // it (it came out of our own queue) and no member can see it before
        // the publication below.
        let node = unsafe { &*ptr };
        unsafe {
            *node.team_base.get() = base;
            *node.team_size.get() = team_size;
            *node.barrier.get() = Some(Arc::new(TeamBarrier::new(team_size)));
        }
        node.participants.store(team_size as u32, Ordering::Release);

        // The start countdown G (Section 3): all other members must pick the
        // task up before we may publish the next one or change the team.
        // Relaxed suffices: the store is sequenced before the publication
        // below, and members only decrement after acquire-observing the
        // publication, so they always see the fresh countdown (DESIGN.md §9).
        self.me()
            .start_countdown
            .store((team_size - 1) as u32, Ordering::Relaxed);

        // Publication seqlock: odd while writing, even when stable.  The
        // ordering recipe is the standard atomic seqlock (DESIGN.md §9):
        //
        // * the odd store may be Relaxed — the release fence after it orders
        //   it (and the node-field writes above) before the data stores, so
        //   a reader that observes any of the new data and then acquires-
        //   fences before re-reading the sequence is guaranteed to see the
        //   odd value (or a later one) and discard the torn read;
        // * the data stores may be Relaxed — a reader only trusts them after
        //   both sequence reads returned the same even value;
        // * the final store is Release — it pairs with the reader's initial
        //   Acquire load, making the data (and the countdown and node
        //   fields) visible to any reader that sees the new sequence.
        let seq = self.me().publish_seq.load(Ordering::Relaxed);
        debug_assert!(seq % 2 == 0);
        self.me().publish_seq.store(seq + 1, Ordering::Relaxed);
        std::sync::atomic::fence(Ordering::Release);
        self.me().publish_base.store(base, Ordering::Relaxed);
        self.me().publish_size.store(team_size, Ordering::Relaxed);
        self.me().publish_task.store(ptr, Ordering::Relaxed);
        self.me().publish_seq.store(seq + 2, Ordering::Release);

        // Run our own share of the task.
        // SAFETY: barrier was just written by us.
        let barrier = unsafe { (*node.barrier.get()).as_ref() };
        let ctx = TaskContext {
            worker: &*self,
            scope: &node.scope,
            requested: node.requirement,
            team_size,
            team_base: base,
            local_id: me - base,
            barrier,
        };
        Self::run_job(node, &ctx);
        self.me().counters.inc_team_tasks_executed();
        self.finish_node(ptr);
        // Wait until every member has started before allowing the next
        // publication or any registration change (Algorithm 5, lines 1–4).
        self.wait_countdown_zero();
    }

    fn wait_countdown_zero(&self) {
        let mut backoff = Backoff::new();
        while self.me().start_countdown.load(Ordering::Acquire) > 0 {
            // Liveness: at shutdown, members may exit their run loop without
            // picking up a published task (and thus without decrementing G).
            // A coordinator spinning here forever would then deadlock the
            // scheduler's drop-join.  Shutdown is only set after every scope
            // has drained, so abandoning the wait cannot lose work.
            if self.shared.shutdown.load(Ordering::Acquire) {
                return;
            }
            self.stall_report("wait_countdown", backoff.rounds());
            self.unpinned_wait(&mut backoff, self.shared.member_poll_sleep_cap);
        }
    }

    /// Dissolves the team / withdraws the requirement advertisement when this
    /// worker has run out of local work.
    fn release_team_if_any(&mut self) {
        let reg = self.me().reg.load();
        if reg.teamed > 1 || reg.required > 1 {
            self.wait_countdown_zero();
            self.me().reg.disband();
        }
    }

    // ------------------------------------------------------------------
    // Member (registered-at-a-coordinator) behaviour
    // ------------------------------------------------------------------

    /// One step of a worker that is registered with coordinator `cid`
    /// (Algorithm 5, lines 7–14).
    fn member_step(&mut self, cid: usize, backoff: &mut Backoff) {
        let me = self.id;
        if self.shared.shutdown.load(Ordering::Acquire) {
            self.leave_coordinator();
            return;
        }
        self.stall_report("member_step", backoff.rounds());
        // 1. Is there a published task for us?
        if let Some((ptr, base, size, seq)) = self.read_publication(cid) {
            self.last_seen_seq[cid] = seq;
            if (base..base + size).contains(&me) {
                self.shared.workers[cid]
                    .start_countdown
                    .fetch_sub(1, Ordering::AcqRel);
                self.run_team_member(ptr, base, size);
                backoff.reset();
                return;
            }
            // A task for a team that does not include us — nothing to do with
            // it; fall through to the validity checks.
        }
        let creg = self.shared.workers[cid].reg.load();
        // 2. Are we part of a formed team?  Then we only poll for work
        // (Section 3: "Teamed up threads are not allowed to do any
        // coordination work, except polling the coordinator").
        let teamed = creg.teamed as usize;
        if teamed > 1 && self.topo().team_for(cid, teamed).contains(&me) {
            self.unpinned_wait(backoff, self.shared.member_poll_sleep_cap);
            return;
        }
        // 3. Is our registration still valid and needed?
        let required = creg.required as usize;
        let still_needed = required > 1
            && creg.counter == self.registered_counter[cid]
            && self.topo().team_for(cid, required).contains(&me);
        if !still_needed {
            self.leave_coordinator();
            backoff.reset();
            return;
        }
        // 4. Validly registered, team not yet complete: poll the partners we
        // share with the coordinator, helping smaller tasks or switching to a
        // winning coordinator (Algorithm 8).
        let req_level = self.topo().level_for_requirement(cid, required);
        match self.poll_partners(cid, required, req_level) {
            PollOutcome::Switched | PollOutcome::Helped => backoff.reset(),
            PollOutcome::Nothing => {
                // Liveness backstop (ROADMAP flake): a member that has
                // polled unproductively for a long time re-synchronizes from
                // scratch — release the registration (never possible once
                // teamed; the `Teamed` outcome keeps us in place) and fall
                // back to the main loop, which re-discovers and re-registers
                // with whoever still needs us.  This converts any missed
                // registration/publication handshake into bounded extra
                // work instead of an unbounded sleep-poll loop.
                if backoff.rounds() >= MEMBER_RESYNC_ROUNDS {
                    match self.shared.workers[cid]
                        .reg
                        .try_release(self.registered_counter[cid])
                    {
                        ReleaseOutcome::Teamed => {}
                        ReleaseOutcome::Released | ReleaseOutcome::Revoked => {
                            self.leave_coordinator();
                            self.me().counters.inc_liveness_resyncs();
                            backoff.reset();
                            return;
                        }
                    }
                }
                self.unpinned_wait(backoff, self.shared.member_poll_sleep_cap);
            }
        }
    }

    fn leave_coordinator(&mut self) {
        self.me().coordinator.store(self.id, Ordering::Release);
    }

    /// Seqlock read of a coordinator's publication.  Returns a publication
    /// newer than what this worker has already handled, if any.
    ///
    /// Ordering (DESIGN.md §9): the initial Acquire pairs with the writer's
    /// final Release store, so a matching even sequence guarantees the data
    /// loads saw that publication's values; the Acquire fence before the
    /// re-read pairs with the writer's Release fence, so a reader that
    /// picked up any in-progress data is guaranteed to observe the odd (or
    /// newer) sequence and discard it.
    fn read_publication(&self, cid: usize) -> Option<(*mut TaskNode, usize, usize, u64)> {
        let c = &self.shared.workers[cid];
        for _ in 0..8 {
            let s1 = c.publish_seq.load(Ordering::Acquire);
            if s1 % 2 == 1 {
                std::hint::spin_loop();
                continue;
            }
            if s1 == 0 || s1 <= self.last_seen_seq[cid] {
                return None;
            }
            let ptr = c.publish_task.load(Ordering::Relaxed);
            let base = c.publish_base.load(Ordering::Relaxed);
            let size = c.publish_size.load(Ordering::Relaxed);
            std::sync::atomic::fence(Ordering::Acquire);
            let s2 = c.publish_seq.load(Ordering::Relaxed);
            if s1 == s2 {
                return Some((ptr, base, size, s1));
            }
        }
        None
    }

    fn run_team_member(&mut self, ptr: *mut TaskNode, base: usize, size: usize) {
        // SAFETY: we are a counted participant (start_countdown was
        // decremented above), so the node cannot be freed before we finish.
        let node = unsafe { &*ptr };
        // SAFETY: the barrier was written before publication; the seqlock
        // read ordered us after that write.
        let barrier = unsafe { (*node.barrier.get()).as_ref() };
        let ctx = TaskContext {
            worker: &*self,
            scope: &node.scope,
            requested: node.requirement,
            team_size: size,
            team_base: base,
            local_id: self.id - base,
            barrier,
        };
        Self::run_job(node, &ctx);
        self.me().counters.inc_team_tasks_executed();
        self.finish_node(ptr);
    }

    // ------------------------------------------------------------------
    // Partner polling, switching and helping (Algorithms 8 & 9)
    // ------------------------------------------------------------------

    /// Chooses the partner at `level` according to the configured policy.
    fn partner_at(&mut self, level: usize) -> Option<usize> {
        match self.shared.steal_policy {
            StealPolicy::Deterministic => self.topo().partner(self.id, level),
            StealPolicy::RandomizedWithinLevel => {
                let topo = &self.shared.topology;
                topo.partner_randomized(self.id, level, &mut self.rng)
            }
            StealPolicy::UniformRandom => {
                let p = self.shared.num_threads();
                if p <= 1 {
                    None
                } else {
                    let mut v = self.rng.next_usize_below(p - 1);
                    if v >= self.id {
                        v += 1;
                    }
                    Some(v)
                }
            }
        }
    }

    /// The paper's `pollPartners(c, r)` (Algorithm 8), called both by a
    /// coordinator (`my_coord == self.id`) and by registered members.
    fn poll_partners(&mut self, my_coord: usize, req: usize, req_level: usize) -> PollOutcome {
        let me = self.id;
        for level in 0..req_level {
            let Some(x) = self.partner_at(level) else {
                continue;
            };
            if x == my_coord || x == me {
                continue;
            }
            let xcid = self.shared.workers[x].coordinator.load(Ordering::Acquire);
            if xcid == my_coord || xcid == me {
                continue;
            }
            let xcreg = self.shared.workers[xcid].reg.load();
            let their_r = xcreg.required as usize;
            if their_r <= 1 {
                // Partner is busy with sequential work: steal smaller tasks
                // from it so it runs dry and comes looking for work
                // (Algorithm 8, lines 20–30).
                if self.help_steal_from(x, req_level, level) {
                    return PollOutcome::Helped;
                }
                continue;
            }
            // Conflict resolution (Lemma 3): the smaller requirement wins,
            // ties are broken towards the smaller coordinator id.
            let they_win = their_r < req || (their_r == req && xcid < my_coord);
            if !they_win {
                // We win; the partner's team will eventually come to us.
                continue;
            }
            let needed_by_them =
                !xcreg.is_complete() && self.topo().overlap(xcid, me, their_r);
            if needed_by_them {
                if self.switch_coordinator(my_coord, xcid) {
                    return PollOutcome::Switched;
                }
            } else if their_r < req && self.help_steal_from(x, req_level, level) {
                // The partner's (winning, smaller) task does not need us:
                // help it finish faster by stealing tasks smaller than ours.
                return PollOutcome::Helped;
            }
        }
        PollOutcome::Nothing
    }

    /// Steals tasks *smaller than our current coordination requirement* from
    /// `victim` into our own queues (Algorithm 8's helping steal).  Returns
    /// `true` if at least one task was transferred.
    fn help_steal_from(&mut self, victim: usize, req_level: usize, steal_level: usize) -> bool {
        let moved = self.transfer_steal(victim, req_level.saturating_sub(1), steal_level);
        if moved > 0 {
            self.me().counters.inc_help_steals();
            true
        } else {
            false
        }
    }

    /// The paper's `switchToCoordinator` (Algorithm 9): deregister from the
    /// old coordinator (if allowed) and register with the new one.  Returns
    /// `true` if the switch happened.
    fn switch_coordinator(&mut self, old: usize, new: usize) -> bool {
        let me = self.id;
        if old != me {
            match self.shared.workers[old]
                .reg
                .try_release(self.registered_counter[old])
            {
                ReleaseOutcome::Teamed => return false, // cannot drop out of a formed team
                ReleaseOutcome::Released | ReleaseOutcome::Revoked => {}
            }
            self.leave_coordinator();
        } else {
            // We were coordinating ourselves: revoke our registrants and stop
            // coordinating (Algorithm 9, lines 23–31).  A coordinator of a
            // *formed* team never abandons it (its members cannot leave
            // either), so refuse in that case.
            if self.me().reg.load().teamed > 1 {
                return false;
            }
            self.me().reg.disband();
        }
        self.try_register_with(new)
    }

    /// Registers this worker at coordinator `cid` (one CAS, Algorithm 7
    /// lines 7–14).  On success the worker's coordinator pointer is updated.
    fn try_register_with(&mut self, cid: usize) -> bool {
        let me = self.id;
        debug_assert_ne!(cid, me);
        let c = &self.shared.workers[cid];
        // Record the publication sequence *before* registering so we never
        // run a task published before we joined (those teams were complete
        // without us).  Acquire: any publication whose team could include us
        // must have been written after our registration CAS (completeness
        // requires it), so it carries a strictly larger sequence.
        let mut seq0 = c.publish_seq.load(Ordering::Acquire);
        if seq0 % 2 == 1 {
            seq0 += 1;
        }
        let creg = c.reg.load();
        let required = creg.required as usize;
        if required <= 1 || creg.is_complete() || !self.topo().overlap(cid, me, required) {
            return false;
        }
        match c.reg.try_acquire(2) {
            AcquireOutcome::Registered(snapshot) => {
                self.registered_counter[cid] = snapshot.counter;
                self.last_seen_seq[cid] = self.last_seen_seq[cid].max(seq0);
                self.me().coordinator.store(cid, Ordering::Release);
                self.me().counters.inc_registrations();
                true
            }
            AcquireOutcome::Contended => {
                self.me().counters.inc_cas_failures();
                false
            }
            AcquireOutcome::NotNeeded(_) => false,
        }
    }

    // ------------------------------------------------------------------
    // Stealing (Algorithm 7)
    // ------------------------------------------------------------------

    /// One full steal round over the `log p` partners (Algorithm 7).  Returns
    /// `true` if the round produced something to do (a steal or a
    /// registration).
    fn steal_round(&mut self) -> bool {
        let levels = self.topo().num_steal_levels();
        if self.shared.steal_policy == StealPolicy::UniformRandom {
            // Classic randomized work-stealing (the Randfork baseline):
            // uniformly random victims, no team building.
            let attempts = levels.max(1);
            for _ in 0..attempts {
                let Some(victim) = self.partner_at(0) else {
                    return false;
                };
                let top = self.topo().num_queue_levels() - 1;
                if self.transfer_steal(victim, top, levels.max(1) - 1) > 0 {
                    self.me().counters.inc_steals();
                    return true;
                }
            }
            return false;
        }
        for level in 0..levels {
            let Some(x) = self.partner_at(level) else {
                continue;
            };
            // Team-building opportunity: does the partner's *coordinator*
            // need us for its task (Algorithm 7, line 6)?
            let xcid = self.shared.workers[x].coordinator.load(Ordering::Acquire);
            if xcid != self.id {
                let xcreg = self.shared.workers[xcid].reg.load();
                let r = xcreg.required as usize;
                if r > 1
                    && !xcreg.is_complete()
                    && self.topo().overlap(xcid, self.id, r)
                    && self.try_register_with(xcid)
                {
                    return true;
                }
            }
            // Otherwise steal from the partner.  Refinement 1 forbids
            // stealing tasks for whose team both of us would be required, so
            // only queues up to the partner's level are eligible; within
            // those, prefer the largest tasks (Section 4).
            if self.transfer_steal(x, level, level) > 0 {
                self.me().counters.inc_steals();
                return true;
            }
        }
        false
    }

    /// Transfers up to `steal_amount` tasks from `victim`'s queues (levels
    /// `0..=max_qlevel`, largest first) into our own queues, re-levelling
    /// each task for our own hierarchy position (Refinement 3).  Returns the
    /// number of tasks moved.
    fn transfer_steal(&mut self, victim: usize, max_qlevel: usize, amount_level: usize) -> usize {
        let me = self.id;
        if victim == me {
            return 0;
        }
        let vshared = &self.shared.workers[victim];
        let max_qlevel = max_qlevel.min(vshared.queues.len() - 1);
        // Occupancy hint: the victim sets a level's bit before pushing and
        // clears it only after observing emptiness, so a clear bit means
        // "empty" and the `top`/`bottom` loads of that deque can be skipped
        // entirely.  (A set bit is only a hint; `len` decides.)
        let occupancy = vshared.occupancy.load(Ordering::Relaxed);
        // The queue level the victim is advertising a team requirement for,
        // if any (its registration's `r` mapped onto its hierarchy position).
        let vreg = vshared.reg.load();
        let advertised_level = if vreg.required > 1 {
            Some(self.topo().level_for_requirement(victim, vreg.required as usize))
        } else {
            None
        };
        for qlevel in (0..=max_qlevel).rev() {
            if !bits::bit_is_set(occupancy, qlevel) {
                continue;
            }
            let vq = &vshared.queues[qlevel];
            let len = vq.len();
            if len == 0 {
                continue;
            }
            // Liveness (ROADMAP flake): never steal the *single* team task a
            // victim is actively building a team for.  Two hierarchy-partner
            // coordinators can otherwise steal the task back and forth
            // forever — each theft empties the other's queue mid-formation,
            // disbands its half-built team and revokes its registrants, so
            // no team ever forms (a stable livelock once queue operations
            // got cheap).  With two or more tasks queued the steal is
            // genuine load balancing and stays allowed.
            if qlevel >= 1 && len == 1 && advertised_level == Some(qlevel) {
                continue;
            }
            let want = self.shared.steal_amount.amount(len, amount_level);
            let mut moved = 0;
            let mut retries = 0;
            while moved < want {
                match vq.steal_top() {
                    Steal::Stolen(word) => {
                        let ptr = word as *mut TaskNode;
                        // SAFETY: the node is alive while it sits in a queue.
                        let req = unsafe { (*ptr).requirement };
                        let mylevel = self.topo().level_for_requirement(me, req);
                        self.shared.workers[me].push_task(mylevel, ptr);
                        moved += 1;
                        retries = 0;
                    }
                    Steal::Empty => break,
                    Steal::Retry => {
                        retries += 1;
                        if retries > 8 {
                            break;
                        }
                        std::hint::spin_loop();
                    }
                }
            }
            if moved > 0 {
                self.me().counters.add_tasks_stolen(moved as u64);
                return moved;
            }
        }
        0
    }

    /// Pulls one externally injected root task into the local queue.
    /// Lock-free: idle workers polling an empty injector never serialize.
    fn pop_injected(&mut self) -> bool {
        match self.shared.injector.pop() {
            Some(TaskPtr(ptr)) => {
                // SAFETY: the node is alive while it sits in the injector.
                let req = unsafe { (*ptr).requirement };
                let level = self.topo().level_for_requirement(self.id, req);
                self.me().push_task(level, ptr);
                self.me().counters.inc_tasks_injected();
                if req > 1 {
                    let group = self.topo().group_size(self.id, level);
                    self.me().reg.push_requirement(group as u16);
                }
                true
            }
            None => false,
        }
    }
}

impl SpawnTarget for Worker {
    fn spawn_job_slot(&self, job: JobSlot, requirement: usize, scope: &Arc<ScopeState>) {
        scope.task_spawned();
        let me = self.me();
        // SAFETY: a worker is the sole allocator of its own arena, and
        // `spawn_job_slot` only runs on the worker's own thread (tasks spawn
        // through the context of the worker executing them).
        let (ptr, recycled) = unsafe { me.node_pool.alloc() };
        // SAFETY: the slot is uninitialized (fresh or recycled-after-drop);
        // `home` points into the shared worker state, which outlives every
        // node.
        unsafe {
            ptr.write(TaskNode::new_in(
                job,
                requirement,
                Arc::clone(scope),
                &me.node_pool as *const _,
            ));
        }
        if recycled {
            me.counters.inc_nodes_recycled();
        }
        let level = self.topo().level_for_requirement(self.id, requirement);
        me.push_task(level, ptr);
        me.counters.inc_tasks_spawned();
        if requirement > 1 {
            // paper: the registration structure's `r` is updated whenever a
            // task is pushed to the bottom of a queue, so idle threads can
            // already register while we are still executing.
            assert!(
                self.shared.steal_policy != StealPolicy::UniformRandom,
                "team tasks (r > 1) require a hierarchical steal policy; \
                 StealPolicy::UniformRandom supports only sequential tasks"
            );
            let group = self.topo().group_size(self.id, level);
            me.reg.push_requirement(group as u16);
        }
    }

    fn worker_id(&self) -> usize {
        self.id
    }

    fn num_threads(&self) -> usize {
        self.shared.num_threads()
    }
}
