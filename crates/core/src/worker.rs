//! The worker loop: classic work-stealing generalized with deterministic
//! team-building (Algorithms 5–9 of the paper).
//!
//! Each worker owns one entry of the shared per-thread state array (the
//! paper's `ThreadRef[]`) and runs [`Worker::run_loop`].  The loop is a
//! faithful — but explicitly clarified — implementation of the paper's
//! modified `getTask` / `stealTasks` / `coordinateTask` / `pollPartners` /
//! `switchToCoordinator` procedures; every deliberate clarification or
//! deviation is marked with a `paper:` comment and summarized in DESIGN.md §5.

use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, AtomicPtr, AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, Weak};
use std::time::Duration;

use std::cell::UnsafeCell;

use teamsteal_deque::{RawDeque, ShardedInjector, Steal};
use teamsteal_registration::{AcquireOutcome, AtomicRegistration, ReleaseOutcome, ReuseOutcome};
use teamsteal_topology::{Domains, StealPolicy, Topology};
use teamsteal_util::epoch::{Domain, Participant};
use teamsteal_util::eventcount::WakeReason;
use teamsteal_util::rng::{worker_rng, Xoshiro256};
use teamsteal_util::slab::Slab;
use teamsteal_util::{bits, Backoff, CachePadded};

use crate::config::{SchedulerConfig, StealAmount};
use crate::context::{SpawnTarget, TaskContext};
use crate::metrics::WorkerCounters;
use crate::sleep::SleepController;
use crate::task::{JobSlot, ScopeState, TaskNode, TaskPtr};
use crate::team::TeamBarrier;

/// Runtime switch for the stall-state dumps, in addition to the
/// `TEAMSTEAL_STALL_DEBUG` environment variable.  See [`enable_stall_debug`].
static FORCE_STALL_DEBUG: AtomicBool = AtomicBool::new(false);

/// Turns on the scheduler's periodic stall-state dumps at runtime, as if
/// `TEAMSTEAL_STALL_DEBUG` had been set.  Intended for test watchdogs that
/// have detected a hang and want the workers to report their state before
/// the process is aborted.  There is deliberately no way to turn the dumps
/// off again: by the time this is called, the process is already doomed to
/// debugging.
pub fn enable_stall_debug() {
    FORCE_STALL_DEBUG.store(true, Ordering::Release);
}

/// Process-wide registry of live schedulers, so a watchdog that detected a
/// hang can dump their state without holding a `Scheduler` handle.  Entries
/// are weak; dead ones are pruned on every touch.
static SCHEDULERS: Mutex<Vec<Weak<SchedulerShared>>> = Mutex::new(Vec::new());

/// One [`Scheduler::debug_state`](crate::Scheduler::debug_state) line per
/// scheduler currently alive in this process.
///
/// This is the same code path as `debug_state` and the workers' periodic
/// stall self-reports (`debug_state_line`), so a watchdog dump, a worker's
/// self-report, and an explicit `debug_state` call can be compared
/// line-for-line.  Lock-free with respect to the schedulers themselves and
/// safe to call while they are running (or wedged).
pub fn stall_report() -> Vec<String> {
    let mut registry = SCHEDULERS.lock().unwrap_or_else(|e| e.into_inner());
    registry.retain(|weak| weak.strong_count() > 0);
    registry
        .iter()
        .filter_map(Weak::upgrade)
        .map(|shared| shared.debug_state_line())
        .collect()
}

/// Per-worker state visible to other workers (the paper's per-thread
/// data structure reachable through `ThreadRef[]`).
pub(crate) struct WorkerShared {
    /// Fixed worker id `I` (kept for debugging / future NUMA pinning).
    #[allow(dead_code)]
    pub(crate) id: usize,
    /// One deque per hierarchy level (Refinement 1): queue `ℓ` holds tasks
    /// whose requirement maps to level `ℓ` for this worker.  The deques
    /// store raw `TaskNode` pointers as words, so pushing a task never
    /// allocates.
    pub(crate) queues: Vec<RawDeque>,
    /// Occupancy bitmask: bit `ℓ` is set when queue `ℓ` *may* be non-empty.
    /// The owner sets a bit **before** pushing and is the only clearer
    /// (after observing emptiness), so for thieves a clear bit reliably
    /// means "empty", while a set bit is a hint to check the queue.
    pub(crate) occupancy: AtomicUsize,
    /// This worker's task-node arena.  `alloc` is owner-only (the spawn
    /// path); `free` is called by whichever worker finishes a task last.
    pub(crate) node_pool: Slab<TaskNode>,
    /// The packed registration structure `R = {r, a, t, N}`.
    pub(crate) reg: AtomicRegistration,
    /// Id of the coordinator this worker is registered with (self ⇒ none).
    /// Written only by the owning worker.
    pub(crate) coordinator: AtomicUsize,
    /// Publication seqlock: even ⇒ stable, odd ⇒ publication in progress.
    /// Monotonically increasing, so members can tell new tasks from ones they
    /// have already executed (the paper's "remember the last executed task").
    pub(crate) publish_seq: AtomicU64,
    /// The published team task (`c.task` in the paper).
    pub(crate) publish_task: AtomicPtr<TaskNode>,
    /// First worker id of the published task's team.
    pub(crate) publish_base: AtomicUsize,
    /// Team size of the published task.
    pub(crate) publish_size: AtomicUsize,
    /// Start countdown `G`: non-coordinator members that have not yet picked
    /// up the published task.
    pub(crate) start_countdown: AtomicU32,
    /// Event counters.
    pub(crate) counters: WorkerCounters,
}

impl WorkerShared {
    fn new(id: usize, queue_levels: usize, epoch: &Arc<Domain>) -> Self {
        debug_assert!(
            queue_levels <= usize::BITS as usize,
            "occupancy bitmask holds one bit per queue level"
        );
        WorkerShared {
            id,
            // SAFETY: every thread that steals from these deques is a worker
            // thread pinned for the whole loop iteration (`run_loop`), or
            // has exclusive access (drop-time draining) — the `in_domain`
            // contract.
            queues: (0..queue_levels)
                .map(|_| unsafe { RawDeque::in_domain(Arc::clone(epoch)) })
                .collect(),
            occupancy: AtomicUsize::new(0),
            node_pool: Slab::new(),
            reg: AtomicRegistration::new(),
            coordinator: AtomicUsize::new(id),
            publish_seq: AtomicU64::new(0),
            publish_task: AtomicPtr::new(std::ptr::null_mut()),
            publish_base: AtomicUsize::new(0),
            publish_size: AtomicUsize::new(0),
            start_countdown: AtomicU32::new(0),
            counters: WorkerCounters::default(),
        }
    }

    /// Pushes a task onto queue `level`.  **Owner only** (deque contract).
    fn push_task(&self, level: usize, ptr: *mut TaskNode) {
        // Set the occupancy bit before the push: a thief that observes a
        // clear bit may then safely skip the level, because the element
        // cannot become visible (release store in `push_bottom`) before the
        // bit does.
        let bit = 1usize << level;
        if self.occupancy.load(Ordering::Relaxed) & bit == 0 {
            self.occupancy.fetch_or(bit, Ordering::Relaxed);
        }
        self.queues[level].push_bottom(ptr as usize);
    }

    /// Pops from the bottom of queue `level`.  **Owner only.**
    fn pop_task(&self, level: usize) -> Option<*mut TaskNode> {
        self.queues[level].pop_bottom().map(|word| word as *mut TaskNode)
    }

    /// Returns the index of the lowest non-empty queue, if any, using the
    /// occupancy bitmask instead of scanning every deque.  **Owner only**:
    /// stale-set bits (queues drained by thieves) are healed here, and only
    /// the owner may clear bits — after it observed emptiness nobody but the
    /// owner itself could have refilled the queue.
    fn lowest_nonempty_level(&self) -> Option<usize> {
        let mut mask = self.occupancy.load(Ordering::Relaxed);
        while let Some(level) = bits::lowest_set(mask) {
            if !self.queues[level].is_empty() {
                return Some(level);
            }
            self.occupancy.fetch_and(!(1usize << level), Ordering::Relaxed);
            mask = bits::clear_bit(mask, level);
        }
        None
    }
}

/// A fixed pool of pre-registered epoch participants that threads outside
/// the worker pool borrow around each injector access (`Scheduler::scope`
/// submitters, drop-time draining).  The pool size comes from
/// [`SchedulerConfig::external_participants`] (default 32); more
/// simultaneous submitters than that wait for a free slot under a capped
/// backoff (spin, then yield, then bounded sleeps of ≤ 50 µs) and are
/// counted in `external_pin_waits`.  The wait is bounded because every
/// claim is released after one queue operation, so a slot frees in O(µs).
///
/// Workers own their participant for the whole thread lifetime; external
/// submitters are arbitrary short-lived threads, so they claim a slot with
/// one CAS, pin, touch the queue, unpin and release — keeping the injection
/// path lock-free (a claimed slot is exclusive, so the `UnsafeCell` access
/// is data-race free).
pub(crate) struct ExternalPins {
    slots: Box<[CachePadded<ExternalSlot>]>,
    /// Exhaustion episodes: a submitter scanned every slot, found all of
    /// them claimed, and had to back off before rescanning.  Counted once
    /// per episode (not per rescan), so the value reads as "how often were
    /// more threads mid-injection at once than the pool has slots".
    pin_waits: AtomicU64,
}

struct ExternalSlot {
    busy: AtomicBool,
    participant: UnsafeCell<Participant>,
}

// SAFETY: `participant` is only touched between a successful `busy` CAS
// (Acquire) and the matching Release store, which serializes all access.
unsafe impl Sync for ExternalPins {}
unsafe impl Send for ExternalPins {}

impl ExternalPins {
    fn new(epoch: &Arc<Domain>, count: usize) -> Self {
        ExternalPins {
            slots: (0..count)
                .map(|_| {
                    CachePadded::new(ExternalSlot {
                        busy: AtomicBool::new(false),
                        participant: UnsafeCell::new(
                            epoch.register().expect("domain sized for the external pool"),
                        ),
                    })
                })
                .collect(),
            pin_waits: AtomicU64::new(0),
        }
    }

    /// Number of recorded exhaustion-backoff episodes (see `pin_waits`).
    pub(crate) fn pin_waits(&self) -> u64 {
        self.pin_waits.load(Ordering::Relaxed)
    }

    /// Number of slots in the pool.
    pub(crate) fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Runs `f` pinned to a borrowed external participant.
    pub(crate) fn with_pinned<R>(&self, f: impl FnOnce() -> R) -> R {
        /// Unpins and releases the claimed slot even if `f` unwinds: a
        /// leaked claim would otherwise leave its participant pinned at a
        /// stale epoch *forever*, wedging reclamation for the scheduler's
        /// whole lifetime (and losing a pool slot).
        struct SlotGuard<'a>(&'a ExternalSlot);
        impl Drop for SlotGuard<'_> {
            fn drop(&mut self) {
                // SAFETY: the guard exists only while we hold the claim.
                unsafe { &*self.0.participant.get() }.unpin();
                self.0.busy.store(false, Ordering::Release);
            }
        }

        // Start the scan at a per-thread offset so concurrent submitters
        // claim *different* cache-padded slots instead of all CASing slot
        // 0's line on every injection.
        thread_local! {
            static SCAN_OFFSET: usize = {
                static NEXT: AtomicUsize = AtomicUsize::new(0);
                NEXT.fetch_add(1, Ordering::Relaxed)
            };
        }
        let start = SCAN_OFFSET.with(|o| *o) % self.slots.len();
        let mut backoff = Backoff::new();
        let mut waited = false;
        loop {
            for i in 0..self.slots.len() {
                let slot = &*self.slots[(start + i) % self.slots.len()];
                if slot.busy.load(Ordering::Relaxed) {
                    continue;
                }
                if slot
                    .busy
                    .compare_exchange(false, true, Ordering::Acquire, Ordering::Relaxed)
                    .is_err()
                {
                    continue;
                }
                let guard = SlotGuard(slot);
                // SAFETY: the claimed `busy` flag gives us exclusive access
                // until the guard's Release store.
                unsafe { &*slot.participant.get() }.pin();
                let result = f();
                drop(guard);
                return result;
            }
            // All slots claimed: more threads are mid-injection right now
            // than the pool has slots.  Briefly back off and rescan — a slot
            // frees after one queue operation, so the capped wait (≤ 50 µs)
            // bounds the added latency while keeping the path allocation- and
            // lock-free.  Count the episode so saturation is observable.
            if !waited {
                waited = true;
                self.pin_waits.fetch_add(1, Ordering::Relaxed);
            }
            backoff.wait_capped(std::time::Duration::from_micros(50));
        }
    }
}

thread_local! {
    /// This thread's injection-affinity key (see
    /// `SchedulerShared::inject_home`).  `None` until first use; worker
    /// threads set it eagerly in `run_loop`.
    static INJECT_HOME: std::cell::Cell<Option<usize>> =
        const { std::cell::Cell::new(None) };
}

/// State shared by all workers of one scheduler.
pub(crate) struct SchedulerShared {
    pub(crate) workers: Vec<CachePadded<WorkerShared>>,
    pub(crate) topology: Topology,
    /// The injection-shard domains: a view of the hierarchy that maps every
    /// worker to one shard of the sharded injector and gives each domain a
    /// distance-ordered shard sweep (DESIGN.md §13).
    pub(crate) domains: Domains,
    pub(crate) steal_policy: StealPolicy,
    pub(crate) steal_amount: StealAmount,
    /// Spin/yield rounds before a blocking site commits to a park.
    pub(crate) park_spin_rounds: u32,
    /// Defensive cap on one park (see `SchedulerConfig::park_backstop`).
    pub(crate) park_backstop: Duration,
    /// Warm team keep-alive window (see `SchedulerConfig::warm_keepalive`).
    pub(crate) warm_keepalive: Duration,
    /// Elastic-shrink backlog threshold
    /// (see `SchedulerConfig::elastic_backlog_threshold`).
    pub(crate) elastic_backlog_threshold: usize,
    pub(crate) seed: u64,
    /// The parking/wakeup subsystem: every blocking site parks here and
    /// every state change that can unblock a worker notifies it
    /// (DESIGN.md §12).
    pub(crate) sleep: SleepController,
    /// Epoch-reclamation domain shared by the injector and every worker
    /// deque; sized for all workers plus the external-submitter pool
    /// (DESIGN.md §11).
    pub(crate) epoch: Arc<Domain>,
    /// Borrowed pins for threads outside the worker pool.
    pub(crate) external_pins: ExternalPins,
    /// External injection queue for root tasks submitted by
    /// `Scheduler::scope`: a lock-free MPMC FIFO per hierarchy domain, so
    /// submitters neither serialize against each other nor against idle
    /// workers polling for work, and — with several domains — not even
    /// against submitters with a different shard affinity (DESIGN.md §13).
    pub(crate) injector: ShardedInjector<TaskPtr>,
    pub(crate) shutdown: AtomicBool,
}

impl SchedulerShared {
    pub(crate) fn new(config: &SchedulerConfig) -> Arc<Self> {
        let topology = config.resolve_topology();
        let p = topology.num_threads();
        let queue_levels = topology.num_queue_levels();
        let domains = Domains::new(&topology, config.domain_width);
        let external_participants = config.external_participants.max(1);
        let epoch = Domain::new(p + external_participants);
        let external_pins = ExternalPins::new(&epoch, external_participants);
        let shared = Arc::new(SchedulerShared {
            workers: (0..p)
                .map(|id| CachePadded::new(WorkerShared::new(id, queue_levels, &epoch)))
                .collect(),
            topology,
            steal_policy: config.steal_policy,
            steal_amount: config.steal_amount,
            park_spin_rounds: config.park_spin_rounds,
            park_backstop: config.park_backstop,
            warm_keepalive: config.warm_keepalive,
            elastic_backlog_threshold: config.elastic_backlog_threshold,
            seed: config.seed,
            sleep: SleepController::new(p),
            // SAFETY: all injector access goes through pinned participants —
            // workers pin for the whole loop iteration, external submitters
            // borrow a pinned slot via `ExternalPins::with_pinned`
            // (including drop-time draining).
            injector: unsafe {
                ShardedInjector::in_domain(domains.num_domains(), Arc::clone(&epoch))
            },
            domains,
            epoch,
            external_pins,
            shutdown: AtomicBool::new(false),
        });
        let mut registry = SCHEDULERS.lock().unwrap_or_else(|e| e.into_inner());
        registry.retain(|weak| weak.strong_count() > 0);
        registry.push(Arc::downgrade(&shared));
        drop(registry);
        shared
    }

    pub(crate) fn num_threads(&self) -> usize {
        self.workers.len()
    }

    /// One-line state dump of every worker (registration word, coordinator,
    /// start countdown, queue lengths) plus the injector's total and
    /// per-shard lengths.  Lock-free; shared by the stall reporter and
    /// `Scheduler::debug_state`.
    pub(crate) fn debug_state_line(&self) -> String {
        let shard_lens: Vec<usize> = (0..self.injector.num_shards())
            .map(|s| self.injector.shard_len(s))
            .collect();
        let mut line = format!(
            "injector={} shards={:?} segs={} deferred={} sleepers={} searchers={}",
            self.injector.len(),
            shard_lens,
            self.injector.live_segments(),
            self.epoch.pending(),
            self.sleep.sleepers(),
            self.sleep.searchers(),
        );
        for (i, w) in self.workers.iter().enumerate() {
            let reg = w.reg.load();
            let qlens: Vec<usize> = w.queues.iter().map(|q| q.len()).collect();
            // A formed team whose coordinator has no queued work is a *warm*
            // pool (DESIGN.md §15): its members are parked on purpose, not
            // lost, so the stall reporter must attribute them to the pool
            // rather than making them look like missed wakeups.
            let warm = if reg.has_team()
                && reg.acquired == reg.teamed
                && reg.required == reg.teamed
                && qlens.iter().all(|&l| l == 0)
            {
                " warm"
            } else {
                ""
            };
            line.push_str(&format!(
                " | w{i}: coord={} r={} a={} t={} n={} G={} q={qlens:?}{warm}",
                w.coordinator.load(Ordering::Relaxed),
                reg.required,
                reg.acquired,
                reg.teamed,
                reg.counter,
                w.start_countdown.load(Ordering::Relaxed),
            ));
        }
        line
    }

    /// The calling thread's stable injection affinity: the shard index its
    /// pushes land on.  Worker threads pin it to their own domain's shard at
    /// startup ([`set_inject_home`]); any other thread draws a round-robin
    /// key on first use, so concurrent external submitters spread over the
    /// shards while each keeps per-thread FIFO order on one shard.
    fn inject_home(&self) -> usize {
        static NEXT_HOME: AtomicUsize = AtomicUsize::new(0);
        INJECT_HOME.with(|home| match home.get() {
            Some(key) => key,
            None => {
                let key = NEXT_HOME.fetch_add(1, Ordering::Relaxed);
                home.set(Some(key));
                key
            }
        }) % self.injector.num_shards()
    }

    /// Injects a root task from outside the worker pool.  Lock-free: one
    /// CAS to borrow an external epoch pin, one `fetch_add` plus a release
    /// store in the affinity shard, one release store to return the pin —
    /// then a wake for a parked worker, so external submissions reach an
    /// idle scheduler in microseconds instead of a sleep-poll interval.
    pub(crate) fn inject(&self, ptr: *mut TaskNode) {
        let shard = self.inject_home();
        let observed_empty = self
            .external_pins
            .with_pinned(|| self.injector.push_to(shard, TaskPtr(ptr)));
        // Wake hint: a push that observed other elements in flight on this
        // shard needs no wake — the transition push that made the shard
        // non-empty already issued one (workers never park while any shard
        // is visibly non-empty, and the consumer of each injected task
        // chains a wake while elements remain in the shard it popped), so
        // skipping here only merges redundant notifications, never loses
        // one.  The wake prefers a sleeper inside the shard's own domain
        // and falls back to the global rotating scan (DESIGN.md §13).
        if observed_empty {
            self.sleep
                .notify_work_near(self.domains.domain_range(shard), false);
        }
    }

    /// Frees any task nodes still sitting in queues or the injector.  Called
    /// by the scheduler after all workers have exited (only relevant when a
    /// scope was abandoned because a task panicked).
    pub(crate) fn drain_leftovers(&self) {
        let mut leftovers: Vec<TaskPtr> = Vec::new();
        self.external_pins.with_pinned(|| {
            for shard in 0..self.injector.num_shards() {
                while let Some(task) = self.injector.pop_from(shard) {
                    leftovers.push(task);
                }
            }
        });
        for w in &self.workers {
            for q in &w.queues {
                while let Some(word) = q.pop_bottom() {
                    leftovers.push(TaskPtr(word as *mut TaskNode));
                }
            }
        }
        for TaskPtr(ptr) in leftovers {
            // SAFETY: nobody else references a node once it has been drained
            // from a queue; the workers have all exited.
            let scope = unsafe { Arc::clone(&(*ptr).scope) };
            unsafe { TaskNode::release(ptr) };
            scope.task_finished();
        }
    }
}

/// Unproductive streak after which a coordinator withdraws and re-announces
/// its requirement (the same ≈1.6 s the pre-parking round counter encoded).
/// Liveness backstop for the grow/shrink handshake; see `coordinate_level`.
/// Expressed in wall time because parked workers accumulate *rounds* only on
/// wakes, which have no fixed cadence.
const COORDINATOR_RESYNC_AFTER: Duration = Duration::from_millis(1600);

/// Unproductive streak after which a registered-but-unteamed member
/// deregisters and re-synchronizes from scratch (≈0.8 s, as before the
/// parking rework).  Liveness backstop for a member that missed a
/// registration update; see `member_step`.
const MEMBER_RESYNC_AFTER: Duration = Duration::from_millis(800);

/// Extra steal rounds the **last searching** worker runs before it commits
/// to a park while work hints (occupancy bits, injector elements) are still
/// visible.  Keeps steal throughput from collapsing to wake latency when one
/// producer feeds the whole pool; bounded so a stale occupancy hint (a bit
/// the busy owner has not healed yet) cannot pin a searcher to the CPU
/// forever.
const LAST_SEARCHER_EXTRA_ROUNDS: u32 = 64;

/// Outcome of one `pollPartners` round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PollOutcome {
    /// The caller switched to (registered with) a different coordinator.
    Switched,
    /// The caller stole smaller tasks to help a partner finish.
    Helped,
    /// Nothing changed.
    Nothing,
}

/// Loop iterations between opportunistic epoch collections while the worker
/// is busy (idle workers collect every round instead).  Collection is cheap
/// when there is no garbage, so this only bounds bag-mutex traffic.
const COLLECT_INTERVAL: u64 = 64;

/// Worker-local (unshared) state plus a handle to the shared state.
pub(crate) struct Worker {
    pub(crate) id: usize,
    pub(crate) shared: Arc<SchedulerShared>,
    rng: Xoshiro256,
    /// Highest publication sequence number already handled, per coordinator.
    last_seen_seq: Vec<u64>,
    /// Renewal counter recorded at registration time, per coordinator.
    registered_counter: Vec<u16>,
    /// This worker's epoch participant.  Pinned at the top of every loop
    /// iteration (a quiescent point), unpinned around parks so a sleeping
    /// worker never stalls reclamation (DESIGN.md §11).
    participant: Participant,
    /// Loop iterations since start; rate-limits busy-path collection.
    loop_ticks: u64,
    /// This worker's injection-shard domain (`domains.domain_of(id)`),
    /// cached so the hot pop path never recomputes the mapping.
    domain: usize,
    /// `true` while this worker is counted as searching in the sleep
    /// controller (idle, running steal rounds).
    searching: bool,
    /// Consecutive idle parks this worker skipped under the bounded
    /// last-searcher rule; reset whenever it finds work.
    last_searcher_rounds: u32,
}

impl Worker {
    pub(crate) fn new(id: usize, shared: Arc<SchedulerShared>) -> Self {
        let p = shared.num_threads();
        let rng = worker_rng(shared.seed, id);
        let participant = shared
            .epoch
            .register()
            .expect("epoch domain is sized for every worker");
        let domain = shared.domains.domain_of(id);
        Worker {
            id,
            shared,
            rng,
            last_seen_seq: vec![0; p],
            registered_counter: vec![0; p],
            participant,
            loop_ticks: 0,
            domain,
            searching: false,
            last_searcher_rounds: 0,
        }
    }

    /// Collects the epoch domain, crediting freed objects to this worker's
    /// counters.  Must be called at a quiescent point (directly after a
    /// repin, before any protected pointer is obtained).
    fn collect_epoch(&self) {
        let freed = self.shared.epoch.try_collect();
        if freed.advanced {
            self.me().counters.inc_epoch_advances();
        }
        self.me().counters.add_segments_reclaimed(freed.freed_segments);
        self.me().counters.add_buffers_reclaimed(freed.freed_buffers);
    }

    /// One spin/yield round of a blocking site's pre-park prefix, with the
    /// epoch pin released around the (potentially descheduling) yield so a
    /// preempted worker never blocks the global epoch.  The caller's next
    /// protected access happens after the repin (a fresh quiescent point).
    fn unpinned_spin(&self, backoff: &mut Backoff) {
        self.participant.unpin();
        backoff.spin_light();
        self.participant.pin();
    }

    /// `true` once `backoff` has exhausted the configured spin/yield prefix
    /// and the blocking site should park on the eventcount.
    fn should_park(&self, backoff: &Backoff) -> bool {
        backoff.should_park(self.shared.park_spin_rounds)
    }

    /// Blocks on this worker's eventcount slot for a **handshake** wait
    /// (member poll, coordinator wait, start countdown).  The caller has
    /// already prepared (`ticket`) and re-checked its condition; this
    /// unpins around the block (DESIGN.md §11) and records the wake in the
    /// metrics.  Every wake counts one backoff round so streak time and the
    /// stall reports keep working.
    fn commit_handshake_park(&self, backoff: &mut Backoff, ticket: u64) {
        self.me().counters.inc_parks();
        self.participant.unpin();
        let reason = self
            .shared
            .sleep
            .park_handshake(self.id, ticket, self.shared.park_backstop);
        self.participant.pin();
        self.record_wake(reason);
        backoff.note_round();
    }

    /// Metrics accounting for one park outcome.
    fn record_wake(&self, reason: WakeReason) {
        match reason {
            WakeReason::Notified(latency) => {
                self.me().counters.inc_wakeups();
                self.me().counters.record_wake_latency(latency);
            }
            // The global ticket moved: a notification happened somewhere
            // while we were committing.  It woke us, so it counts as a
            // wakeup, but it carries no per-slot latency sample.
            WakeReason::TicketChanged => self.me().counters.inc_wakeups(),
            WakeReason::Backstop => self.me().counters.inc_spurious_wakes(),
        }
    }

    #[inline]
    fn me(&self) -> &WorkerShared {
        &self.shared.workers[self.id]
    }

    /// `true` when the `TEAMSTEAL_STALL_DEBUG` environment variable is set
    /// or [`enable_stall_debug`] was called: long-running waits then print a
    /// one-line state dump of every worker at spaced intervals, which is the
    /// intended way to diagnose a scheduler that appears to make no
    /// progress.
    fn stall_debug_enabled() -> bool {
        static ENABLED: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
        *ENABLED.get_or_init(|| std::env::var_os("TEAMSTEAL_STALL_DEBUG").is_some())
            || FORCE_STALL_DEBUG.load(Ordering::Acquire)
    }

    /// Prints the scheduler-wide state when a wait site has been
    /// unproductive for over a second, rate-limited to every 16th round so
    /// backstop-paced wakes (~10/s) keep dumping while a hang persists —
    /// including when the debug switch is flipped on *after* the hang
    /// started (the test watchdog does exactly that).  Only active when
    /// stall debugging is enabled; the diagnostic path takes no locks.
    fn stall_report(&self, site: &str, backoff: &Backoff) {
        if !Self::stall_debug_enabled() {
            return;
        }
        let rounds = backoff.rounds();
        if backoff.unproductive_for() < Duration::from_secs(1) || rounds % 16 != 0 || rounds == 0 {
            return;
        }
        eprintln!(
            "[teamsteal stall] worker {} at {site} after {rounds} rounds ({:?}) | {}",
            self.id,
            backoff.unproductive_for(),
            self.shared.debug_state_line()
        );
    }

    #[inline]
    fn topo(&self) -> &Topology {
        &self.shared.topology
    }

    /// The scheduler's main loop (the paper's Algorithm 1 + Algorithm 5).
    pub(crate) fn run_loop(&mut self) {
        // A worker that injects (e.g. a task body opening a nested scope)
        // pushes to its own domain's shard, not a round-robin one.
        INJECT_HOME.with(|home| home.set(Some(self.domain)));
        let mut idle = Backoff::new();
        loop {
            if self.shared.shutdown.load(Ordering::Acquire) {
                break;
            }
            // Quiescent point: every protected pointer from the previous
            // iteration is dead here.  Re-pin to the current epoch, and
            // opportunistically collect ripe garbage (every round while
            // idle would be wasteful when busy, so busy rounds collect at
            // COLLECT_INTERVAL).
            self.participant.pin();
            self.loop_ticks = self.loop_ticks.wrapping_add(1);
            if self.loop_ticks % COLLECT_INTERVAL == 0 {
                self.collect_epoch();
            }
            let coordinator = self.me().coordinator.load(Ordering::Relaxed);
            if coordinator != self.id {
                // paper: Algorithm 5 lines 7–14 — this worker is registered
                // with another coordinator; run its published task or help.
                self.quit_search();
                self.member_step(coordinator, &mut idle);
                continue;
            }
            // Refinement 1: while a team is formed, keep working on the queue
            // of that size before looking at smaller tasks.
            if let Some(level) = self.preferred_level() {
                self.quit_search();
                idle.reset();
                self.work_on_level(level);
                continue;
            }
            // All local queues are empty.  If we coordinate a *formed* team,
            // keep it warm for a bounded window first (DESIGN.md §15): a
            // compatible task arriving within the window reuses the team
            // with a single publication write instead of re-running the
            // whole registration protocol.
            if self.warm_hold() {
                idle.reset();
                continue;
            }
            // Dissolve any team we coordinate (Lemma 1: "the team will
            // dissolve ... as soon as the current coordinator's queue runs
            // empty") and go stealing.
            self.release_team_if_any();
            self.enter_search();
            if self.pop_injected() || self.steal_round() {
                self.last_searcher_rounds = 0;
                idle.reset();
                continue;
            }
            self.me().counters.inc_failed_steal_rounds();
            self.stall_report("idle/steal", &idle);
            // An idle round is the cheapest quiescent point there is:
            // collect before parking, then park unpinned so reclamation
            // never waits on a sleeper.
            self.collect_epoch();
            self.idle_park(&mut idle);
        }
        // Shutdown: a warm team parked on our registration word must be
        // disbanded *now* — its members re-check `shutdown` on the wake this
        // triggers, instead of draining out one park backstop at a time.
        self.release_team_if_any();
        self.quit_search();
        self.participant.unpin();
    }

    /// Announces this worker as searching (about to run steal rounds) to the
    /// sleep controller, once per idle episode.
    fn enter_search(&mut self) {
        if !self.searching {
            self.searching = true;
            self.shared.sleep.start_search();
        }
    }

    /// Withdraws the searching announcement (work found, coordination path
    /// entered, or shutdown).
    fn quit_search(&mut self) {
        if self.searching {
            self.searching = false;
            self.shared.sleep.end_search();
            self.last_searcher_rounds = 0;
        }
    }

    /// One idle blocking round: spin/yield prefix, bounded last-searcher
    /// stay-awake, then the eventcount park protocol
    /// (prepare → recheck → commit) of DESIGN.md §12.
    fn idle_park(&mut self, idle: &mut Backoff) {
        debug_assert!(self.searching);
        if !self.should_park(idle) {
            self.unpinned_spin(idle);
            return;
        }
        // Bounded "last searcher stays awake": while this is the only
        // searching worker and work hints are visible, burn a few more
        // steal rounds instead of trading the whole pool's steal throughput
        // for a park/wake round-trip per task.  Bounded, because an
        // unhealed occupancy hint must not pin us to the CPU forever — the
        // eventcount makes parking with work present merely slower, never
        // incorrect.
        if self.shared.sleep.is_last_searcher()
            && self.last_searcher_rounds < LAST_SEARCHER_EXTRA_ROUNDS
            && self.work_hints_visible()
        {
            self.last_searcher_rounds += 1;
            self.unpinned_spin(idle);
            return;
        }
        // Park protocol.  The prepare announces us as a sleeper *before*
        // the recheck, so any producer that publishes work after the
        // recheck is guaranteed to observe a sleeper and wake it
        // (DESIGN.md §12 rows A/B); anything published before is seen by
        // the recheck itself.
        let ticket = self.shared.sleep.prepare_idle();
        if self.shared.shutdown.load(Ordering::Acquire) || self.work_hints_visible() {
            self.shared.sleep.cancel_idle();
            idle.note_round();
            return;
        }
        self.me().counters.inc_parks();
        self.participant.unpin();
        let reason = self
            .shared
            .sleep
            .park_idle(self.id, ticket, self.shared.park_backstop);
        self.participant.pin();
        self.record_wake(reason);
        idle.note_round();
    }

    /// Cheap scan for any sign of obtainable work: a queued injector
    /// element, a possibly non-empty foreign queue, or a team advertisement
    /// this worker could register for.  Reads only top-level atomics
    /// (occupancy words, registration words, injector indices), so it is
    /// safe while unpinned and cheap enough to run as the park recheck.
    fn work_hints_visible(&self) -> bool {
        if !self.shared.injector.is_empty() {
            return true;
        }
        for (other, w) in self.shared.workers.iter().enumerate() {
            if other == self.id {
                continue;
            }
            if w.occupancy.load(Ordering::Relaxed) != 0 {
                return true;
            }
            let reg = w.reg.load();
            let required = reg.required as usize;
            if required > 1
                && !reg.is_complete()
                && self.topo().overlap(other, self.id, required)
            {
                return true;
            }
        }
        false
    }

    /// The queue level this worker should work on next: the formed team's
    /// level while its queue is non-empty (Refinement 1), otherwise the
    /// lowest non-empty level (smallest tasks first).
    fn preferred_level(&self) -> Option<usize> {
        let reg = self.me().reg.load();
        if reg.teamed > 1 {
            let team_level = self
                .topo()
                .level_for_requirement(self.id, reg.teamed as usize);
            if !self.me().queues[team_level].is_empty() {
                return Some(team_level);
            }
        }
        self.me().lowest_nonempty_level()
    }

    // ------------------------------------------------------------------
    // Own-queue execution and coordination
    // ------------------------------------------------------------------

    fn work_on_level(&mut self, level: usize) {
        let group = self.topo().group_range(self.id, level);
        if group.len() == 1 {
            // Degenerate case (r = 1): exactly classic work-stealing — no
            // registration CAS, no publication (paper, Section 3.1).  If we
            // still hold a larger team from earlier work, resize it away so
            // its members do not wait on us needlessly (Refinement 1: the
            // team is resized to work on a queue containing smaller tasks).
            if self.me().reg.load().teamed > 1 {
                self.release_team_if_any();
            }
            if let Some(ptr) = self.me().pop_task(level) {
                self.run_singleton(ptr);
            }
        } else {
            self.coordinate_level(level);
        }
    }

    fn run_singleton(&mut self, ptr: *mut TaskNode) {
        if !self.claim_for_run(ptr) {
            return;
        }
        // SAFETY: the node stays alive until the last participant (here: only
        // us) finishes it.
        let node = unsafe { &*ptr };
        let ctx = TaskContext {
            worker: &*self,
            scope: &node.scope,
            requested: node.requirement,
            team_size: 1,
            team_base: self.id,
            local_id: 0,
            barrier: None,
        };
        Self::run_job(node, &ctx);
        self.me().counters.inc_tasks_executed();
        self.finish_node(ptr);
    }

    /// Runs a job body, converting panics into a recorded scope failure so a
    /// panicking task cannot wedge the whole scheduler.
    fn run_job(node: &TaskNode, ctx: &TaskContext<'_>) {
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| node.job.run(ctx)));
        if let Err(payload) = result {
            node.scope.record_panic(payload);
        }
    }

    fn finish_node(&self, ptr: *mut TaskNode) {
        // SAFETY: node is alive until the last participant decrements.  The
        // AcqRel makes every participant's job effects visible to the last
        // one before the node is recycled or freed.
        let node = unsafe { &*ptr };
        if node.participants.fetch_sub(1, Ordering::AcqRel) == 1 {
            let scope = Arc::clone(&node.scope);
            // SAFETY: we are the last participant; nobody else will touch
            // it.  The node returns to its home arena (or the heap).
            unsafe { TaskNode::release(ptr) };
            scope.task_finished();
        }
    }

    /// Drops `ptr` without running it when its cancel token was cancelled
    /// or its deadline has passed (DESIGN.md §17), retiring the scope
    /// countdown, the job's captured state (and with it any service
    /// completion guard) and the node's memory exactly once through
    /// `finish_node`.  Returns `true` when the node was retired.  The
    /// caller must be the node's exclusive owner (it popped the node and
    /// has not re-published it), so the deadline read is race-free.
    fn retire_if_stale(&self, ptr: *mut TaskNode) -> bool {
        // SAFETY: the caller owns the node.
        let node = unsafe { &*ptr };
        if node.cancel.is_none() && node.deadline.is_none() {
            return false;
        }
        if let Some(cell) = &node.cancel {
            if cell.is_cancelled() {
                self.me().counters.inc_tasks_cancelled();
                self.finish_node(ptr);
                return true;
            }
        }
        if let Some(deadline) = node.deadline {
            if std::time::Instant::now() >= deadline {
                // Settle the cell to `Expired` so a late `cancel()`,
                // `is_expired` or `is_finished` observer sees a coherent
                // terminal state (and expiry never reports as cancelled).
                // Losing this CAS to a racing `cancel()` still drops the
                // task; only the expired-vs-cancelled attribution is
                // best-effort in that one window.
                if let Some(cell) = &node.cancel {
                    cell.expire();
                }
                self.me().counters.inc_tasks_expired();
                self.finish_node(ptr);
                return true;
            }
        }
        false
    }

    /// The claim-to-run gate (DESIGN.md §17): run by the owning worker
    /// immediately before executing a singleton or publishing a team task.
    /// Returns `true` when the task may run; `false` when it was cancelled
    /// or expired and has been retired without running.  The claim CAS
    /// makes run-vs-cancel a decided race: once it succeeds, a concurrent
    /// `cancel()` observes `Claimed` and returns false; once a `cancel()`
    /// wins, the claim here fails and the task never runs.
    fn claim_for_run(&self, ptr: *mut TaskNode) -> bool {
        if self.retire_if_stale(ptr) {
            return false;
        }
        // SAFETY: the caller owns the node.
        let node = unsafe { &*ptr };
        match &node.cancel {
            Some(cell) if !cell.try_claim() => {
                // A `cancel()` won between the staleness probe and the
                // claim — the decided race resolved against running.
                self.me().counters.inc_tasks_cancelled();
                self.finish_node(ptr);
                false
            }
            _ => true,
        }
    }

    /// The paper's `coordinateTask` (Algorithm 6), generalized to one call
    /// per queue level: build (or reuse) the team for this level's group and
    /// execute the tasks in the level's queue with it.
    fn coordinate_level(&mut self, level: usize) {
        let me = self.id;
        let group = self.topo().group_range(me, level);
        let team_size = group.len();

        // Adjust the advertised requirement.  paper: "r is modified every
        // time a new task is added to the bottom of the queue"; here we also
        // (re-)announce it when we start coordinating the level.
        let cur = self.me().reg.load();
        if (cur.teamed as usize) > team_size {
            // Next task is smaller than the current team: shrink (Section 3.1).
            self.wait_countdown_zero();
            self.me().reg.shrink_team(team_size as u16);
            // Members dropped by the shrink may be parked polling us.
            self.notify_team_range(me, cur.teamed as usize);
        } else if cur.teamed > 1 && (cur.teamed as usize) < team_size {
            // paper, Section 3.1: "If the next task is larger, the coordinator
            // breaks up the team as soon as execution of the previous task has
            // finished.  This is done by setting t = 1.  The team for the
            // larger task then has to be rebuilt from scratch."  Keeping the
            // smaller team formed here deadlocks: its members may never leave
            // a formed team, and a coordinator of a formed team never switches
            // to a competing coordinator, so two half-machine teams that both
            // want to grow wait on each other forever.
            self.wait_countdown_zero();
            self.me().reg.disband();
            self.me().reg.push_requirement(team_size as u16);
            // Wake both the freed members of the old (smaller) team and the
            // candidates of the new, larger one.
            self.notify_team_range(me, cur.teamed as usize);
            self.notify_team_range(me, team_size);
        } else if (cur.required as usize) != team_size {
            self.me().reg.push_requirement(team_size as u16);
            // A new advertisement: candidates may be parked idle or polling
            // a competing coordinator they would switch away from.
            self.notify_team_range(me, team_size);
        }

        let mut backoff = Backoff::new();
        let mut resyncs_fired = 0u32;
        loop {
            if self.shared.shutdown.load(Ordering::Acquire) {
                return;
            }
            let reg = self.me().reg.load();
            let team_formed = reg.teamed as usize == team_size;
            if !team_formed {
                // Smaller tasks take priority until the team exists
                // (Lemma 1: "tasks requiring less threads are always
                // prioritized").
                if let Some(l) = self.me().lowest_nonempty_level() {
                    if l < level {
                        return;
                    }
                }
            }
            if self.me().queues[level].is_empty() {
                // Nothing left at this level (drained or stolen away); the
                // main loop decides what to do with the team next.
                return;
            }
            if reg.is_complete() {
                let ready = if team_formed {
                    true
                } else {
                    match self.me().reg.try_form_team() {
                        Some(_) => {
                            self.me().counters.inc_teams_formed();
                            true
                        }
                        None => {
                            self.me().counters.inc_cas_failures();
                            false
                        }
                    }
                };
                if ready {
                    match self.me().pop_task(level) {
                        Some(ptr) => {
                            if team_formed {
                                // Publication onto an already-formed team:
                                // the moldable fast path (one seqlock write,
                                // no registration traffic).  `try_reuse` is
                                // a single Acquire load validating the team
                                // is still whole (DESIGN.md §15).
                                if matches!(
                                    self.me().reg.try_reuse(team_size as u16),
                                    ReuseOutcome::Reused(_)
                                ) {
                                    self.me().counters.inc_team_reuses();
                                }
                            } else {
                                // Cold path: this publication paid for a
                                // full team build.
                                self.me().counters.inc_teams_built();
                            }
                            self.execute_team_task_as_coordinator(ptr, group.start, team_size);
                            backoff.reset();
                            // Elastic shrink (DESIGN.md §15): the countdown
                            // just drained, so this is a safe resize point.
                            // Under backlog pressure, release the members to
                            // the steal loop instead of running (or warm-
                            // holding) the next task with the full team.
                            if self.elastic_shrink_due(team_size) {
                                self.me().reg.disband();
                                self.me().counters.inc_team_shrinks();
                                self.notify_team_range(me, team_size);
                                return;
                            }
                        }
                        None => return,
                    }
                }
            } else {
                // Not enough threads yet: poll the partners required for this
                // team (Algorithm 8), possibly helping or switching.
                match self.poll_partners(me, team_size, level) {
                    PollOutcome::Switched | PollOutcome::Helped => return,
                    PollOutcome::Nothing => {
                        // Liveness backstop (ROADMAP flake): if the team has
                        // not completed for a long time, the acquired count
                        // may have desynchronized from the members that are
                        // actually polling us.  Withdraw the advertisement
                        // and re-announce it under a fresh renewal counter,
                        // forcing every registrant to re-register; any
                        // correctly waiting member re-acquires within one
                        // poll round, so the cost of a false positive is one
                        // extra CAS per member.  Time-based: a parked
                        // coordinator accumulates rounds only on wakes.
                        if backoff.unproductive_for()
                            >= COORDINATOR_RESYNC_AFTER * (resyncs_fired + 1)
                            && !self.me().reg.load().has_team()
                        {
                            resyncs_fired += 1;
                            self.me().reg.disband();
                            self.me().reg.push_requirement(team_size as u16);
                            self.me().counters.inc_liveness_resyncs();
                            // Stall resync is a whole-scheduler event: wake
                            // everyone so no stale park outlives it.
                            self.shared.sleep.notify_all();
                        }
                        self.stall_report("coordinate_level", &backoff);
                        if !self.should_park(&backoff) {
                            self.unpinned_spin(&mut backoff);
                            continue;
                        }
                        // Park until a registration/release changes our
                        // word, a thief drains the level, or the poll finds
                        // a partner event (prepare → recheck → commit;
                        // DESIGN.md §12).
                        let ticket = self.shared.sleep.prepare_handshake();
                        if self.shared.shutdown.load(Ordering::Acquire)
                            || self.me().reg.load() != reg
                            || self.me().queues[level].is_empty()
                        {
                            self.shared.sleep.cancel_handshake();
                            backoff.note_round();
                            continue;
                        }
                        match self.poll_partners(me, team_size, level) {
                            PollOutcome::Switched | PollOutcome::Helped => {
                                self.shared.sleep.cancel_handshake();
                                return;
                            }
                            PollOutcome::Nothing => {}
                        }
                        self.commit_handshake_park(&mut backoff, ticket);
                    }
                }
            }
        }
    }

    /// Publishes `ptr` to the (already formed) team and executes the
    /// coordinator's share.
    fn execute_team_task_as_coordinator(&mut self, ptr: *mut TaskNode, base: usize, team_size: usize) {
        debug_assert!(team_size >= 2);
        // Claim before the team descriptor is written or published: members
        // only ever see already-claimed tasks, so the cancel race is decided
        // while the coordinator still owns the node exclusively.
        if !self.claim_for_run(ptr) {
            return;
        }
        let me = self.id;
        // SAFETY: the node is alive; we are the only thread that can publish
        // it (it came out of our own queue) and no member can see it before
        // the publication below.
        let node = unsafe { &*ptr };
        unsafe {
            *node.team_base.get() = base;
            *node.team_size.get() = team_size;
            *node.barrier.get() = Some(Arc::new(TeamBarrier::new(team_size)));
        }
        node.participants.store(team_size as u32, Ordering::Release);

        // The start countdown G (Section 3): all other members must pick the
        // task up before we may publish the next one or change the team.
        // Relaxed suffices: the store is sequenced before the publication
        // below, and members only decrement after acquire-observing the
        // publication, so they always see the fresh countdown (DESIGN.md §9).
        self.me()
            .start_countdown
            .store((team_size - 1) as u32, Ordering::Relaxed);

        // Publication seqlock: odd while writing, even when stable.  The
        // ordering recipe is the standard atomic seqlock (DESIGN.md §9):
        //
        // * the odd store may be Relaxed — the release fence after it orders
        //   it (and the node-field writes above) before the data stores, so
        //   a reader that observes any of the new data and then acquires-
        //   fences before re-reading the sequence is guaranteed to see the
        //   odd value (or a later one) and discard the torn read;
        // * the data stores may be Relaxed — a reader only trusts them after
        //   both sequence reads returned the same even value;
        // * the final store is Release — it pairs with the reader's initial
        //   Acquire load, making the data (and the countdown and node
        //   fields) visible to any reader that sees the new sequence.
        let seq = self.me().publish_seq.load(Ordering::Relaxed);
        debug_assert!(seq % 2 == 0);
        self.me().publish_seq.store(seq + 1, Ordering::Relaxed);
        std::sync::atomic::fence(Ordering::Release);
        self.me().publish_base.store(base, Ordering::Relaxed);
        self.me().publish_size.store(team_size, Ordering::Relaxed);
        self.me().publish_task.store(ptr, Ordering::Relaxed);
        self.me().publish_seq.store(seq + 2, Ordering::Release);
        // Wake the members: they park between publications (member_step)
        // and must observe this one before the start countdown can drain.
        self.shared.sleep.notify_workers(base..base + team_size, me);

        // Run our own share of the task.
        // SAFETY: barrier was just written by us.
        let barrier = unsafe { (*node.barrier.get()).as_ref() };
        let ctx = TaskContext {
            worker: &*self,
            scope: &node.scope,
            requested: node.requirement,
            team_size,
            team_base: base,
            local_id: me - base,
            barrier,
        };
        Self::run_job(node, &ctx);
        self.me().counters.inc_team_tasks_executed();
        self.finish_node(ptr);
        // Wait until every member has started before allowing the next
        // publication or any registration change (Algorithm 5, lines 1–4).
        self.wait_countdown_zero();
    }

    fn wait_countdown_zero(&self) {
        let mut backoff = Backoff::new();
        while self.me().start_countdown.load(Ordering::Acquire) > 0 {
            // Liveness: at shutdown, members may exit their run loop without
            // picking up a published task (and thus without decrementing G).
            // A coordinator blocking here forever would then deadlock the
            // scheduler's drop-join.  Shutdown is only set after every scope
            // has drained, so abandoning the wait cannot lose work.
            if self.shared.shutdown.load(Ordering::Acquire) {
                return;
            }
            self.stall_report("wait_countdown", &backoff);
            if !self.should_park(&backoff) {
                self.unpinned_spin(&mut backoff);
                continue;
            }
            // Park until the member whose decrement reaches zero notifies
            // us (member_step), shutdown broadcasts, or the backstop fires.
            let ticket = self.shared.sleep.prepare_handshake();
            if self.me().start_countdown.load(Ordering::Acquire) == 0
                || self.shared.shutdown.load(Ordering::Acquire)
            {
                self.shared.sleep.cancel_handshake();
                continue;
            }
            self.commit_handshake_park(&mut backoff, ticket);
        }
    }

    /// Dissolves the team / withdraws the requirement advertisement when this
    /// worker has run out of local work.
    fn release_team_if_any(&mut self) {
        let reg = self.me().reg.load();
        if reg.teamed > 1 || reg.required > 1 {
            self.wait_countdown_zero();
            self.me().reg.disband();
            // Freed members and pending registrants may be parked polling
            // this registration word.
            self.notify_team_range(self.id, reg.teamed.max(reg.required) as usize);
        }
    }

    // ------------------------------------------------------------------
    // Moldable teams: warm reuse pool and elastic shrink (DESIGN.md §15)
    // ------------------------------------------------------------------

    /// Bounded warm-hold window run when the local queues are empty but this
    /// worker still coordinates a **formed** team.  Instead of disbanding at
    /// once, the coordinator keeps the team parked as a unit for up to
    /// `warm_keepalive` while it looks for a next task itself — popping the
    /// injector and running a *restricted* steal round (no registration with
    /// foreign coordinators, which would orphan the held members).  Returns
    /// `true` when a task landed in the local queues: the main loop then
    /// re-enters `coordinate_level`, where a compatible requirement reuses
    /// the team with one publication write.  Returns `false` when the window
    /// expired or reuse is not possible; the caller disbands as before.
    fn warm_hold(&mut self) -> bool {
        let keepalive = self.shared.warm_keepalive;
        if keepalive.is_zero() {
            return false;
        }
        // One Acquire load decides whether the team is reusable at all
        // (formed, complete and not mid-grow): the same predicate a reuse
        // publication validates.
        if !matches!(self.me().reg.try_reuse(1), ReuseOutcome::Reused(_)) {
            return false;
        }
        // Elastic pressure: a deep external backlog (or a machine that is
        // otherwise asleep while backlog exists) wants the members thieving,
        // not pooled.  Refuse the hold; the caller's disband releases them.
        let team_size = self.me().reg.load().teamed as usize;
        if self.elastic_shrink_due(team_size) {
            return false;
        }
        let mut warm = Backoff::new();
        loop {
            // The expiry check comes *before* the work probe: once the
            // window has lapsed the pool must dissolve even if a task just
            // arrived — the late task then pays the cold path instead of
            // reviving a team whose members have been parked too long.
            if self.shared.shutdown.load(Ordering::Acquire)
                || warm.unproductive_for() >= keepalive
            {
                return false;
            }
            if self.pop_injected() || self.warm_steal_round() {
                return true;
            }
            self.unpinned_spin(&mut warm);
        }
    }

    /// The warm-hold variant of [`steal_round`](Self::steal_round): visits
    /// the same partners but only *steals* — never registers with a foreign
    /// coordinator, because this worker still holds a formed team whose
    /// members may not leave it (registering elsewhere would strand them).
    fn warm_steal_round(&mut self) -> bool {
        let levels = self.topo().num_steal_levels();
        for level in 0..levels {
            let Some(x) = self.partner_at(level) else {
                continue;
            };
            if self.transfer_steal(x, level, level) > 0 {
                self.me().counters.inc_steals();
                return true;
            }
        }
        false
    }

    /// Elastic-shrink predicate (DESIGN.md §15): `true` when a team holding
    /// `team_size` workers should release them to the steal loop because the
    /// external backlog is deep (at least `elastic_backlog_threshold`
    /// pending injected tasks) or because *several* tasks queue up while
    /// every worker outside the team is asleep.  A backlog of exactly one
    /// never triggers it — one pending task is the consecutive-task case the
    /// warm pool exists for, and the coordinator feeds it to the reused team
    /// faster than a disband-rebuild cycle could.  Reads two counters; no
    /// synchronization beyond their Relaxed loads — the decision is a
    /// heuristic, the disband it triggers uses the ordinary §10 machinery.
    fn elastic_shrink_due(&self, team_size: usize) -> bool {
        let threshold = self.shared.elastic_backlog_threshold;
        if threshold == usize::MAX {
            return false;
        }
        let backlog = self.shared.injector.len();
        if backlog <= 1 {
            return false;
        }
        backlog >= threshold
            || self.shared.sleep.sleepers() as usize + team_size >= self.shared.num_threads()
    }

    /// Picks the effective team size for a **moldable** task (requirement
    /// range `r_min ..= r_max`, DESIGN.md §15) from current load: one idle
    /// worker per extra member (the sleep controller's packed sleeper and
    /// searcher counts, plus the spawner itself), clamped into the range.
    /// Under elastic backlog pressure the choice collapses to `r_min` —
    /// building a wide team while external tasks queue up starves them.
    /// Under `UniformRandom` (the no-team baseline) it also collapses to
    /// `r_min`, which keeps `1..=k` moldable spawns runnable there.
    fn effective_requirement(&self, r_max: usize, r_min: usize) -> usize {
        debug_assert!(1 <= r_min && r_min <= r_max);
        if r_min == r_max {
            return r_max;
        }
        if self.shared.steal_policy == StealPolicy::UniformRandom {
            return r_min;
        }
        let backlog = self.shared.injector.len();
        if backlog >= self.shared.elastic_backlog_threshold {
            return r_min;
        }
        let sleep = &self.shared.sleep;
        let idle = (sleep.sleepers() + sleep.searchers()) as usize;
        (idle + 1).clamp(r_min, r_max)
    }

    /// Wakes every worker that could act on a change of `coordinator`'s
    /// registration word for requirement `r` (announcement, disband,
    /// shrink): the aligned team block, minus the caller.  One eventcount
    /// ticket bump for the whole range, so a candidate mid-park-commit can
    /// never sleep through the event.
    fn notify_team_range(&self, coordinator: usize, r: usize) {
        if r > 1 {
            let range = self.topo().team_for(coordinator, r);
            self.shared.sleep.notify_workers(range, self.id);
        }
    }

    // ------------------------------------------------------------------
    // Member (registered-at-a-coordinator) behaviour
    // ------------------------------------------------------------------

    /// One step of a worker that is registered with coordinator `cid`
    /// (Algorithm 5, lines 7–14).
    fn member_step(&mut self, cid: usize, backoff: &mut Backoff) {
        let me = self.id;
        if self.shared.shutdown.load(Ordering::Acquire) {
            self.leave_coordinator();
            return;
        }
        self.stall_report("member_step", backoff);
        // 1. Is there a published task for us?
        if let Some((ptr, base, size, seq)) = self.read_publication(cid) {
            self.last_seen_seq[cid] = seq;
            if (base..base + size).contains(&me) {
                let prev = self.shared.workers[cid]
                    .start_countdown
                    .fetch_sub(1, Ordering::AcqRel);
                if prev == 1 {
                    // Ours was the last pick-up: the coordinator may be
                    // parked in `wait_countdown_zero`.
                    self.shared.sleep.notify_worker(cid);
                }
                self.run_team_member(ptr, base, size);
                backoff.reset();
                return;
            }
            // A task for a team that does not include us — nothing to do with
            // it; fall through to the validity checks.
        }
        let creg = self.shared.workers[cid].reg.load();
        // 2. Are we part of a formed team?  Then we only wait for work
        // (Section 3: "Teamed up threads are not allowed to do any
        // coordination work, except polling the coordinator") — parked on
        // our eventcount slot until the coordinator publishes, resizes or
        // disbands.
        let teamed = creg.teamed as usize;
        if teamed > 1 && self.topo().team_for(cid, teamed).contains(&me) {
            if !self.should_park(backoff) {
                self.unpinned_spin(backoff);
                return;
            }
            let ticket = self.shared.sleep.prepare_handshake();
            if self.shared.shutdown.load(Ordering::Acquire)
                || self.shared.workers[cid].reg.load() != creg
                || self.read_publication(cid).is_some()
            {
                self.shared.sleep.cancel_handshake();
                backoff.note_round();
                return;
            }
            self.commit_handshake_park(backoff, ticket);
            return;
        }
        // 3. Is our registration still valid and needed?
        let required = creg.required as usize;
        let still_needed = required > 1
            && creg.counter == self.registered_counter[cid]
            && self.topo().team_for(cid, required).contains(&me);
        if !still_needed {
            self.leave_coordinator();
            backoff.reset();
            return;
        }
        // 4. Validly registered, team not yet complete: poll the partners we
        // share with the coordinator, helping smaller tasks or switching to a
        // winning coordinator (Algorithm 8).
        let req_level = self.topo().level_for_requirement(cid, required);
        match self.poll_partners(cid, required, req_level) {
            PollOutcome::Switched | PollOutcome::Helped => backoff.reset(),
            PollOutcome::Nothing => {
                // Liveness backstop (ROADMAP flake): a member that has
                // polled unproductively for a long time re-synchronizes from
                // scratch — release the registration (never possible once
                // teamed; the `Teamed` outcome keeps us in place) and fall
                // back to the main loop, which re-discovers and re-registers
                // with whoever still needs us.  This converts any missed
                // registration/publication handshake into bounded extra
                // work instead of an unbounded wait.  Time-based: a parked
                // member accumulates rounds only on wakes.
                if backoff.unproductive_for() >= MEMBER_RESYNC_AFTER {
                    match self.shared.workers[cid]
                        .reg
                        .try_release(self.registered_counter[cid])
                    {
                        ReleaseOutcome::Teamed => {}
                        ReleaseOutcome::Released | ReleaseOutcome::Revoked => {
                            self.leave_coordinator();
                            self.me().counters.inc_liveness_resyncs();
                            // Stall resync: wake everyone (including the
                            // abandoned coordinator) so no stale park
                            // outlives the re-synchronization.
                            self.shared.sleep.notify_all();
                            backoff.reset();
                            return;
                        }
                    }
                }
                if !self.should_park(backoff) {
                    self.unpinned_spin(backoff);
                    return;
                }
                // Park until the coordinator's word changes, a publication
                // lands, or a partner event (checked by one more poll after
                // prepare) needs handling.
                let ticket = self.shared.sleep.prepare_handshake();
                if self.shared.shutdown.load(Ordering::Acquire)
                    || self.shared.workers[cid].reg.load() != creg
                    || self.read_publication(cid).is_some()
                {
                    self.shared.sleep.cancel_handshake();
                    backoff.note_round();
                    return;
                }
                if self.poll_partners(cid, required, req_level) != PollOutcome::Nothing {
                    self.shared.sleep.cancel_handshake();
                    backoff.reset();
                    return;
                }
                self.commit_handshake_park(backoff, ticket);
            }
        }
    }

    fn leave_coordinator(&mut self) {
        self.me().coordinator.store(self.id, Ordering::Release);
    }

    /// Seqlock read of a coordinator's publication.  Returns a publication
    /// newer than what this worker has already handled, if any.
    ///
    /// Ordering (DESIGN.md §9): the initial Acquire pairs with the writer's
    /// final Release store, so a matching even sequence guarantees the data
    /// loads saw that publication's values; the Acquire fence before the
    /// re-read pairs with the writer's Release fence, so a reader that
    /// picked up any in-progress data is guaranteed to observe the odd (or
    /// newer) sequence and discard it.
    fn read_publication(&self, cid: usize) -> Option<(*mut TaskNode, usize, usize, u64)> {
        let c = &self.shared.workers[cid];
        for _ in 0..8 {
            let s1 = c.publish_seq.load(Ordering::Acquire);
            if s1 % 2 == 1 {
                std::hint::spin_loop();
                continue;
            }
            if s1 == 0 || s1 <= self.last_seen_seq[cid] {
                return None;
            }
            let ptr = c.publish_task.load(Ordering::Relaxed);
            let base = c.publish_base.load(Ordering::Relaxed);
            let size = c.publish_size.load(Ordering::Relaxed);
            std::sync::atomic::fence(Ordering::Acquire);
            let s2 = c.publish_seq.load(Ordering::Relaxed);
            if s1 == s2 {
                return Some((ptr, base, size, s1));
            }
        }
        None
    }

    fn run_team_member(&mut self, ptr: *mut TaskNode, base: usize, size: usize) {
        // SAFETY: we are a counted participant (start_countdown was
        // decremented above), so the node cannot be freed before we finish.
        let node = unsafe { &*ptr };
        // SAFETY: the barrier was written before publication; the seqlock
        // read ordered us after that write.
        let barrier = unsafe { (*node.barrier.get()).as_ref() };
        let ctx = TaskContext {
            worker: &*self,
            scope: &node.scope,
            requested: node.requirement,
            team_size: size,
            team_base: base,
            local_id: self.id - base,
            barrier,
        };
        Self::run_job(node, &ctx);
        self.me().counters.inc_team_tasks_executed();
        self.finish_node(ptr);
    }

    // ------------------------------------------------------------------
    // Partner polling, switching and helping (Algorithms 8 & 9)
    // ------------------------------------------------------------------

    /// Chooses the partner at `level` according to the configured policy.
    fn partner_at(&mut self, level: usize) -> Option<usize> {
        match self.shared.steal_policy {
            StealPolicy::Deterministic => self.topo().partner(self.id, level),
            StealPolicy::RandomizedWithinLevel => {
                let topo = &self.shared.topology;
                topo.partner_randomized(self.id, level, &mut self.rng)
            }
            StealPolicy::UniformRandom => {
                let p = self.shared.num_threads();
                if p <= 1 {
                    None
                } else {
                    let mut v = self.rng.next_usize_below(p - 1);
                    if v >= self.id {
                        v += 1;
                    }
                    Some(v)
                }
            }
        }
    }

    /// The paper's `pollPartners(c, r)` (Algorithm 8), called both by a
    /// coordinator (`my_coord == self.id`) and by registered members.
    fn poll_partners(&mut self, my_coord: usize, req: usize, req_level: usize) -> PollOutcome {
        let me = self.id;
        for level in 0..req_level {
            let Some(x) = self.partner_at(level) else {
                continue;
            };
            if x == my_coord || x == me {
                continue;
            }
            let xcid = self.shared.workers[x].coordinator.load(Ordering::Acquire);
            if xcid == my_coord || xcid == me {
                continue;
            }
            let xcreg = self.shared.workers[xcid].reg.load();
            let their_r = xcreg.required as usize;
            if their_r <= 1 {
                // Partner is busy with sequential work: steal smaller tasks
                // from it so it runs dry and comes looking for work
                // (Algorithm 8, lines 20–30).
                if self.help_steal_from(x, req_level, level) {
                    return PollOutcome::Helped;
                }
                continue;
            }
            // Conflict resolution (Lemma 3): the smaller requirement wins,
            // ties are broken towards the smaller coordinator id.
            let they_win = their_r < req || (their_r == req && xcid < my_coord);
            if !they_win {
                // We win; the partner's team will eventually come to us.
                continue;
            }
            let needed_by_them =
                !xcreg.is_complete() && self.topo().overlap(xcid, me, their_r);
            if needed_by_them {
                if self.switch_coordinator(my_coord, xcid) {
                    return PollOutcome::Switched;
                }
            } else if their_r < req && self.help_steal_from(x, req_level, level) {
                // The partner's (winning, smaller) task does not need us:
                // help it finish faster by stealing tasks smaller than ours.
                return PollOutcome::Helped;
            }
        }
        PollOutcome::Nothing
    }

    /// Steals tasks *smaller than our current coordination requirement* from
    /// `victim` into our own queues (Algorithm 8's helping steal).  Returns
    /// `true` if at least one task was transferred.
    fn help_steal_from(&mut self, victim: usize, req_level: usize, steal_level: usize) -> bool {
        let moved = self.transfer_steal(victim, req_level.saturating_sub(1), steal_level);
        if moved > 0 {
            self.me().counters.inc_help_steals();
            true
        } else {
            false
        }
    }

    /// The paper's `switchToCoordinator` (Algorithm 9): deregister from the
    /// old coordinator (if allowed) and register with the new one.  Returns
    /// `true` if the switch happened.
    fn switch_coordinator(&mut self, old: usize, new: usize) -> bool {
        let me = self.id;
        if old != me {
            match self.shared.workers[old]
                .reg
                .try_release(self.registered_counter[old])
            {
                ReleaseOutcome::Teamed => return false, // cannot drop out of a formed team
                ReleaseOutcome::Released | ReleaseOutcome::Revoked => {}
            }
            self.leave_coordinator();
        } else {
            // We were coordinating ourselves: revoke our registrants and stop
            // coordinating (Algorithm 9, lines 23–31).  A coordinator of a
            // *formed* team never abandons it (its members cannot leave
            // either), so refuse in that case.
            let myreg = self.me().reg.load();
            if myreg.teamed > 1 {
                return false;
            }
            self.me().reg.disband();
            // Revoked registrants may be parked polling our word.
            self.notify_team_range(me, myreg.required as usize);
        }
        self.try_register_with(new)
    }

    /// Registers this worker at coordinator `cid` (one CAS, Algorithm 7
    /// lines 7–14).  On success the worker's coordinator pointer is updated.
    fn try_register_with(&mut self, cid: usize) -> bool {
        let me = self.id;
        debug_assert_ne!(cid, me);
        let c = &self.shared.workers[cid];
        // Record the publication sequence *before* registering so we never
        // run a task published before we joined (those teams were complete
        // without us).  Acquire: any publication whose team could include us
        // must have been written after our registration CAS (completeness
        // requires it), so it carries a strictly larger sequence.
        let mut seq0 = c.publish_seq.load(Ordering::Acquire);
        if seq0 % 2 == 1 {
            seq0 += 1;
        }
        let creg = c.reg.load();
        let required = creg.required as usize;
        if required <= 1 || creg.is_complete() || !self.topo().overlap(cid, me, required) {
            return false;
        }
        match c.reg.try_acquire(2) {
            AcquireOutcome::Registered(snapshot) => {
                self.registered_counter[cid] = snapshot.counter;
                self.last_seen_seq[cid] = self.last_seen_seq[cid].max(seq0);
                self.me().coordinator.store(cid, Ordering::Release);
                self.me().counters.inc_registrations();
                // The coordinator may be parked waiting for this very
                // acquisition (ours could complete the team).
                self.shared.sleep.notify_worker(cid);
                true
            }
            AcquireOutcome::Contended => {
                self.me().counters.inc_cas_failures();
                false
            }
            AcquireOutcome::NotNeeded(_) => false,
        }
    }

    // ------------------------------------------------------------------
    // Stealing (Algorithm 7)
    // ------------------------------------------------------------------

    /// One full steal round over the `log p` partners (Algorithm 7).  Returns
    /// `true` if the round produced something to do (a steal or a
    /// registration).
    fn steal_round(&mut self) -> bool {
        let levels = self.topo().num_steal_levels();
        if self.shared.steal_policy == StealPolicy::UniformRandom {
            // Classic randomized work-stealing (the Randfork baseline):
            // uniformly random victims, no team building.
            let attempts = levels.max(1);
            for _ in 0..attempts {
                let Some(victim) = self.partner_at(0) else {
                    return false;
                };
                let top = self.topo().num_queue_levels() - 1;
                if self.transfer_steal(victim, top, levels.max(1) - 1) > 0 {
                    self.me().counters.inc_steals();
                    return true;
                }
            }
            return false;
        }
        for level in 0..levels {
            let Some(x) = self.partner_at(level) else {
                continue;
            };
            // Team-building opportunity: does the partner's *coordinator*
            // need us for its task (Algorithm 7, line 6)?
            let xcid = self.shared.workers[x].coordinator.load(Ordering::Acquire);
            if xcid != self.id {
                let xcreg = self.shared.workers[xcid].reg.load();
                let r = xcreg.required as usize;
                if r > 1
                    && !xcreg.is_complete()
                    && self.topo().overlap(xcid, self.id, r)
                    && self.try_register_with(xcid)
                {
                    return true;
                }
            }
            // Otherwise steal from the partner.  Refinement 1 forbids
            // stealing tasks for whose team both of us would be required, so
            // only queues up to the partner's level are eligible; within
            // those, prefer the largest tasks (Section 4).
            if self.transfer_steal(x, level, level) > 0 {
                self.me().counters.inc_steals();
                return true;
            }
        }
        // Every partner came up empty: fall back to a full victim scan in
        // hierarchy-distance order (DESIGN.md §13's `sweep_order`, same bias
        // as the sharded-injector pops) — own-domain victims first, so the
        // load balancing of last resort still prefers cache- and
        // NUMA-adjacent queues over far ones.
        self.fallback_scan()
    }

    /// Topology-biased fallback victim scan: visits every other worker in
    /// `Domains::sweep_order` order (nearest domain first, rotating start
    /// within each domain so concurrent thieves fan out) and steals from the
    /// first victim with eligible work.  Refinement 1 still applies: only
    /// queues below the level at which the victim's group would include this
    /// worker are eligible.
    fn fallback_scan(&mut self) -> bool {
        let num_domains = self.shared.domains.num_domains();
        for pos in 0..num_domains {
            let dom = self.shared.domains.sweep_order(self.domain)[pos];
            let range = self.shared.domains.domain_range(dom);
            let len = range.len();
            let start = if len > 1 { self.rng.next_usize_below(len) } else { 0 };
            for i in 0..len {
                let victim = range.start + (start + i) % len;
                if victim == self.id {
                    continue;
                }
                // Highest queue level whose tasks cannot require both of us:
                // the victim's groups are nested and growing, so it is the
                // last level before the victim's group swallows this worker.
                let mut safe_top = 0;
                for l in 0..self.topo().num_queue_levels() {
                    if self.topo().group_range(victim, l).contains(&self.id) {
                        break;
                    }
                    safe_top = l;
                }
                if self.transfer_steal(victim, safe_top, safe_top) > 0 {
                    self.me().counters.inc_steals();
                    return true;
                }
            }
        }
        false
    }

    /// Transfers up to `steal_amount` tasks from `victim`'s queues (levels
    /// `0..=max_qlevel`, largest first) into our own queues, re-levelling
    /// each task for our own hierarchy position (Refinement 3).  Returns the
    /// number of tasks moved.
    fn transfer_steal(&mut self, victim: usize, max_qlevel: usize, amount_level: usize) -> usize {
        let me = self.id;
        if victim == me {
            return 0;
        }
        let vshared = &self.shared.workers[victim];
        let max_qlevel = max_qlevel.min(vshared.queues.len() - 1);
        // Occupancy hint: the victim sets a level's bit before pushing and
        // clears it only after observing emptiness, so a clear bit means
        // "empty" and the `top`/`bottom` loads of that deque can be skipped
        // entirely.  (A set bit is only a hint; `len` decides.)
        let occupancy = vshared.occupancy.load(Ordering::Relaxed);
        // The queue level the victim is advertising a team requirement for,
        // if any (its registration's `r` mapped onto its hierarchy position).
        let vreg = vshared.reg.load();
        let advertised_level = if vreg.required > 1 {
            Some(self.topo().level_for_requirement(victim, vreg.required as usize))
        } else {
            None
        };
        for qlevel in (0..=max_qlevel).rev() {
            if !bits::bit_is_set(occupancy, qlevel) {
                continue;
            }
            let vq = &vshared.queues[qlevel];
            let len = vq.len();
            if len == 0 {
                continue;
            }
            // Liveness (ROADMAP flake): never steal the *single* team task a
            // victim is actively building a team for.  Two hierarchy-partner
            // coordinators can otherwise steal the task back and forth
            // forever — each theft empties the other's queue mid-formation,
            // disbands its half-built team and revokes its registrants, so
            // no team ever forms (a stable livelock once queue operations
            // got cheap).  With two or more tasks queued the steal is
            // genuine load balancing and stays allowed.
            if qlevel >= 1 && len == 1 && advertised_level == Some(qlevel) {
                continue;
            }
            let want = self.shared.steal_amount.amount(len, amount_level);
            let mut moved = 0;
            let mut retries = 0;
            while moved < want {
                match vq.steal_top() {
                    Steal::Stolen(word) => {
                        let ptr = word as *mut TaskNode;
                        // SAFETY: the node is alive while it sits in a queue.
                        let req = unsafe { (*ptr).requirement };
                        let mylevel = self.topo().level_for_requirement(me, req);
                        self.shared.workers[me].push_task(mylevel, ptr);
                        moved += 1;
                        retries = 0;
                    }
                    Steal::Empty => break,
                    Steal::Retry => {
                        retries += 1;
                        if retries > 8 {
                            break;
                        }
                        std::hint::spin_loop();
                    }
                }
            }
            if moved > 0 {
                self.me().counters.add_tasks_stolen(moved as u64);
                // Locality classification (same split the injector pops
                // report): did this steal stay inside the thief's own
                // hierarchy domain or cross to a remote one?
                if self.shared.domains.domain_of(victim) == self.domain {
                    self.me().counters.inc_steals_local();
                } else {
                    self.me().counters.inc_steals_remote();
                }
                if moved > 1 {
                    // Bulk steal: surplus tasks now sit in our queue — wake
                    // chain so another sleeper can share the load instead
                    // of waiting for us to spawn-into-empty again.  We may
                    // well be the searching worker ourselves, so tolerate
                    // our own searcher count in the gate.
                    self.shared.sleep.notify_work(self.searching);
                }
                if advertised_level == Some(qlevel) && vq.is_empty() {
                    // We drained the level the victim is advertising a team
                    // for: a coordinator parked in `coordinate_level` waits
                    // on exactly this queue becoming empty (its "nothing
                    // left, return" condition) and would otherwise only
                    // notice at the backstop.
                    self.shared.sleep.notify_worker(victim);
                }
                return moved;
            }
        }
        0
    }

    /// Pulls one externally injected root task into the local queue:
    /// this worker's own domain shard first, then the remaining shards in
    /// hierarchy-distance order (DESIGN.md §13).  Lock-free: idle workers
    /// polling empty shards never serialize.
    fn pop_injected(&mut self) -> bool {
        let order = self.shared.domains.sweep_order(self.domain);
        match self.shared.injector.pop_sweep(order) {
            Some((TaskPtr(ptr), pos)) => {
                let shard = order[pos];
                if pos == 0 {
                    self.me().counters.inc_injector_local_pops();
                } else {
                    self.me().counters.inc_injector_remote_pops();
                }
                // Stale-work expiry (DESIGN.md §17): a task whose deadline
                // passed (or whose token was cancelled) while it queued is
                // dropped here, before it costs a deque slot, a team or an
                // execution — the pop already made us its exclusive owner.
                if self.retire_if_stale(ptr) {
                    if self.shared.injector.shard_len(shard) > 0 {
                        self.shared.sleep.notify_work_near(
                            self.shared.domains.domain_range(shard),
                            self.searching,
                        );
                    }
                    return true;
                }
                // SAFETY: the node is alive while it sits in the injector.
                let req_max = unsafe { (*ptr).requirement };
                let req_min = unsafe { (*ptr).requirement_min };
                // Moldable choice (DESIGN.md §15): externally injected tasks
                // carry their ceiling; the popping worker picks the
                // effective size from current load.  The rewrite is safe —
                // we popped the node, so until the `push_task` below makes
                // it visible again we are its exclusive owner, and the
                // deque's release/acquire handoff publishes the new value
                // to any later thief.
                let req = self.effective_requirement(req_max, req_min);
                if req != req_max {
                    unsafe { (*ptr).requirement = req };
                }
                let level = self.topo().level_for_requirement(self.id, req);
                self.me().push_task(level, ptr);
                self.me().counters.inc_tasks_injected();
                if self.shared.injector.shard_len(shard) > 0 {
                    // Wake chain: the submit-side hint only wakes one worker
                    // per shard's empty→non-empty transition; each consumer
                    // passes the wake on while elements remain in the shard
                    // it popped, preferring a sleeper of that shard's own
                    // domain.  The caller is the searching worker that
                    // popped, so its own searcher count must not suppress
                    // the chain.
                    self.shared.sleep.notify_work_near(
                        self.shared.domains.domain_range(shard),
                        self.searching,
                    );
                }
                if req > 1 {
                    let group = self.topo().group_size(self.id, level);
                    self.me().reg.push_requirement(group as u16);
                    self.notify_team_range(self.id, group);
                }
                true
            }
            None => false,
        }
    }
}

impl SpawnTarget for Worker {
    fn spawn_job_slot(
        &self,
        job: JobSlot,
        requirement: usize,
        requirement_min: usize,
        scope: &Arc<ScopeState>,
    ) {
        scope.task_spawned();
        // Moldable choice (DESIGN.md §15): pick the effective team size for
        // this spawn from current load.  Fixed-requirement spawns
        // (`requirement_min == requirement`) pass through unchanged.
        let requirement = self.effective_requirement(requirement, requirement_min);
        let me = self.me();
        // SAFETY: a worker is the sole allocator of its own arena, and
        // `spawn_job_slot` only runs on the worker's own thread (tasks spawn
        // through the context of the worker executing them).
        let (ptr, recycled) = unsafe { me.node_pool.alloc() };
        // SAFETY: the slot is uninitialized (fresh or recycled-after-drop);
        // `home` points into the shared worker state, which outlives every
        // node.
        unsafe {
            ptr.write(TaskNode::new_in(
                job,
                requirement,
                requirement_min,
                Arc::clone(scope),
                &me.node_pool as *const _,
            ));
        }
        if recycled {
            me.counters.inc_nodes_recycled();
        }
        let level = self.topo().level_for_requirement(self.id, requirement);
        let was_empty = me.queues[level].is_empty();
        me.push_task(level, ptr);
        me.counters.inc_tasks_spawned();
        if was_empty {
            // Spawn into an empty queue: new stealable work became visible.
            // The sleep controller makes this free when nobody sleeps or a
            // searcher is already scanning (one fence + one load).
            self.shared.sleep.notify_work(self.searching);
        }
        if requirement > 1 {
            // paper: the registration structure's `r` is updated whenever a
            // task is pushed to the bottom of a queue, so idle threads can
            // already register while we are still executing.
            assert!(
                self.shared.steal_policy != StealPolicy::UniformRandom,
                "team tasks (r > 1) require a hierarchical steal policy; \
                 StealPolicy::UniformRandom supports only sequential tasks"
            );
            let group = self.topo().group_size(self.id, level);
            me.reg.push_requirement(group as u16);
            // Team candidates may be parked (idle or polling a competing
            // coordinator); the advertisement must reach them.
            self.notify_team_range(self.id, group);
        }
    }

    fn worker_id(&self) -> usize {
        self.id
    }

    fn num_threads(&self) -> usize {
        self.shared.num_threads()
    }
}
