//! The task model: jobs, task nodes and scope bookkeeping.
//!
//! A **job** is the user-provided work description; a **task node** is the
//! scheduler-internal object that travels through the work-stealing deques,
//! carries the thread requirement `r` (Section 3 of the paper), and — once a
//! team has been built for it — the team descriptor and the completion
//! countdown shared by all executing team members.

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicU32, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};

use crate::context::TaskContext;
use crate::team::TeamBarrier;

/// A unit of work understood by the scheduler.
///
/// Jobs with [`requirement`](Job::requirement)` == 1` behave exactly like
/// classic work-stealing tasks: `run` is invoked once, by one worker.  Jobs
/// with a larger requirement are executed *cooperatively*: once a team of the
/// required size has been built, **every** team member invokes `run` on the
/// same job object concurrently, each with a different
/// [`TaskContext::local_id`].  The job body coordinates its members through
/// the context (team barrier, local ids) exactly like an SPMD kernel.
pub trait Job: Send + Sync {
    /// Number of threads this job requires (the paper's `r`).  Must be at
    /// least 1 and at most the number of scheduler threads.
    fn requirement(&self) -> usize {
        1
    }

    /// Executes the job.  For team jobs this is called once per team member,
    /// concurrently.
    fn run(&self, ctx: &TaskContext<'_>);
}

/// Adapter: a sequential (`r = 1`) job from a closure that is executed
/// exactly once.
pub(crate) struct OnceJob<F: FnOnce(&TaskContext<'_>) + Send> {
    /// The closure, taken exactly once by the single executing thread.
    f: UnsafeCell<Option<F>>,
}

// SAFETY: the closure is only ever taken by the single worker that executes
// this r = 1 task; the scheduler never shares an `OnceJob` between threads
// concurrently (see `TaskNode::participants`).
unsafe impl<F: FnOnce(&TaskContext<'_>) + Send> Sync for OnceJob<F> {}

impl<F: FnOnce(&TaskContext<'_>) + Send> OnceJob<F> {
    pub(crate) fn new(f: F) -> Self {
        OnceJob {
            f: UnsafeCell::new(Some(f)),
        }
    }
}

impl<F: FnOnce(&TaskContext<'_>) + Send> Job for OnceJob<F> {
    fn requirement(&self) -> usize {
        1
    }

    fn run(&self, ctx: &TaskContext<'_>) {
        // SAFETY: r = 1 tasks are executed by exactly one thread, exactly
        // once; no other reference to the cell can exist at this point.
        let f = unsafe { (*self.f.get()).take() };
        if let Some(f) = f {
            f(ctx);
        }
    }
}

/// Adapter: a team job (`r >= 1`) from a shared closure executed by every
/// team member.
pub(crate) struct TeamJob<F: Fn(&TaskContext<'_>) + Send + Sync> {
    requirement: usize,
    f: F,
}

impl<F: Fn(&TaskContext<'_>) + Send + Sync> TeamJob<F> {
    pub(crate) fn new(requirement: usize, f: F) -> Self {
        TeamJob { requirement, f }
    }
}

impl<F: Fn(&TaskContext<'_>) + Send + Sync> Job for TeamJob<F> {
    fn requirement(&self) -> usize {
        self.requirement
    }

    fn run(&self, ctx: &TaskContext<'_>) {
        (self.f)(ctx);
    }
}

/// Completion bookkeeping for one `Scheduler::scope` invocation.
///
/// Every spawned task increments `pending`; the last team member to finish a
/// task decrements it.  The scope call blocks until the counter returns to
/// zero, which doubles as the termination detection of the scheduler run
/// (see DESIGN.md §3 for why this replaces the paper's unspecified idle
/// registration protocol).
pub struct ScopeState {
    pending: AtomicUsize,
    lock: Mutex<()>,
    cv: Condvar,
    /// First panic payload raised by a task of this scope, if any.  It is
    /// re-thrown by `Scheduler::scope` after all tasks have drained, so a
    /// panicking task aborts the scope instead of wedging the scheduler.
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
}

impl ScopeState {
    pub(crate) fn new() -> Arc<Self> {
        Arc::new(ScopeState {
            pending: AtomicUsize::new(0),
            lock: Mutex::new(()),
            cv: Condvar::new(),
            panic: Mutex::new(None),
        })
    }

    /// Records the payload of a panicking task (first one wins).
    pub(crate) fn record_panic(&self, payload: Box<dyn std::any::Any + Send>) {
        let mut slot = self.panic.lock().expect("scope panic slot poisoned");
        if slot.is_none() {
            *slot = Some(payload);
        }
    }

    /// Takes the recorded panic payload, if any.
    pub(crate) fn take_panic(&self) -> Option<Box<dyn std::any::Any + Send>> {
        self.panic.lock().expect("scope panic slot poisoned").take()
    }

    /// Registers one more outstanding task.
    pub(crate) fn task_spawned(&self) {
        self.pending.fetch_add(1, Ordering::AcqRel);
    }

    /// Marks one task as fully finished (all team members done).
    pub(crate) fn task_finished(&self) {
        if self.pending.fetch_sub(1, Ordering::AcqRel) == 1 {
            let _guard = self.lock.lock().expect("scope lock poisoned");
            self.cv.notify_all();
        }
    }

    /// Number of not-yet-finished tasks.
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn pending(&self) -> usize {
        self.pending.load(Ordering::Acquire)
    }

    /// Blocks until every task spawned in this scope has finished.
    pub(crate) fn wait(&self) {
        let mut guard = self.lock.lock().expect("scope lock poisoned");
        while self.pending.load(Ordering::Acquire) != 0 {
            let (g, _timeout) = self
                .cv
                .wait_timeout(guard, std::time::Duration::from_millis(5))
                .expect("scope lock poisoned");
            guard = g;
        }
    }
}

/// The scheduler-internal representation of one spawned task.
///
/// Allocated on spawn, pushed into a deque as a raw pointer, and freed by the
/// last team member that finishes executing it.
pub struct TaskNode {
    /// The user job.
    pub(crate) job: Box<dyn Job>,
    /// Thread requirement `r` as requested at spawn time.
    pub(crate) requirement: usize,
    /// Scope this task belongs to (for completion counting).
    pub(crate) scope: Arc<ScopeState>,
    /// Team descriptor, written by the coordinator *before* the task is
    /// published and read by team members *after* they observe the
    /// publication (the publication seqlock provides the ordering).
    pub(crate) team_base: UnsafeCell<usize>,
    pub(crate) team_size: UnsafeCell<usize>,
    /// Barrier shared by the team for this task, sized at publication time.
    pub(crate) barrier: UnsafeCell<Option<Arc<TeamBarrier>>>,
    /// Team members that have not yet finished running this task.  The last
    /// one to decrement frees the node and notifies the scope.
    pub(crate) participants: AtomicU32,
}

// SAFETY: the UnsafeCell fields are written only by the coordinating worker
// before publication and read only after the publication is observed through
// an acquire load; `participants` and `job` are themselves thread-safe.
unsafe impl Send for TaskNode {}
unsafe impl Sync for TaskNode {}

impl TaskNode {
    pub(crate) fn new(job: Box<dyn Job>, requirement: usize, scope: Arc<ScopeState>) -> Self {
        TaskNode {
            job,
            requirement,
            scope,
            team_base: UnsafeCell::new(0),
            team_size: UnsafeCell::new(1),
            barrier: UnsafeCell::new(None),
            participants: AtomicU32::new(1),
        }
    }

    /// Allocates a node and returns the raw pointer that travels through the
    /// deques.  The scope's pending counter is incremented here.
    pub(crate) fn allocate(
        job: Box<dyn Job>,
        requirement: usize,
        scope: Arc<ScopeState>,
    ) -> *mut TaskNode {
        scope.task_spawned();
        Box::into_raw(Box::new(TaskNode::new(job, requirement, scope)))
    }
}

/// A word-sized handle to a [`TaskNode`] as stored in the work-stealing
/// deques.  The handle does not own the node; ownership is tracked by the
/// execution protocol (a node is freed by the last finishing participant, or
/// by the scheduler when draining queues at shutdown).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct TaskPtr(pub(crate) *mut TaskNode);

// SAFETY: TaskPtr is just an address; the pointee is Send + Sync.
unsafe impl Send for TaskPtr {}
unsafe impl Sync for TaskPtr {}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;

    #[test]
    fn scope_counts_down_to_zero() {
        let scope = ScopeState::new();
        scope.task_spawned();
        scope.task_spawned();
        assert_eq!(scope.pending(), 2);
        scope.task_finished();
        assert_eq!(scope.pending(), 1);
        scope.task_finished();
        assert_eq!(scope.pending(), 0);
        // wait() returns immediately when nothing is pending.
        scope.wait();
    }

    #[test]
    fn scope_wait_blocks_until_finished() {
        let scope = ScopeState::new();
        scope.task_spawned();
        let released = Arc::new(AtomicBool::new(false));
        let waiter = {
            let scope = Arc::clone(&scope);
            let released = Arc::clone(&released);
            std::thread::spawn(move || {
                scope.wait();
                released.load(Ordering::SeqCst)
            })
        };
        std::thread::sleep(std::time::Duration::from_millis(20));
        released.store(true, Ordering::SeqCst);
        scope.task_finished();
        assert!(waiter.join().unwrap(), "wait returned before task finished");
    }

    #[test]
    fn allocate_increments_pending_and_sets_defaults() {
        let scope = ScopeState::new();
        let ptr = TaskNode::allocate(
            Box::new(TeamJob::new(4, |_ctx: &TaskContext<'_>| {})),
            4,
            Arc::clone(&scope),
        );
        assert_eq!(scope.pending(), 1);
        // SAFETY: we just allocated it and nothing else references it.
        let node = unsafe { Box::from_raw(ptr) };
        assert_eq!(node.requirement, 4);
        assert_eq!(node.job.requirement(), 4);
        assert_eq!(node.participants.load(Ordering::Relaxed), 1);
        drop(node);
        scope.task_finished();
        assert_eq!(scope.pending(), 0);
    }
}
